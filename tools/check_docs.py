#!/usr/bin/env python3
"""Docs-vs-reality checker: CLI flags named in docs must exist, links must resolve.

Usage: check_docs.py --root REPO_DIR [--tool NAME=PATH ...] [--quiet]

Two classes of silent doc rot, both fatal here:

1. Flag drift: a doc shows `onespec-ckpt save out.ckpt --store DIR` but
   the tool no longer accepts --store (or never did).  For every line in
   a docs/*.md or README.md code span/block that names exactly one
   registered tool, every `--flag` token on that line must appear in the
   tool's `--help` output (the exit status of that invocation is
   ignored; --help rather than no-args because onespec-fleet's no-arg
   invocation runs the default batch).

2. Link drift: `[spec](CKPT_FORMAT.md)` or a bare docs/FOO.md mention
   pointing at a file that moved or was never written.  Every .md link
   target (anchors stripped) must resolve relative to the referencing
   file's directory or to the repo root.

Run under ctest (tools/CMakeLists.txt) with the built tool binaries, so
the docs are re-validated on every test run.  Exit 0 clean, 1 on any
finding, 2 on usage error.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

# `--flag` tokens; trailing '=' / punctuation excluded by the char class.
FLAG_RE = re.compile(r"--[a-z0-9][a-z0-9-]*")
# Markdown inline link targets: [text](target).
MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Bare mentions like docs/CKPT_FORMAT.md outside link syntax.
BARE_MD_RE = re.compile(r"(?<![(\w/])((?:[\w.-]+/)*[\w.-]+\.md)\b")


def doc_files(root: Path):
    files = sorted((root / "docs").glob("*.md"))
    for name in ("README.md", "EXPERIMENTS.md", "ROADMAP.md"):
        p = root / name
        if p.exists():
            files.append(p)
    return files


def usage_text(tool_path: str) -> str:
    """A tool's --help invocation prints its usage (exit ignored)."""
    proc = subprocess.run([tool_path, "--help"], capture_output=True,
                          text=True, timeout=60)
    return proc.stdout + proc.stderr


def code_lines(text: str):
    """Yield (lineno, line) for fenced-code-block lines and the contents
    of inline code spans, the places docs show real invocations."""
    in_fence = False
    for i, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            yield i, line
        else:
            for span in re.findall(r"`([^`]+)`", line):
                yield i, span


def check_flags(doc: Path, text: str, tools: dict, usages: dict, errors):
    for lineno, line in code_lines(text):
        named = [t for t in tools if t in line]
        if len(named) != 1:
            # Zero tools: nothing to check.  Two or more: prose
            # comparing tools, not an invocation line.
            continue
        tool = named[0]
        for flag in FLAG_RE.findall(line):
            if flag not in usages[tool]:
                errors.append(
                    f"{doc}:{lineno}: flag {flag} not in {tool} usage "
                    f"output")


def check_links(doc: Path, rel: Path, text: str, root: Path, errors):
    targets = set()
    for m in MD_LINK_RE.finditer(text):
        targets.add(m.group(1))
    for m in BARE_MD_RE.finditer(text):
        targets.add(m.group(1))
    for target in sorted(targets):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path or not path.endswith(".md"):
            continue
        if (doc.parent / path).exists() or (root / path).exists():
            continue
        errors.append(f"{rel}: broken doc link: {target}")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    ap.add_argument("--root", required=True, metavar="DIR",
                    help="repository root holding docs/ and README.md")
    ap.add_argument("--tool", action="append", default=[],
                    metavar="NAME=PATH",
                    help="register a tool binary for flag checking")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()

    root = Path(args.root).resolve()
    if not (root / "docs").is_dir():
        print(f"check_docs: no docs/ under {root}", file=sys.stderr)
        return 2

    tools, usages = {}, {}
    for spec in args.tool:
        if "=" not in spec:
            print(f"check_docs: bad --tool {spec!r} (want NAME=PATH)",
                  file=sys.stderr)
            return 2
        name, path = spec.split("=", 1)
        tools[name] = path
        try:
            usages[name] = usage_text(path)
        except OSError as e:
            print(f"check_docs: cannot run {path}: {e}", file=sys.stderr)
            return 2

    errors = []
    checked = 0
    for doc in doc_files(root):
        text = doc.read_text(encoding="utf-8")
        rel = doc.relative_to(root)
        check_flags(rel, text, tools, usages, errors)
        check_links(doc, rel, text, root, errors)
        checked += 1

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    if not args.quiet:
        print(f"check_docs: {checked} docs OK "
              f"({len(tools)} tools' flags verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
