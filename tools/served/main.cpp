/**
 * @file
 * onespec-served: the persistent simulation daemon.  Owns a bounded job
 * queue with admission control and per-tenant quotas, a warm pool of
 * simulator contexts, checkpoint-backed preemption, and the fleet's
 * watchdog/retry/quarantine health layer -- all served over a
 * Unix-domain socket to onespec-sub clients (protocol and semantics:
 * docs/SERVICE.md).
 *
 *   onespec-served --socket /tmp/onespec.sock --store /tmp/ckpts
 *   onespec-served --socket s.sock --workers 4 --queue-depth 8 --quota 4
 *   onespec-served --socket s.sock --daemonize --log served.log
 *
 * Foreground by default: serves until a client sends Shutdown, then
 * drains and exits.  With --daemonize the socket is bound in the parent
 * -- it provably exists when the parent exits 0 -- and a forked child
 * serves; the child's stdio goes to --log (default /dev/null).
 *
 * The flight recorder is armed for the daemon's lifetime so every
 * quarantine ships a postmortem tail to the submitting client.
 *
 * Exit codes follow the shared CLI contract (support/cli.hpp,
 * docs/ROBUSTNESS.md): 0 clean shutdown, 101 usage, 102 fatal SimError
 * (e.g. the socket cannot be bound).
 */

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "service/daemon.hpp"
#include "support/cli.hpp"
#include "support/sim_error.hpp"

using namespace onespec;
using service::ServiceConfig;
using service::ServiceDaemon;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: onespec-served --socket PATH [options]\n"
        "  --socket PATH    Unix-domain socket to listen on (required)\n"
        "  --store DIR      checkpoint store enabling preemption "
        "(default: preemption unavailable)\n"
        "  --workers N      worker pool width (default: hardware "
        "threads)\n"
        "  --queue-depth N  max queued jobs before QueueFull rejections "
        "(default 64)\n"
        "  --quota N        max in-flight jobs per tenant (default 16)\n"
        "  --slice N        default preemption slice in instructions for\n"
        "                   jobs that do not set one (default: never "
        "preempt)\n"
        "  --warm-cap N     idle warm simulator contexts kept (default "
        "16)\n"
        "  --fr-capacity N  flight-recorder events per thread "
        "(default 4096)\n"
        "  --bundle-dir D   record replay tapes; quarantined jobs write\n"
        "                   repro bundles into D, downloadable with\n"
        "                   onespec-sub --fetch-bundle\n"
        "  --daemonize      bind, fork, serve in the child; parent exits "
        "0 once the socket exists\n"
        "  --log FILE       daemonized child's stdout/stderr "
        "(default /dev/null)\n"
        "  --trace-out FILE write the daemon-side timeline (Chrome trace\n"
        "                   JSON) on shutdown; merge with a client trace\n"
        "                   via onespec-sub --merge-trace\n");
    return cli::kExitUsage;
}

/** Serve until a client drains us.  Runs in the child when daemonized. */
int
serve(ServiceDaemon &daemon, const std::string &trace_out)
{
    daemon.start();
    std::printf("onespec-served: listening on %s (%u workers, queue %u, "
                "quota %u)\n",
                daemon.config().socketPath.c_str(),
                daemon.config().workers,
                daemon.config().queueDepth, daemon.config().tenantQuota);
    std::fflush(stdout);
    daemon.waitShutdown();
    daemon.stop();
    // After stop(): every worker joined, so the rings are quiescent and
    // the export sees every span the daemon ever recorded.
    if (!trace_out.empty()) {
        obs::TimelineLabels labels;
        daemon.fillTimelineLabels(labels);
        std::string err;
        if (!obs::exportChromeTrace(trace_out, labels, &err))
            std::fprintf(stderr,
                         "onespec-served: trace export failed: %s\n",
                         err.c_str());
        else
            std::printf("onespec-served: wrote timeline %s\n",
                        trace_out.c_str());
    }
    std::printf("onespec-served: drained and shut down\n");
    return 0;
}

int
realMain(int argc, char **argv)
{
    ServiceConfig cfg;
    bool daemonize = false;
    std::string log_path, trace_out;
    size_t fr_capacity = obs::FlightControl::kDefaultCapacity;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            cfg.socketPath = argv[++i];
        } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
            cfg.storeDir = argv[++i];
        } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
            cfg.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--queue-depth") == 0 &&
                   i + 1 < argc) {
            cfg.queueDepth = static_cast<uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--quota") == 0 && i + 1 < argc) {
            cfg.tenantQuota = static_cast<uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--slice") == 0 && i + 1 < argc) {
            cfg.defaultSliceInstrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--warm-cap") == 0 &&
                   i + 1 < argc) {
            cfg.warmPoolCap = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--fr-capacity") == 0 &&
                   i + 1 < argc) {
            fr_capacity = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--bundle-dir") == 0 &&
                   i + 1 < argc) {
            cfg.bundleDir = argv[++i];
        } else if (std::strcmp(argv[i], "--daemonize") == 0) {
            daemonize = true;
        } else if (std::strcmp(argv[i], "--log") == 0 && i + 1 < argc) {
            log_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            trace_out = argv[++i];
        } else {
            return usage();
        }
    }
    if (cfg.socketPath.empty())
        return usage();

    obs::FlightControl::instance().arm(fr_capacity);
    ServiceDaemon daemon(cfg);

    if (!daemonize)
        return serve(daemon, trace_out);

    // Bind before forking: when the parent exits 0, a client's connect()
    // cannot race daemon startup (the listen backlog queues it).
    daemon.bind();
    pid_t pid = ::fork();
    if (pid < 0)
        throw ResourceError("service", std::string("fork() failed: ") +
                                           strerror(errno));
    if (pid > 0) {
        std::printf("onespec-served: daemonized on %s (pid %ld)\n",
                    cfg.socketPath.c_str(), static_cast<long>(pid));
        std::fflush(stdout);
        // _exit, not return: the child owns the bound socket; the
        // parent's daemon object must not close-and-unlink it.
        ::_exit(0);
    }
    // Child: own session, stdio to the log so the parent's caller (a
    // ctest fixture, a shell) sees EOF on the inherited pipes.
    ::setsid();
    const char *sink = log_path.empty() ? "/dev/null" : log_path.c_str();
    if (!std::freopen("/dev/null", "r", stdin) ||
        !std::freopen(sink, "a", stdout) ||
        !std::freopen(sink, "a", stderr)) {
        // Serving blind is worse than dying visibly-by-exit-code.
        ::_exit(static_cast<int>(cli::kExitFatal));
    }
    return serve(daemon, trace_out);
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::runCliMain("onespec-served",
                           [&] { return realMain(argc, argv); });
}
