/**
 * @file
 * onespec-sub: submit simulation jobs to a running onespec-served and
 * stream their lifecycle back.  The client-side face of the service
 * (protocol and semantics: docs/SERVICE.md).
 *
 *   onespec-sub --socket /tmp/onespec.sock                # full batch
 *   onespec-sub --socket s.sock --isa alpha64 --kernel fib --slice 100000
 *   onespec-sub --socket s.sock --kernel crc32 --poison 0 --tenant ci
 *   onespec-sub --socket s.sock --statsz
 *   onespec-sub --socket s.sock --shutdown
 *
 * Every accepted job streams Status frames (queued, running, preempted,
 * resumed, retrying) as it moves through the daemon, then one Result
 * frame with the final outcome: instruction count, state hash, interface
 * counters, the per-job stats dump, and -- for quarantined jobs -- the
 * error record plus the worker's flight-recorder postmortem tail.
 *
 * Exit codes follow the shared CLI contract (support/cli.hpp,
 * docs/ROBUSTNESS.md): the quarantined-job count (capped at 100), 101
 * for usage errors, 102 for a fatal SimError (e.g. the daemon is not
 * running).  Rejected submissions are reported on stdout but do not
 * change the exit code: rejection is backpressure, not failure.
 */

#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "service/client.hpp"
#include "support/cli.hpp"
#include "support/sim_error.hpp"

using namespace onespec;
using service::ClientEvent;
using service::JobPhase;
using service::JobResult;
using service::JobSpec;
using service::ServiceClient;
using service::SubmitOutcome;

namespace {

/** Kernel scale giving ~1-5M dynamic instructions each (mirrors
 *  onespec-fleet so a service batch is comparable to a fleet batch). */
uint64_t
kernelParam(const std::string &kernel)
{
    static const std::map<std::string, uint64_t> scale = {
        {"fib", 250'000},   {"sieve", 120'000},  {"matmul", 56},
        {"shellsort", 24'000}, {"strhash", 36'000}, {"crc32", 40'000},
        {"listsum", 48'000},
    };
    auto it = scale.find(kernel);
    return it != scale.end() ? it->second : 1000;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: onespec-sub --socket PATH [options]\n"
        "  --socket PATH   daemon socket to connect to (required)\n"
        "  --tenant NAME   tenant for quota accounting (default "
        "'default')\n"
        "  --isa NAME      restrict to one ISA (repeatable; default: "
        "all)\n"
        "  --kernel NAME   restrict to one kernel (repeatable; default: "
        "all)\n"
        "  --param N       kernel scale override (default: per-kernel)\n"
        "  --buildset B    interface buildset (default BlockMinNo)\n"
        "  --interp        interpreter back end instead of generated\n"
        "  --instrs N      per-job instruction cap (default: to halt)\n"
        "  --slice N       preemption slice in instructions (default: "
        "daemon's)\n"
        "  --repeat N      queue the batch N times (default 1)\n"
        "  --cold          force cold simulator caches (bit-identical "
        "per-job stats)\n"
        "  --deadline-ms N watchdog over active run time (default: "
        "none)\n"
        "  --retries N     extra attempts for resource failures "
        "(default 0)\n"
        "  --profile-stride N  hot-PC profile every N retired "
        "instructions\n"
        "  --strict-syscalls   unknown OS calls quarantine the job\n"
        "  --poison IDX    give job IDX a nonexistent buildset "
        "(quarantine demo/testing aid)\n"
        "  --bundle-dir D  download each quarantined job's repro bundle\n"
        "                  from the daemon into D (daemon needs "
        "--bundle-dir too)\n"
        "  --fetch-bundle ID  download job ID's repro bundle and exit\n"
        "  --statsz        print the daemon's service stats JSON\n"
        "  --metrics       print the daemon's OpenMetrics scrape text\n"
        "  --metrics-out FILE  write the OpenMetrics scrape text to FILE\n"
        "  --trace-out FILE  record client-side spans and write the\n"
        "                  timeline (Chrome trace JSON) on exit\n"
        "  --merge-trace DAEMON CLIENT OUT  merge a daemon-side and a\n"
        "                  client-side timeline into one Chrome trace "
        "JSON and exit\n"
        "  --shutdown      drain the daemon and wait for it to exit\n");
    return cli::kExitUsage;
}

const char *
phaseVerb(JobPhase p)
{
    switch (p) {
    case JobPhase::Queued:    return "queued";
    case JobPhase::Running:   return "running";
    case JobPhase::Preempted: return "preempted";
    case JobPhase::Resumed:   return "resumed";
    case JobPhase::Retrying:  return "retrying";
    }
    return "?";
}

void
printResult(const JobResult &res)
{
    const char *status =
        res.quarantined                        ? "QUARANTINED"
        : res.runStatus == RunStatus::Halted   ? "halted"
        : res.runStatus == RunStatus::Fault    ? "fault"
                                               : "ok";
    double mips = res.ns ? static_cast<double>(res.instrs) * 1000.0 /
                               static_cast<double>(res.ns)
                         : 0.0;
    std::printf("%-20s %-12s %12llu %10.2f %18llx", res.name.c_str(),
                status, static_cast<unsigned long long>(res.instrs), mips,
                static_cast<unsigned long long>(res.stateHash));
    if (res.preemptions)
        std::printf("  (%llu preemption%s)",
                    static_cast<unsigned long long>(res.preemptions),
                    res.preemptions == 1 ? "" : "s");
    std::printf("\n");
    if (res.quarantined) {
        std::printf("    [%s, %u attempt%s, %.2f ms] %s\n",
                    errorKindName(res.errorKind), res.attempts,
                    res.attempts == 1 ? "" : "s",
                    static_cast<double>(res.ns) / 1e6, res.error.c_str());
        if (!res.frTail.empty()) {
            std::printf("    postmortem flight-recorder tail "
                        "(%zu events):\n",
                        res.frTail.size());
            for (size_t k = 0; k < res.frTail.size(); ++k) {
                const obs::FrEvent &ev = res.frTail[k];
                const char *phase =
                    ev.phase == obs::EvPhase::Begin ? "B"
                    : ev.phase == obs::EvPhase::End ? "E"
                                                    : "i";
                std::printf("      tail[%zu] +%11.3f us  %s %-12s id=%u "
                            "a0=%llu a1=%llu\n",
                            k, static_cast<double>(ev.tsNs) / 1000.0,
                            phase, obs::evTypeName(ev.type), ev.id,
                            static_cast<unsigned long long>(ev.a0),
                            static_cast<unsigned long long>(ev.a1));
            }
        }
    }
}

/** Save downloaded bundle bytes as <dir>/job<id>.bundle (dir created if
 *  missing; "." when unset) and return the path written. */
std::string
saveFetchedBundle(const std::string &dir, uint64_t job_id,
                  const std::vector<uint8_t> &bytes)
{
    namespace fs = std::filesystem;
    const fs::path d = dir.empty() ? fs::path(".") : fs::path(dir);
    std::error_code ec;
    fs::create_directories(d, ec);
    const fs::path path = d / ("job" + std::to_string(job_id) + ".bundle");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out)
        throw ResourceError("service",
                            "cannot write bundle file " + path.string());
    return path.string();
}

int
realMain(int argc, char **argv)
{
    std::string socket_path, tenant = "default", buildset = "BlockMinNo";
    std::vector<std::string> isas, kernels;
    uint64_t param = 0, max_instrs = ~uint64_t{0}, slice = 0;
    uint64_t deadline_ns = 0, profile_stride = 0;
    int repeat = 1;
    unsigned retries = 0;
    bool interp = false, cold = false, strict = false;
    bool want_statsz = false, want_shutdown = false;
    long poison = -1;
    std::string bundle_dir;
    bool want_fetch = false;
    uint64_t fetch_id = 0;
    bool want_metrics = false;
    std::string metrics_out, trace_out;
    std::string merge_daemon, merge_client, merge_out;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (std::strcmp(argv[i], "--tenant") == 0 && i + 1 < argc) {
            tenant = argv[++i];
        } else if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc) {
            isas.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
            kernels.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--param") == 0 && i + 1 < argc) {
            param = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--interp") == 0) {
            interp = true;
        } else if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--slice") == 0 && i + 1 < argc) {
            slice = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--cold") == 0) {
            cold = true;
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
                   i + 1 < argc) {
            deadline_ns = std::strtoull(argv[++i], nullptr, 0) *
                          1'000'000ull;
        } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
            retries = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--profile-stride") == 0 &&
                   i + 1 < argc) {
            profile_stride = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--strict-syscalls") == 0) {
            strict = true;
        } else if (std::strcmp(argv[i], "--poison") == 0 && i + 1 < argc) {
            poison = std::strtol(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--bundle-dir") == 0 &&
                   i + 1 < argc) {
            bundle_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--fetch-bundle") == 0 &&
                   i + 1 < argc) {
            want_fetch = true;
            fetch_id = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--statsz") == 0) {
            want_statsz = true;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            want_metrics = true;
        } else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                   i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            trace_out = argv[++i];
        } else if (std::strcmp(argv[i], "--merge-trace") == 0 &&
                   i + 3 < argc) {
            merge_daemon = argv[++i];
            merge_client = argv[++i];
            merge_out = argv[++i];
        } else if (std::strcmp(argv[i], "--shutdown") == 0) {
            want_shutdown = true;
        } else {
            return usage();
        }
    }

    // Offline merge: no daemon involved.  The daemon-side file is
    // written by onespec-served *after* it acks the shutdown, so a
    // merge scripted right behind `onespec-sub --shutdown` may land
    // before the file does; retry the merge for a bounded window
    // instead of failing on the race.
    if (!merge_out.empty()) {
        std::string err;
        for (int waited_ms = 0;; waited_ms += 100) {
            if (obs::mergeChromeTraces(merge_daemon, merge_client,
                                       merge_out, &err)) {
                std::printf("onespec-sub: wrote merged timeline %s\n",
                            merge_out.c_str());
                return 0;
            }
            if (waited_ms >= 10'000)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        throw ResourceError("service", "trace merge failed: " + err);
    }

    if (socket_path.empty())
        return usage();

    // Client-side tracing: arm before connect so the Submit spans and
    // queue-wait/stream instants of this run land in the ring.
    if (!trace_out.empty())
        obs::FlightControl::instance().arm(
            obs::FlightControl::kDefaultCapacity);

    ServiceClient client;
    client.connect(socket_path, tenant);
    // Control-only invocations skip the batch entirely.
    const bool control_only = (want_statsz || want_shutdown || want_fetch ||
                               want_metrics || !metrics_out.empty()) &&
                              isas.empty() && kernels.empty();

    unsigned quarantined = 0;
    if (!control_only) {
        if (isas.empty())
            isas = {"alpha64", "arm32", "ppc32"};
        if (kernels.empty())
            kernels = {"fib",      "sieve",  "matmul", "shellsort",
                       "strhash",  "crc32",  "listsum"};

        std::vector<JobSpec> specs;
        for (int r = 0; r < repeat; ++r) {
            for (const auto &isa : isas) {
                for (const auto &k : kernels) {
                    JobSpec js;
                    js.name = isa + "/" + k;
                    js.isa = isa;
                    js.kernel = k;
                    js.param = param ? param : kernelParam(k);
                    js.buildset = buildset;
                    js.useInterp = interp;
                    js.maxInstrs = max_instrs;
                    js.sliceInstrs = slice;
                    js.coldStats = cold;
                    js.strictSyscalls = strict;
                    js.profileStride = profile_stride;
                    js.deadlineNs = deadline_ns;
                    js.maxAttempts = 1 + retries;
                    specs.push_back(std::move(js));
                }
            }
        }
        if (poison >= 0) {
            if (static_cast<size_t>(poison) >= specs.size()) {
                std::fprintf(stderr, "onespec-sub: --poison %ld out of "
                             "range (%zu jobs)\n", poison, specs.size());
                return usage();
            }
            specs[static_cast<size_t>(poison)].buildset = "__poisoned__";
        }

        std::printf("onespec-sub: %zu jobs to %s (tenant %s, server "
                    "queue %u, quota %u)\n\n",
                    specs.size(), socket_path.c_str(), tenant.c_str(),
                    client.serverInfo().queueDepth,
                    client.serverInfo().tenantQuota);

        size_t accepted = 0, rejected = 0;
        for (const auto &js : specs) {
            SubmitOutcome o = client.submit(js);
            if (o.accepted) {
                ++accepted;
            } else {
                ++rejected;
                std::printf("%-20s REJECTED (%s): %s\n", js.name.c_str(),
                            service::rejectCodeName(o.reject.code),
                            o.reject.reason.c_str());
            }
        }

        std::printf("%-20s %-12s %12s %10s %18s\n", "job", "status",
                    "instrs", "MIPS", "state_hash");
        size_t results = 0;
        ClientEvent ev;
        while (results < accepted && client.next(ev)) {
            if (ev.kind == ClientEvent::Kind::Status) {
                if (ev.status.phase != JobPhase::Queued &&
                    ev.status.phase != JobPhase::Running) {
                    std::printf("  job %llu %s at %llu instrs "
                                "(attempt %u)\n",
                                static_cast<unsigned long long>(
                                    ev.status.jobId),
                                phaseVerb(ev.status.phase),
                                static_cast<unsigned long long>(
                                    ev.status.instrsDone),
                                ev.status.attempt);
                }
            } else if (ev.kind == ClientEvent::Kind::Result) {
                ++results;
                quarantined += ev.result.quarantined;
                printResult(ev.result);
                // Download the quarantine's repro bundle right away:
                // fetchBundle queues any Results that race it, so the
                // streaming loop above loses nothing.
                if (ev.result.quarantined && !bundle_dir.empty()) {
                    service::BundleData bd =
                        client.fetchBundle(ev.result.jobId);
                    if (bd.found)
                        std::printf("    repro bundle: %s (%zu bytes)\n",
                                    saveFetchedBundle(bundle_dir, bd.jobId,
                                                      bd.bytes)
                                        .c_str(),
                                    bd.bytes.size());
                    else
                        std::printf("    repro bundle: daemon has none "
                                    "(started without --bundle-dir?)\n");
                }
            }
        }
        if (results < accepted)
            throw ResourceError("service",
                                "server closed the connection with " +
                                    std::to_string(accepted - results) +
                                    " results outstanding");
        std::printf("\n%zu accepted, %zu rejected, %u quarantined\n",
                    accepted, rejected, quarantined);
    }

    if (want_fetch) {
        service::BundleData bd = client.fetchBundle(fetch_id);
        if (!bd.found) {
            std::printf("onespec-sub: daemon has no bundle for job %llu\n",
                        static_cast<unsigned long long>(fetch_id));
            return cli::kExitUsage;
        }
        std::printf("onespec-sub: wrote %s (%zu bytes)\n",
                    saveFetchedBundle(bundle_dir, bd.jobId, bd.bytes)
                        .c_str(),
                    bd.bytes.size());
    }
    if (want_statsz)
        std::printf("%s\n", client.statsz().c_str());
    if (want_metrics || !metrics_out.empty()) {
        const std::string text = client.metricsz();
        if (want_metrics)
            std::fputs(text.c_str(), stdout);
        if (!metrics_out.empty()) {
            std::ofstream out(metrics_out,
                              std::ios::binary | std::ios::trunc);
            out << text;
            if (!out)
                throw ResourceError("service",
                                    "cannot write metrics file " +
                                        metrics_out);
        }
    }
    if (want_shutdown) {
        client.shutdownServer();
        std::printf("onespec-sub: server drained and shut down\n");
    }
    if (!trace_out.empty()) {
        obs::TimelineLabels labels;
        client.fillTimelineLabels(labels);
        std::string err;
        if (!obs::exportChromeTrace(trace_out, labels, &err))
            throw ResourceError("service",
                                "trace export failed: " + err);
        std::printf("onespec-sub: wrote timeline %s\n", trace_out.c_str());
    }
    return cli::quarantineExitCode(quarantined);
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::runCliMain("onespec-sub",
                           [&] { return realMain(argc, argv); });
}
