/**
 * @file
 * onespec-fleet: batch driver for the parallel simulation fleet.  Runs a
 * batch of kernel workloads (all three ISAs by default) concurrently on
 * a SimFleet and prints per-job results plus the deterministically
 * merged stats.  This is the throughput-serving face of the
 * reproduction: hand it work, it saturates the cores.
 *
 *   onespec-fleet                         # all ISAs x all kernels
 *   onespec-fleet --threads 4 --instrs 5000000
 *   onespec-fleet --isa alpha64 --buildset OneAllNo --stats
 *   onespec-fleet --repeat 3 --kernel fib --kernel crc32
 *   onespec-fleet --deadline-ms 2000 --retries 1
 *   onespec-fleet --trace-out trace.json --profile --stats
 *
 * With --trace-out the flight recorder is armed for the batch and the
 * run is exported as Chrome trace-event JSON (load it in Perfetto or
 * chrome://tracing; docs/OBSERVABILITY.md walks through it).  With
 * --profile each job carries a deterministic hot-PC profiler whose
 * buckets land under fleet.<isa>.<buildset>.profile in --stats output.
 *
 * Failed jobs are quarantined (structured error records), healthy jobs
 * complete, and the exit code is the quarantined-job count under the
 * shared CLI contract (support/cli.hpp, docs/ROBUSTNESS.md): capped at
 * 100, with 101 for usage errors and 102 for a fatal SimError.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "support/cli.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "parallel/fleet.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

using namespace onespec;
using parallel::FleetJob;
using parallel::FleetReport;
using parallel::SimFleet;

namespace {

/** Kernel scale giving ~1-5M dynamic instructions each (the bench
 *  sizes, kept local so tools/ does not depend on bench/). */
uint64_t
kernelParam(const std::string &kernel)
{
    static const std::map<std::string, uint64_t> scale = {
        {"fib", 250'000},   {"sieve", 120'000},  {"matmul", 56},
        {"shellsort", 24'000}, {"strhash", 36'000}, {"crc32", 40'000},
        {"listsum", 48'000},
    };
    auto it = scale.find(kernel);
    return it != scale.end() ? it->second : 1000;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: onespec-fleet [options]\n"
        "  --threads N     pool width (default: hardware threads)\n"
        "  --buildset B    interface buildset (default BlockMinNo)\n"
        "  --instrs N      per-job instruction cap (default: to halt)\n"
        "  --isa NAME      restrict to one ISA (repeatable)\n"
        "  --kernel NAME   restrict to one kernel (repeatable)\n"
        "  --repeat N      queue the batch N times (default 1)\n"
        "  --interp        interpreter back end instead of generated\n"
        "  --stats         dump the merged stats registry\n"
        "  --deadline-ms N per-job watchdog deadline (default: none)\n"
        "  --retries N     extra attempts for resource failures "
        "(default 0)\n"
        "  --keep-going    run all jobs even after a quarantine "
        "(default: abort the batch on first failure)\n"
        "  --trace-out F   arm the flight recorder and write a Chrome\n"
        "                  trace-event timeline of the batch to F\n"
        "  --fr-capacity N flight-recorder events per thread "
        "(default 4096)\n"
        "  --profile       attach a deterministic hot-PC profiler to\n"
        "                  every job (see --stats / --profile-stride)\n"
        "  --profile-stride N  sample every N retired instructions "
        "(default 64)\n"
        "  --poison IDX    give job IDX a nonexistent buildset "
        "(quarantine demo/testing aid)\n"
        "  --bundle-dir D  record replay tapes; quarantined jobs write\n"
        "                  self-contained repro bundles into D "
        "(onespec-replay runs them)\n"
        "  --bundle-all    with --bundle-dir: also bundle successful "
        "jobs\n");
    return cli::kExitUsage;
}

/** Fixed-width postmortem print of one flight-recorder tail event. */
void
printTailEvent(size_t k, const obs::FrEvent &ev)
{
    const char *phase = ev.phase == obs::EvPhase::Begin    ? "B"
                        : ev.phase == obs::EvPhase::End    ? "E"
                                                           : "i";
    std::printf("      tail[%zu] +%11.3f us  %s %-12s id=%u a0=%llu "
                "a1=%llu\n",
                k, static_cast<double>(ev.tsNs) / 1000.0, phase,
                obs::evTypeName(ev.type), ev.id,
                static_cast<unsigned long long>(ev.a0),
                static_cast<unsigned long long>(ev.a1));
}

} // namespace

int
realMain(int argc, char **argv)
{
    unsigned threads = 0;
    std::string buildset = "BlockMinNo";
    uint64_t max_instrs = ~uint64_t{0};
    std::vector<std::string> isas, kernels;
    int repeat = 1;
    bool interp = false, dump_stats = false;
    std::string trace_out;
    size_t fr_capacity = obs::FlightControl::kDefaultCapacity;
    uint64_t profile_stride = 0;
    long poison = -1;
    parallel::FleetPolicy policy;
    policy.keepGoing = false; // CLI default: fail fast; see --keep-going

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc) {
            isas.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
            kernels.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--interp") == 0) {
            interp = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            dump_stats = true;
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
                   i + 1 < argc) {
            policy.deadlineNs =
                std::strtoull(argv[++i], nullptr, 0) * 1'000'000ull;
        } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
            policy.maxAttempts = 1 + static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--keep-going") == 0) {
            policy.keepGoing = true;
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            trace_out = argv[++i];
        } else if (std::strcmp(argv[i], "--fr-capacity") == 0 &&
                   i + 1 < argc) {
            fr_capacity = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            if (!profile_stride)
                profile_stride = 64;
        } else if (std::strcmp(argv[i], "--profile-stride") == 0 &&
                   i + 1 < argc) {
            profile_stride = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--poison") == 0 && i + 1 < argc) {
            poison = std::strtol(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--bundle-dir") == 0 &&
                   i + 1 < argc) {
            policy.bundleDir = argv[++i];
        } else if (std::strcmp(argv[i], "--bundle-all") == 0) {
            policy.bundleAll = true;
        } else {
            return usage();
        }
    }
    if (isas.empty())
        isas = shippedIsas();
    if (kernels.empty())
        kernels = kernelNames();

    // Load each ISA once and build its programs; jobs share these
    // read-only.
    struct IsaBatch
    {
        std::unique_ptr<Spec> spec;
        std::vector<std::pair<std::string, Program>> programs;
    };
    std::vector<IsaBatch> batches;
    for (const auto &isa : isas) {
        IsaBatch b;
        b.spec = loadIsa(isa);
        for (const auto &k : kernels) {
            auto builder = makeBuilder(*b.spec);
            b.programs.emplace_back(
                k, buildKernel(*builder, k, kernelParam(k)));
        }
        batches.push_back(std::move(b));
    }

    std::vector<FleetJob> jobs;
    for (int r = 0; r < repeat; ++r) {
        for (const auto &b : batches) {
            for (const auto &[kname, prog] : b.programs) {
                FleetJob j;
                j.spec = b.spec.get();
                j.program = &prog;
                j.buildset = buildset;
                j.maxInstrs = max_instrs;
                j.name = b.spec->props.name + "/" + kname;
                j.useInterp = interp;
                j.profileStride = profile_stride;
                jobs.push_back(std::move(j));
            }
        }
    }
    if (poison >= 0) {
        if (static_cast<size_t>(poison) >= jobs.size()) {
            std::fprintf(stderr, "onespec-fleet: --poison %ld out of "
                         "range (%zu jobs)\n", poison, jobs.size());
            return usage();
        }
        // A buildset that cannot exist -> SpecError in the worker ->
        // quarantine, deterministically.  Demo/testing aid for the
        // postmortem path.
        jobs[static_cast<size_t>(poison)].buildset = "__poisoned__";
    }

    if (!trace_out.empty())
        obs::FlightControl::instance().arm(fr_capacity);

    SimFleet fleet(threads);
    std::printf("onespec-fleet: %zu jobs on %u threads (buildset %s, %s "
                "back end)\n\n",
                jobs.size(), fleet.threads(), buildset.c_str(),
                interp ? "interpreter" : "generated");

    FleetReport report = fleet.run(jobs, policy);

    std::printf("%-20s %-12s %12s %10s %18s\n", "job", "status", "instrs",
                "MIPS", "state_hash");
    for (size_t j = 0; j < jobs.size(); ++j) {
        const auto &res = report.results[j];
        const char *status =
            res.skipped                            ? "skipped"
            : res.quarantined                      ? "QUARANTINED"
            : res.run.status == RunStatus::Halted  ? "halted"
            : res.run.status == RunStatus::Fault   ? "fault"
                                                   : "ok";
        double mips = res.ns ? static_cast<double>(res.run.instrs) *
                                   1000.0 / static_cast<double>(res.ns)
                             : 0.0;
        std::printf("%-20s %-12s %12llu %10.2f %18llx\n",
                    jobs[j].name.c_str(), status,
                    static_cast<unsigned long long>(res.run.instrs), mips,
                    static_cast<unsigned long long>(res.stateHash));
        if (res.quarantined) {
            std::printf("    [%s, %u attempt%s, %.2f ms] %s\n",
                        errorKindName(res.errorKind), res.attempts,
                        res.attempts == 1 ? "" : "s",
                        static_cast<double>(res.ns) / 1e6,
                        res.error.c_str());
            if (!res.frTail.empty()) {
                std::printf("    postmortem flight-recorder tail "
                            "(%zu events):\n",
                            res.frTail.size());
                for (size_t k = 0; k < res.frTail.size(); ++k)
                    printTailEvent(k, res.frTail[k]);
            }
        }
        if (!res.bundlePath.empty())
            std::printf("    repro bundle: %s\n", res.bundlePath.c_str());
    }
    unsigned quarantined = report.quarantinedCount();
    if (quarantined)
        std::printf("\n%u job%s quarantined\n", quarantined,
                    quarantined == 1 ? "" : "s");
    std::printf("\naggregate: %llu instrs in %.2f ms on %u threads = "
                "%.2f MIPS\n",
                static_cast<unsigned long long>(report.totalInstrs()),
                static_cast<double>(report.wallNs) / 1e6, report.threads,
                report.aggregateMips());

    if (!trace_out.empty()) {
        auto &fc = obs::FlightControl::instance();
        fc.disarm(); // keep the rings readable for export
        obs::TimelineLabels labels;
        for (const auto &j : jobs)
            labels.jobNames.push_back(j.name);
        std::string err;
        if (!obs::exportChromeTrace(trace_out, labels, &err)) {
            // Host-side IO failure after the batch ran: ResourceError
            // class, routed through the shared fatal path.
            throw ResourceError("fleet", "trace export failed: " + err);
        }
        std::printf("\nwrote trace %s (%llu events recorded, %llu "
                    "dropped)\n",
                    trace_out.c_str(),
                    static_cast<unsigned long long>(fc.totalEvents()),
                    static_cast<unsigned long long>(fc.totalDropped()));
    }

    if (dump_stats) {
        std::printf("\nmerged stats (job-index order, "
                    "thread-count invariant):\n");
        report.merged->dump(std::cout);
    }
    // Exit code = quarantined-job count so scripts can count failures
    // without parsing; 101/102 are the shared usage/fatal codes.
    return cli::quarantineExitCode(quarantined);
}

int
main(int argc, char **argv)
{
    // Contained failures reaching main() mean the whole batch was
    // unbuildable (bad description file, unknown kernel); the shared
    // handler reports kind+context uniformly and exits 102.
    return cli::runCliMain("onespec-fleet",
                           [&] { return realMain(argc, argv); });
}
