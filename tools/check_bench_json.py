#!/usr/bin/env python3
"""Schema and shape-invariant checker for BENCH_*.json reports.

Usage: check_bench_json.py [--smoke] [--quiet] FILE...

Validates two things about each report:

1. Schema: the fields docs/OBSERVABILITY.md documents are present and
   well-typed (schema_version, bench, meta, cells with per-cell iface
   counters sourced from the stats registry, geomean_mips, stats dump).

2. Shape invariants from the paper, where the report contains the cells
   needed to evaluate them (currently the table2 12-buildset grid):
     - semantic detail dominates: Block > One > Step (per ISA, at equal
       informational detail);
     - informational detail costs: Min > Decode > All (per ISA, at equal
       semantic detail);
     - the lowest-detail interface is several times faster than the
       highest-detail one (paper: 14.4x; we require a conservative floor);
     - interface-crossing amortization: Block cells deliver many
       instructions per crossing, One/Step cells about one call (or
       several step calls) per instruction.

3. Fleet scaling curves (results.fleet_scaling, written by
   bench_fleet_scaling): every thread count 1..max(hw_concurrency, 2)
   must be present, aggregate MIPS must be monotone non-decreasing up
   to a tolerance over the physical-core range, the determinism
   cross-check must have run, and on hosts wide enough for it to be
   physical (>= 4 hardware threads) the top-thread-count speedup must
   clear a 2x floor.

4. Checkpoint-parallel sampling (results.ckpt_sampling, written by
   bench_ckpt_sampling): per-workload rows with serial/parallel wall
   clocks and checkpoint container sizes, the serial-bit-identity
   cross-check must have run for every row, average delta container
   size must not exceed the full container size (both measured as raw
   v1 bytes: the delta's page set is a subset of the full's, an
   invariant compression does not preserve), and on hosts with
   >= 4 hardware threads checkpoint-parallel must beat serial wall
   clock (with tolerance).  Compression contract (the OSPCKPT2
   container, docs/CKPT_FORMAT.md): bytes_per_instr must be strictly
   below raw_bytes_per_instr (the recorded raw-container baseline) per
   row and in the totals, dedup_ratio must lie in [0, 1] and be > 0 in
   the totals (the store-backed re-runs recapture identical pages), and
   restore_mips must be positive.

5. Fault containment (results.fault_containment, written by
   bench_fault_containment): the armed-vs-off hook overhead must stay
   under a ceiling (injection disabled is one untaken branch; even armed
   hooks should cost a few percent at most), at least one fault must
   have been injected, and the detection rate must be exactly 1.0 --
   a single silently absorbed corruption fails the report.

6. Trace overhead (results.trace_overhead, written by
   bench_trace_overhead): the disarmed flight recorder must cost at
   most a small percentage vs the never-armed baseline (armed cost is
   reported, not gated), at least one event must have been recorded
   while armed, the hot-PC profiler histograms must be flagged
   identical between the interpreter and the generated back end, PC
   bucket counts must sum to the sample total, and the stats dump must
   carry profile groups for both back ends whose per-bucket counters
   sum to their sample counters.

7. Record/replay (results.replay, written by bench_replay): a fleet
   batch with record mode off (no bundle dir) must stay within 5% of
   the policy-free baseline, at least one bundle -- including one from
   a quarantined job -- must have been recorded, every bundle must have
   been replayed on both back ends, and the replay_identical flag must
   be true: a single divergence between a recording and its strict
   replay fails the report.

8. Distribution shape (any report): every distribution node in the
   stats dump (an object with count/buckets/p50/p90/p99/p999) must
   satisfy p50 <= p90 <= p99 <= p999 and
   count == sum(buckets) + underflow + overflow.

9. Telemetry (results.telemetry, written by bench_telemetry): carrying
   wire trace context with the flight recorder disarmed must cost at
   most 2% daemon jobs/sec (generously relaxed under --smoke, where
   daemon throughput is far too short to measure 2%), concurrent
   OpenMetrics scrapes must leave the final merged stats bit-identical
   to a scrape-free run, and successive scrapes must be monotone per
   counter family (validated in-process and by check_metrics_text.py
   on the scrape files the bench writes).

With --smoke the speed comparisons use generous tolerance factors:
smoke runs are short and wall-clock noise can locally reorder
neighboring cells without the overall shape being wrong.

Exit status: 0 if every file passes, 1 otherwise.
"""

import argparse
import json
import math
import sys

SEMANTIC_ORDER = ["Block", "One", "Step"]   # fastest -> slowest
INFO_ORDER = ["Min", "Decode", "All"]       # fastest -> slowest

IFACE_COUNTERS = [
    "execute_calls", "execute_block_calls", "step_calls", "custom_calls",
    "fast_forward_calls", "undo_calls", "crossings", "instrs",
    "undone_instrs",
]


class CheckFailure(Exception):
    pass


class Checker:
    def __init__(self, path, smoke=False, quiet=False):
        self.path = path
        self.smoke = smoke
        self.quiet = quiet
        self.errors = []
        # Smoke runs tolerate local reordering between adjacent detail
        # levels; full runs should show the clean ordering.  A pair
        # (faster, slower) fails when slower > faster / tolerance.
        self.tolerance = 0.75 if smoke else 0.95
        self.min_detail_ratio = 1.2 if smoke else 3.0
        # Fleet curve: short smoke points are noisier than full runs.
        self.fleet_tolerance = 0.70 if smoke else 0.85
        self.fleet_speedup_floor = 2.0
        # Checkpoint-parallel vs serial: phase-1 checkpointing overhead
        # eats into the win, so the floor is just "not slower" with
        # smoke-noise headroom; wider hosts should comfortably clear it.
        self.ckpt_speedup_floor = 0.9 if smoke else 1.0
        # Armed-hook overhead ceiling (percent).  Short smoke batches
        # jitter more; full runs should sit near zero.
        self.fault_overhead_ceiling = 10.0 if smoke else 5.0
        # Disarmed flight-recorder ceiling (percent): one relaxed load
        # and an untaken branch per site should be noise-level.
        self.trace_disarmed_ceiling = 5.0 if smoke else 2.0
        # Record-mode-off ceiling (percent): with no bundle dir the
        # replay recorder is one per-job branch, so a disarmed fleet
        # batch must stay within 5% of the policy-free baseline.
        self.replay_disarmed_ceiling = 5.0

    def fail(self, msg):
        self.errors.append(msg)

    def note(self, msg):
        if not self.quiet:
            print(f"  {msg}")

    # -- schema ---------------------------------------------------------

    def expect(self, obj, key, types, where):
        if key not in obj:
            self.fail(f"{where}: missing '{key}'")
            return None
        if not isinstance(obj[key], types):
            self.fail(f"{where}: '{key}' has type "
                      f"{type(obj[key]).__name__}, expected "
                      f"{'/'.join(t.__name__ for t in types)}")
            return None
        return obj[key]

    def check_schema(self, doc):
        num = (int, float)
        if self.expect(doc, "schema_version", (int,), "top") != 1:
            self.fail("top: schema_version must be 1")
        self.expect(doc, "bench", (str,), "top")

        meta = self.expect(doc, "meta", (dict,), "top")
        if meta is not None:
            for key in ("git_sha", "compiler", "build_type"):
                self.expect(meta, key, (str,), "meta")
            self.expect(meta, "host_counter", (bool,), "meta")

        cells = self.expect(doc, "cells", (list,), "top")
        if cells is not None:
            for i, cell in enumerate(cells):
                where = f"cells[{i}]"
                if not isinstance(cell, dict):
                    self.fail(f"{where}: not an object")
                    continue
                self.expect(cell, "isa", (str,), where)
                self.expect(cell, "buildset", (str,), where)
                mips = self.expect(cell, "mips", num, where)
                if mips is not None and mips <= 0:
                    self.fail(f"{where}: mips must be positive, got {mips}")
                self.expect(cell, "ns_per_sim", num, where)
                instrs = self.expect(cell, "instrs", (int,), where)
                if instrs is not None and instrs <= 0:
                    self.fail(f"{where}: instrs must be positive")
                iface = self.expect(cell, "iface", (dict,), where)
                if iface is None:
                    continue
                for c in IFACE_COUNTERS:
                    v = self.expect(iface, c, (int,), f"{where}.iface")
                    if v is not None and v < 0:
                        self.fail(f"{where}.iface.{c}: negative")
                self.expect(iface, "instrs_per_crossing", num,
                            f"{where}.iface")
                self.check_cell_counters(cell, where)

        self.expect(doc, "geomean_mips", (dict,), "top")
        self.expect(doc, "stats", (dict,), "top")

    def check_cell_counters(self, cell, where):
        """Per-cell counter consistency and crossing amortization."""
        iface = cell["iface"]
        if any(c not in iface for c in IFACE_COUNTERS):
            return
        total = sum(iface[c] for c in
                    ("execute_calls", "execute_block_calls", "step_calls",
                     "custom_calls", "fast_forward_calls", "undo_calls"))
        if iface["crossings"] != total:
            self.fail(f"{where}: crossings={iface['crossings']} but "
                      f"entrypoint calls sum to {total}")
        if iface["crossings"] == 0:
            self.fail(f"{where}: no interface crossings recorded")
            return

        semantic = cell.get("semantic")
        ipc = iface["instrs"] / iface["crossings"]
        if semantic == "Block":
            if ipc <= 1.0:
                self.fail(f"{where}: Block cell amortizes only "
                          f"{ipc:.2f} instrs/crossing (expected > 1)")
            if iface["execute_block_calls"] == 0:
                self.fail(f"{where}: Block cell made no executeBlock calls")
        elif semantic == "One":
            if not 0.5 <= ipc <= 1.5:
                self.fail(f"{where}: One cell should cross about once per "
                          f"instr, got {ipc:.2f}")
        elif semantic == "Step":
            if ipc > 1.0:
                self.fail(f"{where}: Step cell should cross multiple "
                          f"times per instr, got {ipc:.2f}")
            if iface["step_calls"] == 0 and iface["custom_calls"] == 0:
                self.fail(f"{where}: Step cell made no step/custom calls")

    # -- shape invariants ----------------------------------------------

    def cell_index(self, doc):
        idx = {}
        for cell in doc.get("cells", []):
            if not isinstance(cell, dict):
                continue
            key = (cell.get("isa"), cell.get("semantic"),
                   cell.get("info"), bool(cell.get("speculation")))
            if all(k is not None for k in key[:3]):
                idx[key] = cell
        return idx

    def check_shapes(self, doc):
        idx = self.cell_index(doc)
        if not idx:
            self.note("no semantic/info-tagged cells; skipping shape checks")
            return
        isas = sorted({k[0] for k in idx})

        def mips(isa, sem, info, spec=False):
            c = idx.get((isa, sem, info, spec))
            return c["mips"] if c else None

        checked = 0
        for isa in isas:
            # Semantic ordering at fixed info level, no speculation.
            for info in INFO_ORDER:
                row = [(s, mips(isa, s, info)) for s in SEMANTIC_ORDER]
                row = [(s, m) for s, m in row if m]
                for (s1, m1), (s2, m2) in zip(row, row[1:]):
                    checked += 1
                    if m2 * self.tolerance > m1:
                        self.fail(
                            f"{isa}: semantic ordering violated at "
                            f"info={info}: {s1}={m1:.2f} !> {s2}={m2:.2f}")
            # Informational ordering at fixed semantic level.
            for sem in SEMANTIC_ORDER:
                row = [(i, mips(isa, sem, i)) for i in INFO_ORDER]
                row = [(i, m) for i, m in row if m]
                for (i1, m1), (i2, m2) in zip(row, row[1:]):
                    checked += 1
                    if m2 * self.tolerance > m1:
                        self.fail(
                            f"{isa}: info ordering violated at "
                            f"semantic={sem}: {i1}={m1:.2f} !> {i2}={m2:.2f}")
            # Lowest vs highest detail.
            lo = mips(isa, "Block", "Min", False)
            hi = mips(isa, "Step", "All", True)
            if lo and hi:
                checked += 1
                ratio = lo / hi
                self.note(f"{isa}: detail ratio {ratio:.1f}x "
                          f"(paper: up to 14.4x)")
                if ratio < self.min_detail_ratio:
                    self.fail(
                        f"{isa}: Block/Min/No is only {ratio:.1f}x faster "
                        f"than Step/All/Yes (floor "
                        f"{self.min_detail_ratio}x)")
        self.note(f"shape comparisons evaluated: {checked}")

    def check_geomeans(self, doc):
        """geomean_mips must equal the geomean of its buildset's cells."""
        cells = doc.get("cells", [])
        geo = doc.get("geomean_mips", {})
        if not isinstance(geo, dict):
            return
        by_bs = {}
        for c in cells:
            if isinstance(c, dict) and c.get("mips", 0) > 0:
                by_bs.setdefault(c["buildset"], []).append(c["mips"])
        for bs, xs in by_bs.items():
            if bs not in geo:
                self.fail(f"geomean_mips missing buildset {bs}")
                continue
            want = math.exp(sum(math.log(x) for x in xs) / len(xs))
            got = geo[bs]
            if not math.isclose(want, got, rel_tol=1e-6):
                self.fail(f"geomean_mips[{bs}]={got} != computed {want}")

    # -- fleet scaling --------------------------------------------------

    def check_fleet(self, doc):
        results = doc.get("results")
        if not isinstance(results, dict) or "fleet_scaling" not in results:
            return
        curve = results["fleet_scaling"]
        if not isinstance(curve, list) or not curve:
            self.fail("results.fleet_scaling: empty or not a list")
            return
        if results.get("determinism_checked") is not True:
            self.fail("results.determinism_checked is not true")

        num = (int, float)
        points = {}
        for i, pt in enumerate(curve):
            where = f"fleet_scaling[{i}]"
            if not isinstance(pt, dict):
                self.fail(f"{where}: not an object")
                continue
            t = self.expect(pt, "threads", (int,), where)
            for key in ("mips", "speedup"):
                v = self.expect(pt, key, num, where)
                if v is not None and v <= 0:
                    self.fail(f"{where}: {key} must be positive, got {v}")
            for key in ("wall_ns", "instrs"):
                v = self.expect(pt, key, (int,), where)
                if v is not None and v <= 0:
                    self.fail(f"{where}: {key} must be positive, got {v}")
            if t is not None:
                if t in points:
                    self.fail(f"{where}: duplicate thread count {t}")
                points[t] = pt
        if self.errors:
            return

        hw = doc.get("meta", {}).get("hw_concurrency", 0)
        if not isinstance(hw, int) or hw < 1:
            self.fail("meta.hw_concurrency missing or invalid")
            return
        # The bench sweeps to at least 2 threads even on a 1-core host
        # so the t>1 determinism cross-check always runs.
        sweep_max = max(hw, 2)
        missing = [t for t in range(1, sweep_max + 1) if t not in points]
        if missing:
            self.fail(f"fleet_scaling: missing thread counts {missing} "
                      f"(hw_concurrency={hw})")
            return

        # Monotone non-decreasing MIPS vs the running max, up to
        # tolerance, over the physical-core range only: past
        # hw_concurrency the extra threads just oversubscribe.
        best = 0.0
        for t in range(1, hw + 1):
            m = points[t]["mips"]
            if m < best * self.fleet_tolerance:
                self.fail(f"fleet_scaling: MIPS dropped at {t} threads "
                          f"({m:.2f} < running max {best:.2f} within "
                          f"tolerance {self.fleet_tolerance})")
            best = max(best, m)

        top = points[hw]["speedup"]
        self.note(f"fleet: {top:.2f}x aggregate speedup at "
                  f"{hw} threads")
        if hw >= 4 and top < self.fleet_speedup_floor:
            self.fail(f"fleet_scaling: speedup at {hw} threads is only "
                      f"{top:.2f}x (floor {self.fleet_speedup_floor}x)")
        elif hw < 4:
            self.note(f"fleet: host too narrow ({hw} hardware threads) "
                      f"for the {self.fleet_speedup_floor}x floor; "
                      f"determinism and curve shape still checked")

    # -- checkpoint-parallel sampling -----------------------------------

    def check_ckpt_sampling(self, doc):
        results = doc.get("results")
        if not isinstance(results, dict) or "ckpt_sampling" not in results:
            return
        rows = results["ckpt_sampling"]
        if not isinstance(rows, list) or not rows:
            self.fail("results.ckpt_sampling: empty or not a list")
            return
        if results.get("determinism_checked") is not True:
            self.fail("results.determinism_checked is not true")

        num = (int, float)
        for key in ("serial_total_ns", "parallel_total_ns",
                    "full_bytes_total", "delta_bytes_total",
                    "delta_checkpoints", "raw_bytes_total",
                    "compressed_bytes_total"):
            v = self.expect(results, key, (int,), "results")
            if v is not None and v < 0:
                self.fail(f"results.{key}: negative")
        self.expect(results, "speedup", num, "results")

        # Compression/dedup/restore totals (OSPCKPT2 contract).
        bpi = self.expect(results, "bytes_per_instr", num, "results")
        raw_bpi = self.expect(results, "raw_bytes_per_instr", num,
                              "results")
        if isinstance(bpi, num) and isinstance(raw_bpi, num):
            if not bpi < raw_bpi:
                self.fail(f"results.bytes_per_instr {bpi:.4f} is not "
                          f"strictly below the raw baseline "
                          f"{raw_bpi:.4f}")
        dedup = self.expect(results, "dedup_ratio", num, "results")
        if isinstance(dedup, num):
            if not 0.0 <= dedup <= 1.0:
                self.fail(f"results.dedup_ratio {dedup} outside [0, 1]")
            elif dedup == 0.0:
                self.fail("results.dedup_ratio is 0: the store-backed "
                          "re-runs produced no dedup hits")
        rmips = self.expect(results, "restore_mips", num, "results")
        if isinstance(rmips, num) and rmips <= 0:
            self.fail(f"results.restore_mips {rmips} is not positive")

        for i, row in enumerate(rows):
            where = f"ckpt_sampling[{i}]"
            if not isinstance(row, dict):
                self.fail(f"{where}: not an object")
                continue
            self.expect(row, "workload", (str,), where)
            for key in ("windows", "serial_wall_ns", "parallel_wall_ns",
                        "ff_ns", "measure_ns", "full_bytes",
                        "delta_count"):
                v = self.expect(row, key, (int,), where)
                if v is not None and v < 0:
                    self.fail(f"{where}: {key} negative")
            for key in ("windows", "serial_wall_ns", "parallel_wall_ns",
                        "full_bytes"):
                if isinstance(row.get(key), int) and row[key] == 0:
                    self.fail(f"{where}: {key} must be positive")
            self.expect(row, "speedup", num, where)
            delta_avg = self.expect(row, "delta_bytes_avg", num, where)
            if row.get("identical_to_serial") is not True:
                self.fail(f"{where}: identical_to_serial is not true")
            # Delta containers must never exceed the full container they
            # are a delta of: equal page counts would already mean the
            # dirty-page tracking failed.
            full = row.get("full_bytes")
            if (isinstance(full, int) and isinstance(delta_avg, num) and
                    row.get("delta_count", 0) > 0 and delta_avg > full):
                self.fail(f"{where}: avg delta container {delta_avg:.0f}B "
                          f"exceeds full container {full}B")
            for key in ("raw_bytes", "compressed_bytes"):
                v = self.expect(row, key, (int,), where)
                if v is not None and v <= 0:
                    self.fail(f"{where}: {key} must be positive")
            r_bpi = self.expect(row, "bytes_per_instr", num, where)
            r_raw_bpi = self.expect(row, "raw_bytes_per_instr", num,
                                    where)
            if isinstance(r_bpi, num) and isinstance(r_raw_bpi, num):
                if not r_bpi < r_raw_bpi:
                    self.fail(f"{where}: bytes_per_instr {r_bpi:.4f} is "
                              f"not strictly below the raw baseline "
                              f"{r_raw_bpi:.4f}")
            r_dedup = self.expect(row, "dedup_ratio", num, where)
            if isinstance(r_dedup, num) and not 0.0 <= r_dedup <= 1.0:
                self.fail(f"{where}: dedup_ratio {r_dedup} outside "
                          f"[0, 1]")
            r_rmips = self.expect(row, "restore_mips", num, where)
            if isinstance(r_rmips, num) and r_rmips <= 0:
                self.fail(f"{where}: restore_mips {r_rmips} is not "
                          f"positive")
        if self.errors:
            return

        hw = doc.get("meta", {}).get("hw_concurrency", 0)
        if not isinstance(hw, int) or hw < 1:
            self.fail("meta.hw_concurrency missing or invalid")
            return
        speedup = results.get("speedup", 0.0)
        self.note(f"ckpt: {speedup:.2f}x vs serial sampling at "
                  f"{hw} threads")
        if hw >= 4 and speedup < self.ckpt_speedup_floor:
            self.fail(f"ckpt_sampling: checkpoint-parallel is "
                      f"{speedup:.2f}x vs serial at {hw} threads "
                      f"(floor {self.ckpt_speedup_floor}x)")
        elif hw < 4:
            self.note(f"ckpt: host too narrow ({hw} hardware threads) "
                      f"for the speedup floor; determinism, schema, and "
                      f"delta<=full still checked")

    # -- fault containment ----------------------------------------------

    def check_fault_containment(self, doc):
        results = doc.get("results")
        if (not isinstance(results, dict) or
                "fault_containment" not in results):
            return
        fc = results["fault_containment"]
        if not isinstance(fc, dict):
            self.fail("results.fault_containment: not an object")
            return

        num = (int, float)
        where = "fault_containment"
        for key in ("mips_off", "mips_armed"):
            v = self.expect(fc, key, num, where)
            if v is not None and v <= 0:
                self.fail(f"{where}: {key} must be positive, got {v}")
        overhead = self.expect(fc, "overhead_pct", num, where)
        for key in ("injected", "detected", "state_faults",
                    "container_faults"):
            v = self.expect(fc, key, (int,), where)
            if v is not None and v < 0:
                self.fail(f"{where}: {key} negative")
        rate = self.expect(fc, "detection_rate", num, where)
        if self.errors:
            return

        self.note(f"fault: armed-hook overhead {overhead:.2f}%, "
                  f"{fc['detected']}/{fc['injected']} detected")
        if overhead > self.fault_overhead_ceiling:
            self.fail(f"{where}: armed-hook overhead {overhead:.2f}% "
                      f"exceeds ceiling {self.fault_overhead_ceiling}%")
        if fc["injected"] < 1:
            self.fail(f"{where}: no faults were injected")
        if fc["state_faults"] < 1 or fc["container_faults"] < 1:
            self.fail(f"{where}: both state-class and container-class "
                      f"faults must be exercised")
        if fc["detected"] != fc["injected"] or rate != 1.0:
            self.fail(f"{where}: detection rate {rate} != 1.0 "
                      f"({fc['injected'] - fc['detected']} injected "
                      f"corruptions were silently absorbed)")

    # -- trace overhead --------------------------------------------------

    def check_trace_overhead(self, doc):
        results = doc.get("results")
        if not isinstance(results, dict) or "trace_overhead" not in results:
            return
        to = results["trace_overhead"]
        if not isinstance(to, dict):
            self.fail("results.trace_overhead: not an object")
            return

        num = (int, float)
        where = "trace_overhead"
        for key in ("mips_baseline", "mips_disarmed", "mips_armed"):
            v = self.expect(to, key, num, where)
            if v is not None and v <= 0:
                self.fail(f"{where}: {key} must be positive, got {v}")
        disarmed = self.expect(to, "overhead_disarmed_pct", num, where)
        armed = self.expect(to, "overhead_armed_pct", num, where)
        recorded = self.expect(to, "events_recorded", (int,), where)
        self.expect(to, "events_dropped", (int,), where)
        prof = self.expect(to, "profile", (dict,), where)
        if self.errors:
            return

        self.note(f"trace: disarmed {disarmed:.2f}%, armed {armed:.2f}% "
                  f"overhead, {recorded} events")
        if disarmed > self.trace_disarmed_ceiling:
            self.fail(f"{where}: disarmed recorder overhead "
                      f"{disarmed:.2f}% exceeds ceiling "
                      f"{self.trace_disarmed_ceiling}%")
        if recorded < 1:
            self.fail(f"{where}: armed run recorded no events")

        pwhere = f"{where}.profile"
        samples = self.expect(prof, "samples", (int,), pwhere)
        bucket_sum = self.expect(prof, "bucket_sum", (int,), pwhere)
        stride = self.expect(prof, "stride", (int,), pwhere)
        if prof.get("buckets_match") is not True:
            self.fail(f"{pwhere}: interp and generated profiler "
                      f"histograms are not identical")
        if isinstance(samples, int):
            if samples < 1:
                self.fail(f"{pwhere}: no PC samples taken")
            if bucket_sum != samples:
                self.fail(f"{pwhere}: PC bucket counts sum to "
                          f"{bucket_sum}, expected samples={samples}")
        if isinstance(stride, int) and stride < 1:
            self.fail(f"{pwhere}: stride must be positive")

        # The profiler must also have published into the stats dump:
        # one group per back end, per-bucket counters summing to the
        # group's samples counter.
        stats = doc.get("stats")
        pgroups = stats.get("profile") if isinstance(stats, dict) else None
        if not isinstance(pgroups, dict):
            self.fail("stats.profile: missing profile groups in stats dump")
            return
        for backend in ("interp", "generated"):
            g = pgroups.get(backend)
            gwhere = f"stats.profile.{backend}"
            if not isinstance(g, dict):
                self.fail(f"{gwhere}: missing")
                continue
            gs = g.get("samples")
            pcs = g.get("pc")
            if not isinstance(gs, int) or gs < 1:
                self.fail(f"{gwhere}.samples: missing or non-positive")
                continue
            if not isinstance(pcs, dict) or not pcs:
                self.fail(f"{gwhere}.pc: missing bucket counters")
                continue
            total = sum(v for v in pcs.values() if isinstance(v, int))
            if total != gs:
                self.fail(f"{gwhere}: pc buckets sum to {total}, "
                          f"samples={gs}")

    # -- record/replay ----------------------------------------------------

    def check_replay(self, doc):
        results = doc.get("results")
        if not isinstance(results, dict) or "replay" not in results:
            return
        rp = results["replay"]
        if not isinstance(rp, dict):
            self.fail("results.replay: not an object")
            return

        num = (int, float)
        where = "replay"
        for key in ("mips_baseline", "mips_disarmed", "mips_record"):
            v = self.expect(rp, key, num, where)
            if v is not None and v <= 0:
                self.fail(f"{where}: {key} must be positive, got {v}")
        disarmed = self.expect(rp, "record_overhead_pct", num, where)
        self.expect(rp, "record_mode_overhead_pct", num, where)
        bundles = self.expect(rp, "bundles", (int,), where)
        quarantine = self.expect(rp, "quarantine_bundles", (int,), where)
        replays = self.expect(rp, "replays", (int,), where)
        bpi = self.expect(rp, "bundle_bytes_per_instr", num, where)
        for key in ("bundle_bytes", "recorded_instrs"):
            v = self.expect(rp, key, (int,), where)
            if v is not None and v <= 0:
                self.fail(f"{where}: {key} must be positive")
        if self.errors:
            return

        self.note(f"replay: record-off overhead {disarmed:.2f}%, "
                  f"{replays} replays over {bundles} bundles, "
                  f"{bpi:.4f} bundle bytes/instr")
        # The headline gates: strict replay of everything recorded --
        # clean, faulted, and quarantined runs alike, on both back ends
        # -- must be bit-identical, and record mode left off must be
        # within noise of no record support at all.
        if rp.get("replay_identical") is not True:
            self.fail(f"{where}: replays are not bit-identical to their "
                      f"recordings")
        if disarmed > self.replay_disarmed_ceiling:
            self.fail(f"{where}: record-mode-off overhead "
                      f"{disarmed:.2f}% exceeds ceiling "
                      f"{self.replay_disarmed_ceiling}%")
        if bundles < 1:
            self.fail(f"{where}: no bundles were recorded")
        if quarantine < 1:
            self.fail(f"{where}: no quarantined job was recorded -- the "
                      f"repro path went unexercised")
        if replays != 2 * bundles:
            self.fail(f"{where}: expected every bundle replayed on both "
                      f"back ends ({2 * bundles}), got {replays}")
        if isinstance(bpi, num) and bpi <= 0:
            self.fail(f"{where}: bundle_bytes_per_instr must be positive")

    # -- service daemon --------------------------------------------------

    def check_service(self, doc):
        results = doc.get("results")
        if not isinstance(results, dict) or "service" not in results:
            return
        svc = results["service"]
        if not isinstance(svc, dict):
            self.fail("results.service: not an object")
            return

        num = (int, float)
        where = "service"
        jps = self.expect(svc, "jobs_per_sec", num, where)
        p50 = self.expect(svc, "p50_ms", num, where)
        p99 = self.expect(svc, "p99_ms", num, where)
        submitted = self.expect(svc, "submitted", (int,), where)
        completed = self.expect(svc, "completed", (int,), where)
        rejected = self.expect(svc, "rejected", (int,), where)
        quarantined = self.expect(svc, "quarantined", (int,), where)
        preempted = self.expect(svc, "preempted", (int,), where)
        resumed = self.expect(svc, "resumed", (int,), where)
        self.expect(svc, "workers", (int,), where)
        self.expect(svc, "queue_depth", (int,), where)
        if self.errors:
            return

        # The whole point of the service bench: a daemon in the path --
        # admission queue, warm pool, checkpoint preemption -- must not
        # change one bit of any job's results or stats.
        if svc.get("identity") is not True:
            self.fail(f"{where}: daemon results are not bit-identical "
                      f"to the one-shot SimFleet run")
        self.note(f"service: {jps:.1f} jobs/s, p50 {p50:.2f} ms, "
                  f"p99 {p99:.2f} ms, {submitted} submitted "
                  f"({rejected} rejected, {quarantined} quarantined, "
                  f"{preempted} preempted)")
        if jps <= 0:
            self.fail(f"{where}: jobs_per_sec must be positive, got {jps}")
        if p50 < 0 or p99 < 0 or p50 > p99:
            self.fail(f"{where}: latency quantiles out of order "
                      f"(p50={p50}, p99={p99})")
        # Admission accounting: every submitted job is accounted for
        # exactly once -- rejected at the door, completed, or
        # quarantined.  (Rejections are host-speed-dependent and may
        # legitimately be zero; identity-phase jobs never reject.)
        if completed + rejected + quarantined != submitted:
            self.fail(f"{where}: completed({completed}) + "
                      f"rejected({rejected}) + "
                      f"quarantined({quarantined}) != "
                      f"submitted({submitted})")
        # The identity batch slices one job per ISA hard enough to
        # round-trip the checkpoint store several times.
        if preempted < 1 or resumed < 1:
            self.fail(f"{where}: expected preemptions in the identity "
                      f"batch (preempted={preempted}, resumed={resumed})")

    # -- telemetry -------------------------------------------------------

    def check_telemetry(self, doc):
        results = doc.get("results")
        if not isinstance(results, dict) or "telemetry" not in results:
            return
        tel = results["telemetry"]
        if not isinstance(tel, dict):
            self.fail("results.telemetry: not an object")
            return

        num = (int, float)
        where = "telemetry"
        base = self.expect(tel, "jobs_per_sec_base", num, where)
        traced = self.expect(tel, "jobs_per_sec_traced", num, where)
        overhead = self.expect(tel, "overhead_pct", num, where)
        scrapes = self.expect(tel, "scrapes", (int,), where)
        self.expect(tel, "completed", (int,), where)
        if self.errors:
            return

        self.note(f"telemetry: base {base:.1f} jobs/s, traced "
                  f"{traced:.1f} jobs/s ({overhead:+.2f}%), "
                  f"{scrapes} scrapes")
        if base <= 0 or traced <= 0:
            self.fail(f"{where}: jobs/sec must be positive "
                      f"(base={base}, traced={traced})")
        # The tentpole's cost gate: trace ids on the wire with the
        # flight recorder disarmed are metadata, not work.  A smoke run
        # is seconds long, where daemon jobs/sec jitters far beyond 2%,
        # so smoke only guards against something grossly broken.
        limit = 50.0 if self.smoke else 2.0
        if overhead > limit:
            self.fail(f"{where}: disarmed trace-context overhead "
                      f"{overhead:.2f}% exceeds {limit:.0f}%")
        if tel.get("scrape_identity") is not True:
            self.fail(f"{where}: merged stats with concurrent scrapes "
                      f"are not bit-identical to the scrape-free run")
        if tel.get("scrapes_monotone") is not True:
            self.fail(f"{where}: successive Metricsz scrapes were not "
                      f"monotone per counter family")
        if scrapes < 2:
            self.fail(f"{where}: need at least 2 scrapes to check "
                      f"monotonicity, got {scrapes}")

    # -- distribution shape ----------------------------------------------

    def check_distributions(self, doc):
        """Recursively validate every distribution node in the stats
        dump: quantile ordering and bucket accounting."""
        checked = 0

        def is_dist(node):
            return (isinstance(node, dict) and
                    all(k in node for k in
                        ("count", "buckets", "p50", "p90", "p99", "p999",
                         "underflow", "overflow")))

        def walk(node, path):
            nonlocal checked
            if is_dist(node):
                checked += 1
                if not (node["p50"] <= node["p90"] <= node["p99"]
                        <= node["p999"]):
                    self.fail(f"{path}: quantiles out of order "
                              f"(p50={node['p50']} p90={node['p90']} "
                              f"p99={node['p99']} p999={node['p999']})")
                if isinstance(node["buckets"], list):
                    total = (sum(node["buckets"]) + node["underflow"] +
                             node["overflow"])
                    if total != node["count"]:
                        self.fail(f"{path}: count={node['count']} but "
                                  f"buckets+under+overflow={total}")
                return
            if isinstance(node, dict):
                for k, v in node.items():
                    walk(v, f"{path}.{k}")

        stats = doc.get("stats")
        if isinstance(stats, dict):
            walk(stats, "stats")
        if checked:
            self.note(f"distributions validated: {checked}")

    # -- driver ---------------------------------------------------------

    def run(self):
        try:
            with open(self.path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            self.errors.append(f"cannot load: {e}")
            return False
        self.check_schema(doc)
        self.check_geomeans(doc)
        self.check_shapes(doc)
        self.check_fleet(doc)
        self.check_ckpt_sampling(doc)
        self.check_fault_containment(doc)
        self.check_trace_overhead(doc)
        self.check_replay(doc)
        self.check_service(doc)
        self.check_telemetry(doc)
        self.check_distributions(doc)
        return not self.errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="FILE")
    ap.add_argument("--smoke", action="store_true",
                    help="relax speed-ordering tolerances for short runs")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()

    ok = True
    for path in args.files:
        print(f"check {path}")
        c = Checker(path, smoke=args.smoke, quiet=args.quiet)
        if c.run():
            print("  OK")
        else:
            ok = False
            for e in c.errors:
                print(f"  FAIL: {e}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
