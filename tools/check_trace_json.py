#!/usr/bin/env python3
"""Schema and invariant checker for flight-recorder timeline exports.

Usage: check_trace_json.py [--quiet] [--expect-quarantine]
       [--merged] FILE...

Validates that a file written by `onespec-fleet --trace-out` (or
`obs::exportChromeTrace`) is a well-formed Chrome trace-event /
Perfetto-loadable JSON document:

1. Structure: top-level `traceEvents` array (non-empty beyond metadata)
   plus `displayTimeUnit` and `otherData`; every event carries name/ph/
   ts/pid/tid with sane types; `ph` is one of B E i I M X.

2. Track metadata: a `process_name` metadata event, and one
   `thread_name` metadata event per tid that carries real events.

3. Timestamps: per-tid, non-metadata events appear in non-decreasing
   `ts` order in file order (the exporter walks each ring oldest to
   newest, so a violation means ring corruption or a clock bug).

4. Span discipline: per-tid, B/E events nest like a stack and each E
   matches the name of the open B (the exporter repairs orphans from
   ring overwrite, so any survivor is a real pairing bug).

5. Content floor: at least one complete B/E span pair and at least one
   instant event overall -- an armed fleet run always records job spans
   and cross-batch instants.  With --expect-quarantine, additionally
   require a `quarantine` instant (used by the poisoned ctest fixture).

6. Merged timelines (--merged, written by `onespec-sub --merge-trace`
   from a daemon-side and a client-side export): exactly two process
   groups, whose process_name metadata names both onespec-served and
   onespec-sub; and the wire trace context must actually join the two
   sides -- at least one `args.trace_id` value must appear on a
   client-side span and on two or more daemon-side spans (a preempted
   job runs at least two slices, each its own daemon span, all carrying
   the client-minted id; docs/OBSERVABILITY.md, "Cross-process
   tracing").

Span discipline, timestamps, and thread metadata are always checked per
(pid, tid) pair, so the two sides of a merged document are validated
independently on shared tid numbers.

Exit status: 0 if every file passes, 1 otherwise.
"""

import argparse
import json
import sys

VALID_PH = {"B", "E", "i", "I", "M", "X"}


class Checker:
    def __init__(self, path, quiet=False, expect_quarantine=False,
                 merged=False):
        self.path = path
        self.quiet = quiet
        self.expect_quarantine = expect_quarantine
        self.merged = merged
        self.errors = []

    def fail(self, msg):
        self.errors.append(msg)

    def note(self, msg):
        if not self.quiet:
            print(f"  {msg}")

    def run(self):
        try:
            with open(self.path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            self.fail(f"cannot load: {e}")
            return False

        if not isinstance(doc, dict):
            self.fail("top level is not an object")
            return False
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            self.fail("missing or non-array 'traceEvents'")
            return False
        if doc.get("displayTimeUnit") not in ("ms", "ns"):
            self.fail("displayTimeUnit must be 'ms' or 'ns'")
        other = doc.get("otherData")
        if not isinstance(other, dict):
            self.fail("missing 'otherData' object")

        num = (int, float)
        per_track = {}        # (pid, tid) -> list of non-metadata events
        thread_names = set()  # (pid, tid) with a thread_name metadata
        process_names = {}    # pid -> process_name metadata args.name
        for i, ev in enumerate(events):
            where = f"traceEvents[{i}]"
            if not isinstance(ev, dict):
                self.fail(f"{where}: not an object")
                continue
            ph = ev.get("ph")
            if ph not in VALID_PH:
                self.fail(f"{where}: bad ph {ph!r}")
                continue
            if not isinstance(ev.get("name"), str) or not ev["name"]:
                self.fail(f"{where}: missing/empty name")
                continue
            if not isinstance(ev.get("ts"), num) or ev["ts"] < 0:
                self.fail(f"{where}: bad ts {ev.get('ts')!r}")
                continue
            if not isinstance(ev.get("pid"), int) or \
               not isinstance(ev.get("tid"), int):
                self.fail(f"{where}: missing integer pid/tid")
                continue
            if ph == "M":
                if ev["name"] == "process_name":
                    args = ev.get("args")
                    name = args.get("name") if isinstance(args, dict) \
                        else None
                    process_names[ev["pid"]] = name
                elif ev["name"] == "thread_name":
                    thread_names.add((ev["pid"], ev["tid"]))
                continue
            if ph in ("i", "I") and ev.get("s") not in (None, "t", "p", "g"):
                self.fail(f"{where}: bad instant scope {ev.get('s')!r}")
            per_track.setdefault((ev["pid"], ev["tid"]), []).append((i, ev))

        if not process_names:
            self.fail("no process_name metadata event")
        if not per_track:
            self.fail("no non-metadata events (was the recorder armed?)")
        for pid, tid in per_track:
            if (pid, tid) not in thread_names:
                self.fail(f"pid {pid} tid {tid} has events but no "
                          f"thread_name metadata")
        for pid in {p for p, _ in per_track}:
            if pid not in process_names:
                self.fail(f"pid {pid} has events but no process_name "
                          f"metadata")

        spans = 0
        instants = 0
        quarantines = 0
        span_traces = {}  # trace_id -> pid -> span count
        for (pid, tid), evs in sorted(per_track.items()):
            last_ts = -1.0
            stack = []
            for i, ev in evs:
                where = f"traceEvents[{i}] (pid {pid} tid {tid})"
                if ev["ts"] < last_ts:
                    self.fail(f"{where}: ts {ev['ts']} decreases from "
                              f"{last_ts}")
                last_ts = ev["ts"]
                ph = ev["ph"]
                args = ev.get("args")
                trace_id = args.get("trace_id") \
                    if isinstance(args, dict) else None
                if ph == "B":
                    stack.append(ev["name"])
                    if isinstance(trace_id, str):
                        span_traces.setdefault(trace_id, {})
                        span_traces[trace_id][pid] = \
                            span_traces[trace_id].get(pid, 0) + 1
                elif ph == "E":
                    if not stack:
                        self.fail(f"{where}: E with no open B")
                    elif stack[-1] != ev["name"]:
                        self.fail(f"{where}: E '{ev['name']}' closes "
                                  f"B '{stack[-1]}'")
                    else:
                        stack.pop()
                        spans += 1
                elif ph in ("i", "I"):
                    instants += 1
                    if ev["name"].startswith("quarantine"):
                        quarantines += 1
                elif ph == "X":
                    spans += 1
                    if isinstance(trace_id, str):
                        span_traces.setdefault(trace_id, {})
                        span_traces[trace_id][pid] = \
                            span_traces[trace_id].get(pid, 0) + 1
            if stack:
                self.fail(f"pid {pid} tid {tid}: {len(stack)} unclosed "
                          f"B span(s): {stack}")

        self.note(f"{len(per_track)} thread track(s), {spans} span(s), "
                  f"{instants} instant(s)")
        if spans < 1:
            self.fail("no complete B/E span pair in the whole trace")
        if instants < 1:
            self.fail("no instant events in the whole trace")
        if self.expect_quarantine and quarantines < 1:
            self.fail("--expect-quarantine: no quarantine instant found")
        if self.merged:
            self.check_merged(per_track, process_names, span_traces)
        return not self.errors

    def check_merged(self, per_track, process_names, span_traces):
        pids = sorted({pid for pid, _ in per_track})
        if len(pids) != 2:
            self.fail(f"--merged: expected 2 process groups, got {pids}")
            return
        names = {process_names.get(pid): pid for pid in pids}
        if "onespec-served" not in names or "onespec-sub" not in names:
            self.fail(f"--merged: expected process_name metadata naming "
                      f"onespec-served and onespec-sub, got "
                      f"{sorted(n for n in names if n)}")
            return
        daemon_pid = names["onespec-served"]
        client_pid = names["onespec-sub"]
        # The join: one wire trace id carried by a client-side span and
        # by 2+ daemon-side spans (a preempted job's slices).
        joined = [t for t, by_pid in sorted(span_traces.items())
                  if by_pid.get(client_pid, 0) >= 1 and
                  by_pid.get(daemon_pid, 0) >= 2]
        if not joined:
            self.fail("--merged: no trace_id appears on both a "
                      "client-side span and >=2 daemon-side spans")
            return
        best = max(joined,
                   key=lambda t: span_traces[t].get(daemon_pid, 0))
        self.note(f"{len(span_traces)} trace id(s) on spans, "
                  f"{len(joined)} joined across both sides (e.g. {best} "
                  f"with {span_traces[best][daemon_pid]} daemon spans)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="FILE")
    ap.add_argument("--quiet", action="store_true")
    ap.add_argument("--expect-quarantine", action="store_true",
                    help="require a quarantine instant (poisoned fixture)")
    ap.add_argument("--merged", action="store_true",
                    help="validate a merged client+daemon timeline "
                         "(two process groups joined by trace ids)")
    args = ap.parse_args()

    ok = True
    for path in args.files:
        print(f"check {path}")
        c = Checker(path, quiet=args.quiet,
                    expect_quarantine=args.expect_quarantine,
                    merged=args.merged)
        if c.run():
            print("  OK")
        else:
            ok = False
            for e in c.errors:
                print(f"  FAIL: {e}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
