/**
 * @file
 * onespec-ckpt: save/restore/inspect/verify checkpoint containers.
 *
 *   onespec-ckpt save out.ckpt --isa alpha64 --kernel fib --at 100000
 *       run the kernel to instruction 100000 and write a full checkpoint
 *       (--delta-out d.ckpt --delta-at 200000 additionally continues to
 *        200000 and writes a delta against the full one)
 *   onespec-ckpt info file.ckpt         print header and section summary
 *   onespec-ckpt verify file.ckpt       CRC + content-hash validation
 *   onespec-ckpt restore root.ckpt [delta.ckpt ...] --isa A --kernel K
 *       restore the chain into a fresh context, resume to completion,
 *       and check the kernel's golden output
 *
 * Exit status: 0 success, 1 failed validation/run, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "sim/interp.hpp"
#include "stats/stats.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

using namespace onespec;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: onespec-ckpt <command> [files] [options]\n"
        "commands:\n"
        "  save <out.ckpt>                capture at --at instructions\n"
        "  info <file.ckpt>               print container contents\n"
        "  verify <file.ckpt>             validate CRCs and content hash\n"
        "  restore <root> [deltas...]     restore chain, run to halt,\n"
        "                                 check golden output\n"
        "options:\n"
        "  --isa NAME        ISA description (default alpha64)\n"
        "  --kernel NAME     workload kernel (default fib)\n"
        "  --param N         kernel scale parameter (default 25000)\n"
        "  --at N            save: checkpoint after N instructions\n"
        "  --delta-out FILE  save: also write a delta checkpoint\n"
        "  --delta-at N      save: delta capture point (default 2*--at)\n"
        "  --buildset B      simulator buildset (default BlockMinNo)\n"
        "  --interp          interpreter back end instead of generated\n"
        "  --stats           dump ckpt counters from the stats registry\n");
    return 2;
}

struct Options
{
    std::string out;            ///< save: output path
    std::string isa = "alpha64";
    std::string kernel = "fib";
    uint64_t param = 25'000;
    uint64_t at = 100'000;
    std::string deltaOut;
    uint64_t deltaAt = 0;
    std::string buildset = "BlockMinNo";
    bool interp = false;
    bool stats = false;
};

std::unique_ptr<FunctionalSimulator>
makeSim(SimContext &ctx, const Options &opt)
{
    if (opt.interp)
        return makeInterpSimulator(ctx, opt.buildset);
    auto sim = SimRegistry::instance().create(ctx, opt.buildset);
    if (!sim) {
        std::fprintf(stderr,
                     "onespec-ckpt: no generated simulator for %s/%s\n",
                     opt.isa.c_str(), opt.buildset.c_str());
        std::exit(1);
    }
    return sim;
}

void
dumpCounters(const ckpt::CkptCounters &c)
{
    stats::StatsRegistry reg;
    c.publish(reg.group("ckpt"));
    std::printf("\n");
    reg.dump(std::cout);
}

int
cmdSave(const Options &opt)
{
    auto spec = loadIsa(opt.isa);
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, opt.kernel, opt.param);

    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = makeSim(ctx, opt);

    ckpt::CkptCounters counters;
    RunResult r = sim->run(opt.at);
    if (r.status != RunStatus::Ok) {
        std::fprintf(stderr,
                     "onespec-ckpt: program %s before instruction %llu "
                     "(ran %llu); nothing left to checkpoint\n",
                     r.status == RunStatus::Halted ? "halted" : "faulted",
                     static_cast<unsigned long long>(opt.at),
                     static_cast<unsigned long long>(r.instrs));
        return 1;
    }
    ckpt::Checkpoint full = ckpt::capture(ctx, &counters);
    ckpt::saveFile(opt.out, full, &counters);
    std::printf("wrote %s: full checkpoint at %llu instrs, %zu pages, "
                "id %016llx\n",
                opt.out.c_str(),
                static_cast<unsigned long long>(full.instrsRetired),
                full.pages.size(),
                static_cast<unsigned long long>(full.id));

    if (!opt.deltaOut.empty()) {
        uint64_t target = opt.deltaAt ? opt.deltaAt : 2 * opt.at;
        if (target <= opt.at) {
            std::fprintf(stderr, "onespec-ckpt: --delta-at must be past "
                                 "--at\n");
            return 2;
        }
        RunResult r2 = sim->run(target - opt.at);
        if (r2.status != RunStatus::Ok) {
            std::fprintf(stderr,
                         "onespec-ckpt: program ended before the delta "
                         "point (ran %llu more)\n",
                         static_cast<unsigned long long>(r2.instrs));
            return 1;
        }
        ckpt::Checkpoint delta =
            ckpt::captureDelta(ctx, full, &counters);
        ckpt::saveFile(opt.deltaOut, delta, &counters);
        std::printf("wrote %s: delta checkpoint at %llu instrs, %zu/%zu "
                    "pages dirty, parent %016llx\n",
                    opt.deltaOut.c_str(),
                    static_cast<unsigned long long>(delta.instrsRetired),
                    delta.pages.size(), full.pages.size(),
                    static_cast<unsigned long long>(delta.parentId));
    }
    if (opt.stats)
        dumpCounters(counters);
    return 0;
}

int
cmdInfo(const std::string &path)
{
    ckpt::CkptCounters counters;
    ckpt::Checkpoint ck = ckpt::loadFile(path, &counters);
    std::printf("%s:\n", path.c_str());
    std::printf("  spec:      %s (fingerprint %016llx)\n",
                ck.specName.c_str(),
                static_cast<unsigned long long>(ck.specFingerprint));
    if (ck.delta)
        std::printf("  kind:      delta (parent %016llx)\n",
                    static_cast<unsigned long long>(ck.parentId));
    else
        std::printf("  kind:      full\n");
    std::printf("  id:        %016llx (%s)\n",
                static_cast<unsigned long long>(ck.id),
                ckpt::verifyId(ck) ? "content verified"
                                   : "CONTENT HASH MISMATCH");
    std::printf("  instrs:    %llu\n",
                static_cast<unsigned long long>(ck.instrsRetired));
    std::printf("  pc:        %016llx\n",
                static_cast<unsigned long long>(ck.pc));
    std::printf("  regwords:  %zu\n", ck.words.size());
    std::printf("  pages:     %zu (%llu bytes of memory image)\n",
                ck.pages.size(),
                static_cast<unsigned long long>(ck.pages.size() *
                                                Memory::kPageSize));
    std::printf("  os:        exited=%d code=%d brk=%llx time_ms=%llu "
                "stdin_pos=%zu output_bytes=%zu syscalls=%llu\n",
                ck.os.exited ? 1 : 0, ck.os.exitCode,
                static_cast<unsigned long long>(ck.os.brk),
                static_cast<unsigned long long>(ck.os.timeMs),
                ck.os.inputPos, ck.os.output.size(),
                static_cast<unsigned long long>(ck.os.syscallCount));
    std::printf("  container: %llu bytes\n",
                static_cast<unsigned long long>(counters.bytesDecoded));
    return 0;
}

int
cmdVerify(const std::string &path)
{
    // loadFile already hard-fails on magic/version/CRC problems; what is
    // left to check is that the header's identity matches the content.
    ckpt::Checkpoint ck = ckpt::loadFile(path);
    if (!ckpt::verifyId(ck)) {
        std::fprintf(stderr,
                     "%s: sections pass CRC but content hash does not "
                     "match header id\n",
                     path.c_str());
        return 1;
    }
    std::printf("%s: ok (%s checkpoint, %llu instrs, %zu pages)\n",
                path.c_str(), ck.delta ? "delta" : "full",
                static_cast<unsigned long long>(ck.instrsRetired),
                ck.pages.size());
    return 0;
}

int
cmdRestore(const std::vector<std::string> &paths, const Options &opt)
{
    auto spec = loadIsa(opt.isa);
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, opt.kernel, opt.param);

    ckpt::CkptCounters counters;
    std::vector<ckpt::Checkpoint> owned;
    owned.reserve(paths.size());
    for (const auto &p : paths)
        owned.push_back(ckpt::loadFile(p, &counters));
    std::vector<const ckpt::Checkpoint *> chain;
    for (const auto &ck : owned)
        chain.push_back(&ck);

    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = makeSim(ctx, opt);
    ckpt::restoreChain(ctx, chain, &counters);
    sim->onStateRestored();

    uint64_t resumedFrom = ctx.instrsRetired();
    RunResult r = sim->run(~uint64_t{0});
    std::string expect = goldenOutput(opt.kernel, opt.param);
    bool outputOk = ctx.os().output() == expect;
    std::printf("restored at %llu instrs, resumed %llu more, status %s\n",
                static_cast<unsigned long long>(resumedFrom),
                static_cast<unsigned long long>(r.instrs),
                r.status == RunStatus::Halted ? "halted" : "NOT halted");
    std::printf("output %s golden model\n",
                outputOk ? "matches" : "DOES NOT match");
    if (opt.stats)
        dumpCounters(counters);
    return (r.status == RunStatus::Halted && outputOk) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Options opt;
    std::vector<std::string> files;

    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc) {
            opt.isa = argv[++i];
        } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
            opt.kernel = argv[++i];
        } else if (std::strcmp(argv[i], "--param") == 0 && i + 1 < argc) {
            opt.param = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--at") == 0 && i + 1 < argc) {
            opt.at = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--delta-out") == 0 &&
                   i + 1 < argc) {
            opt.deltaOut = argv[++i];
        } else if (std::strcmp(argv[i], "--delta-at") == 0 &&
                   i + 1 < argc) {
            opt.deltaAt = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 &&
                   i + 1 < argc) {
            opt.buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--interp") == 0) {
            opt.interp = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            files.push_back(argv[i]);
        }
    }

    try {
        if (cmd == "save") {
            if (files.size() != 1)
                return usage();
            opt.out = files[0];
            return cmdSave(opt);
        }
        if (cmd == "info") {
            if (files.size() != 1)
                return usage();
            return cmdInfo(files[0]);
        }
        if (cmd == "verify") {
            if (files.size() != 1)
                return usage();
            return cmdVerify(files[0]);
        }
        if (cmd == "restore") {
            if (files.empty())
                return usage();
            return cmdRestore(files, opt);
        }
        return usage();
    } catch (const SimError &e) {
        // CkptError and every other contained failure (bad description,
        // unknown kernel) land here; CLI contract stays "exit 1".
        std::fprintf(stderr, "onespec-ckpt: %s\n", e.what());
        return 1;
    }
}
