/**
 * @file
 * onespec-ckpt: save/restore/inspect/verify checkpoint containers.
 *
 *   onespec-ckpt save out.ckpt --isa alpha64 --kernel fib --at 100000
 *       run the kernel to instruction 100000 and write a full checkpoint
 *       (--delta-out d.ckpt --delta-at 200000 additionally continues to
 *        200000 and writes a delta against the full one)
 *   onespec-ckpt info file.ckpt         print header and section summary
 *   onespec-ckpt verify file.ckpt       CRC + content-hash validation
 *   onespec-ckpt restore root.ckpt [delta.ckpt ...] --isa A --kernel K
 *       restore the chain into a fresh context, resume to completion,
 *       and check the kernel's golden output
 *   onespec-ckpt gc --store DIR        delete unreferenced page blobs
 *
 * Exit status follows the shared CLI contract (support/cli.hpp,
 * docs/ROBUSTNESS.md): 0 success, 1 failed validation/run or a gc sweep
 * that found dangling references, 101 usage error, 102 fatal SimError.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "support/cli.hpp"
#include "ckpt/store.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "sim/interp.hpp"
#include "stats/stats.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

using namespace onespec;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: onespec-ckpt <command> [files] [options]\n"
        "commands:\n"
        "  save <out.ckpt>                capture at --at instructions\n"
        "  info <file.ckpt>               print container contents\n"
        "  verify <file.ckpt>             validate CRCs and content hash\n"
        "  restore <root> [deltas...]     restore chain, run to halt,\n"
        "                                 check golden output\n"
        "  gc                             sweep --store: delete page\n"
        "                                 blobs no container references\n"
        "options:\n"
        "  --isa NAME        ISA description (default alpha64)\n"
        "  --kernel NAME     workload kernel (default fib)\n"
        "  --param N         kernel scale parameter (default 25000)\n"
        "  --at N            save: checkpoint after N instructions\n"
        "  --delta-out FILE  save: also write a delta checkpoint\n"
        "  --delta-at N      save: delta capture point (default 2*--at)\n"
        "  --buildset B      simulator buildset (default BlockMinNo)\n"
        "  --interp          interpreter back end instead of generated\n"
        "  --stats           dump ckpt counters from the stats registry\n"
        "  --store DIR       content-addressed store: save writes page\n"
        "                    blobs there (container holds references);\n"
        "                    info/verify/restore resolve references\n"
        "  --compress        write the OSPCKPT2 container (the default)\n"
        "  --v1              write the legacy raw OSPCKPT1 container\n"
        "  --dry-run         gc: count reclaimable blobs, delete "
        "nothing\n");
    return cli::kExitUsage;
}

struct Options
{
    std::string out;            ///< save: output path
    std::string isa = "alpha64";
    std::string kernel = "fib";
    uint64_t param = 25'000;
    uint64_t at = 100'000;
    std::string deltaOut;
    uint64_t deltaAt = 0;
    std::string buildset = "BlockMinNo";
    bool interp = false;
    bool stats = false;
    std::string store;          ///< content-addressed store directory
    bool v1 = false;            ///< write the legacy raw container
    bool dryRun = false;        ///< gc: count only
};

/** Encode policy from the flags; opens the store lazily. */
ckpt::EncodeOptions
encodeOptions(const Options &opt, std::unique_ptr<ckpt::CkptStore> &store)
{
    ckpt::EncodeOptions enc;
    if (opt.v1)
        enc.version = ckpt::kFormatVersionV1;
    if (!opt.store.empty()) {
        store = std::make_unique<ckpt::CkptStore>(opt.store);
        enc.store = store.get();
    }
    return enc;
}

std::unique_ptr<FunctionalSimulator>
makeSim(SimContext &ctx, const Options &opt)
{
    if (opt.interp)
        return makeInterpSimulator(ctx, opt.buildset);
    auto sim = SimRegistry::instance().create(ctx, opt.buildset);
    if (!sim) {
        throw SpecError("ckpt", "no generated simulator for " + opt.isa +
                                    "/" + opt.buildset);
    }
    return sim;
}

void
dumpCounters(const ckpt::CkptCounters &c)
{
    stats::StatsRegistry reg;
    c.publish(reg.group("ckpt"));
    std::printf("\n");
    reg.dump(std::cout);
}

int
cmdSave(const Options &opt)
{
    auto spec = loadIsa(opt.isa);
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, opt.kernel, opt.param);

    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = makeSim(ctx, opt);

    ckpt::CkptCounters counters;
    std::unique_ptr<ckpt::CkptStore> store;
    ckpt::EncodeOptions enc = encodeOptions(opt, store);
    RunResult r = sim->run(opt.at);
    if (r.status != RunStatus::Ok) {
        std::fprintf(stderr,
                     "onespec-ckpt: program %s before instruction %llu "
                     "(ran %llu); nothing left to checkpoint\n",
                     r.status == RunStatus::Halted ? "halted" : "faulted",
                     static_cast<unsigned long long>(opt.at),
                     static_cast<unsigned long long>(r.instrs));
        return 1;
    }
    ckpt::Checkpoint full = ckpt::capture(ctx, &counters);
    ckpt::saveFile(opt.out, full, enc, &counters);
    std::printf("wrote %s: full checkpoint at %llu instrs, %zu pages, "
                "id %016llx\n",
                opt.out.c_str(),
                static_cast<unsigned long long>(full.instrsRetired),
                full.pages.size(),
                static_cast<unsigned long long>(full.id));

    if (!opt.deltaOut.empty()) {
        uint64_t target = opt.deltaAt ? opt.deltaAt : 2 * opt.at;
        if (target <= opt.at) {
            std::fprintf(stderr, "onespec-ckpt: --delta-at must be past "
                                 "--at\n");
            return cli::kExitUsage;
        }
        RunResult r2 = sim->run(target - opt.at);
        if (r2.status != RunStatus::Ok) {
            std::fprintf(stderr,
                         "onespec-ckpt: program ended before the delta "
                         "point (ran %llu more)\n",
                         static_cast<unsigned long long>(r2.instrs));
            return 1;
        }
        ckpt::Checkpoint delta =
            ckpt::captureDelta(ctx, full, &counters);
        ckpt::saveFile(opt.deltaOut, delta, enc, &counters);
        std::printf("wrote %s: delta checkpoint at %llu instrs, %zu/%zu "
                    "pages dirty, parent %016llx\n",
                    opt.deltaOut.c_str(),
                    static_cast<unsigned long long>(delta.instrsRetired),
                    delta.pages.size(), full.pages.size(),
                    static_cast<unsigned long long>(delta.parentId));
    }
    if (store)
        std::printf("store %s: %llu page puts, %llu dedup hits, "
                    "%llu blobs on disk\n",
                    opt.store.c_str(),
                    static_cast<unsigned long long>(counters.storePagePuts),
                    static_cast<unsigned long long>(
                        counters.storePageDedupHits),
                    static_cast<unsigned long long>(
                        store->pageBlobCount()));
    if (opt.stats)
        dumpCounters(counters);
    return 0;
}

/** Read a container image off disk (info needs raw bytes for inspect). */
std::vector<uint8_t>
readContainer(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw ckpt::CkptError("cannot open checkpoint file: " + path);
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        throw ckpt::CkptError("error reading checkpoint file: " + path);
    return bytes;
}

int
cmdInfo(const std::string &path, const Options &opt)
{
    // Structure first (header, section table, encoding histogram):
    // inspect() validates every CRC and compressed block without needing
    // the store the pages may live in.
    std::vector<uint8_t> bytes = readContainer(path);
    ckpt::ContainerInfo info = ckpt::inspect(bytes);

    std::printf("%s:\n", path.c_str());
    std::printf("  format:    OSPCKPT%u (version %u)\n", info.version,
                info.version);
    std::printf("  spec:      %s (fingerprint %016llx)\n",
                info.specName.c_str(),
                static_cast<unsigned long long>(info.specFingerprint));
    if (info.delta)
        std::printf("  kind:      delta (parent %016llx)\n",
                    static_cast<unsigned long long>(info.parentId));
    else
        std::printf("  kind:      full\n");
    std::printf("  instrs:    %llu\n",
                static_cast<unsigned long long>(info.instrsRetired));
    std::printf("  pages:     %llu (%llu bytes of memory image%s)\n",
                static_cast<unsigned long long>(info.pageCount),
                static_cast<unsigned long long>(info.pageCount *
                                                Memory::kPageSize),
                info.pagesByRef ? ", by store reference" : "");
    std::printf("  container: %llu bytes (header %llu)\n",
                static_cast<unsigned long long>(info.fileLen),
                static_cast<unsigned long long>(info.headerLen));
    // The section table as docs/CKPT_FORMAT.md lays it out.
    std::printf("  sections:\n");
    std::printf("    %-6s %10s %12s %10s\n", "tag", "offset", "length",
                "crc32");
    for (const ckpt::SectionInfo &s : info.sections)
        std::printf("    %-6s %10llu %12llu   %08x\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.length), s.crc);
    // Block-encoding histogram (v2 page map + inline page streams).
    if (info.version >= 2 && info.codec.blocks() > 0) {
        const double pct =
            info.codec.bytesRaw
                ? 100.0 * static_cast<double>(info.codec.bytesEncoded) /
                      static_cast<double>(info.codec.bytesRaw)
                : 0.0;
        std::printf("  encodings: raw %llu  zero %llu  fill %llu  "
                    "rle %llu  (%llu blocks, %llu -> %llu bytes, "
                    "%.1f%% of raw)\n",
                    static_cast<unsigned long long>(info.codec.raw),
                    static_cast<unsigned long long>(info.codec.zero),
                    static_cast<unsigned long long>(info.codec.fill),
                    static_cast<unsigned long long>(info.codec.rle),
                    static_cast<unsigned long long>(info.codec.blocks()),
                    static_cast<unsigned long long>(info.codec.bytesRaw),
                    static_cast<unsigned long long>(
                        info.codec.bytesEncoded),
                    pct);
    }
    if (info.pagesByRef)
        std::printf("  refs:      %zu store page references\n",
                    info.pageRefs.size());

    // Content detail needs the pages resolved; a store-backed container
    // without --store stops at structure.
    if (info.pagesByRef && opt.store.empty()) {
        std::printf("  contents:  pages are store references; pass "
                    "--store DIR to resolve\n");
        return 0;
    }
    std::unique_ptr<ckpt::CkptStore> store;
    if (!opt.store.empty())
        store = std::make_unique<ckpt::CkptStore>(opt.store);
    ckpt::Checkpoint ck = ckpt::decode(bytes, store.get());
    std::printf("  id:        %016llx (%s)\n",
                static_cast<unsigned long long>(ck.id),
                ckpt::verifyId(ck) ? "content verified"
                                   : "CONTENT HASH MISMATCH");
    std::printf("  pc:        %016llx\n",
                static_cast<unsigned long long>(ck.pc));
    std::printf("  regwords:  %zu\n", ck.words.size());
    std::printf("  os:        exited=%d code=%d brk=%llx time_ms=%llu "
                "stdin_pos=%zu output_bytes=%zu syscalls=%llu\n",
                ck.os.exited ? 1 : 0, ck.os.exitCode,
                static_cast<unsigned long long>(ck.os.brk),
                static_cast<unsigned long long>(ck.os.timeMs),
                ck.os.inputPos, ck.os.output.size(),
                static_cast<unsigned long long>(ck.os.syscallCount));
    return 0;
}

int
cmdVerify(const std::string &path, const Options &opt)
{
    // loadFile already hard-fails on magic/version/CRC problems; what is
    // left to check is that the header's identity matches the content.
    std::unique_ptr<ckpt::CkptStore> store;
    if (!opt.store.empty())
        store = std::make_unique<ckpt::CkptStore>(opt.store);
    ckpt::Checkpoint ck = ckpt::loadFile(path, store.get());
    if (!ckpt::verifyId(ck)) {
        std::fprintf(stderr,
                     "%s: sections pass CRC but content hash does not "
                     "match header id\n",
                     path.c_str());
        return 1;
    }
    std::printf("%s: ok (%s checkpoint, %llu instrs, %zu pages)\n",
                path.c_str(), ck.delta ? "delta" : "full",
                static_cast<unsigned long long>(ck.instrsRetired),
                ck.pages.size());
    return 0;
}

int
cmdRestore(const std::vector<std::string> &paths, const Options &opt)
{
    auto spec = loadIsa(opt.isa);
    auto builder = makeBuilder(*spec);
    Program prog = buildKernel(*builder, opt.kernel, opt.param);

    ckpt::CkptCounters counters;
    std::unique_ptr<ckpt::CkptStore> store;
    if (!opt.store.empty())
        store = std::make_unique<ckpt::CkptStore>(opt.store);
    std::vector<ckpt::Checkpoint> owned;
    owned.reserve(paths.size());
    for (const auto &p : paths)
        owned.push_back(ckpt::loadFile(p, store.get(), &counters));
    std::vector<const ckpt::Checkpoint *> chain;
    for (const auto &ck : owned)
        chain.push_back(&ck);

    SimContext ctx(*spec);
    ctx.load(prog);
    auto sim = makeSim(ctx, opt);
    ckpt::restoreChain(ctx, chain, &counters);
    sim->onStateRestored();

    uint64_t resumedFrom = ctx.instrsRetired();
    RunResult r = sim->run(~uint64_t{0});
    std::string expect = goldenOutput(opt.kernel, opt.param);
    bool outputOk = ctx.os().output() == expect;
    std::printf("restored at %llu instrs, resumed %llu more, status %s\n",
                static_cast<unsigned long long>(resumedFrom),
                static_cast<unsigned long long>(r.instrs),
                r.status == RunStatus::Halted ? "halted" : "NOT halted");
    std::printf("output %s golden model\n",
                outputOk ? "matches" : "DOES NOT match");
    if (opt.stats)
        dumpCounters(counters);
    return (r.status == RunStatus::Halted && outputOk) ? 0 : 1;
}

int
cmdGc(const Options &opt)
{
    if (opt.store.empty()) {
        std::fprintf(stderr, "onespec-ckpt: gc needs --store DIR\n");
        return usage();
    }
    ckpt::CkptStore store(opt.store);
    ckpt::CkptStore::GcStats st = store.gc(opt.dryRun);
    std::printf("%s %s: %llu containers holding %llu page refs\n",
                opt.dryRun ? "gc dry-run of" : "gc of", opt.store.c_str(),
                static_cast<unsigned long long>(st.containers),
                static_cast<unsigned long long>(st.refs));
    std::printf("  scanned %llu blobs, %s %llu unreferenced "
                "(%llu bytes %s)\n",
                static_cast<unsigned long long>(st.blobsScanned),
                opt.dryRun ? "would delete" : "deleted",
                static_cast<unsigned long long>(st.blobsDeleted),
                static_cast<unsigned long long>(st.bytesReclaimed),
                opt.dryRun ? "reclaimable" : "reclaimed");
    if (st.danglingRefs) {
        // The sweep cannot repair these; surface them for scripts.
        std::printf("  WARNING: %llu dangling refs (containers naming "
                    "blobs that no longer exist)\n",
                    static_cast<unsigned long long>(st.danglingRefs));
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Options opt;
    std::vector<std::string> files;

    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc) {
            opt.isa = argv[++i];
        } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
            opt.kernel = argv[++i];
        } else if (std::strcmp(argv[i], "--param") == 0 && i + 1 < argc) {
            opt.param = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--at") == 0 && i + 1 < argc) {
            opt.at = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--delta-out") == 0 &&
                   i + 1 < argc) {
            opt.deltaOut = argv[++i];
        } else if (std::strcmp(argv[i], "--delta-at") == 0 &&
                   i + 1 < argc) {
            opt.deltaAt = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 &&
                   i + 1 < argc) {
            opt.buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--interp") == 0) {
            opt.interp = true;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            opt.stats = true;
        } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
            opt.store = argv[++i];
        } else if (std::strcmp(argv[i], "--compress") == 0) {
            opt.v1 = false; // v2 is the default; flag kept for scripts
        } else if (std::strcmp(argv[i], "--v1") == 0) {
            opt.v1 = true;
        } else if (std::strcmp(argv[i], "--dry-run") == 0) {
            opt.dryRun = true;
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            files.push_back(argv[i]);
        }
    }

    // CkptError and every other contained failure (bad description,
    // unknown kernel, damaged container) propagate into the shared
    // handler: uniform "fatal (kind/context)" report, exit 102.
    return cli::runCliMain("onespec-ckpt", [&]() -> int {
        if (cmd == "save") {
            if (files.size() != 1)
                return usage();
            opt.out = files[0];
            return cmdSave(opt);
        }
        if (cmd == "info") {
            if (files.size() != 1)
                return usage();
            return cmdInfo(files[0], opt);
        }
        if (cmd == "verify") {
            if (files.size() != 1)
                return usage();
            return cmdVerify(files[0], opt);
        }
        if (cmd == "restore") {
            if (files.empty())
                return usage();
            return cmdRestore(files, opt);
        }
        if (cmd == "gc") {
            if (!files.empty())
                return usage();
            return cmdGc(opt);
        }
        return usage();
    });
}
