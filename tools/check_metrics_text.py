#!/usr/bin/env python3
"""Validate OpenMetrics text written by the onespec service daemon.

Checks, per file:

1. Syntax: every line is a `# HELP`/`# TYPE` comment, a sample line
   `name{labels} value` with well-formed labels and a numeric value, or
   the final `# EOF` terminator -- which must be present, once, as the
   last line (the OpenMetrics framing that lets a scraper distinguish a
   complete exposition from a truncated one).

2. Typing: every sample belongs to a family with a `# TYPE` line that
   precedes it; counter families are named `*_total`; gauge families
   are not; a family's samples are contiguous and no (family, labels)
   pair repeats within one exposition.

3. Required families (--require, with a daemon-shaped default list):
   the scrape of a live daemon must expose at least the exposition meta
   and the core job-accounting families.

Across files (given in scrape order): every counter sample must be
monotone non-decreasing per (family, labels) pair -- the daemon renders
cumulative values from its newest ring sample, so a later scrape that
goes backwards means the time series lied.

Used by ctest on `onespec-sub --metrics-out` fixtures and on the scrape
files bench_telemetry writes (docs/SERVICE.md, "Metrics exposition").

Exit status: 0 if every check passes, 1 otherwise.
"""

import argparse
import re
import sys

DEFAULT_REQUIRED = [
    "onespec_metrics_samples_total",
    "onespec_metrics_ring_capacity",
    "onespec_jobs_submitted_total",
    "onespec_jobs_accepted_total",
    "onespec_jobs_completed_total",
    "onespec_jobs_rejected_total",
    "onespec_jobs_in_flight",
    "onespec_queue_depth",
]

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\\\|\\"|\\n)*"$')


class Exposition:
    """One parsed metrics file: types and samples by family."""

    def __init__(self, path):
        self.path = path
        self.types = {}    # family -> "counter" | "gauge"
        self.samples = {}  # (family, labels) -> float
        self.errors = []

    def fail(self, msg):
        self.errors.append(f"{self.path}: {msg}")

    def parse(self):
        try:
            with open(self.path) as f:
                text = f.read()
        except OSError as e:
            self.fail(f"cannot read: {e}")
            return
        if not text.endswith("\n"):
            self.fail("missing trailing newline")
            return
        lines = text.splitlines()
        if not lines or lines[-1] != "# EOF":
            self.fail("missing '# EOF' terminator as the last line")
            return

        family_order = []  # first-sample order, to check contiguity
        last_family = None
        for n, line in enumerate(lines, 1):
            if line == "# EOF":
                if n != len(lines):
                    self.fail(f"line {n}: '# EOF' before end of file")
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) < 4 or not NAME_RE.match(parts[2]):
                    self.fail(f"line {n}: malformed metadata: {line!r}")
                    continue
                if parts[1] == "TYPE":
                    family = parts[2]
                    kind = parts[3]
                    if kind not in ("counter", "gauge"):
                        self.fail(f"line {n}: unsupported type "
                                  f"{kind!r} for {family}")
                    if family in self.types:
                        self.fail(f"line {n}: duplicate TYPE for "
                                  f"{family}")
                    self.types[family] = kind
                continue
            if line.startswith("#"):
                self.fail(f"line {n}: unknown comment form: {line!r}")
                continue

            m = SAMPLE_RE.match(line)
            if not m:
                self.fail(f"line {n}: malformed sample line: {line!r}")
                continue
            family = m.group("name")
            labels = m.group("labels") or ""
            if labels:
                for item in labels.split(","):
                    if not LABEL_RE.match(item):
                        self.fail(f"line {n}: malformed label "
                                  f"{item!r}")
            try:
                value = float(m.group("value"))
            except ValueError:
                self.fail(f"line {n}: non-numeric value "
                          f"{m.group('value')!r}")
                continue
            if family not in self.types:
                self.fail(f"line {n}: sample for {family} without a "
                          f"preceding '# TYPE' line")
                continue
            if self.types[family] == "counter":
                if not family.endswith("_total"):
                    self.fail(f"line {n}: counter family {family} "
                              f"does not end in '_total'")
                if value < 0:
                    self.fail(f"line {n}: negative counter value in "
                              f"{family}")
            elif family.endswith("_total"):
                self.fail(f"line {n}: gauge family {family} must not "
                          f"end in '_total'")
            key = (family, labels)
            if key in self.samples:
                self.fail(f"line {n}: duplicate sample for {family}"
                          f"{{{labels}}}")
            self.samples[key] = value
            if family != last_family:
                if family in family_order:
                    self.fail(f"line {n}: samples for {family} are "
                              f"not contiguous")
                else:
                    family_order.append(family)
                last_family = family


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="FILE",
                    help="metrics files in scrape order")
    ap.add_argument("--require", action="append", default=None,
                    metavar="FAMILY",
                    help="family that must be present in every file "
                         "(repeatable; default: the daemon's core set)")
    ap.add_argument("--no-required", action="store_true",
                    help="skip the required-family check (for scrapes "
                         "of a daemon with sampling disabled)")
    args = ap.parse_args()
    required = [] if args.no_required else (args.require or
                                            DEFAULT_REQUIRED)

    errors = []
    expositions = []
    for path in args.files:
        print(f"check {path}")
        exp = Exposition(path)
        exp.parse()
        for fam in required:
            if not exp.errors and fam not in exp.types:
                exp.fail(f"required family {fam} missing")
        if exp.errors:
            errors.extend(exp.errors)
            for e in exp.errors:
                print(f"  FAIL: {e}")
        else:
            counters = sum(1 for f, k in exp.types.items()
                           if k == "counter")
            print(f"  OK: {len(exp.types)} families "
                  f"({counters} counters), {len(exp.samples)} samples")
        expositions.append(exp)

    # Cross-file monotonicity, in the order given.
    prev = None
    for exp in expositions:
        if exp.errors:
            prev = None
            continue
        if prev is not None:
            for key, value in exp.samples.items():
                family, labels = key
                if exp.types.get(family) != "counter":
                    continue
                if key in prev.samples and value < prev.samples[key]:
                    msg = (f"{exp.path}: counter {family}{{{labels}}} "
                           f"went backwards "
                           f"({prev.samples[key]} -> {value}, "
                           f"earlier scrape {prev.path})")
                    errors.append(msg)
                    print(f"  FAIL: {msg}")
        prev = exp
    if len(expositions) > 1 and not errors:
        print(f"  OK: counters monotone across {len(expositions)} "
              f"scrapes")

    return 0 if not errors else 1


if __name__ == "__main__":
    sys.exit(main())
