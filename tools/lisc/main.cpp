/**
 * @file
 * lisc: the LIS description compiler.
 *
 * Usage:
 *   lisc --check <files...>                 validate a description
 *   lisc --dump <files...>                  print a summary of the Spec
 *   lisc --emit <out.cpp> <files...>        synthesize C++ simulators for
 *                                           every buildset in the files
 *   lisc --emit <out.cpp> --buildset NAME <files...>
 *                                           synthesize one buildset only
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "adl/load.hpp"
#include "adl/spec.hpp"
#include "codegen/cppgen.hpp"
#include "support/cli.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace {

using namespace onespec;

int
usage()
{
    std::fprintf(stderr,
                 "usage: lisc --check <files...>\n"
                 "       lisc --dump <files...>\n"
                 "       lisc --emit <out.cpp> [--buildset NAME] "
                 "<files...>\n");
    return cli::kExitUsage;
}

void
dumpSpec(const Spec &spec)
{
    std::printf("isa %s: %u-bit, %u-byte instructions, %s-endian\n",
                spec.props.name.c_str(), spec.props.wordBits,
                spec.props.instrBytes,
                spec.props.littleEndian ? "little" : "big");
    std::printf("  state: %zu regfiles, %zu scalar regs, %u words\n",
                spec.state.files.size(), spec.state.scalars.size(),
                spec.state.totalWords);
    std::printf("  slots: %zu\n", spec.slots.size());
    std::printf("  instructions: %zu\n", spec.instrs.size());
    std::printf("  buildsets: %zu\n", spec.buildsets.size());
    for (const auto &bs : spec.buildsets) {
        const char *sem =
            bs.semantic == SemanticLevel::Block  ? "block"
            : bs.semantic == SemanticLevel::One  ? "one"
            : bs.semantic == SemanticLevel::Step ? "step"
                                                 : "custom";
        std::printf("    %-14s semantic=%-6s entrypoints=%zu "
                    "visible=%2d/%zu spec=%s\n",
                    bs.name.c_str(), sem, bs.entrypoints.size(),
                    __builtin_popcountll(bs.visibleSlots),
                    spec.slots.size(), bs.speculation ? "on" : "off");
    }
    std::printf("  fingerprint: %016llx\n",
                static_cast<unsigned long long>(spec.fingerprint));
}

} // namespace

int
realMain(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    std::string mode = argv[1];
    std::vector<std::string> files;
    std::string out_path;
    std::string buildset;

    int i = 2;
    if (mode == "--emit") {
        out_path = argv[i++];
    }
    for (; i < argc; ++i) {
        if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty())
        return usage();

    DiagnosticEngine diags;
    auto spec = loadSpec(files, diags);
    // Print warnings even on success.
    if (!diags.all().empty())
        std::fprintf(stderr, "%s", diags.str().c_str());
    if (!spec)
        throw SpecError("lisc", "description has errors");

    if (mode == "--check") {
        std::printf("ok: %s (%zu instructions, %zu buildsets)\n",
                    spec->props.name.c_str(), spec->instrs.size(),
                    spec->buildsets.size());
        return 0;
    }
    if (mode == "--dump") {
        dumpSpec(*spec);
        return 0;
    }
    if (mode == "--emit") {
        std::string code = generateSimulators(*spec, buildset);
        std::ofstream out(out_path, std::ios::binary);
        if (!out)
            throw ResourceError("lisc", "cannot write '" + out_path + "'");
        out << code;
        return 0;
    }
    return usage();
}

int
main(int argc, char **argv)
{
    // Shared CLI contract (support/cli.hpp, docs/ROBUSTNESS.md): loader
    // and codegen failures exit 102 with the classified message.
    return cli::runCliMain("lisc", [&] { return realMain(argc, argv); });
}
