/**
 * @file
 * onespec-replay: load repro bundles and re-execute their tapes in
 * strict-tape mode (format and semantics: docs/REPLAY.md).
 *
 *   onespec-replay bundles/                      # replay every *.bundle
 *   onespec-replay crash.bundle --info           # manifest only
 *   onespec-replay crash.bundle --backend both   # interp AND generated
 *   onespec-replay crash.bundle --no-strict --stats
 *
 * Each bundle is a self-contained quarantine artifact written by
 * onespec-fleet --bundle-dir, onespec-served --bundle-dir (downloaded
 * with onespec-sub --fetch-bundle), or the replay library itself.  The
 * tape inside carries everything a re-execution needs -- program image,
 * initial checkpoint, fault plan, OS-call stream, cut schedule, and the
 * expected outcome -- so a bundle replays bit-identically on any
 * machine, on either back end, at any thread count.
 *
 * Exit codes follow the shared CLI contract (support/cli.hpp,
 * docs/ROBUSTNESS.md): the number of diverged replays (capped at 100),
 * 101 for usage errors, 102 for a fatal SimError (e.g. a damaged
 * bundle container raising TapeError).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "replay/bundle.hpp"
#include "replay/replayer.hpp"
#include "support/cli.hpp"
#include "support/sim_error.hpp"

using namespace onespec;
using replay::Bundle;
using replay::ReplayBackend;
using replay::ReplayOptions;
using replay::ReplayReport;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: onespec-replay [options] BUNDLE|DIR...\n"
        "  BUNDLE          a repro bundle file (onespec-fleet/-served "
        "--bundle-dir)\n"
        "  DIR             replay every *.bundle inside, sorted by name\n"
        "  --info          print each bundle's manifest and postmortem "
        "tail; no replay\n"
        "  --backend B     recorded (default) | interp | gen | both\n"
        "                  (both: replay on interpreter AND generated "
        "back ends)\n"
        "  --no-strict     skip per-OS-call verification; only compare "
        "the end state\n"
        "  --stats         print the replay's stats dump next to the "
        "recorded one\n");
    return cli::kExitUsage;
}

/** Expand files/directories into a sorted list of bundle paths. */
std::vector<std::string>
collectBundles(const std::vector<std::string> &args)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    for (const auto &a : args) {
        std::error_code ec;
        if (fs::is_directory(a, ec)) {
            std::vector<std::string> here;
            for (const auto &de : fs::directory_iterator(a, ec)) {
                if (de.path().extension() == ".bundle")
                    here.push_back(de.path().string());
            }
            std::sort(here.begin(), here.end());
            out.insert(out.end(), here.begin(), here.end());
        } else {
            out.push_back(a);
        }
    }
    return out;
}

/** One replay of one tape on one back end; prints one verdict line
 *  (plus mismatch details) and returns whether it was identical. */
bool
replayOne(const Bundle &b, ReplayBackend backend, bool strict,
          bool want_stats)
{
    ReplayOptions opt;
    opt.backend = backend;
    opt.strictTape = strict;
    ReplayReport rep = replay::replayTape(b.tape, opt);

    std::printf("  replay[%s]%s: %s (%llu instrs, state hash %016llx, "
                "%llu OS calls verified)\n",
                rep.usedInterp ? "interp" : "gen",
                strict ? "" : " (no-strict)",
                rep.identical ? "identical" : "DIVERGED",
                static_cast<unsigned long long>(rep.instrs),
                static_cast<unsigned long long>(rep.stateHash),
                static_cast<unsigned long long>(rep.syscallsVerified));
    for (const auto &m : rep.mismatches)
        std::printf("    mismatch: %s\n", m.c_str());
    if (want_stats && !rep.statsDump.empty())
        std::printf("  replayed stats dump:\n%s", rep.statsDump.c_str());
    return rep.identical;
}

int
realMain(int argc, char **argv)
{
    bool info_only = false, strict = true, want_stats = false;
    std::string backend = "recorded";
    std::vector<std::string> args;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--info") == 0) {
            info_only = true;
        } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            backend = argv[++i];
        } else if (std::strcmp(argv[i], "--no-strict") == 0) {
            strict = false;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            want_stats = true;
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            args.push_back(argv[i]);
        }
    }
    if (args.empty())
        return usage();
    if (backend != "recorded" && backend != "interp" && backend != "gen" &&
        backend != "both")
        return usage();

    const std::vector<std::string> bundles = collectBundles(args);
    if (bundles.empty()) {
        std::fprintf(stderr, "onespec-replay: no .bundle files found\n");
        return usage();
    }

    unsigned diverged = 0;
    for (const auto &path : bundles) {
        Bundle b = replay::loadBundleFile(path);
        std::printf("%s:\n", path.c_str());
        if (info_only) {
            // Manifest lines are already "key: value"; indent them.
            std::string mani =
                b.manifest.empty() ? replay::bundleManifest(b) : b.manifest;
            size_t start = 0;
            while (start < mani.size()) {
                size_t end = mani.find('\n', start);
                if (end == std::string::npos)
                    end = mani.size();
                std::printf("  %s\n",
                            mani.substr(start, end - start).c_str());
                start = end + 1;
            }
            continue;
        }
        bool ok = true;
        if (backend == "both") {
            ok &= replayOne(b, ReplayBackend::Interp, strict, want_stats);
            ok &= replayOne(b, ReplayBackend::Generated, strict,
                            want_stats);
        } else {
            ReplayBackend be = backend == "interp"
                                   ? ReplayBackend::Interp
                               : backend == "gen"
                                   ? ReplayBackend::Generated
                                   : ReplayBackend::Recorded;
            ok = replayOne(b, be, strict, want_stats);
        }
        diverged += !ok;
    }
    if (!info_only)
        std::printf("\n%zu bundle%s replayed, %u diverged\n",
                    bundles.size(), bundles.size() == 1 ? "" : "s",
                    diverged);
    return cli::quarantineExitCode(diverged);
}

} // namespace

int
main(int argc, char **argv)
{
    return cli::runCliMain("onespec-replay",
                           [&] { return realMain(argc, argv); });
}
