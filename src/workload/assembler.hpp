/**
 * @file
 * Label-aware assembler built on the encoder that is *derived from the
 * decode specification* (adl/encode.hpp): field packing and match-pattern
 * placement come from the same single specification as the decoder, so
 * the workload generator can never disagree with the simulator about
 * encodings.
 */

#ifndef ONESPEC_WORKLOAD_ASSEMBLER_HPP
#define ONESPEC_WORKLOAD_ASSEMBLER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "adl/encode.hpp"
#include "adl/spec.hpp"
#include "runtime/program.hpp"

namespace onespec {

/** Assembles one program image for a Spec's ISA. */
class Assembler
{
  public:
    Assembler(const Spec &spec, uint64_t code_base, uint64_t data_base);

    /** Address of the next emitted instruction. */
    uint64_t codeAddr() const
    {
        return codeBase_ + words_.size() * spec_->props.instrBytes;
    }

    /** Create an unbound label. */
    int newLabel();

    /** Bind @p label to the current code address. */
    void bind(int label);

    /** Emit one instruction. */
    void emit(const std::string &name, std::vector<EncField> fields);

    /**
     * Emit a branch whose @p field is a pc-relative displacement to
     * @p label: field = (target - (addr + pc_adjust)) >> shift, masked
     * to the field's width at patch time.
     */
    void emitBranch(const std::string &name, std::vector<EncField> fields,
                    const std::string &field, int label, int pc_adjust,
                    int shift);

    /** Reserve @p size bytes of data (optionally initialized). */
    uint64_t dataAlloc(size_t size, const void *init = nullptr,
                       size_t align = 8);

    /** Finalize: patch fixups and produce the program image. */
    Program finish(const std::string &name);

    const Spec &spec() const { return *spec_; }

  private:
    struct Fixup
    {
        size_t wordIdx;
        int instrId;
        std::string field;
        int label;
        int pcAdjust;
        int shift;
    };

    const Spec *spec_;
    uint64_t codeBase_;
    uint64_t dataBase_;
    std::vector<uint32_t> words_;
    std::vector<uint8_t> data_;
    std::vector<int64_t> labels_;   ///< bound address or -1
    std::vector<Fixup> fixups_;
};

} // namespace onespec

#endif // ONESPEC_WORKLOAD_ASSEMBLER_HPP
