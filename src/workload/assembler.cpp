#include "assembler.hpp"

#include <cstring>

#include "support/bitutil.hpp"
#include "support/logging.hpp"

namespace onespec {

Assembler::Assembler(const Spec &spec, uint64_t code_base,
                     uint64_t data_base)
    : spec_(&spec), codeBase_(code_base), dataBase_(data_base)
{
    ONESPEC_ASSERT(isAligned(code_base, spec.props.instrBytes),
                   "misaligned code base");
}

int
Assembler::newLabel()
{
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
}

void
Assembler::bind(int label)
{
    ONESPEC_ASSERT(label >= 0 && label < static_cast<int>(labels_.size()),
                   "bad label");
    ONESPEC_ASSERT(labels_[label] < 0, "label bound twice");
    labels_[label] = static_cast<int64_t>(codeAddr());
}

void
Assembler::emit(const std::string &name, std::vector<EncField> fields)
{
    words_.push_back(mustEncode(*spec_, name, fields));
}

void
Assembler::emitBranch(const std::string &name, std::vector<EncField> fields,
                      const std::string &field, int label, int pc_adjust,
                      int shift)
{
    auto it = spec_->instrIndex.find(name);
    ONESPEC_ASSERT(it != spec_->instrIndex.end(), "unknown instruction '",
                   name, "'");
    Fixup fx;
    fx.wordIdx = words_.size();
    fx.instrId = it->second;
    fx.field = field;
    fx.label = label;
    fx.pcAdjust = pc_adjust;
    fx.shift = shift;
    fixups_.push_back(std::move(fx));
    emit(name, std::move(fields));
}

uint64_t
Assembler::dataAlloc(size_t size, const void *init, size_t align)
{
    while (data_.size() % align != 0)
        data_.push_back(0);
    uint64_t addr = dataBase_ + data_.size();
    data_.resize(data_.size() + size, 0);
    if (init)
        std::memcpy(data_.data() + (addr - dataBase_), init, size);
    return addr;
}

Program
Assembler::finish(const std::string &name)
{
    unsigned ib = spec_->props.instrBytes;

    for (const auto &fx : fixups_) {
        ONESPEC_ASSERT(labels_[fx.label] >= 0, "unbound label in '", name,
                       "'");
        uint64_t target = static_cast<uint64_t>(labels_[fx.label]);
        uint64_t addr = codeBase_ + fx.wordIdx * ib;
        int64_t delta = static_cast<int64_t>(target) -
                        static_cast<int64_t>(addr + fx.pcAdjust);
        int64_t value = delta >> fx.shift;

        const InstrInfo &ii = spec_->instrs[fx.instrId];
        const FormatDecl &fmt = spec_->formats[ii.formatIndex];
        const FormatField *ff = nullptr;
        for (const auto &f : fmt.fields) {
            if (f.name == fx.field) {
                ff = &f;
                break;
            }
        }
        ONESPEC_ASSERT(ff, "fixup field '", fx.field, "' not in format");
        unsigned width = ff->hi - ff->lo + 1;
        int64_t lo = -(int64_t{1} << (width - 1));
        int64_t hi = (int64_t{1} << (width - 1)) - 1;
        ONESPEC_ASSERT(value >= lo && value <= hi,
                       "branch displacement out of range in '", name, "'");
        words_[fx.wordIdx] = static_cast<uint32_t>(
            insertBits(words_[fx.wordIdx], ff->hi, ff->lo,
                       static_cast<uint64_t>(value)));
    }

    Program p;
    p.name = name;
    p.entry = codeBase_;

    Segment code;
    code.base = codeBase_;
    bool be = !spec_->props.littleEndian;
    for (uint32_t w : words_) {
        if (ib == 4) {
            if (be) {
                code.bytes.push_back(static_cast<uint8_t>(w >> 24));
                code.bytes.push_back(static_cast<uint8_t>(w >> 16));
                code.bytes.push_back(static_cast<uint8_t>(w >> 8));
                code.bytes.push_back(static_cast<uint8_t>(w));
            } else {
                code.bytes.push_back(static_cast<uint8_t>(w));
                code.bytes.push_back(static_cast<uint8_t>(w >> 8));
                code.bytes.push_back(static_cast<uint8_t>(w >> 16));
                code.bytes.push_back(static_cast<uint8_t>(w >> 24));
            }
        } else {
            ONESPEC_PANIC("unsupported instruction size");
        }
    }
    p.segments.push_back(std::move(code));

    if (!data_.empty()) {
        Segment data;
        data.base = dataBase_;
        data.bytes = data_;
        p.segments.push_back(std::move(data));
    }
    return p;
}

} // namespace onespec
