/**
 * @file
 * KernelBuilder: a small portable macro-assembler interface over the
 * three shipped ISAs.  Workload kernels are written once against this
 * interface (virtual registers v0..v7, word-size loads/stores, compare-
 * and-branch macros, OS-call helpers); each ISA supplies a concrete
 * builder that lowers the operations to real instructions through the
 * derived assembler.  This substitutes for the paper's compiled SPEC
 * binaries: the simulators execute only genuine target-ISA encodings.
 */

#ifndef ONESPEC_WORKLOAD_BUILDER_HPP
#define ONESPEC_WORKLOAD_BUILDER_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "workload/assembler.hpp"

namespace onespec {

/** Portable kernel-construction interface. */
class KernelBuilder
{
  public:
    /** Virtual registers available to kernels. */
    static constexpr int kNumVRegs = 8;

    KernelBuilder(const Spec &spec, uint64_t code_base, uint64_t data_base)
        : asm_(spec, code_base, data_base)
    {}
    virtual ~KernelBuilder();

    /** Architectural word size in bytes (4 or 8). */
    unsigned
    wordBytes() const
    {
        return asm_.spec().props.wordBits / 8;
    }

    int newLabel() { return asm_.newLabel(); }
    void bind(int l) { asm_.bind(l); }

    uint64_t
    dataAlloc(size_t size, const void *init = nullptr, size_t align = 8)
    {
        return asm_.dataAlloc(size, init, align);
    }

    Program finish(const std::string &name) { return asm_.finish(name); }

    // ----- register ops (vd, va, vb are virtual register numbers) -----
    virtual void li(int vd, uint64_t imm) = 0;
    virtual void mov(int vd, int vs) = 0;
    virtual void add(int vd, int va, int vb) = 0;
    virtual void sub(int vd, int va, int vb) = 0;
    virtual void mul(int vd, int va, int vb) = 0;
    virtual void and_(int vd, int va, int vb) = 0;
    virtual void or_(int vd, int va, int vb) = 0;
    virtual void xor_(int vd, int va, int vb) = 0;
    virtual void addi(int vd, int va, int32_t imm) = 0;
    virtual void shli(int vd, int va, unsigned amt) = 0;
    virtual void shri(int vd, int va, unsigned amt) = 0;
    virtual void sari(int vd, int va, unsigned amt) = 0;

    // ----- memory -----
    virtual void loadw(int vd, int vbase, int32_t off) = 0;
    virtual void storew(int vs, int vbase, int32_t off) = 0;
    virtual void loadb(int vd, int vbase, int32_t off) = 0;
    virtual void storeb(int vs, int vbase, int32_t off) = 0;

    // ----- control -----
    virtual void beq(int va, int vb, int label) = 0;
    virtual void bne(int va, int vb, int label) = 0;
    virtual void blt(int va, int vb, int label) = 0;   ///< signed
    virtual void bge(int va, int vb, int label) = 0;   ///< signed
    virtual void bltu(int va, int vb, int label) = 0;  ///< unsigned
    virtual void jmp(int label) = 0;

    // ----- OS -----
    virtual void sysWrite(int vbuf, int vlen) = 0; ///< fd 1
    virtual void sysExit(int vcode) = 0;

    // ----- portable helpers built on the ops above -----

    /**
     * Write the low 32 bits of @p vval as 8 hex digits plus newline to
     * stdout.  Clobbers @p t0..@p t2 (and vval stays intact).
     */
    void emitWriteHex(int vval, int t0, int t1, int t2);

    /** Exit with code @p code (clobbers @p t0). */
    void
    emitExit(int t0, uint64_t code)
    {
        li(t0, code);
        sysExit(t0);
    }

  protected:
    Assembler asm_;

  private:
    uint64_t hexTable_ = 0;   ///< lazily allocated "0123..f" table
    uint64_t hexBuf_ = 0;
};

/** Create the builder matching @p spec's ISA (by name). */
std::unique_ptr<KernelBuilder> makeBuilder(const Spec &spec,
                                           uint64_t code_base = 0x10000,
                                           uint64_t data_base = 0x400000);

} // namespace onespec

#endif // ONESPEC_WORKLOAD_BUILDER_HPP
