#include "builder.hpp"

#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

KernelBuilder::~KernelBuilder() = default;

void
KernelBuilder::emitWriteHex(int vval, int t0, int t1, int t2)
{
    if (hexTable_ == 0)
        hexTable_ = dataAlloc(16, "0123456789abcdef", 8);
    if (hexBuf_ == 0)
        hexBuf_ = dataAlloc(16, nullptr, 8);

    for (int k = 0; k < 8; ++k) {
        unsigned shift = 28 - 4 * static_cast<unsigned>(k);
        if (shift)
            shri(t1, vval, shift);
        else
            mov(t1, vval);
        li(t2, 15);
        and_(t1, t1, t2);
        li(t2, hexTable_);
        add(t1, t1, t2);
        loadb(t1, t1, 0);
        li(t0, hexBuf_);
        storeb(t1, t0, k);
    }
    li(t1, 10); // '\n'
    li(t0, hexBuf_);
    storeb(t1, t0, 8);
    li(t1, 9);
    sysWrite(t0, t1);
}

// ---------------------------------------------------------------------
// alpha64
// ---------------------------------------------------------------------

namespace {

/** alpha64: v0..v7 -> R1..R8; scratch R9/R10; abi v0=R0 a0..=R16.. */
class AlphaBuilder final : public KernelBuilder
{
  public:
    using KernelBuilder::KernelBuilder;

    void
    li(int vd, uint64_t imm) override
    {
        liPhys(P(vd), imm);
    }

    void mov(int vd, int vs) override { movPhys(P(vd), P(vs)); }

    void
    add(int vd, int va, int vb) override
    {
        asm_.emit("addq", {{"ra", P(va)}, {"rb", P(vb)}, {"rc", P(vd)}});
    }

    void
    sub(int vd, int va, int vb) override
    {
        asm_.emit("subq", {{"ra", P(va)}, {"rb", P(vb)}, {"rc", P(vd)}});
    }

    void
    mul(int vd, int va, int vb) override
    {
        asm_.emit("mulq", {{"ra", P(va)}, {"rb", P(vb)}, {"rc", P(vd)}});
    }

    void
    and_(int vd, int va, int vb) override
    {
        asm_.emit("and", {{"ra", P(va)}, {"rb", P(vb)}, {"rc", P(vd)}});
    }

    void
    or_(int vd, int va, int vb) override
    {
        asm_.emit("bis", {{"ra", P(va)}, {"rb", P(vb)}, {"rc", P(vd)}});
    }

    void
    xor_(int vd, int va, int vb) override
    {
        asm_.emit("xor", {{"ra", P(va)}, {"rb", P(vb)}, {"rc", P(vd)}});
    }

    void
    addi(int vd, int va, int32_t imm) override
    {
        ONESPEC_ASSERT(imm >= -32768 && imm <= 32767, "addi range");
        asm_.emit("lda", {{"ra", P(vd)},
                          {"rb", P(va)},
                          {"disp", static_cast<uint16_t>(imm)}});
    }

    void
    shli(int vd, int va, unsigned amt) override
    {
        asm_.emit("sll_l",
                  {{"ra", P(va)}, {"lit", amt & 63}, {"rc", P(vd)}});
    }

    void
    shri(int vd, int va, unsigned amt) override
    {
        asm_.emit("srl_l",
                  {{"ra", P(va)}, {"lit", amt & 63}, {"rc", P(vd)}});
    }

    void
    sari(int vd, int va, unsigned amt) override
    {
        asm_.emit("sra_l",
                  {{"ra", P(va)}, {"lit", amt & 63}, {"rc", P(vd)}});
    }

    void
    loadw(int vd, int vbase, int32_t off) override
    {
        asm_.emit("ldq", {{"ra", P(vd)},
                          {"rb", P(vbase)},
                          {"disp", d16(off)}});
    }

    void
    storew(int vs, int vbase, int32_t off) override
    {
        asm_.emit("stq", {{"ra", P(vs)},
                          {"rb", P(vbase)},
                          {"disp", d16(off)}});
    }

    void
    loadb(int vd, int vbase, int32_t off) override
    {
        asm_.emit("ldbu", {{"ra", P(vd)},
                           {"rb", P(vbase)},
                           {"disp", d16(off)}});
    }

    void
    storeb(int vs, int vbase, int32_t off) override
    {
        asm_.emit("stb", {{"ra", P(vs)},
                          {"rb", P(vbase)},
                          {"disp", d16(off)}});
    }

    void
    beq(int va, int vb, int label) override
    {
        cmpBranch("cmpeq", va, vb, label, true);
    }

    void
    bne(int va, int vb, int label) override
    {
        cmpBranch("cmpeq", va, vb, label, false);
    }

    void
    blt(int va, int vb, int label) override
    {
        cmpBranch("cmplt", va, vb, label, true);
    }

    void
    bge(int va, int vb, int label) override
    {
        cmpBranch("cmplt", va, vb, label, false);
    }

    void
    bltu(int va, int vb, int label) override
    {
        cmpBranch("cmpult", va, vb, label, true);
    }

    void
    jmp(int label) override
    {
        asm_.emitBranch("br", {{"ra", 31}}, "bdisp", label, 4, 2);
    }

    void
    sysWrite(int vbuf, int vlen) override
    {
        liPhys(0, 2);           // kSysWrite
        liPhys(16, 1);          // fd
        movPhys(17, P(vbuf));
        movPhys(18, P(vlen));
        asm_.emit("callsys", {});
    }

    void
    sysExit(int vcode) override
    {
        liPhys(0, 1);           // kSysExit
        movPhys(16, P(vcode));
        asm_.emit("callsys", {});
    }

  private:
    static uint64_t
    P(int v)
    {
        ONESPEC_ASSERT(v >= 0 && v < kNumVRegs, "bad vreg");
        return static_cast<uint64_t>(v + 1); // R1..R8
    }

    static uint64_t
    d16(int32_t off)
    {
        ONESPEC_ASSERT(off >= -32768 && off <= 32767, "disp range");
        return static_cast<uint16_t>(off);
    }

    void
    movPhys(uint64_t pd, uint64_t ps)
    {
        asm_.emit("bis", {{"ra", 31}, {"rb", ps}, {"rc", pd}});
    }

    void
    liPhys(uint64_t pd, uint64_t imm)
    {
        int64_t v = static_cast<int64_t>(imm);
        if (v >= -32768 && v <= 32767) {
            asm_.emit("lda", {{"ra", pd},
                              {"rb", 31},
                              {"disp", static_cast<uint16_t>(v)}});
            return;
        }
        // Unsigned 32-bit constants with the high bit set: build the
        // sign-extended value, then clear the upper bytes with zapnot.
        bool clear_high = false;
        if ((imm >> 32) == 0 && (imm & 0x80000000ull)) {
            v = static_cast<int32_t>(imm);
            clear_high = true;
        }
        int64_t lo = static_cast<int16_t>(v & 0xffff);
        int64_t hi = (v - lo) >> 16;
        ONESPEC_ASSERT(hi >= -32768 && hi <= 32767,
                       "alpha li constant out of 32-bit range: ", imm);
        asm_.emit("ldah", {{"ra", pd},
                           {"rb", 31},
                           {"disp", static_cast<uint16_t>(hi)}});
        if (lo != 0) {
            asm_.emit("lda", {{"ra", pd},
                              {"rb", pd},
                              {"disp", static_cast<uint16_t>(lo)}});
        }
        if (clear_high) {
            asm_.emit("zapnot_l",
                      {{"ra", pd}, {"lit", 0x0f}, {"rc", pd}});
        }
    }

    void
    cmpBranch(const char *cmp, int va, int vb, int label, bool want)
    {
        // scratch R9 holds the comparison result
        asm_.emit(cmp, {{"ra", P(va)}, {"rb", P(vb)}, {"rc", 9}});
        asm_.emitBranch(want ? "bne" : "beq", {{"ra", 9}}, "bdisp", label,
                        4, 2);
    }
};

// ---------------------------------------------------------------------
// arm32
// ---------------------------------------------------------------------

/** arm32: v0..v7 -> R4..R11; scratch R3/R12; cond=AL everywhere. */
class ArmBuilder final : public KernelBuilder
{
  public:
    using KernelBuilder::KernelBuilder;

    void
    li(int vd, uint64_t imm) override
    {
        liPhys(P(vd), static_cast<uint32_t>(imm));
    }

    void mov(int vd, int vs) override { movPhys(P(vd), P(vs)); }

    void
    add(int vd, int va, int vb) override
    {
        dp3("add_r", vd, va, vb);
    }

    void
    sub(int vd, int va, int vb) override
    {
        dp3("sub_r", vd, va, vb);
    }

    void
    mul(int vd, int va, int vb) override
    {
        asm_.emit("mul", {{"cond", 14},
                          {"sflag", 0},
                          {"rd", P(vd)},
                          {"rn", 0},
                          {"rs", P(vb)},
                          {"rm", P(va)}});
    }

    void
    and_(int vd, int va, int vb) override
    {
        dp3("and_r", vd, va, vb);
    }

    void
    or_(int vd, int va, int vb) override
    {
        dp3("orr_r", vd, va, vb);
    }

    void
    xor_(int vd, int va, int vb) override
    {
        dp3("eor_r", vd, va, vb);
    }

    void
    addi(int vd, int va, int32_t imm) override
    {
        if (imm >= 0 && imm <= 255) {
            asm_.emit("add_i", {{"cond", 14},
                                {"sflag", 0},
                                {"rn", P(va)},
                                {"rd", P(vd)},
                                {"rot", 0},
                                {"imm8", static_cast<uint64_t>(imm)}});
        } else if (imm < 0 && imm >= -255) {
            asm_.emit("sub_i", {{"cond", 14},
                                {"sflag", 0},
                                {"rn", P(va)},
                                {"rd", P(vd)},
                                {"rot", 0},
                                {"imm8", static_cast<uint64_t>(-imm)}});
        } else {
            liPhys(3, static_cast<uint32_t>(imm)); // scratch R3
            asm_.emit("add_r", {{"cond", 14},
                                {"sflag", 0},
                                {"rn", P(va)},
                                {"rd", P(vd)},
                                {"shimm", 0},
                                {"shtype", 0},
                                {"rm", 3}});
        }
    }

    void
    shli(int vd, int va, unsigned amt) override
    {
        shiftOp(vd, va, amt & 31, 0);
    }

    void
    shri(int vd, int va, unsigned amt) override
    {
        shiftOp(vd, va, amt & 31, 1);
    }

    void
    sari(int vd, int va, unsigned amt) override
    {
        shiftOp(vd, va, amt & 31, 2);
    }

    void
    loadw(int vd, int vbase, int32_t off) override
    {
        ldst("ldr", vd, vbase, off);
    }

    void
    storew(int vs, int vbase, int32_t off) override
    {
        ldst("str", vs, vbase, off);
    }

    void
    loadb(int vd, int vbase, int32_t off) override
    {
        ldst("ldrb", vd, vbase, off);
    }

    void
    storeb(int vs, int vbase, int32_t off) override
    {
        ldst("strb", vs, vbase, off);
    }

    void
    beq(int va, int vb, int label) override
    {
        cmpBranch(va, vb, label, 0); // EQ
    }

    void
    bne(int va, int vb, int label) override
    {
        cmpBranch(va, vb, label, 1); // NE
    }

    void
    blt(int va, int vb, int label) override
    {
        cmpBranch(va, vb, label, 11); // LT
    }

    void
    bge(int va, int vb, int label) override
    {
        cmpBranch(va, vb, label, 10); // GE
    }

    void
    bltu(int va, int vb, int label) override
    {
        cmpBranch(va, vb, label, 3); // CC (unsigned lower)
    }

    void
    jmp(int label) override
    {
        asm_.emitBranch("b", {{"cond", 14}}, "off24", label, 8, 2);
    }

    void
    sysWrite(int vbuf, int vlen) override
    {
        liPhys(7, 2);  // kSysWrite
        liPhys(0, 1);  // fd
        movPhys(1, P(vbuf));
        movPhys(2, P(vlen));
        asm_.emit("swi", {{"cond", 14}, {"imm24", 0}});
    }

    void
    sysExit(int vcode) override
    {
        liPhys(7, 1);
        movPhys(0, P(vcode));
        asm_.emit("swi", {{"cond", 14}, {"imm24", 0}});
    }

  private:
    static uint64_t
    P(int v)
    {
        ONESPEC_ASSERT(v >= 0 && v < kNumVRegs, "bad vreg");
        return static_cast<uint64_t>(v + 4); // R4..R11
    }

    void
    dp3(const char *op, int vd, int va, int vb)
    {
        asm_.emit(op, {{"cond", 14},
                       {"sflag", 0},
                       {"rn", P(va)},
                       {"rd", P(vd)},
                       {"shimm", 0},
                       {"shtype", 0},
                       {"rm", P(vb)}});
    }

    void
    shiftOp(int vd, int va, unsigned amt, unsigned type)
    {
        asm_.emit("mov_r", {{"cond", 14},
                            {"sflag", 0},
                            {"rn", 0},
                            {"rd", P(vd)},
                            {"shimm", amt},
                            {"shtype", type},
                            {"rm", P(va)}});
    }

    void
    ldst(const char *op, int vreg, int vbase, int32_t off)
    {
        uint64_t u = off >= 0 ? 1 : 0;
        uint64_t mag = static_cast<uint64_t>(off >= 0 ? off : -off);
        ONESPEC_ASSERT(mag < 4096, "arm offset range");
        asm_.emit(op, {{"cond", 14},
                       {"pbit", 1},
                       {"ubit", u},
                       {"wbit", 0},
                       {"rn", P(vbase)},
                       {"rd", P(vreg)},
                       {"off12", mag}});
    }

    void
    movPhys(uint64_t pd, uint64_t ps)
    {
        asm_.emit("mov_r", {{"cond", 14},
                            {"sflag", 0},
                            {"rn", 0},
                            {"rd", pd},
                            {"shimm", 0},
                            {"shtype", 0},
                            {"rm", ps}});
    }

    void
    liPhys(uint64_t pd, uint32_t imm)
    {
        // mov the most significant non-zero byte, orr the rest.
        bool first = true;
        for (int k = 3; k >= 0; --k) {
            uint32_t byte = (imm >> (8 * k)) & 0xff;
            if (byte == 0 && !(first && k == 0))
                continue;
            // Position the byte at bits [8k+7:8k]: rotate right by
            // (32 - 8k) % 32, encoded as rot = ((32 - 8k) % 32) / 2.
            uint64_t rot = ((32 - 8 * static_cast<unsigned>(k)) % 32) / 2;
            asm_.emit(first ? "mov_i" : "orr_i",
                      {{"cond", 14},
                       {"sflag", 0},
                       {"rn", first ? 0 : pd},
                       {"rd", pd},
                       {"rot", rot},
                       {"imm8", byte}});
            first = false;
        }
    }

    void
    cmpBranch(int va, int vb, int label, uint64_t cond)
    {
        asm_.emit("cmp_r", {{"cond", 14},
                            {"rn", P(va)},
                            {"rd", 0},
                            {"shimm", 0},
                            {"shtype", 0},
                            {"rm", P(vb)}});
        asm_.emitBranch("b", {{"cond", cond}}, "off24", label, 8, 2);
    }
};

// ---------------------------------------------------------------------
// ppc32
// ---------------------------------------------------------------------

/** ppc32: v0..v7 -> R14..R21; scratch R10/R11. */
class PpcBuilder final : public KernelBuilder
{
  public:
    using KernelBuilder::KernelBuilder;

    void
    li(int vd, uint64_t imm) override
    {
        liPhys(P(vd), static_cast<uint32_t>(imm));
    }

    void
    mov(int vd, int vs) override
    {
        movPhys(P(vd), P(vs));
    }

    void
    add(int vd, int va, int vb) override
    {
        asm_.emit("add", {{"rt", P(vd)},
                          {"ra", P(va)},
                          {"rb", P(vb)},
                          {"rc", 0}});
    }

    void
    sub(int vd, int va, int vb) override
    {
        // subf rt = rb - ra
        asm_.emit("subf", {{"rt", P(vd)},
                           {"ra", P(vb)},
                           {"rb", P(va)},
                           {"rc", 0}});
    }

    void
    mul(int vd, int va, int vb) override
    {
        asm_.emit("mullw", {{"rt", P(vd)},
                            {"ra", P(va)},
                            {"rb", P(vb)},
                            {"rc", 0}});
    }

    void
    and_(int vd, int va, int vb) override
    {
        logic3("and", vd, va, vb);
    }

    void
    or_(int vd, int va, int vb) override
    {
        logic3("or", vd, va, vb);
    }

    void
    xor_(int vd, int va, int vb) override
    {
        logic3("xor", vd, va, vb);
    }

    void
    addi(int vd, int va, int32_t imm) override
    {
        ONESPEC_ASSERT(imm >= -32768 && imm <= 32767, "addi range");
        asm_.emit("addi", {{"rt", P(vd)},
                           {"ra", P(va)},
                           {"dimm", static_cast<uint16_t>(imm)}});
    }

    void
    shli(int vd, int va, unsigned amt) override
    {
        amt &= 31;
        // slwi: rlwinm rd, rs, amt, 0, 31-amt
        asm_.emit("rlwinm", {{"rt", P(va)},
                             {"ra", P(vd)},
                             {"sh", amt},
                             {"mb", 0},
                             {"me", 31 - amt},
                             {"rc", 0}});
    }

    void
    shri(int vd, int va, unsigned amt) override
    {
        amt &= 31;
        // srwi: rlwinm rd, rs, 32-amt, amt, 31
        asm_.emit("rlwinm", {{"rt", P(va)},
                             {"ra", P(vd)},
                             {"sh", (32 - amt) & 31},
                             {"mb", amt},
                             {"me", 31},
                             {"rc", 0}});
    }

    void
    sari(int vd, int va, unsigned amt) override
    {
        asm_.emit("srawi", {{"rt", P(va)},
                            {"ra", P(vd)},
                            {"rb", amt & 31},
                            {"rc", 0}});
    }

    void
    loadw(int vd, int vbase, int32_t off) override
    {
        dmem("lwz", vd, vbase, off);
    }

    void
    storew(int vs, int vbase, int32_t off) override
    {
        dmem("stw", vs, vbase, off);
    }

    void
    loadb(int vd, int vbase, int32_t off) override
    {
        dmem("lbz", vd, vbase, off);
    }

    void
    storeb(int vs, int vbase, int32_t off) override
    {
        dmem("stb", vs, vbase, off);
    }

    void
    beq(int va, int vb, int label) override
    {
        cmpBranch("cmpw", va, vb, label, 12, 2); // true, EQ
    }

    void
    bne(int va, int vb, int label) override
    {
        cmpBranch("cmpw", va, vb, label, 4, 2); // false, EQ
    }

    void
    blt(int va, int vb, int label) override
    {
        cmpBranch("cmpw", va, vb, label, 12, 0); // true, LT
    }

    void
    bge(int va, int vb, int label) override
    {
        cmpBranch("cmpw", va, vb, label, 4, 0); // false, LT
    }

    void
    bltu(int va, int vb, int label) override
    {
        cmpBranch("cmplw", va, vb, label, 12, 0);
    }

    void
    jmp(int label) override
    {
        asm_.emitBranch("b", {{"aa", 0}, {"lk", 0}}, "li", label, 0, 2);
    }

    void
    sysWrite(int vbuf, int vlen) override
    {
        liPhys(0, 2);
        liPhys(3, 1);
        movPhys(4, P(vbuf));
        movPhys(5, P(vlen));
        asm_.emit("sc", {});
    }

    void
    sysExit(int vcode) override
    {
        liPhys(0, 1);
        movPhys(3, P(vcode));
        asm_.emit("sc", {});
    }

  private:
    static uint64_t
    P(int v)
    {
        ONESPEC_ASSERT(v >= 0 && v < kNumVRegs, "bad vreg");
        return static_cast<uint64_t>(v + 14); // R14..R21
    }

    void
    logic3(const char *op, int vd, int va, int vb)
    {
        // X-form logical: ra <- rs op rb; rs travels in the rt field.
        asm_.emit(op, {{"rt", P(va)},
                       {"ra", P(vd)},
                       {"rb", P(vb)},
                       {"rc", 0}});
    }

    void
    dmem(const char *op, int vreg, int vbase, int32_t off)
    {
        ONESPEC_ASSERT(off >= -32768 && off <= 32767, "ppc offset range");
        asm_.emit(op, {{"rt", P(vreg)},
                       {"ra", P(vbase)},
                       {"dimm", static_cast<uint16_t>(off)}});
    }

    void
    movPhys(uint64_t pd, uint64_t ps)
    {
        // mr pd, ps == or pd, ps, ps
        asm_.emit("or", {{"rt", ps}, {"ra", pd}, {"rb", ps}, {"rc", 0}});
    }

    void
    liPhys(uint64_t pd, uint32_t imm)
    {
        int32_t sv = static_cast<int32_t>(imm);
        if (sv >= -32768 && sv <= 32767) {
            asm_.emit("addi", {{"rt", pd},
                               {"ra", 0},
                               {"dimm", static_cast<uint16_t>(sv)}});
            return;
        }
        // lis + ori
        asm_.emit("addis",
                  {{"rt", pd}, {"ra", 0}, {"dimm", (imm >> 16) & 0xffff}});
        if (imm & 0xffff) {
            asm_.emit("ori",
                      {{"rt", pd}, {"ra", pd}, {"dimm", imm & 0xffff}});
        }
    }

    void
    cmpBranch(const char *cmp, int va, int vb, int label, uint64_t bo,
              uint64_t bi)
    {
        asm_.emit(cmp, {{"crfd", 0}, {"ra", P(va)}, {"rb", P(vb)}});
        asm_.emitBranch("bc",
                        {{"bo", bo}, {"bi", bi}, {"aa", 0}, {"lk", 0}},
                        "bd", label, 0, 2);
    }
};

} // namespace

std::unique_ptr<KernelBuilder>
makeBuilder(const Spec &spec, uint64_t code_base, uint64_t data_base)
{
    const std::string &isa = spec.props.name;
    if (isa == "alpha64")
        return std::make_unique<AlphaBuilder>(spec, code_base, data_base);
    if (isa == "arm32")
        return std::make_unique<ArmBuilder>(spec, code_base, data_base);
    if (isa == "ppc32")
        return std::make_unique<PpcBuilder>(spec, code_base, data_base);
    throw SpecError("workload", "no kernel builder for ISA '" + isa + "'");
}

} // namespace onespec
