/**
 * @file
 * The workload suite: integer kernels standing in for the paper's SPEC
 * CPU2000int runs.  Each kernel is written once against KernelBuilder and
 * lowered per ISA; every kernel computes a 32-bit result, prints it as
 * "%08x\n" through the emulated OS, and exits, so a run is validated by
 * comparing output bytes against the golden model computed in plain C++.
 *
 * All result-bearing arithmetic is masked to 32 bits inside the kernels,
 * making the expected output identical across 32- and 64-bit ISAs.
 */

#ifndef ONESPEC_WORKLOAD_KERNELS_HPP
#define ONESPEC_WORKLOAD_KERNELS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/program.hpp"
#include "workload/builder.hpp"

namespace onespec {

/** Kernel names: fib, sieve, matmul, shellsort, strhash, crc32, listsum. */
const std::vector<std::string> &kernelNames();

/**
 * Build kernel @p name with scale parameter @p param.
 * Rough dynamic-instruction counts at parameter p:
 *   fib: ~10p      sieve: ~14p      matmul: ~18p^3   shellsort: O(p^1.3)
 *   strhash: ~14p  crc32: ~60p      listsum: ~6p
 */
Program buildKernel(KernelBuilder &b, const std::string &name,
                    uint64_t param);

/** The 32-bit result the kernel prints. */
uint32_t goldenResult(const std::string &name, uint64_t param);

/** The exact bytes the kernel writes to stdout ("%08x\n"). */
std::string goldenOutput(const std::string &name, uint64_t param);

} // namespace onespec

#endif // ONESPEC_WORKLOAD_KERNELS_HPP
