#include "kernels.hpp"

#include <cstdio>

#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

namespace {

constexpr uint64_t kMask32 = 0xffffffffull;
constexpr uint32_t kLcgA = 1664525u;
constexpr uint32_t kLcgC = 1013904223u;
constexpr uint32_t kSeed = 12345u;

// ---------------------------------------------------------------------
// fib: iterative Fibonacci, masked to 32 bits each step.
// ---------------------------------------------------------------------

Program
buildFib(KernelBuilder &b, uint64_t n)
{
    // v0=a v1=b v2=i v3=n v4=t v5=mask
    b.li(0, 0);
    b.li(1, 1);
    b.li(2, 0);
    b.li(3, n);
    b.li(5, kMask32);
    int loop = b.newLabel(), end = b.newLabel();
    b.bind(loop);
    b.bge(2, 3, end);
    b.add(4, 0, 1);
    b.and_(4, 4, 5);
    b.mov(0, 1);
    b.mov(1, 4);
    b.addi(2, 2, 1);
    b.jmp(loop);
    b.bind(end);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("fib");
}

uint32_t
goldenFib(uint64_t n)
{
    uint32_t a = 0, bb = 1;
    for (uint64_t i = 0; i < n; ++i) {
        uint32_t t = a + bb;
        a = bb;
        bb = t;
    }
    return a;
}

// ---------------------------------------------------------------------
// sieve: count primes below n with a byte sieve.
// ---------------------------------------------------------------------

Program
buildSieve(KernelBuilder &b, uint64_t n)
{
    uint64_t buf = b.dataAlloc(n, nullptr, 8);
    // v0=count v1=i v2=j v3=n v4=buf v5=tmp
    b.li(0, 0);
    b.li(2, 0); // placate nothing; j used later
    b.li(3, n);
    b.li(4, buf);
    b.li(1, 2);
    int iloop = b.newLabel(), iend = b.newLabel();
    int jloop = b.newLabel(), jend = b.newLabel();
    int notprime = b.newLabel();
    b.bind(iloop);
    b.bge(1, 3, iend);
    b.add(5, 4, 1);
    b.loadb(5, 5, 0);
    b.li(6, 0);
    b.bne(5, 6, notprime);
    b.addi(0, 0, 1);
    // mark multiples j = 2i, 3i, ...
    b.add(2, 1, 1);
    b.bind(jloop);
    b.bge(2, 3, jend);
    b.add(5, 4, 2);
    b.li(6, 1);
    b.storeb(6, 5, 0);
    b.add(2, 2, 1);
    b.jmp(jloop);
    b.bind(jend);
    b.bind(notprime);
    b.addi(1, 1, 1);
    b.jmp(iloop);
    b.bind(iend);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("sieve");
}

uint32_t
goldenSieve(uint64_t n)
{
    std::vector<uint8_t> buf(n, 0);
    uint32_t count = 0;
    for (uint64_t i = 2; i < n; ++i) {
        if (buf[i] == 0) {
            ++count;
            for (uint64_t j = i + i; j < n; j += i)
                buf[j] = 1;
        }
    }
    return count;
}

// ---------------------------------------------------------------------
// matmul: n x n integer matrix multiply, checksum of C.
// ---------------------------------------------------------------------

Program
buildMatmul(KernelBuilder &b, uint64_t n)
{
    unsigned w = b.wordBytes();
    uint64_t a_base = b.dataAlloc(n * n * w, nullptr, 8);
    uint64_t b_base = b.dataAlloc(n * n * w, nullptr, 8);
    uint64_t c_base = b.dataAlloc(n * n * w, nullptr, 8);
    unsigned wlog = w == 8 ? 3 : 2;

    // --- init: A[i][j] = (i*7 + j) & 0xff; B[i][j] = (i + j*13) & 0xff
    // v0=i v1=j v2=t v3=n v4=addr v5=t2 v6=t3 v7=base
    b.li(3, n);
    b.li(0, 0);
    int init_i = b.newLabel(), init_iend = b.newLabel();
    b.bind(init_i);
    b.bge(0, 3, init_iend);
    b.li(1, 0);
    int init_j = b.newLabel(), init_jend = b.newLabel();
    b.bind(init_j);
    b.bge(1, 3, init_jend);
    // offset = (i*n + j) << wlog
    b.mul(4, 0, 3);
    b.add(4, 4, 1);
    b.shli(4, 4, wlog);
    // A value
    b.li(2, 7);
    b.mul(2, 0, 2);
    b.add(2, 2, 1);
    b.li(5, 255);
    b.and_(2, 2, 5);
    b.li(7, a_base);
    b.add(5, 7, 4);
    b.storew(2, 5, 0);
    // B value
    b.li(2, 13);
    b.mul(2, 1, 2);
    b.add(2, 2, 0);
    b.li(5, 255);
    b.and_(2, 2, 5);
    b.li(7, b_base);
    b.add(5, 7, 4);
    b.storew(2, 5, 0);
    b.addi(1, 1, 1);
    b.jmp(init_j);
    b.bind(init_jend);
    b.addi(0, 0, 1);
    b.jmp(init_i);
    b.bind(init_iend);

    // --- multiply: C[i][j] = sum_k A[i][k] * B[k][j]
    // v0=i v1=j v2=k v4=acc v5=addr v6=tmp v7=tmp2
    b.li(0, 0);
    int mi = b.newLabel(), miend = b.newLabel();
    b.bind(mi);
    b.bge(0, 3, miend);
    b.li(1, 0);
    int mj = b.newLabel(), mjend = b.newLabel();
    b.bind(mj);
    b.bge(1, 3, mjend);
    b.li(4, 0);
    b.li(2, 0);
    int mk = b.newLabel(), mkend = b.newLabel();
    b.bind(mk);
    b.bge(2, 3, mkend);
    // A[i][k]
    b.mul(5, 0, 3);
    b.add(5, 5, 2);
    b.shli(5, 5, wlog);
    b.li(6, a_base);
    b.add(5, 5, 6);
    b.loadw(6, 5, 0);
    // B[k][j]
    b.mul(5, 2, 3);
    b.add(5, 5, 1);
    b.shli(5, 5, wlog);
    b.li(7, b_base);
    b.add(5, 5, 7);
    b.loadw(7, 5, 0);
    b.mul(6, 6, 7);
    b.add(4, 4, 6);
    b.addi(2, 2, 1);
    b.jmp(mk);
    b.bind(mkend);
    // store C[i][j]
    b.mul(5, 0, 3);
    b.add(5, 5, 1);
    b.shli(5, 5, wlog);
    b.li(6, c_base);
    b.add(5, 5, 6);
    b.storew(4, 5, 0);
    b.addi(1, 1, 1);
    b.jmp(mj);
    b.bind(mjend);
    b.addi(0, 0, 1);
    b.jmp(mi);
    b.bind(miend);

    // --- checksum = sum(C) & mask32, rotated per element
    // v0=idx v1=limit v2=sum v4=addr v5=tmp
    b.li(0, 0);
    b.mul(1, 3, 3);
    b.li(2, 0);
    int cs = b.newLabel(), csend = b.newLabel();
    b.bind(cs);
    b.bge(0, 1, csend);
    b.mov(4, 0);
    b.shli(4, 4, wlog);
    b.li(5, c_base);
    b.add(4, 4, 5);
    b.loadw(5, 4, 0);
    b.add(2, 2, 5);
    b.li(5, kMask32);
    b.and_(2, 2, 5);
    b.addi(0, 0, 1);
    b.jmp(cs);
    b.bind(csend);
    b.mov(0, 2);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("matmul");
}

uint32_t
goldenMatmul(uint64_t n)
{
    std::vector<uint32_t> a(n * n), bm(n * n), c(n * n);
    for (uint64_t i = 0; i < n; ++i) {
        for (uint64_t j = 0; j < n; ++j) {
            a[i * n + j] = static_cast<uint32_t>((i * 7 + j) & 0xff);
            bm[i * n + j] = static_cast<uint32_t>((i + j * 13) & 0xff);
        }
    }
    for (uint64_t i = 0; i < n; ++i) {
        for (uint64_t j = 0; j < n; ++j) {
            uint32_t acc = 0;
            for (uint64_t k = 0; k < n; ++k)
                acc += a[i * n + k] * bm[k * n + j];
            c[i * n + j] = acc;
        }
    }
    uint32_t sum = 0;
    for (uint64_t i = 0; i < n * n; ++i)
        sum += c[i];
    return sum;
}

// ---------------------------------------------------------------------
// shellsort: sort an LCG-filled array, positional checksum.
// ---------------------------------------------------------------------

Program
buildShellsort(KernelBuilder &b, uint64_t n)
{
    unsigned w = b.wordBytes();
    unsigned wlog = w == 8 ? 3 : 2;
    uint64_t base = b.dataAlloc(n * w, nullptr, 8);

    // fill: x = lcg(x); a[i] = x
    // v0=i v1=x v2=n v4=addr v5=tmp v6=const
    b.li(2, n);
    b.li(0, 0);
    b.li(1, kSeed);
    int fl = b.newLabel(), flend = b.newLabel();
    b.bind(fl);
    b.bge(0, 2, flend);
    b.li(6, kLcgA);
    b.mul(1, 1, 6);
    b.li(6, kLcgC);
    b.add(1, 1, 6);
    b.li(6, kMask32);
    b.and_(1, 1, 6);
    b.mov(4, 0);
    b.shli(4, 4, wlog);
    b.li(5, base);
    b.add(4, 4, 5);
    b.storew(1, 4, 0);
    b.addi(0, 0, 1);
    b.jmp(fl);
    b.bind(flend);

    // shell sort, gap sequence n/2, n/4, ..., 1
    // v0=gap v1=i v2=j v3=tmp(value being inserted) v4=addr v5=val
    // v6=n v7=scratch
    b.li(6, n);
    b.mov(0, 6);
    b.shri(0, 0, 1);
    int gaploop = b.newLabel(), gapend = b.newLabel();
    b.bind(gaploop);
    b.li(7, 0);
    b.beq(0, 7, gapend);

    b.mov(1, 0); // i = gap
    int il = b.newLabel(), ilend = b.newLabel();
    b.bind(il);
    b.bge(1, 6, ilend);
    // tmp = a[i]
    b.mov(4, 1);
    b.shli(4, 4, wlog);
    b.li(7, base);
    b.add(4, 4, 7);
    b.loadw(3, 4, 0);
    b.mov(2, 1); // j = i
    int wl = b.newLabel(), wlend = b.newLabel(), doshift = b.newLabel();
    b.bind(wl);
    b.blt(2, 0, wlend); // j < gap -> done
    // val = a[j-gap]
    b.sub(4, 2, 0);
    b.shli(4, 4, wlog);
    b.li(7, base);
    b.add(4, 4, 7);
    b.loadw(5, 4, 0);
    // shift only while a[j-gap] > tmp  (unsigned)
    b.bltu(3, 5, doshift);
    b.jmp(wlend);
    b.bind(doshift);
    // a[j] = val
    b.mov(4, 2);
    b.shli(4, 4, wlog);
    b.li(7, base);
    b.add(4, 4, 7);
    b.storew(5, 4, 0);
    b.sub(2, 2, 0); // j -= gap
    b.jmp(wl);
    b.bind(wlend);
    // a[j] = tmp
    b.mov(4, 2);
    b.shli(4, 4, wlog);
    b.li(7, base);
    b.add(4, 4, 7);
    b.storew(3, 4, 0);
    b.addi(1, 1, 1);
    b.jmp(il);
    b.bind(ilend);
    b.shri(0, 0, 1); // gap /= 2
    b.jmp(gaploop);
    b.bind(gapend);

    // checksum = sum(a[i] * (i+1)) & mask32
    // v0=i v1=sum v2=tmp v4=addr v6=n v7=scratch
    b.li(0, 0);
    b.li(1, 0);
    int cs = b.newLabel(), csend = b.newLabel();
    b.bind(cs);
    b.bge(0, 6, csend);
    b.mov(4, 0);
    b.shli(4, 4, wlog);
    b.li(7, base);
    b.add(4, 4, 7);
    b.loadw(2, 4, 0);
    b.addi(7, 0, 1);
    b.mul(2, 2, 7);
    b.add(1, 1, 2);
    b.li(7, kMask32);
    b.and_(1, 1, 7);
    b.addi(0, 0, 1);
    b.jmp(cs);
    b.bind(csend);
    b.mov(0, 1);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("shellsort");
}

uint32_t
goldenShellsort(uint64_t n)
{
    std::vector<uint32_t> a(n);
    uint32_t x = kSeed;
    for (uint64_t i = 0; i < n; ++i) {
        x = x * kLcgA + kLcgC;
        a[i] = x;
    }
    for (uint64_t gap = n / 2; gap > 0; gap /= 2) {
        for (uint64_t i = gap; i < n; ++i) {
            uint32_t tmp = a[i];
            uint64_t j = i;
            while (j >= gap && a[j - gap] > tmp) {
                a[j] = a[j - gap];
                j -= gap;
            }
            a[j] = tmp;
        }
    }
    uint32_t sum = 0;
    for (uint64_t i = 0; i < n; ++i)
        sum += a[i] * static_cast<uint32_t>(i + 1);
    return sum;
}

// ---------------------------------------------------------------------
// strhash: FNV-1a over an LCG-filled buffer, several passes.
// ---------------------------------------------------------------------

Program
buildStrhash(KernelBuilder &b, uint64_t len, uint64_t reps)
{
    uint64_t buf = b.dataAlloc(len, nullptr, 8);

    // fill buffer with pseudo-text bytes
    // v0=i v1=x v2=len v4=addr v5=tmp v6=const
    b.li(2, len);
    b.li(0, 0);
    b.li(1, kSeed);
    int fl = b.newLabel(), flend = b.newLabel();
    b.bind(fl);
    b.bge(0, 2, flend);
    b.li(6, kLcgA);
    b.mul(1, 1, 6);
    b.li(6, kLcgC);
    b.add(1, 1, 6);
    b.li(6, kMask32);
    b.and_(1, 1, 6);
    b.mov(5, 1);
    b.shri(5, 5, 16);
    b.li(6, 0x7f);
    b.and_(5, 5, 6);
    b.li(6, buf);
    b.add(6, 6, 0);
    b.storeb(5, 6, 0);
    b.addi(0, 0, 1);
    b.jmp(fl);
    b.bind(flend);

    // hash passes: v0=rep v1=h v2=i v3=len v4=addr v5=byte v6=const
    // v7=reps
    b.li(7, reps);
    b.li(3, len);
    b.li(1, 2166136261u);
    b.li(0, 0);
    int rl = b.newLabel(), rlend = b.newLabel();
    b.bind(rl);
    b.bge(0, 7, rlend);
    b.li(2, 0);
    int hl = b.newLabel(), hlend = b.newLabel();
    b.bind(hl);
    b.bge(2, 3, hlend);
    b.li(4, buf);
    b.add(4, 4, 2);
    b.loadb(5, 4, 0);
    b.xor_(1, 1, 5);
    b.li(6, 16777619);
    b.mul(1, 1, 6);
    b.li(6, kMask32);
    b.and_(1, 1, 6);
    b.addi(2, 2, 1);
    b.jmp(hl);
    b.bind(hlend);
    b.addi(0, 0, 1);
    b.jmp(rl);
    b.bind(rlend);
    b.mov(0, 1);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("strhash");
}

uint32_t
goldenStrhash(uint64_t len, uint64_t reps)
{
    std::vector<uint8_t> buf(len);
    uint32_t x = kSeed;
    for (uint64_t i = 0; i < len; ++i) {
        x = x * kLcgA + kLcgC;
        buf[i] = static_cast<uint8_t>((x >> 16) & 0x7f);
    }
    uint32_t h = 2166136261u;
    for (uint64_t r = 0; r < reps; ++r) {
        for (uint64_t i = 0; i < len; ++i) {
            h ^= buf[i];
            h *= 16777619u;
        }
    }
    return h;
}

// ---------------------------------------------------------------------
// crc32: bitwise CRC-32 over an LCG-filled buffer.
// ---------------------------------------------------------------------

Program
buildCrc32(KernelBuilder &b, uint64_t len)
{
    uint64_t buf = b.dataAlloc(len, nullptr, 8);

    // fill
    b.li(2, len);
    b.li(0, 0);
    b.li(1, kSeed);
    int fl = b.newLabel(), flend = b.newLabel();
    b.bind(fl);
    b.bge(0, 2, flend);
    b.li(6, kLcgA);
    b.mul(1, 1, 6);
    b.li(6, kLcgC);
    b.add(1, 1, 6);
    b.li(6, kMask32);
    b.and_(1, 1, 6);
    b.mov(5, 1);
    b.shri(5, 5, 8);
    b.li(6, 0xff);
    b.and_(5, 5, 6);
    b.li(6, buf);
    b.add(6, 6, 0);
    b.storeb(5, 6, 0);
    b.addi(0, 0, 1);
    b.jmp(fl);
    b.bind(flend);

    // crc: v0=crc v1=i v2=len v3=bit v4=addr/byte v5=tmp v6=const
    b.li(2, len);
    b.li(0, kMask32); // crc = 0xffffffff
    b.li(1, 0);
    int cl = b.newLabel(), clend = b.newLabel();
    b.bind(cl);
    b.bge(1, 2, clend);
    b.li(4, buf);
    b.add(4, 4, 1);
    b.loadb(4, 4, 0);
    b.xor_(0, 0, 4);
    b.li(6, kMask32);
    b.and_(0, 0, 6);
    b.li(3, 0);
    int bl = b.newLabel(), blend = b.newLabel(), noxor = b.newLabel();
    b.bind(bl);
    b.li(6, 8);
    b.bge(3, 6, blend);
    b.li(6, 1);
    b.and_(5, 0, 6);
    b.shri(0, 0, 1);
    b.li(6, 0);
    b.beq(5, 6, noxor);
    b.li(6, 0xedb88320);
    b.xor_(0, 0, 6);
    b.bind(noxor);
    b.addi(3, 3, 1);
    b.jmp(bl);
    b.bind(blend);
    b.addi(1, 1, 1);
    b.jmp(cl);
    b.bind(clend);
    b.li(6, kMask32);
    b.xor_(0, 0, 6);
    b.and_(0, 0, 6);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("crc32");
}

uint32_t
goldenCrc32(uint64_t len)
{
    std::vector<uint8_t> buf(len);
    uint32_t x = kSeed;
    for (uint64_t i = 0; i < len; ++i) {
        x = x * kLcgA + kLcgC;
        buf[i] = static_cast<uint8_t>((x >> 8) & 0xff);
    }
    uint32_t crc = 0xffffffffu;
    for (uint64_t i = 0; i < len; ++i) {
        crc ^= buf[i];
        for (int k = 0; k < 8; ++k) {
            uint32_t lsb = crc & 1;
            crc >>= 1;
            if (lsb)
                crc ^= 0xedb88320u;
        }
    }
    return crc ^ 0xffffffffu;
}

// ---------------------------------------------------------------------
// listsum: pointer-chase over a permuted singly linked list.
// ---------------------------------------------------------------------

Program
buildListsum(KernelBuilder &b, uint64_t n, uint64_t steps)
{
    unsigned w = b.wordBytes();
    unsigned node_log = w == 8 ? 4 : 3; // node = {next, value}
    uint64_t base = b.dataAlloc(n << node_log, nullptr, 16);
    uint64_t stride = 7; // gcd(7, n) must be 1 for a full cycle

    // build: node[i].next = &node[(i+stride) mod n]; node[i].value = i^2
    // v0=i v1=j v2=n v4=addr v5=tmp v6=const
    b.li(2, n);
    b.li(0, 0);
    int bl = b.newLabel(), blend = b.newLabel(), nowrap = b.newLabel();
    b.bind(bl);
    b.bge(0, 2, blend);
    b.addi(1, 0, static_cast<int32_t>(stride));
    b.blt(1, 2, nowrap);
    b.sub(1, 1, 2);
    b.bind(nowrap);
    // &node[j]
    b.mov(5, 1);
    b.shli(5, 5, node_log);
    b.li(6, base);
    b.add(5, 5, 6);
    // &node[i]
    b.mov(4, 0);
    b.shli(4, 4, node_log);
    b.add(4, 4, 6);
    b.storew(5, 4, 0);
    b.mul(5, 0, 0);
    b.storew(5, 4, static_cast<int32_t>(w));
    b.addi(0, 0, 1);
    b.jmp(bl);
    b.bind(blend);

    // chase: v0=sum v1=ptr v2=k v3=steps v4=val v6=const
    b.li(0, 0);
    b.li(1, base);
    b.li(3, steps);
    b.li(2, 0);
    int cl = b.newLabel(), clend = b.newLabel();
    b.bind(cl);
    b.bge(2, 3, clend);
    b.loadw(4, 1, static_cast<int32_t>(w));
    b.add(0, 0, 4);
    b.li(6, kMask32);
    b.and_(0, 0, 6);
    b.loadw(1, 1, 0);
    b.addi(2, 2, 1);
    b.jmp(cl);
    b.bind(clend);
    b.emitWriteHex(0, 5, 6, 7);
    b.emitExit(6, 0);
    return b.finish("listsum");
}

uint32_t
goldenListsum(uint64_t n, uint64_t steps)
{
    uint64_t stride = 7;
    uint32_t sum = 0;
    uint64_t i = 0;
    for (uint64_t k = 0; k < steps; ++k) {
        sum += static_cast<uint32_t>(i * i);
        i = (i + stride) % n;
    }
    return sum;
}

} // namespace

const std::vector<std::string> &
kernelNames()
{
    static const std::vector<std::string> names = {
        "fib", "sieve", "matmul", "shellsort", "strhash", "crc32",
        "listsum",
    };
    return names;
}

Program
buildKernel(KernelBuilder &b, const std::string &name, uint64_t param)
{
    if (name == "fib")
        return buildFib(b, param);
    if (name == "sieve")
        return buildSieve(b, param);
    if (name == "matmul")
        return buildMatmul(b, param);
    if (name == "shellsort")
        return buildShellsort(b, param);
    if (name == "strhash")
        return buildStrhash(b, param, 4);
    if (name == "crc32")
        return buildCrc32(b, param);
    if (name == "listsum")
        return buildListsum(b, param, param * 8);
    throw SpecError("workload", "unknown kernel '" + name + "'");
}

uint32_t
goldenResult(const std::string &name, uint64_t param)
{
    if (name == "fib")
        return goldenFib(param);
    if (name == "sieve")
        return goldenSieve(param);
    if (name == "matmul")
        return goldenMatmul(param);
    if (name == "shellsort")
        return goldenShellsort(param);
    if (name == "strhash")
        return goldenStrhash(param, 4);
    if (name == "crc32")
        return goldenCrc32(param);
    if (name == "listsum")
        return goldenListsum(param, param * 8);
    throw SpecError("workload", "unknown kernel '" + name + "'");
}

std::string
goldenOutput(const std::string &name, uint64_t param)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x\n", goldenResult(name, param));
    return buf;
}

} // namespace onespec
