#include "threadpool.hpp"

#include <algorithm>

namespace onespec::parallel {

unsigned
hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned nthreads)
{
    startWorkers(nthreads ? nthreads : hardwareThreads());
}

ThreadPool::~ThreadPool()
{
    wait();
    stopWorkers();
}

void
ThreadPool::startWorkers(unsigned n)
{
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

void
ThreadPool::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(sleepM_);
        stop_.store(true, std::memory_order_release);
    }
    sleepCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::resize(unsigned nthreads)
{
    unsigned n = nthreads ? nthreads : hardwareThreads();
    if (n == size())
        return;
    // Drain, tear the old crew down completely, rebuild.  Every deque is
    // empty after wait() + join (a worker only exits its loop with no
    // queued work), so no task can be stranded in a dropped deque.
    wait();
    stopWorkers();
    threads_.clear();
    workers_.clear();
    stop_.store(false, std::memory_order_release);
    nextQueue_.store(0, std::memory_order_relaxed);
    startWorkers(n);
}

void
ThreadPool::submit(Task task)
{
    unsigned i = static_cast<unsigned>(
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size());
    inFlight_.fetch_add(1, std::memory_order_acq_rel);
    {
        std::lock_guard<std::mutex> lock(workers_[i]->m);
        workers_[i]->q.push_back(std::move(task));
    }
    // Publish queued_ and notify while holding the sleep mutex: a worker
    // between its predicate check and the actual wait cannot miss this.
    {
        std::lock_guard<std::mutex> lock(sleepM_);
        queued_.fetch_add(1, std::memory_order_acq_rel);
    }
    sleepCv_.notify_one();
}

bool
ThreadPool::tryRun(unsigned self)
{
    Task task;
    // Own queue first (front: submission order) ...
    {
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.m);
        if (!w.q.empty()) {
            task = std::move(w.q.front());
            w.q.pop_front();
        }
    }
    // ... then steal from the back of the others, nearest first.
    if (!task) {
        for (size_t k = 1; k < workers_.size() && !task; ++k) {
            Worker &v = *workers_[(self + k) % workers_.size()];
            std::lock_guard<std::mutex> lock(v.m);
            if (!v.q.empty()) {
                task = std::move(v.q.back());
                v.q.pop_back();
            }
        }
    }
    if (!task)
        return false;
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    task();
    if (inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task of the batch: wake wait()ers.
        std::lock_guard<std::mutex> lock(sleepM_);
        doneCv_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        if (tryRun(self))
            continue;
        std::unique_lock<std::mutex> lock(sleepM_);
        sleepCv_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) != 0;
        });
        if (stop_.load(std::memory_order_acquire))
            return;
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(sleepM_);
    doneCv_.wait(lock, [this] {
        return inFlight_.load(std::memory_order_acquire) == 0;
    });
}

} // namespace onespec::parallel
