#include "ckpt_sampling.hpp"

#include <algorithm>

#include "ckpt/store.hpp"
#include "iface/registry.hpp"
#include "perf/hostcount.hpp"
#include "sim/interp.hpp"
#include "support/logging.hpp"
#include "timing/timing_directed.hpp"

namespace onespec::parallel {

namespace {

std::unique_ptr<FunctionalSimulator>
makeSim(SimContext &ctx, const std::string &buildset, bool use_interp)
{
    if (use_interp)
        return makeInterpSimulator(ctx, buildset);
    auto sim = SimRegistry::instance().create(ctx, buildset);
    ONESPEC_ASSERT(sim, "no generated simulator for ",
                   ctx.spec().props.name, "/", buildset);
    return sim;
}

} // namespace

CkptSamplingResult
runSampledCheckpointParallel(const Spec &spec, const Program &prog,
                             const CkptSamplingConfig &cfg, SimFleet &fleet)
{
    CkptSamplingResult res;
    const SamplingConfig &s = cfg.sampling;

    // ---- Phase 1: one functional pass, checkpointing window starts.
    //
    // The loop below is the serial runSampled() schedule with the
    // detailed pipeline replaced by fastForward over the same region:
    // the architectural path is interface-invariant, so instruction
    // counts -- and therefore window boundaries -- match exactly.
    SimContext ctx(spec);
    ctx.load(prog);
    auto fast = makeSim(ctx, cfg.fastBuildset, cfg.useInterp);

    Stopwatch sw;
    sw.start();
    uint64_t total = 0;
    RunStatus gapStatus = RunStatus::Ok;
    while (total < cfg.maxInstrs && gapStatus == RunStatus::Ok) {
        uint64_t cap = std::min(s.windowInstrs, cfg.maxInstrs - total);
        if (cfg.deltaCheckpoints && !res.checkpoints.empty())
            res.checkpoints.push_back(ckpt::captureDelta(
                ctx, res.checkpoints.back(), &res.ckpt));
        else
            res.checkpoints.push_back(ckpt::capture(ctx, &res.ckpt));
        res.windowCaps.push_back(cap);
        if (cfg.store) {
            // Store-backed capture: persist the window checkpoint while
            // still in the serial phase (single-writer store contract).
            std::string name =
                cfg.storePrefix +
                std::to_string(res.checkpoints.size() - 1);
            cfg.store->save(name, res.checkpoints.back(), &res.ckpt);
            res.storedNames.push_back(std::move(name));
        }

        // Advance through the window region itself (measured in phase 2;
        // not counted as fastForwarded, mirroring the serial driver).
        RunStatus winStatus = RunStatus::Ok;
        uint64_t done = fast->fastForward(cap, winStatus);
        total += done;
        if (done < s.windowInstrs)
            break; // program ended inside the window (serial breaks too)

        uint64_t ff = s.periodInstrs > s.windowInstrs
                          ? s.periodInstrs - s.windowInstrs
                          : 0;
        ff = std::min(ff, cfg.maxInstrs - total);
        if (ff) {
            uint64_t done2 = fast->fastForward(ff, gapStatus);
            res.stats.fastForwarded += done2;
            total += done2;
            if (done2 < ff)
                break;
        }
    }
    res.totalInstrs = total;
    res.ffNs = sw.elapsedNs();

    // ---- Phase 2: one fleet job per window, each restoring its chain
    // and timing its window on a fresh pipeline.
    const size_t n = res.checkpoints.size();
    std::vector<TimingStats> winStats(n);
    std::vector<FleetJob> jobs(n);
    for (size_t i = 0; i < n; ++i) {
        FleetJob &job = jobs[i];
        job.spec = &spec;
        job.program = &prog;
        job.buildset = cfg.detailedBuildset;
        job.useInterp = cfg.useInterp;
        job.name = spec.props.name + "/window" + std::to_string(i);
        if (cfg.deltaCheckpoints) {
            for (size_t j = 0; j <= i; ++j)
                job.restore.push_back(&res.checkpoints[j]);
        } else {
            job.restore.push_back(&res.checkpoints[i]);
        }
        const uint64_t cap = res.windowCaps[i];
        job.body = [&spec, &cfg, &winStats, i, cap](
                       SimContext &, FunctionalSimulator &sim,
                       FleetResult &out, stats::StatsRegistry &) {
            TimingDirectedPipeline pipe(spec, cfg.sampling.pipeline);
            TimingStats w = pipe.run(sim, cap);
            winStats[i] = w; // slot owned exclusively by this job
            out.run.instrs = w.instrs;
            out.run.status =
                w.instrs < cap ? RunStatus::Halted : RunStatus::Ok;
        };
    }
    FleetReport rep = fleet.run(jobs);
    res.measureNs = rep.wallNs;

    // Merge in window order: values and order independent of the thread
    // count phase 2 happened to run at.
    res.jobErrors.resize(n);
    for (size_t i = 0; i < n; ++i) {
        res.stats.accumulateWindow(winStats[i]);
        res.ckpt += rep.results[i].ckptCounters;
        res.jobErrors[i] = rep.results[i].error;
    }
    return res;
}

} // namespace onespec::parallel
