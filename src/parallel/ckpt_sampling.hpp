/**
 * @file
 * Checkpoint-parallel sampling: the fleet-scale payoff of src/ckpt/.
 *
 * Serial sampled simulation (timing/sampling.hpp) alternates detailed
 * windows and functional fast-forward on one context; wall clock is the
 * sum of both.  This driver splits the two:
 *
 *   Phase 1 (serial): one functional pass over the program on the
 *   Block-detail interface, capturing a checkpoint at the start of every
 *   would-be window -- a full checkpoint first, cheap write-epoch deltas
 *   after.  The pass advances through window regions and gaps with the
 *   exact schedule of the serial driver, so window boundaries land on
 *   the same instruction counts.
 *
 *   Phase 2 (parallel): each window becomes a SimFleet job that restores
 *   its checkpoint chain into a fresh context, notifies the simulator
 *   (onStateRestored), and runs the detailed Step-interface pipeline for
 *   that window alone.  Jobs are independent, so they scale across
 *   worker threads.
 *
 * Window results are merged in window order, making the combined
 * SamplingStats -- and any registry dump derived from it -- bit-identical
 * to a serial run with SamplingConfig::independentWindows set, at every
 * thread count.  (Identity holds because the architectural path is
 * interface-invariant -- the repo's core validation property -- and the
 * timing pipeline is a deterministic function of starting state and
 * window cap.)
 */

#ifndef ONESPEC_PARALLEL_CKPT_SAMPLING_HPP
#define ONESPEC_PARALLEL_CKPT_SAMPLING_HPP

#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "parallel/fleet.hpp"
#include "timing/sampling.hpp"

namespace onespec::parallel {

/** Configuration for a checkpoint-parallel sampled run. */
struct CkptSamplingConfig
{
    SamplingConfig sampling;    ///< window/period/pipeline parameters
    uint64_t maxInstrs = ~uint64_t{0};
    std::string detailedBuildset;  ///< Step-detail iface for windows
    std::string fastBuildset;      ///< fastForward iface for phase 1
    bool useInterp = false;        ///< interpreter back end for both
    /** Capture write-epoch deltas after the first checkpoint (chains get
     *  longer to restore but far smaller to hold/store). */
    bool deltaCheckpoints = true;
    /**
     * When set, phase 1 also persists every window checkpoint into this
     * content-addressed store (ckpt/store.hpp) as it is captured --
     * store-backed capture.  Identical pages across windows, chains, and
     * earlier runs sharing the store are written once; the dedup hits
     * show up in CkptSamplingResult::ckpt.storePageDedupHits.  The store
     * is written only from the serial phase (its single-writer
     * contract), so phase-2 determinism is untouched.
     */
    ckpt::CkptStore *store = nullptr;
    /** Name prefix for stored window checkpoints: <prefix><index>. */
    std::string storePrefix = "win";
};

/** Everything a checkpoint-parallel run produced. */
struct CkptSamplingResult
{
    SamplingStats stats;        ///< merged, serial-bit-identical
    ckpt::CkptCounters ckpt;    ///< capture/restore work done
    /** One checkpoint per window, index-aligned with windowCaps;
     *  checkpoints[0] is full, the rest are deltas when enabled. */
    std::vector<ckpt::Checkpoint> checkpoints;
    std::vector<uint64_t> windowCaps;  ///< per-window instruction caps
    /** Store names of persisted window checkpoints, index-aligned with
     *  checkpoints; empty when no store was configured. */
    std::vector<std::string> storedNames;
    /** Instructions the phase-1 functional pass executed (windows +
     *  gaps) -- the denominator of bytes-per-instruction metrics. */
    uint64_t totalInstrs = 0;
    uint64_t ffNs = 0;          ///< phase 1 wall time
    uint64_t measureNs = 0;     ///< phase 2 wall time (fleet batch)
    /** Per-job errors from phase 2, if any (empty strings when clean). */
    std::vector<std::string> jobErrors;
};

/**
 * Run @p prog sampled, measuring windows concurrently on @p fleet.
 * The Spec and Program must outlive the call.
 */
CkptSamplingResult runSampledCheckpointParallel(const Spec &spec,
                                                const Program &prog,
                                                const CkptSamplingConfig &cfg,
                                                SimFleet &fleet);

} // namespace onespec::parallel

#endif // ONESPEC_PARALLEL_CKPT_SAMPLING_HPP
