/**
 * @file
 * SimFleet: run many independent (Spec, buildset, Program) simulation
 * jobs concurrently on a work-stealing thread pool.
 *
 * The buildset-specialized simulators are embarrassingly parallel across
 * workloads: a job's entire mutable world -- SimContext (memory,
 * registers, OS emulation, journal), the FunctionalSimulator instance
 * and its IfaceCounters, and a per-job stats registry -- is constructed
 * inside the worker task and owned by it exclusively.  The only shared
 * inputs are const: the Spec, the Program image, and the frozen
 * SimRegistry (see iface/registry.hpp for its read-only-after-init
 * contract).  The process-wide TraceBus is the one shared mutable
 * service and is internally synchronized.
 *
 * Determinism guarantee: per-job results (status, instruction count,
 * architectural state hash, OS output, interface counters) are pure
 * functions of the job, so they are bit-identical for any thread count,
 * including 1.  Merged stats are accumulated per job and folded in
 * job-index order after the pool drains, so the merged tree -- values
 * AND dump order -- is also thread-count invariant.  Only wall-clock
 * fields (ns, MIPS) vary between runs.
 *
 * Failure containment: a job that throws SimError (malformed image,
 * runaway action loop, damaged checkpoint, bad configuration; see
 * support/sim_error.hpp) is *quarantined* -- its FleetResult records
 * kind, message, attempts, and elapsed time -- while every other job
 * completes.  FleetPolicy adds a per-job wall-clock watchdog deadline
 * and a retry-with-exponential-backoff policy that applies only to
 * ResourceError-class failures (Guest/Spec failures are deterministic,
 * so retrying them only burns cycles).  Quarantined jobs contribute no
 * stats, which keeps the merged dump bit-identical across thread counts
 * whenever job outcomes are deterministic (always, under the default
 * keepGoing policy with no deadline).
 */

#ifndef ONESPEC_PARALLEL_FLEET_HPP
#define ONESPEC_PARALLEL_FLEET_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "fault/fault.hpp"
#include "iface/functional_simulator.hpp"
#include "obs/flight_recorder.hpp"
#include "parallel/threadpool.hpp"
#include "stats/sharded.hpp"
#include "stats/stats.hpp"
#include "support/sim_error.hpp"

namespace onespec::parallel {

struct FleetResult;

/** One unit of fleet work.  The Spec and Program must outlive run()
 *  and are shared read-only across jobs. */
struct FleetJob
{
    const Spec *spec = nullptr;
    const Program *program = nullptr;
    std::string buildset;      ///< generated simulator to instantiate
    uint64_t maxInstrs = ~uint64_t{0}; ///< run-to-halt cap
    std::string name;          ///< label for reports ("alpha64/fib")
    bool useInterp = false;    ///< interpreter back end instead

    /**
     * Checkpoint chain to restore after load and before running (root
     * first, then deltas).  The worker restores it into the fresh
     * context and calls onStateRestored() on the simulator, so the job
     * resumes mid-program instead of cold-starting.  The pointed-to
     * checkpoints are shared read-only and must outlive run().
     */
    std::vector<const ckpt::Checkpoint *> restore;

    /**
     * Custom job body.  When set, the worker calls it (after any restore)
     * instead of sim->run(maxInstrs); the body fills @p out.run itself
     * and may publish extra stats into the job's registry.  This is how
     * checkpoint-parallel sampling runs a timing-measurement phase per
     * job rather than plain functional execution.
     */
    std::function<void(SimContext &, FunctionalSimulator &,
                       FleetResult &, stats::StatsRegistry &)> body;

    /**
     * Serialized checkpoint containers to decode *inside the job* and
     * restore as a chain (after any direct `restore` pointers).  A
     * damaged container then raises CkptError in the worker and
     * quarantines this one job -- decoding up front in the driver would
     * fault the whole batch.  Shared read-only; must outlive run().
     */
    std::vector<const std::vector<uint8_t> *> restoreImages;

    /**
     * Fault plan to inject into this job (nullptr: no injection and no
     * hook overhead beyond one predictable branch).  The worker owns a
     * per-attempt FaultInjector built from a copy of the plan, so the
     * same plan can be shared across jobs.  Shared read-only.
     */
    const fault::FaultPlan *faultPlan = nullptr;

    /** Treat unknown OS calls as GuestError instead of warn-and--1. */
    bool strictSyscalls = false;

    /**
     * Hot-PC profiling stride in retired instructions; 0 (default)
     * leaves the profiler detached.  Fleet jobs use the deterministic
     * fixed-stride mode only, so the published `profile` group under the
     * job's fleet path is a pure function of the job -- merged stats
     * stay bit-identical across thread counts.
     */
    uint64_t profileStride = 0;
};

/** Batch-wide hardening knobs for SimFleet::run. */
struct FleetPolicy
{
    /** Per-job wall-clock watchdog; 0 disables.  A job past its deadline
     *  raises DeadlineError (checked between run chunks, so granularity
     *  is one chunk).  Custom `body` jobs are not chunked and only get
     *  a post-hoc check. */
    uint64_t deadlineNs = 0;

    /** Total tries per job, including the first (1 = no retries).  Only
     *  ResourceError-class failures are retried. */
    unsigned maxAttempts = 1;

    /** Backoff before retry k is backoffBaseNs << (k-1). */
    uint64_t backoffBaseNs = 1'000'000;

    /** true (default): quarantine failures and run every job to the end.
     *  false: first quarantine aborts the batch; jobs not yet started
     *  are marked skipped (fail-fast trades the thread-count-invariant
     *  skip set for early exit). */
    bool keepGoing = true;

    /** Instructions per run chunk when the watchdog or state-class fault
     *  injection forces chunked execution; plain jobs run uncut. */
    uint64_t watchdogChunk = uint64_t{1} << 20;

    /** Flight-recorder events to attach to a quarantine record
     *  (FleetResult::frTail) when the recorder is armed. */
    size_t frTailEvents = 32;

    /**
     * Record mode (src/replay/): when non-empty, every job without a
     * custom body records a replay tape while it runs, and every
     * quarantined job emits a self-contained repro bundle (tape +
     * flight-recorder tail + manifest) into this directory.  The bundle
     * path lands in FleetResult::bundlePath.
     */
    std::string bundleDir;

    /** With bundleDir set: also emit a bundle for every *successful*
     *  job (cross-back-end identity checks and bench_replay). */
    bool bundleAll = false;
};

/** Outcome of one job. */
struct FleetResult
{
    RunResult run;             ///< status + instructions retired
    uint64_t stateHash = 0;    ///< FNV-1a over pc, registers, OS output
    std::string output;        ///< bytes the job wrote to stdout
    IfaceCounters counters;    ///< interface crossings of this job
    ckpt::CkptCounters ckptCounters; ///< restore work, if job restored
    uint64_t ns = 0;           ///< wall time of this job alone
    std::string error;         ///< non-empty if the job threw
    ErrorKind errorKind = ErrorKind::None; ///< taxonomy class of `error`
    bool quarantined = false;  ///< job failed every permitted attempt
    bool skipped = false;      ///< batch aborted before this job started
    bool deadlineHit = false;  ///< a watchdog deadline expired (any attempt)
    unsigned attempts = 0;     ///< tries consumed (1 = clean first run)
    unsigned faultsInjected = 0; ///< events the job's FaultPlan fired

    /**
     * Postmortem: the worker thread's flight-recorder tail (last
     * FleetPolicy::frTailEvents events, oldest first) captured at the
     * moment of quarantine.  Empty unless the recorder was armed --
     * "what the job was doing when it failed", attached to the record
     * PR 4 introduced.
     */
    std::vector<obs::FrEvent> frTail;

    /** Repro bundle written for this job (FleetPolicy::bundleDir);
     *  empty when record mode was off or emission failed. */
    std::string bundlePath;
};

/** A whole batch: per-job results plus the deterministic stat merge. */
struct FleetReport
{
    std::vector<FleetResult> results;  ///< indexed like the job list
    /** Per-job registries merged in job-index order.  Jobs publish under
     *  "fleet.<isa>.<buildset>", so same-cell jobs accumulate. */
    std::unique_ptr<stats::StatsRegistry> merged;
    /**
     * The per-job registries the merge was folded from, indexed like the
     * job list (a quarantined job's registry is empty).  Exposed so a
     * caller can compare another execution of the same job -- the
     * service daemon's preempt/resume path -- stat-for-stat against the
     * one-shot run; see bench/bench_service.cpp.
     */
    std::vector<std::unique_ptr<stats::StatsRegistry>> jobStats;
    uint64_t wallNs = 0;       ///< batch wall time across the pool
    unsigned threads = 0;      ///< pool width that produced this report

    uint64_t totalInstrs() const;
    /** Aggregate simulated MIPS: total instructions / batch wall time. */
    double aggregateMips() const;
    /** Number of quarantined jobs (the CLI's exit code source). */
    unsigned quarantinedCount() const;
};

/** FNV-1a digest of a context's architectural state plus OS output;
 *  the fleet's cheap bit-identical-result witness. */
uint64_t contextStateHash(const SimContext &ctx, const std::string &output);

/** Registry path a job publishes under: "fleet.<isa>.<buildset>". */
std::string fleetGroupPath(const std::string &isa,
                           const std::string &buildset);

/** Owns a thread pool and runs job batches over it. */
class SimFleet
{
  public:
    /** @p threads workers; 0 means one per hardware thread. */
    explicit SimFleet(unsigned threads = 0);
    ~SimFleet();

    SimFleet(const SimFleet &) = delete;
    SimFleet &operator=(const SimFleet &) = delete;

    unsigned threads() const;

    /** Run every job to completion; results land at the job's index. */
    FleetReport run(const std::vector<FleetJob> &jobs);

    /** Same, with watchdog/retry/degradation policy applied.  Besides
     *  the per-job groups, the merge publishes batch health counters
     *  under "fleet.health" (jobs, quarantined, retries, ...). */
    FleetReport run(const std::vector<FleetJob> &jobs,
                    const FleetPolicy &policy);

  private:
    ThreadPool pool_;
};

} // namespace onespec::parallel

#endif // ONESPEC_PARALLEL_FLEET_HPP
