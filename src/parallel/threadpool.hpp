/**
 * @file
 * A small work-stealing thread pool for the simulation fleet.  Tasks are
 * distributed round-robin across per-worker deques; an idle worker pops
 * from the front of its own deque and steals from the back of a
 * neighbor's when empty, so a long job (a slow ISA's kernel) never
 * strands short jobs queued behind it on the same worker.
 *
 * Scope: this is a *batch* pool -- submit a set of tasks, wait() for all
 * of them, repeat.  Tasks may not submit tasks.  That is exactly the
 * fleet's shape and keeps the synchronization story small enough to
 * audit: one mutex per worker deque, one atomic in-flight count, one
 * condition variable for sleeping workers and one for wait().
 */

#ifndef ONESPEC_PARALLEL_THREADPOOL_HPP
#define ONESPEC_PARALLEL_THREADPOOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace onespec::parallel {

/** Number of useful worker threads on this host (>= 1). */
unsigned hardwareThreads();

/** Fixed-size work-stealing pool. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @p nthreads workers; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned nthreads = 0);
    ~ThreadPool(); ///< waits for queued tasks, then joins

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue @p task (round-robin placement, stealable). */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Drain-and-resize: wait() for the current batch, join every worker,
     * and rebuild the pool @p nthreads wide (0 means hardwareThreads()).
     * The pool is batch-shaped, so between batches is the only moment a
     * resize is meaningful -- and the only moment it is legal: the caller
     * must guarantee no concurrent submit()/wait()/resize() while this
     * runs (the service daemon does so by pausing its dispatcher).  A
     * no-op when the pool is already @p nthreads wide.
     */
    void resize(unsigned nthreads);

  private:
    struct Worker
    {
        std::mutex m;
        std::deque<Task> q;
    };

    void workerLoop(unsigned self);
    bool tryRun(unsigned self);
    void startWorkers(unsigned n);
    void stopWorkers();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex sleepM_;
    std::condition_variable sleepCv_; ///< workers wait here when idle
    std::condition_variable doneCv_;  ///< wait() waits here
    std::atomic<uint64_t> inFlight_{0}; ///< submitted but not finished
    std::atomic<uint64_t> queued_{0};   ///< submitted but not yet dequeued
    std::atomic<uint64_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

} // namespace onespec::parallel

#endif // ONESPEC_PARALLEL_THREADPOOL_HPP
