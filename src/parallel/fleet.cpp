#include "fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

#include "iface/registry.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/pc_profile.hpp"
#include "perf/hostcount.hpp"
#include "replay/bundle.hpp"
#include "replay/recorder.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "stats/trace.hpp"
#include "support/logging.hpp"

namespace onespec::parallel {

uint64_t
contextStateHash(const SimContext &ctx, const std::string &output)
{
    constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = kOffset;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= kPrime;
        }
    };
    const ArchState &st = ctx.state();
    mix(st.pc());
    for (unsigned w = 0; w < st.numWords(); ++w)
        mix(st.rawWord(w));
    for (unsigned char c : output) {
        h ^= c;
        h *= kPrime;
    }
    return h;
}

std::string
fleetGroupPath(const std::string &isa, const std::string &buildset)
{
    return "fleet." + isa + "." + buildset;
}

uint64_t
FleetReport::totalInstrs() const
{
    uint64_t n = 0;
    for (const auto &r : results)
        n += r.run.instrs;
    return n;
}

double
FleetReport::aggregateMips() const
{
    return wallNs ? static_cast<double>(totalInstrs()) * 1000.0 /
                        static_cast<double>(wallNs)
                  : 0.0;
}

unsigned
FleetReport::quarantinedCount() const
{
    unsigned n = 0;
    for (const auto &r : results)
        n += r.quarantined;
    return n;
}

SimFleet::SimFleet(unsigned threads) : pool_(threads) {}

SimFleet::~SimFleet() = default;

unsigned
SimFleet::threads() const
{
    return pool_.size();
}

namespace {

[[noreturn]] void
throwDeadline(const FleetJob &job, uint64_t elapsed_ns, uint64_t deadline_ns)
{
    throw DeadlineError("job '" + job.name + "' exceeded its " +
                            std::to_string(deadline_ns / 1000000) +
                            " ms deadline",
                        elapsed_ns);
}

/**
 * Chunked run loop: used only when a watchdog deadline is set or the
 * job's fault plan schedules state-class events, so the default path
 * stays the single sim->run(maxInstrs) call (chunk boundaries can shift
 * block-level crossing counts, never architectural results).
 */
RunResult
runChunked(const FleetJob &job, uint32_t job_index, const FleetPolicy &pol,
           FunctionalSimulator &sim, SimContext &ctx,
           fault::FaultInjector *inj, replay::TapeRecorder *trec,
           const Stopwatch &sw)
{
    RunResult acc;
    uint64_t remaining = job.maxInstrs;
    while (true) {
        // State-class faults due at this retired count are applied from
        // *outside* the simulator; caches holding stale decodes must go.
        if (inj && inj->applyStateFaults(ctx))
            sim.onStateRestored();
        if (remaining == 0) {
            acc.status = RunStatus::Ok;
            return acc;
        }
        uint64_t chunk = std::min(remaining, std::max<uint64_t>(
                                                 pol.watchdogChunk, 1));
        if (inj) {
            // Stop exactly at the next trigger so the fault lands at
            // instruction N, not somewhere inside the chunk after it.
            uint64_t next = inj->nextStateTrigger();
            if (next != ~uint64_t{0} && next > ctx.instrsRetired())
                chunk = std::min(chunk, next - ctx.instrsRetired());
        }
        RunResult r = sim.run(chunk);
        acc.instrs += r.instrs;
        acc.status = r.status;
        // Cumulative progress mark per chunk: instructions delivered and
        // interface crossings so far on this attempt's timeline.
        ONESPEC_FR_INSTANT(obs::EvType::CrossBatch, job_index, acc.instrs,
                           sim.ifaceCounters().crossings());
        if (r.status != RunStatus::Ok)
            return acc;
        remaining -= std::min<uint64_t>(r.instrs, remaining);
        if (pol.deadlineNs != 0 && sw.elapsedNs() > pol.deadlineNs)
            throwDeadline(job, sw.elapsedNs(), pol.deadlineNs);
        // A cut marks a boundary another segment actually ran past, so
        // note it only once the deadline check has let the loop go on.
        if (trec && remaining > 0)
            trec->noteCut(acc.instrs, replay::CutKind::Chunk);
    }
}

/** Run one job against its own context/simulator/registry. */
void
runJob(const FleetJob &job, uint32_t job_index, const FleetPolicy &pol,
       FleetResult &out, stats::StatsRegistry &reg,
       replay::TapeRecorder *trec)
{
    ONESPEC_ASSERT(job.spec && job.program,
                   "fleet job '", job.name, "' missing spec or program");
    SimContext ctx(*job.spec);
    ctx.load(*job.program);
    std::unique_ptr<FunctionalSimulator> sim;
    if (job.useInterp) {
        sim = makeInterpSimulator(ctx, job.buildset);
    } else {
        sim = SimRegistry::instance().create(ctx, job.buildset);
        if (!sim) {
            throw SpecError("fleet", "no generated simulator for " +
                                         job.spec->props.name + "/" +
                                         job.buildset);
        }
    }
    if (job.strictSyscalls)
        ctx.os().setStrictUnknownSyscalls(true);

    // Deterministic fixed-stride profiling only (see FleetJob): the
    // published profile group must be a pure function of the job.
    std::unique_ptr<obs::PcProfiler> prof;
    if (job.profileStride) {
        obs::PcProfiler::Config pc;
        pc.strideInstrs = job.profileStride;
        prof = std::make_unique<obs::PcProfiler>(*job.spec, pc);
        sim->setProfiler(prof.get());
    }

    std::unique_ptr<fault::FaultInjector> inj;
    if (job.faultPlan && !job.faultPlan->empty()) {
        inj = std::make_unique<fault::FaultInjector>(*job.faultPlan);
        inj->attach(ctx);
    }

    // Attach the tape recorder *after* the injector so the recorded
    // stream is what the guest observed (forced failures included).
    // Declared after inj, so its detach runs first on unwind and the
    // injector's own detach still finds itself installed.
    struct RecorderGuard
    {
        replay::TapeRecorder *rec = nullptr;
        ~RecorderGuard()
        {
            if (rec)
                rec->detach();
        }
    } recGuard;
    if (trec) {
        trec->attach(ctx);
        recGuard.rec = trec;
    }

    if (!job.restore.empty()) {
        ckpt::restoreChain(ctx, job.restore, &out.ckptCounters);
        // The context changed under the simulator; drop cached decodes.
        sim->onStateRestored();
        // The tape must be self-contained: embed the post-restore state
        // so replay needs the bundle alone, not the checkpoint chain.
        if (trec)
            trec->captureInit(ctx);
    }
    if (!job.restoreImages.empty()) {
        // Decode in-job so a damaged container quarantines this job.
        std::vector<ckpt::Checkpoint> owned;
        owned.reserve(job.restoreImages.size());
        for (const auto *img : job.restoreImages) {
            std::vector<uint8_t> bytes = *img;
            if (inj)
                inj->corruptContainer(bytes);
            owned.push_back(ckpt::decode(bytes, &out.ckptCounters));
        }
        std::vector<const ckpt::Checkpoint *> chain;
        chain.reserve(owned.size());
        for (const auto &c : owned)
            chain.push_back(&c);
        ckpt::restoreChain(ctx, chain, &out.ckptCounters);
        sim->onStateRestored();
    }

    Stopwatch sw;
    sw.start();
    if (job.body) {
        job.body(ctx, *sim, out, reg);
        if (pol.deadlineNs != 0 && sw.elapsedNs() > pol.deadlineNs)
            throwDeadline(job, sw.elapsedNs(), pol.deadlineNs);
    } else if (pol.deadlineNs == 0 &&
               (!inj || inj->nextStateTrigger() == ~uint64_t{0})) {
        out.run = sim->run(job.maxInstrs);
    } else {
        out.run = runChunked(job, job_index, pol, *sim, ctx, inj.get(),
                             trec, sw);
    }
    out.ns = sw.elapsedNs();
    out.output = ctx.os().output();
    out.stateHash = contextStateHash(ctx, out.output);
    out.counters = sim->ifaceCounters();
    if (inj)
        out.faultsInjected = inj->firedCount();
    // Final crossing-batch mark: what the attempt delivered in total.
    ONESPEC_FR_INSTANT(obs::EvType::CrossBatch, job_index, out.run.instrs,
                       out.counters.crossings());
    stats::StatGroup &g = reg.group(
        fleetGroupPath(job.spec->props.name, job.buildset));
    sim->publishStats(g);
    if (prof)
        prof->publish(g.group("profile"));
}

/** Build and write this job's repro bundle; emission failure is warned
 *  about, never thrown -- a full disk must not turn into a quarantine
 *  of its own. */
void
emitBundle(const FleetJob &job, uint32_t job_index, const FleetPolicy &pol,
           replay::TapeRecorder &trec, FleetResult &out)
{
    try {
        replay::Bundle b;
        b.tape = trec.takeTape();
        // tailOrEmpty: safe even when the flight recorder was never
        // armed or this worker never recorded (no ring registration).
        b.frTail =
            obs::FlightControl::instance().tailOrEmpty(pol.frTailEvents);
        out.bundlePath =
            replay::writeBundle(pol.bundleDir, job.name, job_index, b);
    } catch (const std::exception &e) {
        ONESPEC_WARN("failed to write repro bundle for job '", job.name,
                     "': ", e.what());
    }
}

/** Attempt loop around runJob: retries (ResourceError only) with
 *  exponential backoff, then quarantine. */
void
runJobWithPolicy(const FleetJob &job, uint32_t job_index,
                 const FleetPolicy &pol, FleetResult &out,
                 std::unique_ptr<stats::StatsRegistry> &reg,
                 std::atomic<bool> &aborted)
{
    unsigned max_attempts = std::max(pol.maxAttempts, 1u);
    // Custom-body jobs drive the simulator themselves, so their
    // nondeterminism surface is unknown: not recordable.
    bool record = !pol.bundleDir.empty() && !job.body;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        out = FleetResult{};
        out.attempts = attempt;
        reg = std::make_unique<stats::StatsRegistry>();
        // Fresh recorder per attempt: a retried attempt re-executes
        // from scratch, so its tape must too.
        std::unique_ptr<replay::TapeRecorder> trec;
        if (record) {
            trec = std::make_unique<replay::TapeRecorder>();
            trec->setJob(job.spec->props.name, job.spec->fingerprint,
                         job.buildset, job.useInterp, job.name,
                         job.maxInstrs, job.strictSyscalls,
                         job.profileStride, pol.watchdogChunk);
            trec->setProgram(*job.program);
            if (job.faultPlan && !job.faultPlan->empty())
                trec->setFaultPlan(*job.faultPlan);
            for (const auto *img : job.restoreImages)
                trec->addRestoreImage(*img);
        }
        std::string msg;
        ErrorKind kind;
        std::string kindContext;
        {
            // One timeline span per attempt; the FrSpan closes it even
            // when runJob throws, carrying the instructions delivered.
            obs::FrSpan span(obs::EvType::Job, job_index, attempt, 0);
            try {
                runJob(job, job_index, pol, out, *reg, trec.get());
                span.setArgs(attempt, out.run.instrs);
                if (trec) {
                    std::ostringstream dump;
                    reg->dump(dump);
                    trec->finishOk(out.run.status, out.stateHash,
                                   out.run.instrs, out.output, dump.str());
                    if (pol.bundleAll)
                        emitBundle(job, job_index, pol, *trec, out);
                }
                return;
            } catch (const DeadlineError &e) {
                out.deadlineHit = true;
                kind = e.kind();
                kindContext = e.context();
                msg = e.what();
                ONESPEC_FR_INSTANT(obs::EvType::Deadline, job_index,
                                   attempt, pol.deadlineNs);
            } catch (const SimError &e) {
                kind = e.kind();
                kindContext = e.context();
                msg = e.what();
            } catch (const std::exception &e) {
                kind = ErrorKind::Internal;
                msg = e.what();
            }
            span.setArgs(attempt, out.run.instrs);
        }
        if (kind == ErrorKind::Resource && attempt < max_attempts) {
            ONESPEC_TRACE("fleet", "retry", job_index, attempt);
            ONESPEC_FR_INSTANT(obs::EvType::Retry, job_index, attempt,
                               static_cast<unsigned>(kind));
            uint64_t backoff_ns = pol.backoffBaseNs << (attempt - 1);
            ONESPEC_FR_BEGIN(obs::EvType::Backoff, job_index, attempt,
                             backoff_ns);
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(backoff_ns));
            ONESPEC_FR_END(obs::EvType::Backoff, job_index, attempt,
                           backoff_ns);
            continue;
        }
        // Quarantine: structured record, no stats contribution (keeps
        // the merged dump a function of job outcomes alone).
        out.quarantined = true;
        out.error = msg;
        out.errorKind = kind;
        out.run.status = RunStatus::Fault;
        reg = std::make_unique<stats::StatsRegistry>();
        ONESPEC_TRACE("fleet", "quarantine", job_index,
                      static_cast<unsigned>(kind));
        ONESPEC_FR_INSTANT(obs::EvType::Quarantine, job_index, attempt,
                           static_cast<unsigned>(kind));
        // Postmortem: attach this worker's recorder tail -- the last
        // pol.frTailEvents things the job was doing, including the
        // quarantine instant just recorded.  tailOrEmpty never touches
        // (or registers) a ring when recording was disarmed.
        out.frTail =
            obs::FlightControl::instance().tailOrEmpty(pol.frTailEvents);
        // Every quarantine ships a repro bundle: tape + postmortem tail.
        if (trec) {
            trec->finishError(kind, kindContext, msg);
            emitBundle(job, job_index, pol, *trec, out);
        }
        if (!pol.keepGoing)
            aborted.store(true, std::memory_order_relaxed);
        return;
    }
}

} // namespace

FleetReport
SimFleet::run(const std::vector<FleetJob> &jobs)
{
    return run(jobs, FleetPolicy{});
}

FleetReport
SimFleet::run(const std::vector<FleetJob> &jobs, const FleetPolicy &policy)
{
    FleetReport report;
    report.threads = pool_.size();
    report.results.resize(jobs.size());
    report.merged = std::make_unique<stats::StatsRegistry>();

    // One registry per job, written only by the worker that runs the
    // job -- no locking anywhere near the simulation loop.  unique_ptr
    // so a retry can start from a genuinely fresh registry.  The vector
    // lives in the report (FleetReport::jobStats) so callers can audit
    // per-job stats after the merge.
    std::vector<std::unique_ptr<stats::StatsRegistry>> &jobStats =
        report.jobStats;
    jobStats.resize(jobs.size());
    for (auto &p : jobStats)
        p = std::make_unique<stats::StatsRegistry>();

    std::atomic<bool> aborted{false};

    Stopwatch sw;
    sw.start();
    for (size_t j = 0; j < jobs.size(); ++j) {
        pool_.submit([&jobs, &report, &jobStats, &policy, &aborted, j] {
            FleetResult &out = report.results[j];
            if (aborted.load(std::memory_order_relaxed)) {
                out.skipped = true;
                return;
            }
            try {
                runJobWithPolicy(jobs[j], static_cast<uint32_t>(j),
                                 policy, out, jobStats[j], aborted);
            } catch (const std::exception &e) {
                // runJobWithPolicy contains all expected failures; this
                // is the last-resort belt so one job can never take the
                // pool down.
                out.quarantined = true;
                out.error = e.what();
                out.errorKind = ErrorKind::Internal;
                out.run.status = RunStatus::Fault;
            }
        });
    }
    pool_.wait();
    report.wallNs = sw.elapsedNs();

    // Deterministic merge: job-index order, independent of which worker
    // ran what when.  Counter addition is commutative, so the *values*
    // equal a serial run; fixing the order fixes the dump order too.
    for (const auto &reg : jobStats)
        stats::mergeInto(*report.merged, *reg);

    // Batch health, computed from the results array (job-index order,
    // so the dump stays thread-count invariant).
    uint64_t quarantined = 0, retries = 0, deadline = 0, skipped = 0;
    uint64_t injected = 0;
    uint64_t byKind[5] = {};
    for (const auto &r : report.results) {
        quarantined += r.quarantined;
        retries += r.attempts > 1 ? r.attempts - 1 : 0;
        deadline += r.deadlineHit;
        skipped += r.skipped;
        injected += r.faultsInjected;
        byKind[static_cast<unsigned>(r.errorKind)] += r.quarantined;
    }
    auto &g = report.merged->group("fleet.health");
    g.counter("jobs", "jobs submitted to the batch").add(jobs.size());
    g.counter("quarantined", "jobs that failed every permitted attempt")
        .add(quarantined);
    g.counter("retries", "extra attempts consumed by ResourceError retries")
        .add(retries);
    g.counter("deadline_exceeded", "jobs that hit the watchdog deadline")
        .add(deadline);
    g.counter("skipped", "jobs never started (batch aborted)").add(skipped);
    g.counter("faults_injected", "fault-plan events fired across the batch")
        .add(injected);
    g.counter("errors_guest", "quarantines classed GuestError")
        .add(byKind[static_cast<unsigned>(ErrorKind::Guest)]);
    g.counter("errors_spec", "quarantines classed SpecError")
        .add(byKind[static_cast<unsigned>(ErrorKind::Spec)]);
    g.counter("errors_resource", "quarantines classed ResourceError")
        .add(byKind[static_cast<unsigned>(ErrorKind::Resource)]);
    g.counter("errors_internal", "quarantines from non-SimError exceptions")
        .add(byKind[static_cast<unsigned>(ErrorKind::Internal)]);
    return report;
}

} // namespace onespec::parallel
