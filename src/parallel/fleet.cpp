#include "fleet.hpp"

#include <exception>

#include "iface/registry.hpp"
#include "perf/hostcount.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "support/logging.hpp"

namespace onespec::parallel {

uint64_t
contextStateHash(const SimContext &ctx, const std::string &output)
{
    constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = kOffset;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= kPrime;
        }
    };
    const ArchState &st = ctx.state();
    mix(st.pc());
    for (unsigned w = 0; w < st.numWords(); ++w)
        mix(st.rawWord(w));
    for (unsigned char c : output) {
        h ^= c;
        h *= kPrime;
    }
    return h;
}

std::string
fleetGroupPath(const std::string &isa, const std::string &buildset)
{
    return "fleet." + isa + "." + buildset;
}

uint64_t
FleetReport::totalInstrs() const
{
    uint64_t n = 0;
    for (const auto &r : results)
        n += r.run.instrs;
    return n;
}

double
FleetReport::aggregateMips() const
{
    return wallNs ? static_cast<double>(totalInstrs()) * 1000.0 /
                        static_cast<double>(wallNs)
                  : 0.0;
}

SimFleet::SimFleet(unsigned threads) : pool_(threads) {}

SimFleet::~SimFleet() = default;

unsigned
SimFleet::threads() const
{
    return pool_.size();
}

namespace {

/** Run one job against its own context/simulator/registry. */
void
runJob(const FleetJob &job, FleetResult &out, stats::StatsRegistry &reg)
{
    ONESPEC_ASSERT(job.spec && job.program,
                   "fleet job '", job.name, "' missing spec or program");
    SimContext ctx(*job.spec);
    ctx.load(*job.program);
    std::unique_ptr<FunctionalSimulator> sim;
    if (job.useInterp) {
        sim = makeInterpSimulator(ctx, job.buildset);
    } else {
        sim = SimRegistry::instance().create(ctx, job.buildset);
        ONESPEC_ASSERT(sim, "no generated simulator for ",
                       job.spec->props.name, "/", job.buildset);
    }
    if (!job.restore.empty()) {
        ckpt::restoreChain(ctx, job.restore, &out.ckptCounters);
        // The context changed under the simulator; drop cached decodes.
        sim->onStateRestored();
    }
    Stopwatch sw;
    sw.start();
    if (job.body)
        job.body(ctx, *sim, out, reg);
    else
        out.run = sim->run(job.maxInstrs);
    out.ns = sw.elapsedNs();
    out.output = ctx.os().output();
    out.stateHash = contextStateHash(ctx, out.output);
    out.counters = sim->ifaceCounters();
    sim->publishStats(reg.group(
        fleetGroupPath(job.spec->props.name, job.buildset)));
}

} // namespace

FleetReport
SimFleet::run(const std::vector<FleetJob> &jobs)
{
    FleetReport report;
    report.threads = pool_.size();
    report.results.resize(jobs.size());
    report.merged = std::make_unique<stats::StatsRegistry>();

    // One registry per job, owned here, written only by the worker that
    // runs the job -- no locking anywhere near the simulation loop.
    std::vector<stats::StatsRegistry> jobStats(jobs.size());

    Stopwatch sw;
    sw.start();
    for (size_t j = 0; j < jobs.size(); ++j) {
        pool_.submit([&jobs, &report, &jobStats, j] {
            try {
                runJob(jobs[j], report.results[j], jobStats[j]);
            } catch (const std::exception &e) {
                report.results[j].error = e.what();
                report.results[j].run.status = RunStatus::Fault;
            }
        });
    }
    pool_.wait();
    report.wallNs = sw.elapsedNs();

    // Deterministic merge: job-index order, independent of which worker
    // ran what when.  Counter addition is commutative, so the *values*
    // equal a serial run; fixing the order fixes the dump order too.
    for (const auto &reg : jobStats)
        stats::mergeInto(*report.merged, reg);
    return report;
}

} // namespace onespec::parallel
