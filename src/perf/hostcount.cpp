#include "hostcount.hpp"

#include <cstring>

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace onespec {

HostInstrCounter::HostInstrCounter()
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = PERF_COUNT_HW_INSTRUCTIONS;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    fd_ = static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

HostInstrCounter::~HostInstrCounter()
{
    if (fd_ >= 0)
        close(fd_);
}

void
HostInstrCounter::start()
{
    if (fd_ < 0)
        return;
    ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
}

uint64_t
HostInstrCounter::stop()
{
    if (fd_ < 0)
        return 0;
    ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
    uint64_t count = 0;
    if (read(fd_, &count, sizeof(count)) != sizeof(count))
        return 0;
    return count;
}

} // namespace onespec
