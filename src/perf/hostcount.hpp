/**
 * @file
 * Host-cost measurement for the Table III reproduction.  The paper
 * reports detail costs in *host instructions per simulated instruction*;
 * we count retired host instructions with perf_event_open when the
 * container permits it, and otherwise fall back to wall-clock
 * nanoseconds (reported in clearly-labeled time units).
 */

#ifndef ONESPEC_PERF_HOSTCOUNT_HPP
#define ONESPEC_PERF_HOSTCOUNT_HPP

#include <chrono>
#include <cstdint>

#include "stats/stats.hpp"

namespace onespec {

/** Counts retired host instructions for the calling thread. */
class HostInstrCounter
{
  public:
    HostInstrCounter();
    ~HostInstrCounter();

    HostInstrCounter(const HostInstrCounter &) = delete;
    HostInstrCounter &operator=(const HostInstrCounter &) = delete;

    /** True if the hardware counter could be opened. */
    bool available() const { return fd_ >= 0; }

    void start();
    /** Host instructions retired since start(); 0 if unavailable. */
    uint64_t stop();

  private:
    int fd_ = -1;
};

/**
 * Record one host-cost measurement into registry group @p g: retired
 * host instructions, the simulated instructions they paid for, and a
 * host-instrs-per-sim-instr formula (the paper's Table III unit).
 */
inline void
publishHostCost(stats::StatGroup &g, uint64_t host_instrs,
                uint64_t sim_instrs)
{
    stats::Counter &host =
        g.counter("host_instrs", "host instructions retired");
    stats::Counter &sim =
        g.counter("sim_instrs", "simulated instructions measured");
    host.add(host_instrs);
    sim.add(sim_instrs);
    g.formula("host_per_sim",
              "host instructions per simulated instruction",
              [&host, &sim] {
                  uint64_t s = sim.value();
                  return s ? static_cast<double>(host.value()) /
                                 static_cast<double>(s)
                           : 0.0;
              });
}

/** Simple steady-clock stopwatch. */
class Stopwatch
{
  public:
    void start() { t0_ = std::chrono::steady_clock::now(); }

    /** Elapsed nanoseconds since start(). */
    uint64_t
    elapsedNs() const
    {
        auto dt = std::chrono::steady_clock::now() - t0_;
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count());
    }

  private:
    std::chrono::steady_clock::time_point t0_;
};

} // namespace onespec

#endif // ONESPEC_PERF_HOSTCOUNT_HPP
