#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "support/sim_error.hpp"

namespace onespec::service {

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
ServiceClient::connect(const std::string &socket_path,
                       const std::string &tenant)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ResourceError("service", "socket() failed: " +
                                           std::string(strerror(errno)));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw ResourceError("service",
                            "socket path too long: " + socket_path);
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // EINTR retry: a signal (profiler tick, SIGCHLD from a test harness)
    // landing mid-connect must not surface as a connection failure.
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        int e = errno;
        ::close(fd);
        throw ResourceError("service", "cannot connect to " + socket_path +
                                           ": " + strerror(e));
    }
    fd_ = fd;

    Hello h;
    h.tenant = tenant;
    h.monoNs = obs::FlightControl::instance().nowNs();
    writeFrame(fd_, FrameType::Hello, encodeHello(h));
    Frame f = readOrThrow("HelloAck");
    if (f.type != FrameType::HelloAck)
        throw WireError("expected HelloAck, got frame type " +
                        std::to_string(static_cast<unsigned>(f.type)));
    hello_ = decodeHelloAck(f.payload);
    if (hello_.version != kProtocolVersion)
        throw WireError("server speaks protocol version " +
                        std::to_string(hello_.version) + ", this client " +
                        std::to_string(kProtocolVersion));

    // Clock alignment: the ack carries the daemon's monotonic clock at
    // ack time; sampling ours now brackets it within one round trip, so
    // offset = daemon_now - client_now aligns the two flight-recorder
    // timebases to well under the spans being merged.
    const uint64_t now = obs::FlightControl::instance().nowNs();
    daemonClockOffsetNs_ = static_cast<int64_t>(hello_.monoNs) -
                           static_cast<int64_t>(now);
    // Trace-id nonce: distinguishes this connection's ids from another
    // client's in a merged timeline.  Mixing the clock and the pid is
    // enough -- ids only need to be unique, not unguessable.
    traceNonce_ = static_cast<uint32_t>(
        (now >> 10) ^ (now << 7) ^
        static_cast<uint64_t>(::getpid()) * 0x9E3779B9ull);
    if (!traceNonce_)
        traceNonce_ = 1;
}

Frame
ServiceClient::readOrThrow(const char *waiting_for)
{
    Frame f;
    if (!readFrame(fd_, f))
        throw WireError(std::string("server closed the connection while "
                                    "this client was waiting for ") +
                        waiting_for);
    return f;
}

ClientEvent
ServiceClient::toEvent(Frame &&f)
{
    ClientEvent ev;
    switch (f.type) {
    case FrameType::Status:
        ev.kind = ClientEvent::Kind::Status;
        ev.status = decodeStatus(f.payload);
        noteStatus(ev.status);
        break;
    case FrameType::Result:
        ev.kind = ClientEvent::Kind::Result;
        ev.result = decodeResult(f.payload);
        noteResult(ev.result.jobId);
        break;
    case FrameType::Statsz:
        ev.kind = ClientEvent::Kind::Statsz;
        ev.statszJson = decodeStatsz(f.payload);
        break;
    case FrameType::ShutdownAck:
        ev.kind = ClientEvent::Kind::ShutdownAck;
        break;
    default:
        throw WireError("unexpected frame type " +
                        std::to_string(static_cast<unsigned>(f.type)) +
                        " in the server event stream");
    }
    return ev;
}

/** Client-side trace bookkeeping, called from toEvent() as streamed
 *  frames are decoded (whichever call pulled them off the wire). */
void
ServiceClient::noteStatus(const JobStatus &st)
{
    auto it = jobTrace_.find(st.jobId);
    if (it == jobTrace_.end())
        return;
    JobTrace &jt = it->second;
    const uint64_t now = obs::FlightControl::instance().nowNs();
    if (!jt.firstEventNs)
        jt.firstEventNs = now;
    if (!jt.runningNoted && (st.phase == JobPhase::Running ||
                             st.phase == JobPhase::Resumed)) {
        jt.runningNoted = true;
        // As seen from the client: admission verdict -> first Running.
        ONESPEC_FR_INSTANT(obs::EvType::QueueWait, jt.ctr,
                           now > jt.acceptNs ? now - jt.acceptNs : 0,
                           static_cast<uint32_t>(jt.traceId));
    }
}

void
ServiceClient::noteResult(uint64_t job_id)
{
    auto it = jobTrace_.find(job_id);
    if (it == jobTrace_.end())
        return;
    JobTrace &jt = it->second;
    const uint64_t now = obs::FlightControl::instance().nowNs();
    const uint64_t from = jt.firstEventNs ? jt.firstEventNs : jt.acceptNs;
    ONESPEC_FR_INSTANT(obs::EvType::Stream, jt.ctr,
                       now > from ? now - from : 0,
                       static_cast<uint32_t>(jt.traceId));
    jobTrace_.erase(it); // labels keep the name/id by ctr
}

SubmitOutcome
ServiceClient::submit(const JobSpec &spec)
{
    // Mint the wire trace context (header comment on setTraceContext).
    uint64_t traceId = spec.traceId;
    uint32_t ctr = 0;
    if (traceContext_ && traceId == 0) {
        ctr = ++traceCtr_;
        traceId = (static_cast<uint64_t>(traceNonce_) << 32) | ctr;
        traceIds_[ctr] = traceId;
        if (jobNames_.size() <= ctr)
            jobNames_.resize(ctr + 1);
        jobNames_[ctr] = spec.name;
    }
    // The Submit span covers send -> admission verdict; the client is
    // single-threaded, so the span nests cleanly around any streamed
    // frames for other jobs decoded while waiting.
    obs::FrSpan span(obs::EvType::Submit, ctr,
                     static_cast<uint32_t>(traceId), traceId >> 32);
    if (traceId != spec.traceId) {
        JobSpec traced = spec;
        traced.traceId = traceId;
        writeFrame(fd_, FrameType::Submit, encodeSubmit(traced));
    } else {
        writeFrame(fd_, FrameType::Submit, encodeSubmit(spec));
    }
    // The admission verdict is the next Accept/Reject on the wire;
    // Status/Result frames for other jobs may arrive first and are
    // queued in order.
    while (true) {
        Frame f = readOrThrow("an admission verdict");
        if (f.type == FrameType::Accept) {
            SubmitOutcome o;
            o.accepted = true;
            o.jobId = decodeAccept(f.payload);
            if (ctr) {
                JobTrace jt;
                jt.ctr = ctr;
                jt.traceId = traceId;
                jt.acceptNs = obs::FlightControl::instance().nowNs();
                jobTrace_[o.jobId] = jt;
            }
            return o;
        }
        if (f.type == FrameType::Reject) {
            SubmitOutcome o;
            o.reject = decodeReject(f.payload);
            return o;
        }
        pending_.push_back(toEvent(std::move(f)));
    }
}

bool
ServiceClient::next(ClientEvent &out)
{
    if (!pending_.empty()) {
        out = std::move(pending_.front());
        pending_.pop_front();
        return true;
    }
    Frame f;
    if (!readFrame(fd_, f))
        return false;
    out = toEvent(std::move(f));
    return true;
}

bool
ServiceClient::poll(ClientEvent &out, int timeout_ms)
{
    if (!pending_.empty()) {
        out = std::move(pending_.front());
        pending_.pop_front();
        return true;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // EINTR retry: treat an interrupted wait like a wakeup with nothing
    // ready and poll again (the harmless over-wait beats a spurious
    // ResourceError in the middle of a result stream).
    int rc;
    do {
        pfd.revents = 0;
        rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        throw ResourceError("service", std::string("poll() failed: ") +
                                           strerror(errno));
    if (rc == 0)
        return false;
    Frame f = readOrThrow("streamed events");
    out = toEvent(std::move(f));
    return true;
}

std::string
ServiceClient::statsz()
{
    writeFrame(fd_, FrameType::StatszReq, {});
    while (true) {
        Frame f = readOrThrow("Statsz");
        if (f.type == FrameType::Statsz)
            return decodeStatsz(f.payload);
        pending_.push_back(toEvent(std::move(f)));
    }
}

std::string
ServiceClient::metricsz()
{
    writeFrame(fd_, FrameType::MetricszReq, {});
    while (true) {
        Frame f = readOrThrow("Metricsz");
        if (f.type == FrameType::Metricsz)
            return decodeMetricsz(f.payload);
        pending_.push_back(toEvent(std::move(f)));
    }
}

void
ServiceClient::fillTimelineLabels(obs::TimelineLabels &labels) const
{
    labels.processName = "onespec-sub";
    for (size_t i = 0; i < jobNames_.size(); ++i) {
        if (jobNames_[i].empty())
            continue;
        if (labels.jobNames.size() <= i)
            labels.jobNames.resize(i + 1);
        labels.jobNames[i] = jobNames_[i];
    }
    labels.traceIds.insert(traceIds_.begin(), traceIds_.end());
    labels.otherData.emplace_back("daemon_clock_offset_ns",
                                  daemonClockOffsetNs_);
}

BundleData
ServiceClient::fetchBundle(uint64_t job_id)
{
    writeFrame(fd_, FrameType::BundleReq, encodeBundleReq(job_id));
    while (true) {
        Frame f = readOrThrow("Bundle");
        if (f.type == FrameType::Bundle)
            return decodeBundleData(f.payload);
        pending_.push_back(toEvent(std::move(f)));
    }
}

void
ServiceClient::shutdownServer()
{
    writeFrame(fd_, FrameType::Shutdown, {});
    while (true) {
        Frame f = readOrThrow("ShutdownAck");
        if (f.type == FrameType::ShutdownAck)
            return;
        pending_.push_back(toEvent(std::move(f)));
    }
}

} // namespace onespec::service
