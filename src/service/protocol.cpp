#include "service/protocol.hpp"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace onespec::service {

namespace {

/** Frame header: u32 payload_len | u8 type | u8 version | u16 reserved. */
constexpr size_t kHeaderLen = 8;

/** Read exactly @p n bytes; returns bytes read before EOF (EINTR-safe). */
size_t
readFull(int fd, uint8_t *dst, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, dst + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(std::string("read failed: ") +
                            ::strerror(errno));
        }
        if (r == 0)
            break;
        got += static_cast<size_t>(r);
    }
    return got;
}

void
writeFull(int fd, const uint8_t *src, size_t n)
{
    size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a peer that disconnected mid-stream must surface
        // as EPIPE (one dead connection), not SIGPIPE (a dead daemon).
        ssize_t r = ::send(fd, src + put, n - put, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw WireError(std::string("write failed: ") +
                            ::strerror(errno));
        }
        put += static_cast<size_t>(r);
    }
}

} // namespace

void
WireWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

uint8_t
WireReader::u8()
{
    if (off + 1 > len)
        throw WireError("payload truncated (u8)");
    return p[off++];
}

uint32_t
WireReader::u32()
{
    if (off + 4 > len)
        throw WireError("payload truncated (u32)");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[off + i]) << (8 * i);
    off += 4;
    return v;
}

uint64_t
WireReader::u64()
{
    if (off + 8 > len)
        throw WireError("payload truncated (u64)");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[off + i]) << (8 * i);
    off += 8;
    return v;
}

std::string
WireReader::str()
{
    uint32_t n = u32();
    if (off + n > len)
        throw WireError("payload truncated (string of " +
                        std::to_string(n) + " bytes)");
    std::string s(reinterpret_cast<const char *>(p + off), n);
    off += n;
    return s;
}

void
WireReader::expectEnd(const char *what) const
{
    if (off != len)
        throw WireError(std::string(what) + " payload has " +
                        std::to_string(len - off) + " trailing bytes");
}

bool
readFrame(int fd, Frame &out)
{
    uint8_t hdr[kHeaderLen];
    size_t got = readFull(fd, hdr, kHeaderLen);
    if (got == 0)
        return false; // clean EOF between frames
    if (got < kHeaderLen)
        throw WireError("connection closed mid-header");
    uint32_t plen = 0;
    for (int i = 0; i < 4; ++i)
        plen |= static_cast<uint32_t>(hdr[i]) << (8 * i);
    uint8_t type = hdr[4];
    uint8_t version = hdr[5];
    if (version != kProtocolVersion)
        throw WireError("protocol version " + std::to_string(version) +
                        " (this build speaks " +
                        std::to_string(kProtocolVersion) + ")");
    if (plen > kMaxFrameLen)
        throw WireError("frame payload of " + std::to_string(plen) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFrameLen) + " limit");
    out.type = static_cast<FrameType>(type);
    out.payload.resize(plen);
    if (plen && readFull(fd, out.payload.data(), plen) != plen)
        throw WireError("connection closed mid-payload");
    return true;
}

void
writeFrame(int fd, FrameType type, const std::vector<uint8_t> &payload)
{
    uint8_t hdr[kHeaderLen];
    uint32_t plen = static_cast<uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        hdr[i] = static_cast<uint8_t>(plen >> (8 * i));
    hdr[4] = static_cast<uint8_t>(type);
    hdr[5] = static_cast<uint8_t>(kProtocolVersion);
    hdr[6] = 0;
    hdr[7] = 0;
    writeFull(fd, hdr, kHeaderLen);
    if (!payload.empty())
        writeFull(fd, payload.data(), payload.size());
}

const char *
rejectCodeName(RejectCode c)
{
    switch (c) {
    case RejectCode::QueueFull:
        return "queue_full";
    case RejectCode::TenantQuota:
        return "tenant_quota";
    case RejectCode::Draining:
        return "draining";
    case RejectCode::BadRequest:
        return "bad_request";
    }
    return "unknown";
}

const char *
jobPhaseName(JobPhase p)
{
    switch (p) {
    case JobPhase::Queued:
        return "queued";
    case JobPhase::Running:
        return "running";
    case JobPhase::Preempted:
        return "preempted";
    case JobPhase::Resumed:
        return "resumed";
    case JobPhase::Retrying:
        return "retrying";
    }
    return "unknown";
}

std::vector<uint8_t>
encodeHello(const Hello &m)
{
    WireWriter w;
    w.u32(m.version);
    w.str(m.tenant);
    w.u64(m.monoNs);
    return std::move(w.buf);
}

Hello
decodeHello(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    Hello m;
    m.version = r.u32();
    m.tenant = r.str();
    m.monoNs = r.u64();
    r.expectEnd("Hello");
    return m;
}

std::vector<uint8_t>
encodeHelloAck(const HelloAck &m)
{
    WireWriter w;
    w.u32(m.version);
    w.u32(m.queueDepth);
    w.u32(m.tenantQuota);
    w.str(m.serverName);
    w.u64(m.monoNs);
    return std::move(w.buf);
}

HelloAck
decodeHelloAck(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    HelloAck m;
    m.version = r.u32();
    m.queueDepth = r.u32();
    m.tenantQuota = r.u32();
    m.serverName = r.str();
    m.monoNs = r.u64();
    r.expectEnd("HelloAck");
    return m;
}

std::vector<uint8_t>
encodeSubmit(const JobSpec &m)
{
    WireWriter w;
    w.str(m.name);
    w.str(m.isa);
    w.str(m.kernel);
    w.u64(m.param);
    w.str(m.buildset);
    w.u8(m.useInterp ? 1 : 0);
    w.u64(m.maxInstrs);
    w.u64(m.sliceInstrs);
    w.u8(m.coldStats ? 1 : 0);
    w.u8(m.strictSyscalls ? 1 : 0);
    w.u64(m.profileStride);
    w.u64(m.deadlineNs);
    w.u32(m.maxAttempts);
    w.u64(m.traceId);
    return std::move(w.buf);
}

JobSpec
decodeSubmit(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    JobSpec m;
    m.name = r.str();
    m.isa = r.str();
    m.kernel = r.str();
    m.param = r.u64();
    m.buildset = r.str();
    m.useInterp = r.u8() != 0;
    m.maxInstrs = r.u64();
    m.sliceInstrs = r.u64();
    m.coldStats = r.u8() != 0;
    m.strictSyscalls = r.u8() != 0;
    m.profileStride = r.u64();
    m.deadlineNs = r.u64();
    m.maxAttempts = r.u32();
    m.traceId = r.u64();
    r.expectEnd("Submit");
    return m;
}

std::vector<uint8_t>
encodeAccept(uint64_t job_id)
{
    WireWriter w;
    w.u64(job_id);
    return std::move(w.buf);
}

uint64_t
decodeAccept(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    uint64_t id = r.u64();
    r.expectEnd("Accept");
    return id;
}

std::vector<uint8_t>
encodeReject(const Reject &m)
{
    WireWriter w;
    w.u32(static_cast<uint32_t>(m.code));
    w.str(m.reason);
    return std::move(w.buf);
}

Reject
decodeReject(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    Reject m;
    m.code = static_cast<RejectCode>(r.u32());
    m.reason = r.str();
    r.expectEnd("Reject");
    return m;
}

std::vector<uint8_t>
encodeStatus(const JobStatus &m)
{
    WireWriter w;
    w.u64(m.jobId);
    w.u8(static_cast<uint8_t>(m.phase));
    w.u32(m.attempt);
    w.u64(m.instrsDone);
    return std::move(w.buf);
}

JobStatus
decodeStatus(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    JobStatus m;
    m.jobId = r.u64();
    m.phase = static_cast<JobPhase>(r.u8());
    m.attempt = r.u32();
    m.instrsDone = r.u64();
    r.expectEnd("Status");
    return m;
}

std::vector<uint8_t>
encodeResult(const JobResult &m)
{
    WireWriter w;
    w.u64(m.jobId);
    w.str(m.name);
    w.u8(m.quarantined ? 1 : 0);
    w.u8(static_cast<uint8_t>(m.runStatus));
    w.u64(m.instrs);
    w.u64(m.stateHash);
    w.u64(m.ns);
    w.str(m.output);
    w.u8(static_cast<uint8_t>(m.errorKind));
    w.str(m.error);
    w.u32(m.attempts);
    w.u64(m.preemptions);
    // IfaceCounters: the eight fields, fixed order (docs/SERVICE.md).
    w.u64(m.counters.executeCalls);
    w.u64(m.counters.executeBlockCalls);
    w.u64(m.counters.stepCalls);
    w.u64(m.counters.customCalls);
    w.u64(m.counters.fastForwardCalls);
    w.u64(m.counters.undoCalls);
    w.u64(m.counters.instrs);
    w.u64(m.counters.undoneInstrs);
    w.str(m.statsDump);
    // Flight-recorder tail: count + 32-byte events in FrEvent field
    // order (tsNs, a0, a1, id, type, phase, pad).
    w.u32(static_cast<uint32_t>(m.frTail.size()));
    for (const obs::FrEvent &ev : m.frTail) {
        w.u64(ev.tsNs);
        w.u64(ev.a0);
        w.u64(ev.a1);
        w.u32(ev.id);
        w.u8(static_cast<uint8_t>(ev.type));
        w.u8(static_cast<uint8_t>(ev.phase));
        w.u8(0);
        w.u8(0);
    }
    return std::move(w.buf);
}

JobResult
decodeResult(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    JobResult m;
    m.jobId = r.u64();
    m.name = r.str();
    m.quarantined = r.u8() != 0;
    m.runStatus = static_cast<RunStatus>(r.u8());
    m.instrs = r.u64();
    m.stateHash = r.u64();
    m.ns = r.u64();
    m.output = r.str();
    m.errorKind = static_cast<ErrorKind>(r.u8());
    m.error = r.str();
    m.attempts = r.u32();
    m.preemptions = r.u64();
    m.counters.executeCalls = r.u64();
    m.counters.executeBlockCalls = r.u64();
    m.counters.stepCalls = r.u64();
    m.counters.customCalls = r.u64();
    m.counters.fastForwardCalls = r.u64();
    m.counters.undoCalls = r.u64();
    m.counters.instrs = r.u64();
    m.counters.undoneInstrs = r.u64();
    m.statsDump = r.str();
    uint32_t tail = r.u32();
    m.frTail.reserve(tail);
    for (uint32_t i = 0; i < tail; ++i) {
        obs::FrEvent ev;
        ev.tsNs = r.u64();
        ev.a0 = r.u64();
        ev.a1 = r.u64();
        ev.id = r.u32();
        ev.type = static_cast<obs::EvType>(r.u8());
        ev.phase = static_cast<obs::EvPhase>(r.u8());
        r.u8();
        r.u8();
        m.frTail.push_back(ev);
    }
    r.expectEnd("Result");
    return m;
}

std::vector<uint8_t>
encodeStatsz(const std::string &json)
{
    WireWriter w;
    w.str(json);
    return std::move(w.buf);
}

std::string
decodeStatsz(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    std::string s = r.str();
    r.expectEnd("Statsz");
    return s;
}

std::vector<uint8_t>
encodeBundleReq(uint64_t job_id)
{
    WireWriter w;
    w.u64(job_id);
    return std::move(w.buf);
}

uint64_t
decodeBundleReq(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    uint64_t id = r.u64();
    r.expectEnd("BundleReq");
    return id;
}

std::vector<uint8_t>
encodeBundleData(const BundleData &m)
{
    WireWriter w;
    w.u64(m.jobId);
    w.u8(m.found ? 1 : 0);
    w.u64(m.bytes.size());
    w.buf.insert(w.buf.end(), m.bytes.begin(), m.bytes.end());
    return std::move(w.buf);
}

BundleData
decodeBundleData(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    BundleData m;
    m.jobId = r.u64();
    m.found = r.u8() != 0;
    uint64_t n = r.u64();
    if (r.off + n > r.len)
        throw WireError("payload truncated (bundle of " +
                        std::to_string(n) + " bytes)");
    m.bytes.assign(r.p + r.off, r.p + r.off + n);
    r.off += n;
    r.expectEnd("Bundle");
    return m;
}

std::vector<uint8_t>
encodeMetricsz(const std::string &text)
{
    WireWriter w;
    w.str(text);
    return std::move(w.buf);
}

std::string
decodeMetricsz(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    std::string s = r.str();
    r.expectEnd("Metricsz");
    return s;
}

} // namespace onespec::service
