/**
 * @file
 * The onespec service wire protocol: a small, versioned, length-prefixed
 * frame format spoken over a Unix-domain stream socket between
 * `onespec-sub` (client) and `onespec-served` (daemon).  The byte-level
 * layout is normative in docs/SERVICE.md; this header is its one
 * implementation, used by both sides so they can never drift.
 *
 * Every frame is
 *
 *     u32 payload_len | u8 type | u8 version | u16 reserved | payload
 *
 * with all multi-byte fields little-endian, written byte-by-byte exactly
 * like the checkpoint container code, so the format is host-endianness
 * independent.  Strings travel as u32 length + raw bytes.  A frame with
 * a bad version, an unknown type in a context that requires one, or a
 * payload that under- or over-runs its declared length raises WireError
 * (a GuestError: the *peer* supplied bad bytes, so the connection is
 * dropped and the process survives).
 */

#ifndef ONESPEC_SERVICE_PROTOCOL_HPP
#define ONESPEC_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "iface/functional_simulator.hpp"
#include "obs/flight_recorder.hpp"
#include "support/sim_error.hpp"

namespace onespec::service {

/** Protocol version this build speaks (checked in Hello/HelloAck and on
 *  every frame header).  v2 added the wire-propagated trace context
 *  (JobSpec.traceId, Hello/HelloAck monoNs) and the MetricszReq/Metricsz
 *  frame pair; v1 peers are rejected with a typed WireError naming both
 *  versions. */
constexpr uint32_t kProtocolVersion = 2;

/** Upper bound on a frame payload; anything larger is a damaged or
 *  hostile peer, not a real message. */
constexpr uint32_t kMaxFrameLen = 64u << 20;

/** Malformed bytes from the peer (truncated frame, bad version, string
 *  overrun).  GuestError class: drop the connection, not the process. */
class WireError : public GuestError
{
  public:
    explicit WireError(const std::string &msg) : GuestError("wire", msg) {}
};

/** Frame types (docs/SERVICE.md, "Frame types"). */
enum class FrameType : uint8_t
{
    Hello = 1,       ///< client -> daemon: version + tenant name
    HelloAck = 2,    ///< daemon -> client: version + limits
    Submit = 3,      ///< client -> daemon: one JobSpec
    Accept = 4,      ///< daemon -> client: job admitted, here is its id
    Reject = 5,      ///< daemon -> client: admission refused + reason
    Status = 6,      ///< daemon -> client: job phase change (streamed)
    Result = 7,      ///< daemon -> client: final job outcome (streamed)
    StatszReq = 8,   ///< client -> daemon: dump service stats
    Statsz = 9,      ///< daemon -> client: service stats as JSON text
    Shutdown = 10,    ///< client -> daemon: drain and exit
    ShutdownAck = 11, ///< daemon -> client: drained; exiting
    BundleReq = 12,   ///< client -> daemon: fetch a job's repro bundle
    Bundle = 13,      ///< daemon -> client: bundle bytes (or not-found)
    MetricszReq = 14, ///< client -> daemon: scrape the metrics ring
    Metricsz = 15     ///< daemon -> client: OpenMetrics text exposition
};

/** One parsed frame. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------- wire IO

/**
 * Read one frame (blocking).  Returns false on clean EOF before any
 * header byte; throws WireError on a truncated header/payload, a
 * version mismatch, or an oversized payload.
 */
bool readFrame(int fd, Frame &out);

/** Write one frame (full-write loop, EINTR-safe).  Throws WireError if
 *  the peer went away mid-write. */
void writeFrame(int fd, FrameType type,
                const std::vector<uint8_t> &payload);

// ------------------------------------------------------------- primitives

/** Little-endian payload builder. */
struct WireWriter
{
    std::vector<uint8_t> buf;

    void u8(uint8_t v) { buf.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void str(const std::string &s);
};

/** Little-endian payload parser; every read is bounds-checked. */
struct WireReader
{
    const uint8_t *p;
    size_t len;
    size_t off = 0;

    explicit WireReader(const std::vector<uint8_t> &bytes)
        : p(bytes.data()), len(bytes.size())
    {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    std::string str();
    bool atEnd() const { return off == len; }
    /** Throw WireError unless the payload was consumed exactly. */
    void expectEnd(const char *what) const;
};

// ---------------------------------------------------------------- messages

struct Hello
{
    uint32_t version = kProtocolVersion;
    std::string tenant;
    /** Sender's monotonic clock at send time, in the same timebase as
     *  its flight-recorder timestamps (obs::FlightControl::nowNs).  The
     *  Hello/HelloAck pair lets either side compute a clock offset and
     *  merge the two trace timelines (docs/SERVICE.md, "Trace context"). */
    uint64_t monoNs = 0;
};

struct HelloAck
{
    uint32_t version = kProtocolVersion;
    uint32_t queueDepth = 0;   ///< daemon's admission bound
    uint32_t tenantQuota = 0;  ///< per-tenant in-flight bound
    std::string serverName;    ///< "onespec-served"
    uint64_t monoNs = 0;       ///< daemon clock at ack (see Hello::monoNs)
};

/** One submitted job: what FleetJob carries, by name instead of by
 *  pointer (the daemon resolves ISA/kernel through its warm caches). */
struct JobSpec
{
    std::string name;       ///< label for reports ("alpha64/fib")
    std::string isa;        ///< shipped ISA name
    std::string kernel;     ///< workload kernel name
    uint64_t param = 1000;  ///< kernel scale parameter
    std::string buildset = "BlockMinNo";
    bool useInterp = false; ///< interpreter back end instead of generated
    uint64_t maxInstrs = ~uint64_t{0};
    /**
     * Preemption slice in retired instructions; 0 uses the daemon's
     * default (which may be "never preempt").  A job past its slice is
     * checkpointed into the daemon's store, requeued, and resumed on any
     * worker; final stats are bit-identical to an unpreempted sliced run
     * (docs/SERVICE.md, "Preemption").
     */
    uint64_t sliceInstrs = 0;
    /**
     * Force cold simulator caches even when the warm pool holds a
     * context that last ran this exact program image.  Cold stats make
     * the per-job decode/block-cache counters a pure function of the
     * job -- the bench's identity mode; leave false for throughput.
     */
    bool coldStats = false;
    bool strictSyscalls = false;
    uint64_t profileStride = 0; ///< deterministic hot-PC profiling; 0 off
    uint64_t deadlineNs = 0;    ///< watchdog over *active* run time; 0 off
    uint32_t maxAttempts = 1;   ///< tries incl. first (ResourceError only)
    /**
     * Client-minted 64-bit trace id carried through the daemon's
     * admission, queue, warm-pool, slice, preempt, and restore spans and
     * echoed in the client's own submit/queue-wait/stream spans, so a
     * merged timeline can join both sides of the same job.  0 means "no
     * trace context" and costs nothing on the daemon.
     */
    uint64_t traceId = 0;
};

/** Why admission refused a Submit. */
enum class RejectCode : uint32_t
{
    QueueFull = 1,   ///< bounded queue at capacity
    TenantQuota = 2, ///< tenant already has quota jobs in flight
    Draining = 3,    ///< daemon is shutting down
    BadRequest = 4,  ///< unknown ISA or malformed spec
};

const char *rejectCodeName(RejectCode c);

struct Reject
{
    RejectCode code = RejectCode::BadRequest;
    std::string reason;
};

/** Job lifecycle phases streamed as Status frames. */
enum class JobPhase : uint8_t
{
    Queued = 0,
    Running = 1,
    Preempted = 2, ///< checkpointed to the store and requeued
    Resumed = 3,   ///< restored from the store on a (possibly new) worker
    Retrying = 4,  ///< ResourceError; will run again after backoff
};

const char *jobPhaseName(JobPhase p);

struct JobStatus
{
    uint64_t jobId = 0;
    JobPhase phase = JobPhase::Queued;
    uint32_t attempt = 1;
    uint64_t instrsDone = 0;
};

/** Final outcome of one job, streamed as a Result frame. */
struct JobResult
{
    uint64_t jobId = 0;
    std::string name;
    bool quarantined = false;
    RunStatus runStatus = RunStatus::Ok;
    uint64_t instrs = 0;
    uint64_t stateHash = 0;
    uint64_t ns = 0;            ///< active run time (excludes queueing)
    std::string output;         ///< bytes the job wrote to stdout
    ErrorKind errorKind = ErrorKind::None;
    std::string error;
    uint32_t attempts = 1;
    uint64_t preemptions = 0;   ///< times checkpointed + requeued
    IfaceCounters counters;     ///< accumulated across slices
    /** Deterministic text dump of the job's stats registry -- the
     *  bit-identity artifact the bench compares against SimFleet. */
    std::string statsDump;
    /** Quarantine postmortem: the worker's flight-recorder tail at the
     *  moment of failure (empty unless the recorder was armed). */
    std::vector<obs::FrEvent> frTail;
};

/**
 * Reply to a BundleReq: the raw OSPBNDL1 container the daemon wrote for
 * a quarantined job (src/replay/bundle.hpp), shipped verbatim so the
 * client can save it and hand it to `onespec-replay` unchanged.  found
 * is false (and bytes empty) when the job never quarantined, record
 * mode was off, or the bundle file has already been pruned.
 */
struct BundleData
{
    uint64_t jobId = 0;
    bool found = false;
    std::vector<uint8_t> bytes;
};

// Encoders build a full payload; decoders validate exact consumption.
std::vector<uint8_t> encodeHello(const Hello &m);
Hello decodeHello(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeHelloAck(const HelloAck &m);
HelloAck decodeHelloAck(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeSubmit(const JobSpec &m);
JobSpec decodeSubmit(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeAccept(uint64_t job_id);
uint64_t decodeAccept(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeReject(const Reject &m);
Reject decodeReject(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeStatus(const JobStatus &m);
JobStatus decodeStatus(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeResult(const JobResult &m);
JobResult decodeResult(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeStatsz(const std::string &json);
std::string decodeStatsz(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeBundleReq(uint64_t job_id);
uint64_t decodeBundleReq(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeBundleData(const BundleData &m);
BundleData decodeBundleData(const std::vector<uint8_t> &payload);
std::vector<uint8_t> encodeMetricsz(const std::string &text);
std::string decodeMetricsz(const std::vector<uint8_t> &payload);

} // namespace onespec::service

#endif // ONESPEC_SERVICE_PROTOCOL_HPP
