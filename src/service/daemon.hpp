/**
 * @file
 * ServiceDaemon: the long-lived simulation service behind
 * `onespec-served`.  One daemon owns
 *
 *   - a Unix-domain listener speaking the protocol of
 *     service/protocol.hpp, one reader + one writer thread per
 *     connection;
 *   - a bounded job queue with admission control: a Submit past the
 *     queue bound, past its tenant's in-flight quota, during a drain, or
 *     naming an unknown ISA is rejected immediately with a typed reason
 *     -- backpressure is explicit, never an unbounded queue;
 *   - a warm pool of (tenant, ISA, buildset, back end) simulator
 *     contexts: spec load, program build, and context/simulator
 *     construction are paid once and reused across jobs; decode/block
 *     caches are additionally kept warm when the next job runs the exact
 *     same program image (cache entries hit on PC alone, so identical
 *     memory is the validity condition -- docs/SERVICE.md);
 *   - checkpoint-backed preemption: a job past its slice is captured
 *     into a CkptStore (PR 6), requeued at the back, and resumed on any
 *     worker; per-slice stats deltas accumulate in a travelling per-job
 *     registry, so the final merged stats are bit-identical to an
 *     unpreempted run with the same slice schedule (the bench's gate);
 *   - the fleet's health layer (PR 4/5): SimError quarantine with
 *     retry-and-backoff for ResourceError, per-job flight-recorder
 *     spans, postmortem tails shipped over the wire, and a
 *     /statsz-style JSON dump of service counters on request.
 *
 * Determinism note: per-job *results* (status, instrs, state hash,
 * output, interface counters, stats dump) are pure functions of the
 * JobSpec -- admission order, worker assignment, and preemption timing
 * never leak into them, because slices are cut at instruction counts
 * and checkpoint restore is bit-identical to never having stopped.
 */

#ifndef ONESPEC_SERVICE_DAEMON_HPP
#define ONESPEC_SERVICE_DAEMON_HPP

#include <cstdint>
#include <memory>
#include <string>

namespace onespec::obs {
struct TimelineLabels;
}

namespace onespec::service {

/** Daemon configuration (CLI flags of onespec-served map 1:1). */
struct ServiceConfig
{
    std::string socketPath;   ///< Unix-domain socket to listen on
    /** Checkpoint store directory for preemption; created on first use.
     *  Empty: preemption-requiring jobs quarantine with SpecError. */
    std::string storeDir;
    unsigned workers = 0;     ///< pool width; 0 = hardware threads
    uint32_t queueDepth = 64; ///< max admitted-but-not-running jobs
    uint32_t tenantQuota = 16; ///< max in-flight jobs per tenant
    /** Slice for jobs that submit sliceInstrs == 0; 0 = never preempt. */
    uint64_t defaultSliceInstrs = 0;
    uint64_t backoffBaseNs = 1'000'000; ///< retry backoff base (<< k-1)
    size_t frTailEvents = 32; ///< postmortem events per quarantine
    size_t warmPoolCap = 16;  ///< idle warm contexts kept across all keys
    /**
     * Record mode (src/replay/): when non-empty, every job records a
     * replay tape while it runs and every quarantined job writes a
     * self-contained repro bundle into this directory; clients download
     * it with a BundleReq frame (onespec-sub --fetch-bundle).  Recording
     * forces cold simulator caches so the tape's expected stats dump is
     * a pure function of the job.  Empty: no recording overhead.
     */
    std::string bundleDir;
    /**
     * Metrics time-series: every @c metricsSampleEvery job completions
     * (counting quarantines) the daemon snapshots its counters and
     * gauges into a ring of @c metricsRingCap samples, scraped over the
     * wire via MetricszReq (docs/SERVICE.md, "Metrics exposition").
     * Completion-count cadence, not wall clock, so the series a test
     * observes is a function of the work done.  A sampleEvery of 0
     * disables sampling; scrapes still answer with the meta families.
     */
    size_t metricsRingCap = 64;
    uint64_t metricsSampleEvery = 1;
};

/** The daemon.  Lifecycle: bind() [optional, pre-fork] -> start() ->
 *  waitShutdown() -> stop().  All methods are called from the owning
 *  thread; the daemon's own threads never call them. */
class ServiceDaemon
{
  public:
    explicit ServiceDaemon(ServiceConfig cfg);
    ~ServiceDaemon(); ///< calls stop()

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    const ServiceConfig &config() const;

    /**
     * Create, bind, and listen on the socket (unlinking a stale one).
     * Separated from start() so `onespec-served --daemonize` can bind in
     * the parent -- the socket provably exists when the parent exits --
     * and run the threads in the child.  Throws ResourceError on bind
     * failure.
     */
    void bind();

    /** Spawn the accept loop, dispatcher, and worker pool (bind()s
     *  first if bind() was not called). */
    void start();

    /** Block until a client's Shutdown request has drained the queue
     *  (every admitted job finished) and been acknowledged. */
    void waitShutdown();

    /** Tear down: close the listener and every connection, join all
     *  threads.  In-flight pool tasks finish first; queued jobs that
     *  never started are dropped.  Idempotent. */
    void stop();

    /**
     * Drain-and-resize the worker pool (ThreadPool::resize) between
     * batches: dispatch pauses, running slices finish, the pool is
     * rebuilt @p n wide, dispatch resumes.  Queued jobs are preserved.
     */
    void resizeWorkers(unsigned n);

    /** Pause/resume dispatch (admission continues).  Test hook: makes
     *  queue-full and quota rejections deterministic. */
    void setDispatchPaused(bool paused);

    /** The /statsz payload: service counters plus live gauges as JSON
     *  text (schema documented in docs/SERVICE.md).  The counter block
     *  is one coherent snapshot, so the accounting identity
     *  completed + quarantined + rejected + in_flight == submitted
     *  holds at every observation, even mid-batch. */
    std::string statszJson();

    /** The Metricsz payload: the metrics ring rendered as OpenMetrics
     *  text (also valid Prometheus exposition).  Read-only: scraping
     *  cannot perturb job results or the sampled counters. */
    std::string metricsText();

    /** Fill @p labels for a daemon-side timeline export: job names and
     *  wire trace ids keyed by job id, accumulated over the daemon's
     *  lifetime (onespec-served --trace-out). */
    void fillTimelineLabels(obs::TimelineLabels &labels);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace onespec::service

#endif // ONESPEC_SERVICE_DAEMON_HPP
