#include "service/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/store.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pc_profile.hpp"
#include "obs/timeline.hpp"
#include "parallel/fleet.hpp"
#include "parallel/threadpool.hpp"
#include "perf/hostcount.hpp"
#include "replay/bundle.hpp"
#include "replay/recorder.hpp"
#include "runtime/context.hpp"
#include "service/protocol.hpp"
#include "sim/interp.hpp"
#include "stats/json.hpp"
#include "stats/stats.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"
#include "workload/builder.hpp"
#include "workload/kernels.hpp"

namespace onespec::service {

using parallel::contextStateHash;
using parallel::fleetGroupPath;

namespace {

/** Field-wise counter delta (slice accounting: after - before). */
IfaceCounters
countersDiff(const IfaceCounters &after, const IfaceCounters &before)
{
    IfaceCounters d;
    d.executeCalls = after.executeCalls - before.executeCalls;
    d.executeBlockCalls = after.executeBlockCalls - before.executeBlockCalls;
    d.stepCalls = after.stepCalls - before.stepCalls;
    d.customCalls = after.customCalls - before.customCalls;
    d.fastForwardCalls = after.fastForwardCalls - before.fastForwardCalls;
    d.undoCalls = after.undoCalls - before.undoCalls;
    d.instrs = after.instrs - before.instrs;
    d.undoneInstrs = after.undoneInstrs - before.undoneInstrs;
    return d;
}

bool
isShippedIsa(const std::string &isa)
{
    const auto &all = shippedIsas();
    return std::find(all.begin(), all.end(), isa) != all.end();
}

bool
isKnownKernel(const std::string &kernel)
{
    const auto &all = kernelNames();
    return std::find(all.begin(), all.end(), kernel) != all.end();
}

} // namespace

// ------------------------------------------------------------------ Impl

struct ServiceDaemon::Impl
{
    // ---- connection to one client -------------------------------------
    struct Connection
    {
        int fd = -1;
        uint64_t id = 0;
        std::string tenant = "default";
        std::thread reader; ///< joins writer before setting done
        std::thread writer;
        std::atomic<bool> done{false}; ///< both threads finished

        std::mutex m;
        std::condition_variable cv;
        std::deque<Frame> outbox;
        bool closed = false; ///< no further sends; writer drains and exits

        /** Enqueue a frame for the writer thread.  Sends to a closed
         *  connection are dropped: a client that went away mid-batch
         *  must not take its jobs (or the daemon) with it. */
        void
        send(FrameType t, std::vector<uint8_t> payload)
        {
            std::lock_guard<std::mutex> lk(m);
            if (closed)
                return;
            outbox.push_back(Frame{t, std::move(payload)});
            cv.notify_all();
        }

        /** Block until the writer has drained the outbox (or the
         *  connection died).  Used before acknowledging Shutdown so the
         *  ack provably reaches the wire before the daemon exits. */
        void
        flushOutbox()
        {
            std::unique_lock<std::mutex> lk(m);
            cv.wait(lk, [this] { return closed || outbox.empty(); });
        }

        void
        markClosed()
        {
            std::lock_guard<std::mutex> lk(m);
            closed = true;
            cv.notify_all();
        }
    };

    // ---- one admitted job ---------------------------------------------
    struct JobRecord
    {
        uint64_t id = 0;
        std::string tenant;
        JobSpec spec;
        std::shared_ptr<Connection> conn;

        // Resolved lazily on the first slice (worker thread, so a
        // failure quarantines this job instead of hurting admission).
        std::shared_ptr<const Spec> isaSpec;
        std::shared_ptr<const Program> program;

        /** Travelling per-job registry: each slice publishes its stats
         *  delta here, so the sum over slices equals a one-shot run. */
        std::unique_ptr<stats::StatsRegistry> reg =
            std::make_unique<stats::StatsRegistry>();
        IfaceCounters counters;          ///< accumulated across slices
        ckpt::CkptCounters ckptCounters; ///< preemption capture/restore work
        std::unique_ptr<obs::PcProfiler> prof; ///< survives preemption

        uint64_t sliceInstrs = 0; ///< resolved at admission (0 = uncut)
        uint64_t enqueuedNs = 0;  ///< FlightControl::nowNs at admission
        bool queueNoted = false;  ///< QueueWait instant emitted
        uint64_t instrsDone = 0;
        uint64_t runNs = 0;       ///< active run time across slices
        uint64_t preemptions = 0;
        uint32_t attempt = 1;
        uint64_t sliceSeq = 0;
        std::string ckptName;     ///< live store container; empty if none
        RunStatus lastStatus = RunStatus::Ok;

        /** Record mode (ServiceConfig::bundleDir): the travelling tape
         *  recorder, created on the first slice and re-attached every
         *  slice (markSlice/rollbackSlice make checkpoint-resume retries
         *  safe).  Null when record mode is off. */
        std::unique_ptr<replay::TapeRecorder> recorder;
    };

    // ---- one warm simulator context ------------------------------------
    struct WarmEntry
    {
        std::string key; ///< tenant|isa|buildset|backend
        std::shared_ptr<const Spec> spec;
        std::unique_ptr<SimContext> ctx;
        std::unique_ptr<FunctionalSimulator> sim;
        /** Program image the entry's sim caches were last valid for;
         *  nullptr forces a cold start (see docs/SERVICE.md). */
        const Program *lastProgram = nullptr;
    };

    struct SvcCounters
    {
        uint64_t submitted = 0, accepted = 0;
        uint64_t rejQueueFull = 0, rejQuota = 0, rejDraining = 0,
                 rejBadRequest = 0;
        uint64_t completed = 0, quarantined = 0;
        uint64_t preempted = 0, resumed = 0, retries = 0;
        uint64_t warmAcquires = 0, warmCreates = 0, warmReuses = 0,
                 warmEvictions = 0;
        /** Admitted jobs whose Result has not been accounted yet.
         *  Bumped with accepted and dropped in the same svcM critical
         *  section as completed/quarantined, so the identity
         *  completed + quarantined + rejected + inFlight == submitted
         *  holds under every svcM-coherent observation. */
        uint64_t inFlight = 0;
    };

    /** Per-tenant admission/outcome tallies for the metrics breakdown. */
    struct TenantAgg
    {
        uint64_t submitted = 0, completed = 0, quarantined = 0,
                 rejected = 0;
    };

    /** Per-(isa,buildset) outcome tallies for the metrics breakdown. */
    struct WorkloadAgg
    {
        uint64_t completed = 0, instrs = 0;
    };

    explicit Impl(ServiceConfig c) : cfg(std::move(c))
    {
        if (!cfg.storeDir.empty())
            store = std::make_unique<ckpt::CkptStore>(cfg.storeDir);
        metrics = std::make_unique<obs::MetricsRing>(cfg.metricsRingCap);
    }

    ServiceConfig cfg;
    // Created in start(), not at construction: a daemonizing caller
    // constructs the daemon (and bind()s) in the parent and fork()s, and
    // threads do not survive fork -- any thread spawned before start()
    // would silently not exist in the serving child.
    std::unique_ptr<parallel::ThreadPool> pool;
    std::unique_ptr<ckpt::CkptStore> store;

    int listenFd = -1;
    std::atomic<bool> started{false};
    std::atomic<bool> stopped{false};
    std::thread acceptThread;
    std::thread dispatchThread;

    std::mutex connM;
    std::map<uint64_t, std::shared_ptr<Connection>> conns;
    uint64_t nextConnId = 1;

    // Scheduler state, all under schedM.
    std::mutex schedM;
    std::condition_variable schedCv; ///< dispatcher wakeups
    std::condition_variable drainCv; ///< shutdown-drain wakeups
    std::deque<uint64_t> runQueue;
    std::map<uint64_t, std::unique_ptr<JobRecord>> jobs;
    std::map<std::string, unsigned> tenantInFlight;
    uint64_t nextJobId = 1;
    unsigned poolWidth = 0; ///< set in start()/resizeWorkers()
    unsigned running = 0;   ///< slices currently on the pool
    bool draining = false;
    bool stopping = false;
    bool dispatchPaused = false;

    std::mutex shutM;
    std::condition_variable shutCv;
    bool shutdownRequested = false;

    // Warm pool + shared immutable caches.
    std::mutex warmM;
    std::map<std::string, std::vector<std::unique_ptr<WarmEntry>>> warm;
    size_t warmIdle = 0;

    std::mutex specM;
    std::map<std::string, std::shared_ptr<const Spec>> specs;
    std::map<std::string, std::shared_ptr<const Program>> programs;

    std::mutex svcM;
    SvcCounters svc;
    ckpt::CkptCounters svcCkpt; ///< aggregated at job completion
    std::map<std::string, TenantAgg> tenantAgg;
    std::map<std::pair<std::string, std::string>, WorkloadAgg> workloadAgg;
    /** Wire trace context by job id, accumulated over the daemon's
     *  lifetime (not erased at job completion) so a shutdown-time
     *  timeline export can label every span it ever recorded. */
    std::map<uint32_t, uint64_t> traceIds;
    std::map<uint32_t, std::string> traceNames;

    /** Completion-driven time-series (ServiceConfig::metricsRingCap).
     *  Pushed to by workers at sampling points, drained read-only by
     *  MetricszReq scrapes. */
    std::unique_ptr<obs::MetricsRing> metrics;

    /** Repro bundles written for quarantined jobs (record mode), keyed
     *  by job id; served back over the wire on BundleReq.  Outlives the
     *  JobRecord so a client can fetch after the Result arrived. */
    std::mutex bundleM;
    std::map<uint64_t, std::string> bundlePaths;

    // ---------------------------------------------------------- lifecycle

    void
    bindSocket()
    {
        if (listenFd >= 0)
            return;
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw ResourceError("service", "socket() failed: " +
                                               std::string(strerror(errno)));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg.socketPath.size() >= sizeof(addr.sun_path)) {
            ::close(fd);
            throw ResourceError("service", "socket path too long: " +
                                               cfg.socketPath);
        }
        std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(cfg.socketPath.c_str()); // stale socket from a dead daemon
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            int e = errno;
            ::close(fd);
            throw ResourceError("service", "cannot bind " + cfg.socketPath +
                                               ": " + strerror(e));
        }
        if (::listen(fd, 64) != 0) {
            int e = errno;
            ::close(fd);
            throw ResourceError("service", "cannot listen on " +
                                               cfg.socketPath + ": " +
                                               strerror(e));
        }
        listenFd = fd;
    }

    void
    start()
    {
        bindSocket();
        pool = std::make_unique<parallel::ThreadPool>(cfg.workers);
        {
            std::lock_guard<std::mutex> lk(schedM);
            poolWidth = pool->size();
        }
        started.store(true);
        // Sample 0: a scrape of an idle daemon already carries every
        // required metric family (all zero), not just the meta block.
        if (cfg.metricsSampleEvery)
            takeSample();
        acceptThread = std::thread([this] { acceptLoop(); });
        dispatchThread = std::thread([this] { dispatchLoop(); });
    }

    void
    stop()
    {
        if (stopped.exchange(true))
            return;
        {
            std::lock_guard<std::mutex> lk(schedM);
            stopping = true;
            schedCv.notify_all();
            drainCv.notify_all();
        }
        if (listenFd >= 0)
            ::shutdown(listenFd, SHUT_RDWR);
        if (acceptThread.joinable())
            acceptThread.join();
        if (dispatchThread.joinable())
            dispatchThread.join();
        if (pool)
            pool->wait(); // in-flight slices finish at a slice boundary
        {
            std::lock_guard<std::mutex> lk(connM);
            for (auto &[id, conn] : conns) {
                if (conn->fd >= 0)
                    ::shutdown(conn->fd, SHUT_RDWR);
            }
        }
        // Readers see EOF and exit (each joins its writer first).
        std::map<uint64_t, std::shared_ptr<Connection>> doomed;
        {
            std::lock_guard<std::mutex> lk(connM);
            doomed.swap(conns);
        }
        for (auto &[id, conn] : doomed) {
            if (conn->reader.joinable())
                conn->reader.join();
            if (conn->fd >= 0)
                ::close(conn->fd);
        }
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
            ::unlink(cfg.socketPath.c_str());
        }
        {
            std::lock_guard<std::mutex> lk(shutM);
            shutCv.notify_all();
        }
    }

    void
    waitShutdown()
    {
        std::unique_lock<std::mutex> lk(shutM);
        shutCv.wait(lk, [this] {
            return shutdownRequested || stopped.load();
        });
    }

    // ------------------------------------------------------ accept/reap

    void
    acceptLoop()
    {
        while (true) {
            int cfd = ::accept(listenFd, nullptr, nullptr);
            if (cfd < 0) {
                // A signal or a client that gave up between connect()
                // and accept() must not kill the listener; only a real
                // listener error (stop()'s shutdown()) ends the loop.
                // The reader/writer loops get the same guarantee from
                // readFull/writeFull, which retry EINTR internally.
                if (errno == EINTR || errno == ECONNABORTED)
                    continue;
                break; // listener shut down by stop()
            }
            auto conn = std::make_shared<Connection>();
            conn->fd = cfd;
            {
                std::lock_guard<std::mutex> lk(connM);
                conn->id = nextConnId++;
                conns[conn->id] = conn;
            }
            conn->writer = std::thread([this, conn] { writerLoop(*conn); });
            conn->reader = std::thread([this, conn] { readerLoop(conn); });
            reapDoneConnections();
        }
    }

    /** Join and drop connections whose threads have finished, so a
     *  long-lived daemon does not accumulate one dead thread pair per
     *  departed client. */
    void
    reapDoneConnections()
    {
        std::vector<std::shared_ptr<Connection>> doomed;
        {
            std::lock_guard<std::mutex> lk(connM);
            for (auto it = conns.begin(); it != conns.end();) {
                if (it->second->done.load()) {
                    doomed.push_back(it->second);
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (auto &conn : doomed) {
            if (conn->reader.joinable())
                conn->reader.join();
            if (conn->fd >= 0)
                ::close(conn->fd);
        }
    }

    // -------------------------------------------------------- writer side

    void
    writerLoop(Connection &conn)
    {
        while (true) {
            Frame f;
            {
                std::unique_lock<std::mutex> lk(conn.m);
                conn.cv.wait(lk, [&conn] {
                    return conn.closed || !conn.outbox.empty();
                });
                if (conn.outbox.empty())
                    return; // closed and drained
                f = std::move(conn.outbox.front());
                conn.outbox.pop_front();
                if (conn.outbox.empty())
                    conn.cv.notify_all(); // flushOutbox waiters
            }
            try {
                writeFrame(conn.fd, f.type, f.payload);
            } catch (const WireError &) {
                // Peer went away; drop everything still queued.
                std::lock_guard<std::mutex> lk(conn.m);
                conn.closed = true;
                conn.outbox.clear();
                conn.cv.notify_all();
                return;
            }
        }
    }

    // -------------------------------------------------------- reader side

    void
    readerLoop(std::shared_ptr<Connection> conn)
    {
        try {
            Frame f;
            while (readFrame(conn->fd, f))
                handleFrame(conn, f);
        } catch (const WireError &) {
            // Malformed peer: drop the connection, keep the daemon.
        } catch (const std::exception &) {
            // Belt: nothing a client sends may take the daemon down.
        }
        conn->markClosed();
        if (conn->writer.joinable())
            conn->writer.join();
        conn->done.store(true);
    }

    void
    handleFrame(const std::shared_ptr<Connection> &conn, const Frame &f)
    {
        switch (f.type) {
        case FrameType::Hello: {
            Hello h = decodeHello(f.payload);
            if (!h.tenant.empty())
                conn->tenant = h.tenant;
            HelloAck ack;
            ack.queueDepth = cfg.queueDepth;
            ack.tenantQuota = cfg.tenantQuota;
            ack.serverName = "onespec-served";
            // Clock exchange: the daemon's monotonic now, in the same
            // timebase as its flight-recorder timestamps, lets the
            // client compute the offset a merged timeline aligns on.
            ack.monoNs = obs::FlightControl::instance().nowNs();
            conn->send(FrameType::HelloAck, encodeHelloAck(ack));
            break;
        }
        case FrameType::Submit:
            admit(conn, decodeSubmit(f.payload));
            break;
        case FrameType::StatszReq:
            conn->send(FrameType::Statsz, encodeStatsz(statszJson()));
            break;
        case FrameType::MetricszReq:
            conn->send(FrameType::Metricsz, encodeMetricsz(metricsText()));
            break;
        case FrameType::BundleReq: {
            BundleData bd;
            bd.jobId = decodeBundleReq(f.payload);
            std::string path;
            {
                std::lock_guard<std::mutex> lk(bundleM);
                auto it = bundlePaths.find(bd.jobId);
                if (it != bundlePaths.end())
                    path = it->second;
            }
            if (!path.empty()) {
                std::ifstream in(path, std::ios::binary);
                if (in) {
                    bd.bytes.assign(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
                    bd.found = !in.bad();
                }
            }
            if (!bd.found)
                bd.bytes.clear();
            conn->send(FrameType::Bundle, encodeBundleData(bd));
            break;
        }
        case FrameType::Shutdown:
            handleShutdown(conn);
            break;
        default:
            throw WireError("unexpected frame type " +
                            std::to_string(static_cast<unsigned>(f.type)) +
                            " from client");
        }
    }

    void
    handleShutdown(const std::shared_ptr<Connection> &conn)
    {
        {
            std::unique_lock<std::mutex> lk(schedM);
            draining = true;
            // Drain: every admitted job reaches its Result (or the
            // daemon is being torn down under us).
            drainCv.wait(lk, [this] { return jobs.empty() || stopping; });
        }
        conn->send(FrameType::ShutdownAck, {});
        conn->flushOutbox();
        {
            std::lock_guard<std::mutex> lk(shutM);
            shutdownRequested = true;
            shutCv.notify_all();
        }
    }

    // --------------------------------------------------------- admission

    void
    admit(const std::shared_ptr<Connection> &conn, JobSpec spec)
    {
        auto reject = [&](RejectCode code, const std::string &reason,
                          uint64_t &counter) {
            {
                std::lock_guard<std::mutex> lk(svcM);
                ++svc.submitted;
                ++counter;
                TenantAgg &ta = tenantAgg[conn->tenant];
                ++ta.submitted;
                ++ta.rejected;
            }
            Reject r;
            r.code = code;
            r.reason = reason;
            conn->send(FrameType::Reject, encodeReject(r));
        };

        // Validate what admission can check without heavy work.  The ISA
        // check matters doubly: loadIsa() is fatal on an unknown name, so
        // it must never see one.  An unknown buildset is deliberately NOT
        // checked here -- resolving it needs a simulator instantiation,
        // which belongs on a worker where failure quarantines one job.
        if (!isShippedIsa(spec.isa)) {
            reject(RejectCode::BadRequest, "unknown ISA '" + spec.isa + "'",
                   svc.rejBadRequest);
            return;
        }
        if (!isKnownKernel(spec.kernel)) {
            reject(RejectCode::BadRequest,
                   "unknown kernel '" + spec.kernel + "'",
                   svc.rejBadRequest);
            return;
        }
        if (spec.maxAttempts == 0)
            spec.maxAttempts = 1;
        if (spec.name.empty())
            spec.name = spec.isa + "/" + spec.kernel;

        const uint64_t traceId = spec.traceId;
        const std::string jobName = spec.name;
        uint64_t id = 0;
        {
            std::lock_guard<std::mutex> lk(schedM);
            if (draining || stopping) {
                reject(RejectCode::Draining, "daemon is draining",
                       svc.rejDraining);
                return;
            }
            if (runQueue.size() >= cfg.queueDepth) {
                reject(RejectCode::QueueFull,
                       "queue holds " + std::to_string(runQueue.size()) +
                           " of " + std::to_string(cfg.queueDepth) + " jobs",
                       svc.rejQueueFull);
                return;
            }
            unsigned &inflight = tenantInFlight[conn->tenant];
            if (inflight >= cfg.tenantQuota) {
                reject(RejectCode::TenantQuota,
                       "tenant '" + conn->tenant + "' already has " +
                           std::to_string(inflight) + " jobs in flight",
                       svc.rejQuota);
                return;
            }
            ++inflight;
            id = nextJobId++;
            auto rec = std::make_unique<JobRecord>();
            rec->id = id;
            rec->tenant = conn->tenant;
            rec->spec = std::move(spec);
            rec->sliceInstrs = rec->spec.sliceInstrs
                                   ? rec->spec.sliceInstrs
                                   : cfg.defaultSliceInstrs;
            rec->enqueuedNs = obs::FlightControl::instance().nowNs();
            rec->conn = conn;
            jobs[id] = std::move(rec);
            runQueue.push_back(id);
            schedCv.notify_all();
        }
        {
            std::lock_guard<std::mutex> lk(svcM);
            ++svc.submitted;
            ++svc.accepted;
            ++svc.inFlight;
            ++tenantAgg[conn->tenant].submitted;
            traceNames[static_cast<uint32_t>(id)] = jobName;
            if (traceId)
                traceIds[static_cast<uint32_t>(id)] = traceId;
        }
        ONESPEC_FR_INSTANT(obs::EvType::Submit, static_cast<uint32_t>(id),
                           static_cast<uint32_t>(traceId),
                           traceId >> 32);
        conn->send(FrameType::Accept, encodeAccept(id));
        JobStatus st;
        st.jobId = id;
        st.phase = JobPhase::Queued;
        conn->send(FrameType::Status, encodeStatus(st));
    }

    // --------------------------------------------------------- dispatcher

    /** The only thread that calls pool.submit() -- the pool's "tasks may
     *  not submit tasks" contract stays intact even though preempted
     *  jobs requeue (workers push onto runQueue; this thread resubmits).
     *  submit() happens under schedM, which is what makes
     *  resizeWorkers()'s pause a real barrier against concurrent
     *  submission. */
    void
    dispatchLoop()
    {
        std::unique_lock<std::mutex> lk(schedM);
        while (true) {
            schedCv.wait(lk, [this] {
                return stopping ||
                       (!dispatchPaused && !runQueue.empty() &&
                        running < poolWidth);
            });
            if (stopping)
                return;
            uint64_t id = runQueue.front();
            runQueue.pop_front();
            ++running;
            pool->submit([this, id] { runSlice(id); });
        }
    }

    void
    setDispatchPaused(bool paused)
    {
        std::lock_guard<std::mutex> lk(schedM);
        dispatchPaused = paused;
        schedCv.notify_all();
    }

    void
    resizeWorkers(unsigned n)
    {
        if (!pool) { // not started yet: start() will size the pool
            cfg.workers = n;
            return;
        }
        setDispatchPaused(true);
        // Dispatcher is parked and never again submits until unpaused;
        // running slices finish (a long job stops at its slice), so the
        // pool reaches quiescence resize() requires.
        pool->wait();
        pool->resize(n);
        {
            std::lock_guard<std::mutex> lk(schedM);
            poolWidth = pool->size();
            dispatchPaused = false;
            schedCv.notify_all();
        }
    }

    // ----------------------------------------------- shared imm. caches

    std::shared_ptr<const Spec>
    getSpec(const std::string &isa)
    {
        std::lock_guard<std::mutex> lk(specM);
        auto it = specs.find(isa);
        if (it != specs.end())
            return it->second;
        // Admission validated the name, so loadIsa cannot hit its fatal
        // unknown-ISA path here.
        std::shared_ptr<const Spec> spec = loadIsa(isa);
        specs[isa] = spec;
        return spec;
    }

    std::shared_ptr<const Program>
    getProgram(const Spec &spec, const JobSpec &js)
    {
        const std::string key =
            js.isa + "|" + js.kernel + "|" + std::to_string(js.param);
        std::lock_guard<std::mutex> lk(specM);
        auto it = programs.find(key);
        if (it != programs.end())
            return it->second;
        auto builder = makeBuilder(spec);
        auto prog = std::make_shared<const Program>(
            buildKernel(*builder, js.kernel, js.param));
        programs[key] = prog;
        return prog;
    }

    // ----------------------------------------------------------- warm pool

    static std::string
    warmKey(const JobRecord &rec)
    {
        return rec.tenant + "|" + rec.spec.isa + "|" + rec.spec.buildset +
               "|" + (rec.spec.useInterp ? "interp" : "gen");
    }

    /** Take a warm entry for this job's cell, creating one when the pool
     *  has none idle.  Creation may throw SpecError (unknown buildset):
     *  the caller quarantines the job. */
    std::unique_ptr<WarmEntry>
    acquireWarm(JobRecord &rec, bool *reused = nullptr)
    {
        const std::string key = warmKey(rec);
        {
            std::lock_guard<std::mutex> lk(warmM);
            std::lock_guard<std::mutex> slk(svcM);
            ++svc.warmAcquires;
            auto it = warm.find(key);
            if (it != warm.end() && !it->second.empty()) {
                auto entry = std::move(it->second.back());
                it->second.pop_back();
                --warmIdle;
                if (reused)
                    *reused = true;
                return entry;
            }
            ++svc.warmCreates;
        }
        auto entry = std::make_unique<WarmEntry>();
        entry->key = key;
        entry->spec = rec.isaSpec;
        entry->ctx = std::make_unique<SimContext>(*entry->spec);
        if (rec.spec.useInterp) {
            entry->sim = makeInterpSimulator(*entry->ctx, rec.spec.buildset);
        } else {
            entry->sim =
                SimRegistry::instance().create(*entry->ctx,
                                               rec.spec.buildset);
            if (!entry->sim)
                throw SpecError("service",
                                "no generated simulator for " +
                                    rec.spec.isa + "/" + rec.spec.buildset);
        }
        return entry;
    }

    void
    releaseWarm(std::unique_ptr<WarmEntry> entry)
    {
        entry->sim->setProfiler(nullptr);
        std::lock_guard<std::mutex> lk(warmM);
        if (warmIdle >= cfg.warmPoolCap) {
            std::lock_guard<std::mutex> slk(svcM);
            ++svc.warmEvictions;
            return; // unique_ptr dies: context and simulator torn down
        }
        ++warmIdle;
        warm[entry->key].push_back(std::move(entry));
    }

    // ----------------------------------------------------------- job body

    void
    sendStatus(JobRecord &rec, JobPhase phase)
    {
        JobStatus st;
        st.jobId = rec.id;
        st.phase = phase;
        st.attempt = rec.attempt;
        st.instrsDone = rec.instrsDone;
        rec.conn->send(FrameType::Status, encodeStatus(st));
    }

    /** What a slice decided; the worker acts on it only after the warm
     *  entry is back in the pool and the per-attempt span has closed. */
    enum class Next
    {
        Finish,     ///< Result already sent; finalize and erase
        Preempt,    ///< checkpointed; requeue
        Retry,      ///< ResourceError, attempts left; requeue
        Quarantine, ///< Result (quarantined) already sent; finalize
    };

    /** Run one slice of job @p id on a pool worker. */
    void
    runSlice(uint64_t id)
    {
        JobRecord *rec;
        {
            std::lock_guard<std::mutex> lk(schedM);
            rec = jobs.at(id).get(); // stable: erased only by this worker
        }
        Next next;
        {
            obs::FrSpan span(obs::EvType::Job, static_cast<uint32_t>(id),
                             rec->attempt, 0);
            try {
                next = runSliceBody(*rec) ? Next::Preempt : Next::Finish;
            } catch (const DeadlineError &e) {
                // Deadline is a budget over *active* run time, and the
                // budget is spent: a retry would re-spend it, so the job
                // quarantines directly (unlike generic ResourceError).
                ONESPEC_FR_INSTANT(obs::EvType::Deadline,
                                   static_cast<uint32_t>(id), rec->attempt,
                                   rec->spec.deadlineNs);
                next = onJobError(*rec, e.kind(), e.context(), e.what(),
                                  /*retryable=*/false);
            } catch (const SimError &e) {
                next = onJobError(*rec, e.kind(), e.context(), e.what(),
                                  e.kind() == ErrorKind::Resource);
            } catch (const std::exception &e) {
                next = onJobError(*rec, ErrorKind::Internal, "", e.what(),
                                  /*retryable=*/false);
            }
            span.setArgs(rec->attempt, rec->instrsDone);
        }
        // rec is only mutated by the worker that owns the slice, so all
        // writes above are ordered before the requeue's schedM handoff
        // (the next worker's reads happen after it pops the queue).
        switch (next) {
        case Next::Preempt:
        case Next::Retry:
            requeue(id);
            break;
        case Next::Finish:
            finalizeJob(*rec, /*quarantined=*/false);
            break;
        case Next::Quarantine:
            finalizeJob(*rec, /*quarantined=*/true);
            break;
        }
    }

    /** Returns true if the job was preempted (checkpointed) and must be
     *  requeued; false if it finished and its Result was sent. */
    bool
    runSliceBody(JobRecord &rec)
    {
        const bool resuming = !rec.ckptName.empty();
        if (resuming) {
            sendStatus(rec, JobPhase::Resumed);
            std::lock_guard<std::mutex> lk(svcM);
            ++svc.resumed;
        } else {
            sendStatus(rec, JobPhase::Running);
        }
        if (!rec.queueNoted) {
            // Queue wait as an instant carrying the measured wait: the
            // Begin would have to come from the reader thread, and B/E
            // pairs may not straddle tracks.
            rec.queueNoted = true;
            uint64_t now = obs::FlightControl::instance().nowNs();
            ONESPEC_FR_INSTANT(obs::EvType::QueueWait,
                               static_cast<uint32_t>(rec.id),
                               now > rec.enqueuedNs ? now - rec.enqueuedNs
                                                    : 0,
                               static_cast<uint32_t>(rec.spec.traceId));
        }

        if (!rec.isaSpec)
            rec.isaSpec = getSpec(rec.spec.isa);
        if (!rec.program)
            rec.program = getProgram(*rec.isaSpec, rec.spec);
        if (rec.sliceInstrs != 0 && !store)
            throw SpecError("service",
                            "job '" + rec.spec.name +
                                "' needs preemption slices but the daemon "
                                "has no checkpoint store (--store)");

        // Record mode: one travelling recorder per job, created on the
        // first slice and re-attached each slice (the warm OsEmulator is
        // shared, so the hook cannot stay installed between slices).
        if (!cfg.bundleDir.empty() && !rec.recorder) {
            rec.recorder = std::make_unique<replay::TapeRecorder>();
            rec.recorder->setJob(rec.spec.isa, rec.isaSpec->fingerprint,
                                 rec.spec.buildset, rec.spec.useInterp,
                                 rec.spec.name, rec.spec.maxInstrs,
                                 rec.spec.strictSyscalls,
                                 rec.spec.profileStride, rec.sliceInstrs);
            rec.recorder->setProgram(*rec.program);
        }

        bool warmReused = false;
        std::unique_ptr<WarmEntry> entry;
        {
            obs::FrSpan wspan(obs::EvType::Warm,
                              static_cast<uint32_t>(rec.id), 0,
                              static_cast<uint32_t>(rec.spec.traceId));
            entry = acquireWarm(rec, &warmReused);
            wspan.setArgs(warmReused ? 1 : 0,
                          static_cast<uint32_t>(rec.spec.traceId));
        }
        SimContext &ctx = *entry->ctx;
        FunctionalSimulator &sim = *entry->sim;

        // The run must end with the entry back in the pool (or evicted);
        // on error the caches are conservatively marked cold.
        struct Lease
        {
            Impl &impl;
            std::unique_ptr<WarmEntry> &entry;
            bool ok = false;
            ~Lease()
            {
                if (!ok)
                    entry->lastProgram = nullptr;
                impl.releaseWarm(std::move(entry));
            }
        } lease{*this, entry};

        ctx.os().setStrictUnknownSyscalls(rec.spec.strictSyscalls);
        ctx.load(*rec.program);

        if (resuming) {
            ckpt::Checkpoint ck = store->load(rec.ckptName,
                                              &rec.ckptCounters);
            ckpt::restore(ctx, ck, &rec.ckptCounters);
            // Context changed behind the simulator; one invalidation
            // point, exactly like the fleet's restore path.
            sim.onStateRestored();
            ONESPEC_FR_INSTANT(obs::EvType::CkptRestore,
                               static_cast<uint32_t>(rec.id), rec.sliceSeq,
                               rec.instrsDone);
        } else if (entry->lastProgram == rec.program.get() &&
                   !rec.spec.coldStats && !rec.recorder) {
            // (Recording also forces the cold path: the tape's expected
            // stats dump must be a pure function of the job, and warm
            // decode/block caches would leak the previous job into it.)
            // Same program image just reloaded: decode/block caches key
            // on PC over identical memory, so they are still valid --
            // this is the warm-pool payoff (docs/SERVICE.md caveats).
            std::lock_guard<std::mutex> lk(svcM);
            ++svc.warmReuses;
        } else {
            sim.onStateRestored();
        }

        // Declared after the lease: detaches (restoring the warm
        // OsEmulator's previous hook) before the entry returns to the
        // pool, on every exit path.
        struct RecGuard
        {
            replay::TapeRecorder *r;
            ~RecGuard()
            {
                if (r)
                    r->detach();
            }
        } recGuard{rec.recorder.get()};
        if (rec.recorder) {
            rec.recorder->markSlice(); // rollback point for retries
            rec.recorder->attach(ctx);
        }

        if (rec.spec.profileStride && !rec.prof) {
            obs::PcProfiler::Config pc;
            pc.strideInstrs = rec.spec.profileStride;
            rec.prof = std::make_unique<obs::PcProfiler>(*rec.isaSpec, pc);
        }
        sim.setProfiler(rec.prof.get());

        // Align the publish baselines: whatever this simulator did for
        // previous jobs is flushed into a scratch registry, so the next
        // publish into the job's travelling registry carries exactly this
        // slice's delta.
        {
            stats::StatsRegistry scratch;
            sim.publishStats(scratch.group(
                fleetGroupPath(rec.spec.isa, rec.spec.buildset)));
        }
        const IfaceCounters base = sim.ifaceCounters();

        const uint64_t remaining =
            rec.spec.maxInstrs == ~uint64_t{0}
                ? ~uint64_t{0}
                : rec.spec.maxInstrs - rec.instrsDone;
        const uint64_t cap = rec.sliceInstrs
                                 ? std::min(rec.sliceInstrs, remaining)
                                 : remaining;

        Stopwatch sw;
        sw.start();
        RunResult r = sim.run(cap);
        rec.runNs += sw.elapsedNs();
        rec.instrsDone += r.instrs;
        rec.lastStatus = r.status;
        rec.counters += countersDiff(sim.ifaceCounters(), base);
        sim.publishStats(rec.reg->group(
            fleetGroupPath(rec.spec.isa, rec.spec.buildset)));

        // Watchdog over *active* run time: queueing and preemption gaps
        // do not count against the job.
        if (rec.spec.deadlineNs != 0 && rec.runNs > rec.spec.deadlineNs)
            throw DeadlineError("job '" + rec.spec.name + "' exceeded its " +
                                    std::to_string(rec.spec.deadlineNs /
                                                   1000000) +
                                    " ms deadline of active run time",
                                rec.runNs);

        const bool finished =
            r.status != RunStatus::Ok ||
            (rec.spec.maxInstrs != ~uint64_t{0} &&
             rec.instrsDone >= rec.spec.maxInstrs) ||
            r.instrs == 0;

        if (!finished) {
            preempt(rec, ctx);
            lease.ok = true;
            entry->lastProgram = rec.program.get();
            return true;
        }

        // Finished: profile publishes once, at the end, like the fleet.
        JobResult res;
        if (rec.prof)
            rec.prof->publish(
                rec.reg->group(fleetGroupPath(rec.spec.isa,
                                              rec.spec.buildset))
                    .group("profile"));
        res.jobId = rec.id;
        res.name = rec.spec.name;
        res.runStatus = r.status;
        res.instrs = rec.instrsDone;
        res.output = ctx.os().output();
        res.stateHash = contextStateHash(ctx, res.output);
        res.ns = rec.runNs;
        res.attempts = rec.attempt;
        res.preemptions = rec.preemptions;
        res.counters = rec.counters;
        {
            std::ostringstream os;
            rec.reg->dump(os);
            res.statsDump = os.str();
        }
        lease.ok = true;
        entry->lastProgram = rec.program.get();
        if (!rec.ckptName.empty()) {
            store->removeCheckpoint(rec.ckptName);
            rec.ckptName.clear();
        }
        // Account before the Result leaves: a client holding a Result
        // must find it already reflected in /statsz (and the metrics
        // ring, when this completion is a sampling point).
        bool doSample = false;
        {
            std::lock_guard<std::mutex> lk(svcM);
            ++svc.completed;
            --svc.inFlight;
            ++tenantAgg[rec.tenant].completed;
            WorkloadAgg &wa =
                workloadAgg[{rec.spec.isa, rec.spec.buildset}];
            ++wa.completed;
            wa.instrs += rec.instrsDone;
            doSample = cfg.metricsSampleEvery &&
                       (svc.completed + svc.quarantined) %
                               cfg.metricsSampleEvery ==
                           0;
        }
        if (doSample)
            takeSample();
        rec.conn->send(FrameType::Result, encodeResult(res));
        return false;
    }

    /** Checkpoint @p rec into the store and stream Preempted.  The
     *  caller requeues after the warm entry is released. */
    void
    preempt(JobRecord &rec, SimContext &ctx)
    {
        if (!store)
            throw SpecError("service", "preemption without a store");
        // The slice boundary is part of the job's deterministic cut
        // schedule: replay re-cuts run() here and flushes the simulator
        // exactly like the post-restore onStateRestored() below does.
        if (rec.recorder)
            rec.recorder->noteCut(rec.instrsDone, replay::CutKind::Preempt);
        ++rec.sliceSeq;
        ckpt::Checkpoint ck = ckpt::capture(ctx, &rec.ckptCounters);
        const std::string name = "j" + std::to_string(rec.id) + "-s" +
                                 std::to_string(rec.sliceSeq);
        store->save(name, ck, &rec.ckptCounters);
        ONESPEC_FR_INSTANT(obs::EvType::CkptCapture,
                           static_cast<uint32_t>(rec.id), rec.sliceSeq,
                           rec.instrsDone);
        std::string old;
        std::swap(old, rec.ckptName);
        rec.ckptName = name;
        if (!old.empty())
            store->removeCheckpoint(old);
        ++rec.preemptions;
        sendStatus(rec, JobPhase::Preempted);
        {
            std::lock_guard<std::mutex> lk(svcM);
            ++svc.preempted;
        }
    }

    void
    requeue(uint64_t id)
    {
        std::lock_guard<std::mutex> lk(schedM);
        runQueue.push_back(id);
        --running;
        schedCv.notify_all();
    }

    Next
    onJobError(JobRecord &rec, ErrorKind kind, const std::string &context,
               const std::string &msg, bool retryable)
    {
        if (retryable && rec.attempt < rec.spec.maxAttempts) {
            ONESPEC_FR_INSTANT(obs::EvType::Retry,
                               static_cast<uint32_t>(rec.id), rec.attempt,
                               static_cast<unsigned>(kind));
            const uint64_t backoff_ns = cfg.backoffBaseNs
                                        << (rec.attempt - 1);
            ++rec.attempt;
            {
                std::lock_guard<std::mutex> lk(svcM);
                ++svc.retries;
            }
            sendStatus(rec, JobPhase::Retrying);
            ONESPEC_FR_BEGIN(obs::EvType::Backoff,
                             static_cast<uint32_t>(rec.id), rec.attempt,
                             backoff_ns);
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(backoff_ns));
            ONESPEC_FR_END(obs::EvType::Backoff,
                           static_cast<uint32_t>(rec.id), rec.attempt,
                           backoff_ns);
            if (rec.ckptName.empty()) {
                // No checkpoint to resume from: full restart.  Everything
                // the failed attempts accumulated is discarded so the
                // retry's stats are indistinguishable from a clean run.
                rec.reg = std::make_unique<stats::StatsRegistry>();
                rec.counters = IfaceCounters{};
                rec.ckptCounters = ckpt::CkptCounters{};
                rec.prof.reset();
                rec.instrsDone = 0;
                rec.runNs = 0;
                // The tape restarts with the stats: the retry IS the run
                // the tape describes (first-slice code rebuilds it).
                rec.recorder.reset();
            } else if (rec.recorder) {
                // With a checkpoint: the failed slice re-executes from
                // the restore point, so its recorded syscalls would
                // duplicate the stream -- drop back to the slice mark.
                rec.recorder->rollbackSlice();
            }
            // With a checkpoint: completed slices already published their
            // stats; the failed slice published nothing (it throws before
            // the publish), so resuming from the checkpoint double-counts
            // nothing.
            return Next::Retry;
        }

        // Quarantine.
        ONESPEC_FR_INSTANT(obs::EvType::Quarantine,
                           static_cast<uint32_t>(rec.id), rec.attempt,
                           static_cast<unsigned>(kind));
        JobResult res;
        res.jobId = rec.id;
        res.name = rec.spec.name;
        res.quarantined = true;
        res.runStatus = RunStatus::Fault;
        res.errorKind = kind;
        res.error = msg;
        res.instrs = rec.instrsDone;
        res.ns = rec.runNs;
        res.attempts = rec.attempt;
        res.preemptions = rec.preemptions;
        // Quarantined jobs ship no stats (fleet contract: a failed job
        // contributes nothing to any merge) but do ship a postmortem.
        // tailOrEmpty: a disarmed or never-armed recorder yields an
        // empty tail instead of registering this thread as a side effect.
        res.frTail =
            obs::FlightControl::instance().tailOrEmpty(cfg.frTailEvents);
        // Record mode: the quarantine is exactly what bundles exist for.
        if (rec.recorder) {
            rec.recorder->finishError(kind, context, msg);
            try {
                replay::Bundle b;
                b.tape = rec.recorder->takeTape();
                b.frTail = res.frTail;
                const std::string path = replay::writeBundle(
                    cfg.bundleDir, rec.spec.name, rec.id, b);
                {
                    std::lock_guard<std::mutex> lk(bundleM);
                    bundlePaths[rec.id] = path;
                }
            } catch (const std::exception &e) {
                // A failed bundle write must not turn one quarantine
                // into a daemon-level failure.
                ONESPEC_WARN("failed to write repro bundle for job '",
                             rec.spec.name, "': ", e.what());
            }
            rec.recorder.reset();
        }
        if (!rec.ckptName.empty() && store) {
            store->removeCheckpoint(rec.ckptName);
            rec.ckptName.clear();
        }
        // Account before the Result leaves (see the finish path).
        bool doSample = false;
        {
            std::lock_guard<std::mutex> lk(svcM);
            ++svc.quarantined;
            --svc.inFlight;
            ++tenantAgg[rec.tenant].quarantined;
            doSample = cfg.metricsSampleEvery &&
                       (svc.completed + svc.quarantined) %
                               cfg.metricsSampleEvery ==
                           0;
        }
        if (doSample)
            takeSample();
        rec.conn->send(FrameType::Result, encodeResult(res));
        return Next::Quarantine;
    }

    /** Release the finished (or quarantined) job's scheduling state and
     *  erase its record.  The Result frame was already sent, and the
     *  completed/quarantined counter bumped with it; @p rec dies here. */
    void
    finalizeJob(JobRecord &rec, bool /*quarantined*/)
    {
        {
            std::lock_guard<std::mutex> lk(svcM);
            svcCkpt += rec.ckptCounters;
        }
        std::lock_guard<std::mutex> lk(schedM);
        auto it = tenantInFlight.find(rec.tenant);
        if (it != tenantInFlight.end() && --it->second == 0)
            tenantInFlight.erase(it);
        jobs.erase(rec.id); // rec dies here
        --running;
        schedCv.notify_all();
        drainCv.notify_all();
    }

    // ---------------------------------------------------- statsz / metrics

    std::string
    statszJson()
    {
        stats::Json root = stats::Json::object();
        root.set("server", "onespec-served");
        root.set("protocol_version", uint64_t{kProtocolVersion});

        stats::Json jobs_ = stats::Json::object();
        stats::Json warm_ = stats::Json::object();
        stats::Json ck = stats::Json::object();
        // One svcM section for every counter: the accounting identity
        // completed + quarantined + rejected_* + in_flight == submitted
        // must hold in every dump, so the whole counter block is one
        // coherent snapshot (tests/test_service.cpp hammers this).
        {
            std::lock_guard<std::mutex> lk(svcM);
            jobs_.set("submitted", svc.submitted);
            jobs_.set("accepted", svc.accepted);
            jobs_.set("rejected_queue_full", svc.rejQueueFull);
            jobs_.set("rejected_tenant_quota", svc.rejQuota);
            jobs_.set("rejected_draining", svc.rejDraining);
            jobs_.set("rejected_bad_request", svc.rejBadRequest);
            jobs_.set("completed", svc.completed);
            jobs_.set("quarantined", svc.quarantined);
            jobs_.set("in_flight", svc.inFlight);
            jobs_.set("preempted", svc.preempted);
            jobs_.set("resumed", svc.resumed);
            jobs_.set("retries", svc.retries);
            warm_.set("acquires", svc.warmAcquires);
            warm_.set("creates", svc.warmCreates);
            warm_.set("cache_reuses", svc.warmReuses);
            warm_.set("evictions", svc.warmEvictions);
            ck.set("full_captures", svcCkpt.fullCaptures);
            ck.set("restores", svcCkpt.restores);
            ck.set("pages_captured", svcCkpt.pagesCaptured);
            ck.set("pages_restored", svcCkpt.pagesRestored);
            ck.set("store_page_puts", svcCkpt.storePagePuts);
            ck.set("store_page_dedup_hits", svcCkpt.storePageDedupHits);
            ck.set("store_bytes_written", svcCkpt.storeBytesWritten);
            ck.set("store_bytes_read", svcCkpt.storeBytesRead);
        }
        root.set("jobs", std::move(jobs_));
        root.set("warm", std::move(warm_));
        root.set("ckpt", std::move(ck));

        stats::Json gauges = stats::Json::object();
        {
            std::lock_guard<std::mutex> lk(schedM);
            gauges.set("queued", uint64_t{runQueue.size()});
            gauges.set("running", uint64_t{running});
            gauges.set("in_flight_jobs", uint64_t{jobs.size()});
            gauges.set("workers", uint64_t{poolWidth});
            gauges.set("tenants", uint64_t{tenantInFlight.size()});
            gauges.set("draining", draining);
        }
        {
            std::lock_guard<std::mutex> lk(warmM);
            gauges.set("warm_idle", uint64_t{warmIdle});
        }
        root.set("gauges", std::move(gauges));
        return root.dump(2);
    }

    /**
     * Snapshot every service counter and gauge into the metrics ring.
     * Called from worker threads at completion-count sampling points and
     * once from start() (the seq-1 baseline of an idle daemon), so the
     * series is a function of the work done, never of wall clock.  The
     * emission order below is fixed: renderOpenMetrics groups families
     * in first-appearance order, so this list *is* the scrape layout.
     */
    void
    takeSample()
    {
        std::vector<obs::MetricPoint> counters;
        std::vector<std::pair<std::string, int64_t>> gauges;
        uint64_t completedAt = 0;
        {
            std::lock_guard<std::mutex> lk(svcM);
            completedAt = svc.completed + svc.quarantined;
            auto c = [&counters](const char *family, uint64_t v,
                                 std::string labels = "") {
                counters.push_back({family, std::move(labels), v});
            };
            c("onespec_jobs_submitted_total", svc.submitted);
            c("onespec_jobs_accepted_total", svc.accepted);
            c("onespec_jobs_completed_total", svc.completed);
            c("onespec_jobs_quarantined_total", svc.quarantined);
            c("onespec_jobs_preempted_total", svc.preempted);
            c("onespec_jobs_resumed_total", svc.resumed);
            c("onespec_jobs_retried_total", svc.retries);
            c("onespec_jobs_rejected_total", svc.rejQueueFull,
              obs::metricLabel("reason", "queue_full"));
            c("onespec_jobs_rejected_total", svc.rejQuota,
              obs::metricLabel("reason", "tenant_quota"));
            c("onespec_jobs_rejected_total", svc.rejDraining,
              obs::metricLabel("reason", "draining"));
            c("onespec_jobs_rejected_total", svc.rejBadRequest,
              obs::metricLabel("reason", "bad_request"));
            c("onespec_warm_acquires_total", svc.warmAcquires);
            c("onespec_warm_creates_total", svc.warmCreates);
            c("onespec_warm_cache_reuses_total", svc.warmReuses);
            c("onespec_warm_evictions_total", svc.warmEvictions);
            for (const auto &kv : tenantAgg) {
                const std::string t = obs::metricLabel("tenant", kv.first);
                c("onespec_tenant_jobs_submitted_total",
                  kv.second.submitted, t);
                c("onespec_tenant_jobs_completed_total",
                  kv.second.completed, t);
            }
            for (const auto &kv : workloadAgg) {
                const std::string w =
                    obs::metricLabel("isa", kv.first.first) + "," +
                    obs::metricLabel("buildset", kv.first.second);
                c("onespec_workload_jobs_completed_total",
                  kv.second.completed, w);
                c("onespec_workload_instrs_total", kv.second.instrs, w);
            }
            gauges.emplace_back("onespec_jobs_in_flight",
                                static_cast<int64_t>(svc.inFlight));
        }
        {
            std::lock_guard<std::mutex> lk(schedM);
            gauges.emplace_back("onespec_queue_depth",
                                static_cast<int64_t>(runQueue.size()));
            gauges.emplace_back("onespec_jobs_running",
                                static_cast<int64_t>(running));
            gauges.emplace_back("onespec_workers",
                                static_cast<int64_t>(poolWidth));
        }
        {
            std::lock_guard<std::mutex> lk(warmM);
            gauges.emplace_back("onespec_warm_idle",
                                static_cast<int64_t>(warmIdle));
        }
        metrics->push(completedAt, std::move(counters), std::move(gauges));
        ONESPEC_FR_INSTANT(obs::EvType::Sample, 0, metrics->taken(),
                           completedAt);
    }

    std::string
    metricsText()
    {
        static const std::vector<std::pair<std::string, std::string>>
            help = {
                {"onespec_metrics_samples_total",
                 "Metrics samples taken since daemon start."},
                {"onespec_jobs_submitted_total",
                 "Submit frames received, accepted or not."},
                {"onespec_jobs_completed_total",
                 "Jobs finished successfully."},
                {"onespec_jobs_quarantined_total",
                 "Jobs quarantined after a SimError."},
                {"onespec_jobs_rejected_total",
                 "Jobs rejected at admission, by reason."},
                {"onespec_jobs_in_flight",
                 "Admitted jobs whose Result has not been sent."},
                {"onespec_queue_depth", "Admitted-but-not-running jobs."},
            };
        return obs::renderOpenMetrics(*metrics, help);
    }

    /** Daemon-side timeline labels for onespec-served --trace-out. */
    void
    fillTimelineLabels(obs::TimelineLabels &labels)
    {
        labels.processName = "onespec-served";
        std::lock_guard<std::mutex> lk(svcM);
        for (const auto &kv : traceNames) {
            if (labels.jobNames.size() <= kv.first)
                labels.jobNames.resize(kv.first + 1);
            labels.jobNames[kv.first] = kv.second;
        }
        labels.traceIds.insert(traceIds.begin(), traceIds.end());
    }
};

// ------------------------------------------------------------- public API

ServiceDaemon::ServiceDaemon(ServiceConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg)))
{}

ServiceDaemon::~ServiceDaemon()
{
    stop();
}

const ServiceConfig &
ServiceDaemon::config() const
{
    return impl_->cfg;
}

void
ServiceDaemon::bind()
{
    impl_->bindSocket();
}

void
ServiceDaemon::start()
{
    impl_->start();
}

void
ServiceDaemon::waitShutdown()
{
    impl_->waitShutdown();
}

void
ServiceDaemon::stop()
{
    if (impl_->started.load())
        impl_->stop();
    else if (impl_->listenFd >= 0) {
        ::close(impl_->listenFd);
        impl_->listenFd = -1;
        ::unlink(impl_->cfg.socketPath.c_str());
    }
}

void
ServiceDaemon::resizeWorkers(unsigned n)
{
    impl_->resizeWorkers(n);
}

void
ServiceDaemon::setDispatchPaused(bool paused)
{
    impl_->setDispatchPaused(paused);
}

std::string
ServiceDaemon::statszJson()
{
    return impl_->statszJson();
}

std::string
ServiceDaemon::metricsText()
{
    return impl_->metricsText();
}

void
ServiceDaemon::fillTimelineLabels(obs::TimelineLabels &labels)
{
    impl_->fillTimelineLabels(labels);
}

} // namespace onespec::service
