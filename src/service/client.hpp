/**
 * @file
 * ServiceClient: the client side of the service protocol, used by
 * `onespec-sub` and bench_service.  One instance owns one connection and
 * is single-threaded by design: submits and event reads interleave on
 * the caller's thread, and frames that arrive while a call is waiting
 * for its specific reply (HelloAck, Accept/Reject, Statsz, ShutdownAck)
 * are queued and delivered in order through next()/poll().
 *
 * The daemon streams Status and Result frames for admitted jobs at its
 * own pace, so a client that submits N jobs then loops on next() until
 * it has N Results observes every phase change in between -- that is the
 * whole interface; there is no polling RPC for job state.
 */

#ifndef ONESPEC_SERVICE_CLIENT_HPP
#define ONESPEC_SERVICE_CLIENT_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/protocol.hpp"

namespace onespec::obs {
struct TimelineLabels;
}

namespace onespec::service {

/** One streamed server-to-client notification. */
struct ClientEvent
{
    enum class Kind : uint8_t
    {
        Status,      ///< a job changed phase
        Result,      ///< a job finished (final; one per admitted job)
        Statsz,      ///< reply to statsz() when it raced other traffic
        ShutdownAck, ///< server drained and is exiting
    };

    Kind kind = Kind::Status;
    JobStatus status;     ///< valid when kind == Status
    JobResult result;     ///< valid when kind == Result
    std::string statszJson; ///< valid when kind == Statsz
};

/** What a Submit came back with. */
struct SubmitOutcome
{
    bool accepted = false;
    uint64_t jobId = 0; ///< valid when accepted
    Reject reject;      ///< valid when !accepted
};

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient(); ///< closes the socket

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect and handshake (Hello/HelloAck).  Throws ResourceError if
     *  the socket cannot be reached, WireError on a bad handshake. */
    void connect(const std::string &socket_path,
                 const std::string &tenant);

    bool connected() const { return fd_ >= 0; }

    /** The daemon's HelloAck (limits, server name); valid after
     *  connect(). */
    const HelloAck &serverInfo() const { return hello_; }

    /**
     * Submit one job and wait for its admission verdict.  Status/Result
     * frames for earlier jobs that arrive first are queued for
     * next()/poll(), so streaming and submission interleave freely.
     */
    SubmitOutcome submit(const JobSpec &spec);

    /** Blocking: deliver the next queued or on-the-wire event.  Returns
     *  false on clean server EOF. */
    bool next(ClientEvent &out);

    /**
     * Like next() but waits at most @p timeout_ms for wire traffic when
     * nothing is queued (0: don't wait).  Returns false on timeout; a
     * server EOF raises WireError here, since a caller polling with a
     * timeout is mid-conversation and silence is not an answer.
     */
    bool poll(ClientEvent &out, int timeout_ms);

    /** Request and return the daemon's /statsz JSON dump. */
    std::string statsz();

    /** Request and return the daemon's OpenMetrics scrape text
     *  (MetricszReq/Metricsz; docs/SERVICE.md, "Metrics exposition"). */
    std::string metricsz();

    /**
     * Trace context: when enabled (the default), every submit() whose
     * spec carries traceId == 0 gets a fresh client-minted 64-bit trace
     * id -- (connection nonce << 32) | per-connection counter -- sent
     * over the wire, and the client records Submit spans plus
     * queue-wait/stream instants into its own flight-recorder ring
     * (no-ops while obs::FlightControl is disarmed).  Disabling restores
     * the exact v1 wire bytes apart from the trailing zero id, which is
     * what bench_telemetry's overhead gate compares against.
     */
    void setTraceContext(bool enabled) { traceContext_ = enabled; }

    /**
     * daemon_now - client_now in nanoseconds, computed from HelloAck's
     * monotonic timestamp at connect(); adding it to a client
     * flight-recorder timestamp lands in the daemon's timebase.  The
     * client-side timeline export stores it as otherData
     * `daemon_clock_offset_ns`, which obs::mergeChromeTraces requires.
     */
    int64_t daemonClockOffsetNs() const { return daemonClockOffsetNs_; }

    /** Fill @p labels for a client-side timeline export: job names and
     *  trace ids for every traced submit, processName "onespec-sub",
     *  and the clock offset in otherData (onespec-sub --trace-out). */
    void fillTimelineLabels(obs::TimelineLabels &labels) const;

    /**
     * Download the repro bundle the daemon recorded for job @p job_id
     * (quarantined jobs under a daemon started with --bundle-dir).  The
     * returned bytes are a verbatim OSPBNDL1 container ready for
     * `onespec-replay`; found is false when the daemon has none.
     */
    BundleData fetchBundle(uint64_t job_id);

    /** Ask the daemon to drain and exit; returns once ShutdownAck
     *  arrives (all Results stream out first and are queued). */
    void shutdownServer();

    void close();

  private:
    /** Client-side trace state for one in-flight traced job. */
    struct JobTrace
    {
        uint32_t ctr = 0;      ///< low 32 bits of the trace id
        uint64_t traceId = 0;
        uint64_t acceptNs = 0; ///< when the Accept arrived
        uint64_t firstEventNs = 0; ///< first streamed Status/Result
        bool runningNoted = false; ///< QueueWait instant emitted
    };

    Frame readOrThrow(const char *waiting_for);
    ClientEvent toEvent(Frame &&f);
    void noteStatus(const JobStatus &st);
    void noteResult(uint64_t job_id);

    int fd_ = -1;
    HelloAck hello_;
    std::deque<ClientEvent> pending_;

    bool traceContext_ = true;
    uint32_t traceNonce_ = 0; ///< high 32 bits of every minted trace id
    uint32_t traceCtr_ = 0;
    int64_t daemonClockOffsetNs_ = 0;
    std::map<uint64_t, JobTrace> jobTrace_; ///< by daemon job id
    std::vector<std::string> jobNames_;     ///< by ctr, for labels
    std::unordered_map<uint32_t, uint64_t> traceIds_; ///< ctr -> trace id
};

} // namespace onespec::service

#endif // ONESPEC_SERVICE_CLIENT_HPP
