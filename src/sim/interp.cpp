#include "interp.hpp"

#include <cstring>

#include "adl/encexpr.hpp"
#include "adl/eval.hpp"
#include "obs/pc_profile.hpp"
#include "stats/trace.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

// ---------------------------------------------------------------------
// Runner: evaluates action code for one instruction
// ---------------------------------------------------------------------

/**
 * Per-instruction evaluation state.  Hidden slots live in the simulator's
 * scratch array (zeroed per entrypoint invocation); visible slots live in
 * the DynInst.  The written mask is always maintained in the DynInst --
 * it is semantic (conditional writeback depends on it).
 */
class InterpSimulator::Runner
{
  public:
    Runner(InterpSimulator &sim, DynInst &di, const InstrInfo &ii)
        : sim_(sim), ctx_(sim.ctx_), di_(di), ii_(ii),
          fmt_(ctx_.spec().formats[ii.formatIndex]),
          visible_(sim.bs_->visibleSlots), spec_(ctx_.spec())
    {}

    /** Run one semantic step.  Returns false if a fault was raised. */
    bool runStep(Step s);

  private:
    uint64_t
    getSlot(int idx) const
    {
        if ((visible_ >> idx) & 1)
            return di_.vals[idx];
        return sim_.scratch_[idx];
    }

    void
    setSlot(int idx, uint64_t v)
    {
        v = normalize(v, spec_.slots[idx].type);
        if ((visible_ >> idx) & 1)
            di_.vals[idx] = v;
        else
            sim_.scratch_[idx] = v;
        di_.written |= uint64_t{1} << idx;
    }

    uint64_t encField(int idx) const
    {
        const FormatField &ff = fmt_.fields[idx];
        return bits(di_.inst, ff.hi, ff.lo);
    }

    uint64_t evalExpr(const Expr &e);
    void execStmt(const Stmt &s);
    uint64_t evalBuiltin(const Expr &e);

    void
    raise(FaultKind k)
    {
        if (di_.fault == FaultKind::None)
            di_.fault = k;
    }

    InterpSimulator &sim_;
    SimContext &ctx_;
    DynInst &di_;
    const InstrInfo &ii_;
    const FormatDecl &fmt_;
    SlotMask visible_;
    const Spec &spec_;
    uint64_t locals_[kMaxLocals] = {};
};

uint64_t
InterpSimulator::Runner::evalBuiltin(const Expr &e)
{
    Builtin b = static_cast<Builtin>(e.builtinIndex);
    uint64_t args[3] = {};
    unsigned n = static_cast<unsigned>(e.args.size());
    ONESPEC_ASSERT(n <= 3, "builtin arity");
    for (unsigned i = 0; i < n; ++i)
        args[i] = evalExpr(*e.args[i]);

    uint64_t out = 0;
    if (evalPureBuiltin(b, args, out))
        return out;

    bool spec_on = sim_.bs_->speculation;
    Memory &mem = ctx_.mem();
    FaultKind f = FaultKind::None;

    switch (b) {
      case Builtin::LoadU8:
      case Builtin::LoadU16:
      case Builtin::LoadU32:
      case Builtin::LoadU64: {
        unsigned len = 1u << (static_cast<int>(b) -
                              static_cast<int>(Builtin::LoadU8));
        uint64_t v = mem.read(args[0], len, f);
        if (f != FaultKind::None)
            raise(f);
        return v;
      }

      case Builtin::StoreU8:
      case Builtin::StoreU16:
      case Builtin::StoreU32:
      case Builtin::StoreU64: {
        unsigned len = 1u << (static_cast<int>(b) -
                              static_cast<int>(Builtin::StoreU8));
        if (spec_on) {
            uint64_t old = mem.read(args[0], len, f);
            if (f == FaultKind::None)
                ctx_.journal().recordMem(args[0], len, old);
        }
        mem.write(args[0], args[1], len, f);
        if (f != FaultKind::None)
            raise(f);
        return 0;
      }

      case Builtin::Branch:
        di_.npc = args[0];
        di_.flags |= kFlagBranchTaken;
        return 0;

      case Builtin::Fault:
        raise(static_cast<FaultKind>(args[0] & 0xff));
        return 0;

      case Builtin::SyscallEmu:
        di_.flags |= kFlagSyscall;
        ctx_.os().doSyscall();
        return 0;

      case Builtin::Halt:
        di_.flags |= kFlagHalted;
        return 0;

      default:
        ONESPEC_PANIC("unhandled builtin in interpreter");
    }
}

uint64_t
InterpSimulator::Runner::evalExpr(const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return normalize(e.intValue, e.type);

      case Expr::Kind::Ident:
        switch (e.symKind) {
          case SymKind::Local:
            return locals_[e.symIndex];
          case SymKind::Slot:
            return getSlot(e.symIndex);
          case SymKind::EncField:
            return encField(e.symIndex);
          case SymKind::ImplicitPc:
            return di_.pc;
          case SymKind::ImplicitNpc:
            return di_.npc;
          case SymKind::ImplicitInst:
            return di_.inst;
          case SymKind::Unresolved:
            break;
        }
        ONESPEC_PANIC("unresolved identifier '", e.name,
                      "' reached the interpreter");

      case Expr::Kind::Unary:
        return evalUnOp(e.unOp, evalExpr(*e.a), e.type);

      case Expr::Kind::Binary: {
        if (e.binOp == BinOp::LogAnd) {
            if (evalExpr(*e.a) == 0)
                return 0;
            return evalExpr(*e.b) != 0;
        }
        if (e.binOp == BinOp::LogOr) {
            if (evalExpr(*e.a) != 0)
                return 1;
            return evalExpr(*e.b) != 0;
        }
        uint64_t a = normalize(evalExpr(*e.a), e.promotedType);
        uint64_t b;
        if (e.binOp == BinOp::Shl || e.binOp == BinOp::Shr) {
            // Shift amounts are plain magnitudes, not promoted.
            b = evalExpr(*e.b);
        } else {
            b = normalize(evalExpr(*e.b), e.promotedType);
        }
        return evalBinOp(e.binOp, a, b, e.promotedType, e.type);
      }

      case Expr::Kind::Ternary:
        return normalize(evalExpr(*e.a) ? evalExpr(*e.b) : evalExpr(*e.c),
                         e.type);

      case Expr::Kind::Cast:
        return normalize(evalExpr(*e.a), e.castType);

      case Expr::Kind::Call:
        return evalBuiltin(e);
    }
    ONESPEC_PANIC("unreachable expression kind");
}

void
InterpSimulator::Runner::execStmt(const Stmt &s)
{
    switch (s.kind) {
      case Stmt::Kind::Block:
        for (const auto &st : s.body) {
            execStmt(*st);
            if (di_.fault != FaultKind::None)
                return;
        }
        return;

      case Stmt::Kind::LocalDecl:
        locals_[s.localIndex] =
            s.init ? normalize(evalExpr(*s.init), s.declType) : 0;
        return;

      case Stmt::Kind::Assign: {
        uint64_t v = evalExpr(*s.value);
        const Expr &t = *s.target;
        if (t.symKind == SymKind::Local)
            locals_[t.symIndex] = normalize(v, t.type);
        else
            setSlot(t.symIndex, v);
        return;
      }

      case Stmt::Kind::If:
        if (evalExpr(*s.cond))
            execStmt(*s.thenStmt);
        else if (s.elseStmt)
            execStmt(*s.elseStmt);
        return;

      case Stmt::Kind::While: {
        uint64_t guard = 0;
        while (evalExpr(*s.cond)) {
            execStmt(*s.thenStmt);
            if (di_.fault != FaultKind::None)
                return;
            if (++guard > kActionLoopGuard)
                throwRunawayLoop(ii_.name);
        }
        return;
      }

      case Stmt::Kind::ExprStmt:
        evalExpr(*s.value);
        return;

      case Stmt::Kind::Inline:
        break; // expanded by sema; falls through to panic
    }
    ONESPEC_PANIC("unreachable statement kind");
}

bool
InterpSimulator::Runner::runStep(Step s)
{
    unsigned si = static_cast<unsigned>(s);
    bool spec_on = sim_.bs_->speculation;

    switch (s) {
      case Step::ReadOperands:
        for (const auto &op : ii_.operands) {
            if (op.isDst)
                continue;
            uint64_t v;
            if (op.scalar) {
                v = ctx_.state().readScalar(op.scalarIdx);
            } else {
                unsigned idx =
                    static_cast<unsigned>(evalExpr(*op.indexExpr));
                v = ctx_.state().readReg(op.fileIndex, idx);
            }
            setSlot(op.slotIndex, v);
        }
        break;

      case Step::Writeback:
        if (ii_.actions[si].body) {
            std::memset(locals_, 0,
                        ii_.actions[si].numLocals * sizeof(uint64_t));
            execStmt(*ii_.actions[si].body);
        }
        for (const auto &op : ii_.operands) {
            if (!op.isDst || !di_.slotWritten(op.slotIndex))
                continue;
            uint64_t v = getSlot(op.slotIndex);
            ArchState &st = ctx_.state();
            if (op.scalar) {
                if (spec_on) {
                    unsigned off =
                        st.layout().scalars[op.scalarIdx].offset;
                    ctx_.journal().recordReg(off, st.rawWord(off));
                }
                st.writeScalar(op.scalarIdx, v);
            } else {
                unsigned idx =
                    static_cast<unsigned>(evalExpr(*op.indexExpr));
                if (spec_on) {
                    unsigned off =
                        st.layout().files[op.fileIndex].base + idx;
                    ctx_.journal().recordReg(off, st.rawWord(off));
                }
                st.writeReg(op.fileIndex, idx, v);
            }
        }
        return di_.fault == FaultKind::None;

      default:
        break;
    }

    const InstrAction &ia = ii_.actions[si];
    if (ia.body && s != Step::Writeback) {
        std::memset(locals_, 0, ia.numLocals * sizeof(uint64_t));
        execStmt(*ia.body);
    }
    return di_.fault == FaultKind::None;
}

// ---------------------------------------------------------------------
// InterpSimulator
// ---------------------------------------------------------------------

InterpSimulator::InterpSimulator(SimContext &ctx, const BuildsetInfo &bs)
    : FunctionalSimulator(ctx), bs_(&bs), dcache_(kDecodeCacheSize)
{
    for (const auto &ii : ctx.spec().instrs) {
        for (const auto &ia : ii.actions) {
            ONESPEC_ASSERT(ia.numLocals <= kMaxLocals,
                           "too many locals in '", ii.name, "'");
        }
    }
    std::memset(scratch_, 0, sizeof(scratch_));
}

InterpSimulator::~InterpSimulator() = default;

RunStatus
InterpSimulator::runSteps(DynInst &di, const Step *steps, unsigned count)
{
    const Spec &spec = ctx_.spec();

    for (unsigned k = 0; k < count; ++k) {
        Step s = steps[k];
        switch (s) {
          case Step::Fetch: {
            uint64_t pc = ctx_.state().pc();
            di.beginInstr(pc, pc + spec.props.instrBytes);
            if (bs_->speculation) {
                ctx_.journal().beginInstr(pc, ctx_.os().output().size(),
                                          ctx_.os().brk(),
                                          ctx_.os().inputPos());
            }
            DecodeEntry &de = dcache_[(pc >> 2) & (kDecodeCacheSize - 1)];
            if (dcEnabled_ && de.pc == pc) {
                ++dcHits_;
                di.inst = de.inst;
            } else {
                FaultKind f = FaultKind::None;
                di.inst = static_cast<uint32_t>(
                    ctx_.mem().read(pc, spec.props.instrBytes, f));
                if (f != FaultKind::None) {
                    di.fault = f;
                    return RunStatus::Fault;
                }
            }
            break;
          }

          case Step::Decode: {
            DecodeEntry &de =
                dcache_[(di.pc >> 2) & (kDecodeCacheSize - 1)];
            int id;
            if (dcEnabled_ && de.pc == di.pc && de.inst == di.inst) {
                id = de.opId == 0xffff ? -1 : de.opId;
            } else {
                ++dcMisses_;
                id = spec.decode(di.inst);
                if (dcEnabled_) {
                    de.pc = di.pc;
                    de.inst = di.inst;
                    de.opId = id < 0 ? 0xffff
                                     : static_cast<uint16_t>(id);
                }
            }
            if (id < 0) {
                di.fault = FaultKind::IllegalInstr;
                return RunStatus::Fault;
            }
            di.opId = static_cast<uint16_t>(id);
            if (bs_->opRegsVisible) {
                const InstrInfo &ii = spec.instrs[id];
                const FormatDecl &fmt = spec.formats[ii.formatIndex];
                di.nOps = static_cast<uint8_t>(ii.operands.size());
                for (size_t i = 0; i < ii.operands.size(); ++i) {
                    const ResolvedOperand &op = ii.operands[i];
                    unsigned reg = 0;
                    if (!op.scalar) {
                        reg = static_cast<unsigned>(
                            evalEncExpr(*op.indexExpr, di.inst, fmt));
                    }
                    di.opRegs[i] = static_cast<uint8_t>(reg);
                    unsigned file_id =
                        op.scalar ? (0x40u | op.scalarIdx)
                                  : static_cast<unsigned>(op.fileIndex);
                    di.opMeta[i] = makeOpMeta(op.isDst, file_id);
                }
            }
            break;
          }

          default: {
            if (di.opId == 0xffff) {
                di.fault = FaultKind::IllegalInstr;
                return RunStatus::Fault;
            }
            const InstrInfo &ii = spec.instrs[di.opId];
            Runner r(*this, di, ii);
            if (!r.runStep(s))
                return RunStatus::Fault;
            if (s == Step::Exception) {
                // Retire: advance pc, count, and surface halts.  The
                // hot-PC profiler samples here -- the interpreter's
                // retire point, mirroring the hook cppgen emits ahead
                // of GenSimBase::retire().
                ctx_.state().setPc(di.npc);
                ctx_.addRetired(1);
                if (prof_) [[unlikely]]
                    prof_->tick(di.pc, di.opId);
                if ((di.flags & kFlagHalted) || ctx_.os().exited())
                    return RunStatus::Halted;
            }
            break;
          }
        }
    }
    return RunStatus::Ok;
}

RunStatus
InterpSimulator::doExecute(DynInst &di)
{
    static constexpr Step all[kNumSteps] = {
        Step::Fetch, Step::Decode, Step::ReadOperands, Step::Execute,
        Step::Memory, Step::Writeback, Step::Exception,
    };
    // Hidden slots behave like locals of this one call.
    std::memset(scratch_, 0, sizeof(scratch_));
    return runSteps(di, all, kNumSteps);
}

unsigned
InterpSimulator::doExecuteBlock(DynInst *out, unsigned cap,
                              RunStatus &status)
{
    unsigned n = 0;
    status = RunStatus::Ok;
    while (n < cap) {
        DynInst &di = out[n];
        status = doExecute(di);
        ++n;
        if (status != RunStatus::Ok)
            return n;
        if (ctx_.spec().instrs[di.opId].isControlFlow)
            break;
    }
    return n;
}

RunStatus
InterpSimulator::doStep(Step s, DynInst &di)
{
    // Each call is its own scope: hidden values do not survive between
    // calls (this is precisely what makes Step+min/decode lossy).
    std::memset(scratch_, 0, sizeof(scratch_));
    Step one = s;
    return runSteps(di, &one, 1);
}

RunStatus
InterpSimulator::doCall(unsigned index, DynInst &di)
{
    ONESPEC_ASSERT(index < bs_->entrypoints.size(),
                   "bad entrypoint index");
    const auto &ep = bs_->entrypoints[index];
    std::memset(scratch_, 0, sizeof(scratch_));
    return runSteps(di, ep.steps.data(),
                    static_cast<unsigned>(ep.steps.size()));
}

uint64_t
InterpSimulator::doFastForward(uint64_t max_instrs, RunStatus &status)
{
    if (bs_->semantic != SemanticLevel::Block)
        unsupported("fastForward()");
    DynInst di;
    uint64_t n = 0;
    status = RunStatus::Ok;
    while (n < max_instrs) {
        status = doExecute(di);
        ++n;
        if (status != RunStatus::Ok)
            break;
    }
    return n;
}

void
InterpSimulator::doUndo(uint64_t n)
{
    if (!bs_->speculation)
        unsupported("undo()");
    ONESPEC_TRACE("spec", "undo", n, ctx_.journal().depth());
    auto mark = ctx_.journal().undo(static_cast<size_t>(n), ctx_.state(),
                                    ctx_.mem());
    ctx_.os().restore(mark.osOutputLen, mark.osBrk, mark.osInputPos);
}

void
InterpSimulator::publishDerivedStats(stats::StatGroup &g) const
{
    g.counter("decode_cache_hits", "interpreter decode-cache hits")
        .add(dcHits_ - dcHitsPublished_);
    g.counter("decode_cache_misses", "interpreter decode-cache misses")
        .add(dcMisses_ - dcMissesPublished_);
    dcHitsPublished_ = dcHits_;
    dcMissesPublished_ = dcMisses_;
}

std::unique_ptr<InterpSimulator>
makeInterpSimulator(SimContext &ctx, const std::string &buildset_name)
{
    const BuildsetInfo *bs = ctx.spec().findBuildset(buildset_name);
    if (!bs)
        throw SpecError("interp", "no buildset named '" + buildset_name + "'");
    return std::make_unique<InterpSimulator>(ctx, *bs);
}

} // namespace onespec
