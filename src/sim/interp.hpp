/**
 * @file
 * The interpreter back end: executes the Spec's action ASTs directly,
 * honoring any buildset's semantic/informational detail at run time.
 *
 * It serves three roles:
 *  - the reference implementation against which generated simulators are
 *    validated (both back ends share eval.hpp semantics);
 *  - the "interpreted style of execution" baseline of the paper's
 *    footnote 5;
 *  - the debugging vehicle for new descriptions (step through actions
 *    without a synthesis round trip).
 */

#ifndef ONESPEC_SIM_INTERP_HPP
#define ONESPEC_SIM_INTERP_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "iface/functional_simulator.hpp"
#include "support/sim_error.hpp"

namespace onespec {

/** Interpreter-backed functional simulator for one buildset. */
class InterpSimulator : public FunctionalSimulator
{
  public:
    /** Maximum locals per action (checked against the Spec). */
    static constexpr unsigned kMaxLocals = 64;
    /** Iteration guard for while-loops in action code (shared with the
     *  synthesized back ends; see support/sim_error.hpp). */
    static constexpr uint64_t kLoopGuard = kActionLoopGuard;

    InterpSimulator(SimContext &ctx, const BuildsetInfo &bs);
    ~InterpSimulator() override;

    const BuildsetInfo &buildset() const override { return *bs_; }

    /** Decode-cache statistics (for the ablation bench). */
    uint64_t decodeCacheHits() const { return dcHits_; }
    uint64_t decodeCacheMisses() const { return dcMisses_; }
    void setDecodeCacheEnabled(bool on) { dcEnabled_ = on; }

    /** Invalidate cached decodes (call after loading a new program). */
    void
    flushDecodeCache()
    {
        std::fill(dcache_.begin(), dcache_.end(), DecodeEntry{});
    }

  protected:
    RunStatus doExecute(DynInst &di) override;
    unsigned doExecuteBlock(DynInst *out, unsigned cap,
                            RunStatus &status) override;
    RunStatus doStep(Step s, DynInst &di) override;
    RunStatus doCall(unsigned index, DynInst &di) override;
    uint64_t doFastForward(uint64_t max_instrs,
                           RunStatus &status) override;
    void doUndo(uint64_t n) override;

    /** Adds decode-cache hit/miss counters and instrs executed. */
    void publishDerivedStats(stats::StatGroup &g) const override;

    /** Cached decodes are keyed by (pc, bytes); both may have changed. */
    void doOnStateRestored() override { flushDecodeCache(); }

  private:
    struct DecodeEntry
    {
        uint64_t pc = ~uint64_t{0};
        uint32_t inst = 0;
        uint16_t opId = 0xffff;
    };

    static constexpr unsigned kDecodeCacheBits = 14;
    static constexpr unsigned kDecodeCacheSize = 1u << kDecodeCacheBits;

    class Runner;

    /** Run the given ordered steps of one instruction. */
    RunStatus runSteps(DynInst &di, const Step *steps, unsigned count);

    const BuildsetInfo *bs_;
    std::vector<DecodeEntry> dcache_;
    bool dcEnabled_ = true;
    uint64_t dcHits_ = 0;
    uint64_t dcMisses_ = 0;
    mutable uint64_t dcHitsPublished_ = 0;
    mutable uint64_t dcMissesPublished_ = 0;

    /** Scratch for hidden slots (zeroed per entrypoint invocation). */
    uint64_t scratch_[kMaxSlots];
};

/**
 * Create an interpreter simulator for @p buildset_name over @p ctx;
 * fatal()s if the buildset does not exist.
 */
std::unique_ptr<InterpSimulator>
makeInterpSimulator(SimContext &ctx, const std::string &buildset_name);

} // namespace onespec

#endif // ONESPEC_SIM_INTERP_HPP
