/**
 * @file
 * Per-block encoding selection for checkpoint payloads (the `OSPCKPT2`
 * container, docs/CKPT_FORMAT.md).
 *
 * A byte stream is cut into fixed 4 KiB blocks and each block is
 * serialized under the cheapest of four encodings, chosen independently
 * per block (the BitMagic `bmserial.h` idea applied to page images and
 * bit-packed dirty maps):
 *
 *   RAW   the block's bytes verbatim -- the fallback that can never lose
 *   ZERO  the block is all zero; no payload at all
 *   FILL  the block is one repeated non-zero byte; payload is that byte
 *   RLE   byte-level run-length pairs; chosen only when the run table is
 *         strictly smaller than RAW
 *
 * Every stream is framed with its decoded and encoded lengths, so a
 * reader always knows how many bytes a well-formed stream must produce
 * and consume.  The decoder validates *structure*, not just checksums:
 * an unknown tag, a run table that does not sum to the block, or a
 * stream that produces the wrong number of bytes throws CkptError even
 * when the surrounding container CRCs pass -- a corrupt compressed
 * block is never silently expanded.  Framing fields are little-endian
 * byte-by-byte like the rest of the container.
 */

#ifndef ONESPEC_CKPT_BLOCKCODEC_HPP
#define ONESPEC_CKPT_BLOCKCODEC_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace onespec {
namespace ckpt {
namespace codec {

/** Encoding unit: streams are cut into blocks of this many bytes (the
 *  final block may be shorter). */
constexpr size_t kBlockSize = 4096;

/** Block encoding tags as they appear on disk. */
enum class Tag : uint8_t {
    Raw = 0,   ///< blockLen verbatim bytes
    Zero = 1,  ///< all-zero block, no payload
    Fill = 2,  ///< one repeated byte, payload u8 value
    Rle = 3,   ///< u16 runs, then runs x (u16 len, u8 value)
};

/** Per-tag block counts plus byte totals; accumulated by both the
 *  encoder and the decoder (the `onespec-ckpt info` histogram). */
struct CodecStats
{
    uint64_t raw = 0;
    uint64_t zero = 0;
    uint64_t fill = 0;
    uint64_t rle = 0;
    uint64_t bytesRaw = 0;      ///< decoded payload bytes
    uint64_t bytesEncoded = 0;  ///< stream bytes incl. framing

    uint64_t blocks() const { return raw + zero + fill + rle; }
    CodecStats &operator+=(const CodecStats &o);
};

/**
 * Append the block-coded stream for [data, data+len) to @p out:
 * u32 rawLen, u32 encodedLen, then one tagged block per kBlockSize
 * chunk.  len == 0 produces a valid empty stream (framing only).
 */
void encodeStream(std::vector<uint8_t> &out, const uint8_t *data,
                  size_t len, CodecStats *st = nullptr);

/**
 * Decode one stream starting at @p p (with @p avail bytes readable)
 * into @p dst, which must already be sized to the caller's *expected*
 * decoded length -- a stream advertising any other rawLen is rejected.
 * Advances @p consumed past the stream.  Throws CkptError (with
 * "compressed block" in the message) on any structural damage:
 * truncation, unknown tag, run-table mismatch, or length drift.
 */
void decodeStream(const uint8_t *p, size_t avail, size_t &consumed,
                  uint8_t *dst, size_t expectLen, CodecStats *st = nullptr);

/**
 * Walk a stream without materializing the payload: validates structure
 * exactly like decodeStream and accumulates the tag histogram.  Used by
 * container inspection (`onespec-ckpt info`).  Returns the stream's
 * rawLen.  Throws CkptError on damage.
 */
size_t scanStream(const uint8_t *p, size_t avail, size_t &consumed,
                  CodecStats *st = nullptr);

} // namespace codec
} // namespace ckpt
} // namespace onespec

#endif // ONESPEC_CKPT_BLOCKCODEC_HPP
