/**
 * @file
 * Checkpoint/restore of complete simulated-machine state.
 *
 * A Checkpoint captures everything a SimContext owns that execution can
 * mutate: the ArchState word array and PC, the sparse paged Memory
 * (page-granular), the OsEmulator snapshot (brk, deterministic time,
 * stdin cursor, captured output, exit state), and the retired-instruction
 * count.  Restoring one into a context that has loaded the same Program
 * and then continuing execution is bit-identical to never having stopped
 * -- the determinism property checkpoint-parallel sampling rests on.
 *
 * Two capture flavors:
 *   - capture():       full image, every allocated page.
 *   - captureDelta():  only pages written since the parent checkpoint
 *                      was captured (Memory's write-epoch tracking), plus
 *                      the always-small ARCH/OS sections.  Restoring a
 *                      delta means restoring its chain root first and
 *                      applying each delta's pages in order.
 *
 * Two container generations, both read by this build (the byte-level
 * normative spec is docs/CKPT_FORMAT.md):
 *   - "OSPCKPT1": the original raw container; page images verbatim.
 *   - "OSPCKPT2": the default writer.  Page images and the bit-packed
 *     page-index map go through per-block encoding selection
 *     (src/ckpt/blockcodec.hpp), and pages may be stored by reference
 *     into a content-addressed CkptStore (src/ckpt/store.hpp) keyed on
 *     the FNV-1a page hash, so identical pages dedup across
 *     checkpoints, chains, and fleet jobs.
 *
 * Both containers are versioned and endianness-stable: every multi-byte
 * field is written little-endian byte-by-byte, so a checkpoint written
 * on any host loads on any other.  The header (magic, version, spec
 * identity, id/parent link) and each section (ARCH/OS/MEM) carry CRC-32
 * checksums; any mismatch, truncation, unknown version, spec-fingerprint
 * mismatch, structurally corrupt compressed block, or dangling store
 * reference throws CkptError -- a damaged checkpoint is never silently
 * loaded.
 *
 * Restoring mutates context state behind the simulator's back; callers
 * holding a FunctionalSimulator must call onStateRestored() on it
 * afterwards so cached decodes/blocks are invalidated.
 */

#ifndef ONESPEC_CKPT_CHECKPOINT_HPP
#define ONESPEC_CKPT_CHECKPOINT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/blockcodec.hpp"
#include "runtime/context.hpp"
#include "stats/stats.hpp"

namespace onespec {
namespace ckpt {

class CkptStore;

/** Raised for any invalid, damaged, or mismatched checkpoint.  A
 *  checkpoint is serialized guest state, so this is a GuestError: the
 *  fleet quarantines the job that supplied it and never retries. */
class CkptError : public GuestError
{
  public:
    explicit CkptError(const std::string &what) : GuestError("ckpt", what) {}
};

/** Container format version this build writes by default. */
constexpr uint32_t kFormatVersion = 2;
/** The legacy raw container; still read, writable via EncodeOptions. */
constexpr uint32_t kFormatVersionV1 = 1;

/** One page image: (page index, kPageSize bytes). */
struct CkptPage
{
    uint64_t idx = 0;
    std::vector<uint8_t> bytes;
};

/** In-memory checkpoint: the decoded/captured machine state. */
struct Checkpoint
{
    /** Content hash of the captured state (FNV-1a); the identity that
     *  parentId links against. */
    uint64_t id = 0;
    /** id of the parent checkpoint; 0 for a full (root) checkpoint. */
    uint64_t parentId = 0;
    /** True if pages holds only the dirty set relative to the parent. */
    bool delta = false;

    /** Spec identity the state belongs to; validated on restore. */
    uint64_t specFingerprint = 0;
    std::string specName;

    uint64_t instrsRetired = 0;
    /** Memory write-epoch at capture; pages written from this epoch on
     *  are dirty relative to this checkpoint (delta-capture input). */
    uint64_t epochMark = 0;

    // ARCH section.
    uint64_t pc = 0;
    std::vector<uint64_t> words;

    // OS section.
    OsEmulator::OsState os;

    // MEM section, sorted by page index.
    std::vector<CkptPage> pages;
};

/** Checkpoint-operation counters, publishable into the stats registry. */
struct CkptCounters
{
    uint64_t fullCaptures = 0;
    uint64_t deltaCaptures = 0;
    uint64_t restores = 0;      ///< checkpoints applied (chain links count)
    uint64_t pagesCaptured = 0;
    uint64_t pagesRestored = 0;
    uint64_t bytesEncoded = 0;
    uint64_t bytesDecoded = 0;
    uint64_t captureNanos = 0;
    uint64_t restoreNanos = 0;
    /** Block-encoding histogram over every v2 payload encoded. */
    codec::CodecStats codecEncode;
    /** Same histogram over every v2 payload decoded. */
    codec::CodecStats codecDecode;
    // Content-addressed store traffic (src/ckpt/store.hpp).
    uint64_t storePagePuts = 0;      ///< pages offered to a store
    uint64_t storePageDedupHits = 0; ///< puts satisfied by existing blobs
    uint64_t storeBytesWritten = 0;  ///< blob bytes actually written
    uint64_t storeBytesRead = 0;     ///< blob bytes read back

    CkptCounters &operator+=(const CkptCounters &o);
    /** Add these values into counters under @p g (group "ckpt"). */
    void publish(stats::StatGroup &g) const;
};

/** Serialization policy for encode()/saveFile(). */
struct EncodeOptions
{
    /** kFormatVersion (compressed v2) or kFormatVersionV1 (legacy raw,
     *  byte-identical to what version-1 builds wrote). */
    uint32_t version = kFormatVersion;
    /** When set (v2 only), page payloads are written into this
     *  content-addressed store and the container carries u64 page-hash
     *  references instead of inline page bytes. */
    CkptStore *store = nullptr;
};

/** Capture the full state of @p ctx. */
Checkpoint capture(SimContext &ctx, CkptCounters *c = nullptr);

/**
 * Capture only what changed since @p parent was captured (its pages are
 * the write-epoch dirty set; ARCH/OS travel in full).  @p parent must
 * describe the same spec and must have been captured from this same
 * execution (its epoch mark is meaningful for this context's memory).
 */
Checkpoint captureDelta(SimContext &ctx, const Checkpoint &parent,
                        CkptCounters *c = nullptr);

/**
 * Restore a full checkpoint into @p ctx, replacing memory, register
 * state, OS state, and the retired count.  Throws CkptError if @p ck is
 * a delta (use restoreChain) or was captured for a different spec.
 */
void restore(SimContext &ctx, const Checkpoint &ck,
             CkptCounters *c = nullptr);

/**
 * Restore a chain: chain[0] must be a full checkpoint and every
 * chain[i].parentId must equal chain[i-1].id.  The context ends in the
 * state of chain.back().
 */
void restoreChain(SimContext &ctx,
                  const std::vector<const Checkpoint *> &chain,
                  CkptCounters *c = nullptr);

/** Serialize to the default (v2 compressed, inline-page) container. */
std::vector<uint8_t> encode(const Checkpoint &ck,
                            CkptCounters *c = nullptr);

/** Serialize under an explicit version/store policy. */
std::vector<uint8_t> encode(const Checkpoint &ck, const EncodeOptions &opt,
                            CkptCounters *c = nullptr);

/**
 * Parse and validate a container image (either generation).  Throws
 * CkptError on bad magic, unsupported version, truncation, any CRC
 * mismatch, a corrupt compressed block, or a store reference (pass the
 * owning store to the overload below to resolve references).
 */
Checkpoint decode(const std::vector<uint8_t> &bytes,
                  CkptCounters *c = nullptr);

/** decode() resolving store references through @p store; a reference
 *  whose page blob is missing or damaged throws CkptError. */
Checkpoint decode(const std::vector<uint8_t> &bytes, CkptStore *store,
                  CkptCounters *c = nullptr);

/** encode() to a file / decode() from a file.  Throws CkptError on IO. */
void saveFile(const std::string &path, const Checkpoint &ck,
              CkptCounters *c = nullptr);
void saveFile(const std::string &path, const Checkpoint &ck,
              const EncodeOptions &opt, CkptCounters *c = nullptr);
Checkpoint loadFile(const std::string &path, CkptCounters *c = nullptr);
Checkpoint loadFile(const std::string &path, CkptStore *store,
                    CkptCounters *c = nullptr);

/** One section-table row as stored in the container header. */
struct SectionInfo
{
    uint32_t tag = 0;
    std::string name;    ///< printable FourCC
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
};

/**
 * Everything `onespec-ckpt info` prints about a container without
 * needing the store its pages may live in: the parsed header, the
 * section table, and (v2) the block-encoding histogram and page
 * layout.  All CRCs and compressed-block structure are validated; the
 * page *contents* of a store-backed container are not resolved.
 */
struct ContainerInfo
{
    uint32_t version = 0;
    bool delta = false;
    uint64_t specFingerprint = 0;
    std::string specName;
    uint64_t id = 0;
    uint64_t parentId = 0;
    uint64_t instrsRetired = 0;
    uint64_t epochMark = 0;
    uint64_t headerLen = 0;
    uint64_t fileLen = 0;
    std::vector<SectionInfo> sections;
    uint64_t pageCount = 0;
    bool pagesByRef = false;     ///< v2: pages are store references
    /** v2: tag histogram over the page-index map and inline pages. */
    codec::CodecStats codec;
    /** v2: store-page hashes, ascending page-index order (byRef only). */
    std::vector<uint64_t> pageRefs;
};

/** Parse and CRC/structure-check a container without decoding page
 *  contents.  Throws CkptError exactly where decode() would. */
ContainerInfo inspect(const std::vector<uint8_t> &bytes);

/**
 * Recompute the content hash of @p ck and compare with ck.id.  decode()
 * already guarantees the bytes match what was written (CRC); this
 * additionally proves the header's identity field matches the content.
 */
bool verifyId(const Checkpoint &ck);

/** Content hash over the captured state (what Checkpoint::id holds). */
uint64_t contentHash(const Checkpoint &ck);

/** FNV-1a 64 over raw bytes: the page-content key of the
 *  content-addressed store, and the hash family of contentHash(). */
uint64_t fnv1a(const void *data, size_t len);

} // namespace ckpt
} // namespace onespec

#endif // ONESPEC_CKPT_CHECKPOINT_HPP
