/**
 * @file
 * Checkpoint/restore of complete simulated-machine state.
 *
 * A Checkpoint captures everything a SimContext owns that execution can
 * mutate: the ArchState word array and PC, the sparse paged Memory
 * (page-granular), the OsEmulator snapshot (brk, deterministic time,
 * stdin cursor, captured output, exit state), and the retired-instruction
 * count.  Restoring one into a context that has loaded the same Program
 * and then continuing execution is bit-identical to never having stopped
 * -- the determinism property checkpoint-parallel sampling rests on.
 *
 * Two capture flavors:
 *   - capture():       full image, every allocated page.
 *   - captureDelta():  only pages written since the parent checkpoint
 *                      was captured (Memory's write-epoch tracking), plus
 *                      the always-small ARCH/OS sections.  Restoring a
 *                      delta means restoring its chain root first and
 *                      applying each delta's pages in order.
 *
 * The serialized container ("OSPCKPT1") is versioned and
 * endianness-stable: every multi-byte field is written little-endian
 * byte-by-byte, so a checkpoint written on any host loads on any other.
 * The header (magic, version, spec identity, id/parent link) and each
 * section (ARCH/OS/MEM) carry CRC-32 checksums; any mismatch, truncation,
 * unknown version, or spec-fingerprint mismatch throws CkptError -- a
 * damaged checkpoint is never silently loaded.  See docs/CHECKPOINT.md.
 *
 * Restoring mutates context state behind the simulator's back; callers
 * holding a FunctionalSimulator must call onStateRestored() on it
 * afterwards so cached decodes/blocks are invalidated.
 */

#ifndef ONESPEC_CKPT_CHECKPOINT_HPP
#define ONESPEC_CKPT_CHECKPOINT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/context.hpp"
#include "stats/stats.hpp"

namespace onespec {
namespace ckpt {

/** Raised for any invalid, damaged, or mismatched checkpoint.  A
 *  checkpoint is serialized guest state, so this is a GuestError: the
 *  fleet quarantines the job that supplied it and never retries. */
class CkptError : public GuestError
{
  public:
    explicit CkptError(const std::string &what) : GuestError("ckpt", what) {}
};

/** Container format version this build reads and writes. */
constexpr uint32_t kFormatVersion = 1;

/** One page image: (page index, kPageSize bytes). */
struct CkptPage
{
    uint64_t idx = 0;
    std::vector<uint8_t> bytes;
};

/** In-memory checkpoint: the decoded/captured machine state. */
struct Checkpoint
{
    /** Content hash of the captured state (FNV-1a); the identity that
     *  parentId links against. */
    uint64_t id = 0;
    /** id of the parent checkpoint; 0 for a full (root) checkpoint. */
    uint64_t parentId = 0;
    /** True if pages holds only the dirty set relative to the parent. */
    bool delta = false;

    /** Spec identity the state belongs to; validated on restore. */
    uint64_t specFingerprint = 0;
    std::string specName;

    uint64_t instrsRetired = 0;
    /** Memory write-epoch at capture; pages written from this epoch on
     *  are dirty relative to this checkpoint (delta-capture input). */
    uint64_t epochMark = 0;

    // ARCH section.
    uint64_t pc = 0;
    std::vector<uint64_t> words;

    // OS section.
    OsEmulator::OsState os;

    // MEM section, sorted by page index.
    std::vector<CkptPage> pages;
};

/** Checkpoint-operation counters, publishable into the stats registry. */
struct CkptCounters
{
    uint64_t fullCaptures = 0;
    uint64_t deltaCaptures = 0;
    uint64_t restores = 0;      ///< checkpoints applied (chain links count)
    uint64_t pagesCaptured = 0;
    uint64_t pagesRestored = 0;
    uint64_t bytesEncoded = 0;
    uint64_t bytesDecoded = 0;
    uint64_t captureNanos = 0;
    uint64_t restoreNanos = 0;

    CkptCounters &operator+=(const CkptCounters &o);
    /** Add these values into counters under @p g (group "ckpt"). */
    void publish(stats::StatGroup &g) const;
};

/** Capture the full state of @p ctx. */
Checkpoint capture(SimContext &ctx, CkptCounters *c = nullptr);

/**
 * Capture only what changed since @p parent was captured (its pages are
 * the write-epoch dirty set; ARCH/OS travel in full).  @p parent must
 * describe the same spec and must have been captured from this same
 * execution (its epoch mark is meaningful for this context's memory).
 */
Checkpoint captureDelta(SimContext &ctx, const Checkpoint &parent,
                        CkptCounters *c = nullptr);

/**
 * Restore a full checkpoint into @p ctx, replacing memory, register
 * state, OS state, and the retired count.  Throws CkptError if @p ck is
 * a delta (use restoreChain) or was captured for a different spec.
 */
void restore(SimContext &ctx, const Checkpoint &ck,
             CkptCounters *c = nullptr);

/**
 * Restore a chain: chain[0] must be a full checkpoint and every
 * chain[i].parentId must equal chain[i-1].id.  The context ends in the
 * state of chain.back().
 */
void restoreChain(SimContext &ctx,
                  const std::vector<const Checkpoint *> &chain,
                  CkptCounters *c = nullptr);

/** Serialize to the versioned container format. */
std::vector<uint8_t> encode(const Checkpoint &ck,
                            CkptCounters *c = nullptr);

/**
 * Parse and validate a container image.  Throws CkptError on bad magic,
 * unsupported version, truncation, or any CRC mismatch.
 */
Checkpoint decode(const std::vector<uint8_t> &bytes,
                  CkptCounters *c = nullptr);

/** encode() to a file / decode() from a file.  Throws CkptError on IO. */
void saveFile(const std::string &path, const Checkpoint &ck,
              CkptCounters *c = nullptr);
Checkpoint loadFile(const std::string &path, CkptCounters *c = nullptr);

/**
 * Recompute the content hash of @p ck and compare with ck.id.  decode()
 * already guarantees the bytes match what was written (CRC); this
 * additionally proves the header's identity field matches the content.
 */
bool verifyId(const Checkpoint &ck);

/** Content hash over the captured state (what Checkpoint::id holds). */
uint64_t contentHash(const Checkpoint &ck);

} // namespace ckpt
} // namespace onespec

#endif // ONESPEC_CKPT_CHECKPOINT_HPP
