/**
 * @file
 * Content-addressed checkpoint store.
 *
 * A CkptStore is a directory holding two kinds of objects (layout is
 * normative in docs/CKPT_FORMAT.md):
 *
 *   pages/<ff>/<16-hex-hash>.pg   one block-coded page image, named by
 *                                 the FNV-1a 64 hash of its raw bytes
 *   ckpts/<name>.ckpt             an OSPCKPT2 container whose MEM
 *                                 section carries page *references*
 *                                 (u64 hashes) instead of page bytes
 *
 * Because a page blob's name is its content hash, identical pages are
 * written once no matter how many checkpoints, delta chains, or fleet
 * jobs reference them -- the store is the dedup mechanism.  putPage()
 * on an existing hash is a metadata-only existence check (a dedup hit);
 * getPage() re-verifies the blob's magic, hash, CRC, and decoded
 * content hash, so a damaged or misfiled blob surfaces as CkptError,
 * never as silently wrong guest memory.
 *
 * Concurrency contract: one writer.  The serial fast-forward phase of
 * checkpoint-parallel sampling populates the store; fleet jobs only
 * read.  Writes go through a temp file + rename so a crashed writer
 * never leaves a truncated blob under a valid name.
 */

#ifndef ONESPEC_CKPT_STORE_HPP
#define ONESPEC_CKPT_STORE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace onespec {
namespace ckpt {

/** Directory-backed content-addressed page and checkpoint store. */
class CkptStore
{
  public:
    /** Open (creating if needed) the store rooted at @p root.  Throws
     *  CkptError if the directory cannot be created. */
    explicit CkptStore(const std::string &root);

    const std::string &root() const { return root_; }

    /**
     * Ensure the page image @p bytes (Memory::kPageSize long) is in the
     * store and return its content hash.  Counts a dedup hit instead of
     * writing when a blob with that hash already exists.
     */
    uint64_t putPage(const uint8_t *bytes, CkptCounters *c = nullptr);

    /** True if a page blob with this content hash exists. */
    bool hasPage(uint64_t hash) const;

    /**
     * Load and fully verify the page blob for @p hash into @p dst
     * (Memory::kPageSize bytes).  Throws CkptError with "dangling store
     * reference" if no blob exists, or a corruption message if the blob
     * fails its magic/CRC/hash checks.
     */
    void getPage(uint64_t hash, uint8_t *dst, CkptCounters *c = nullptr);

    /**
     * Serialize @p ck as a store-backed OSPCKPT2 container under
     * ckpts/<name>.ckpt: pages go into the page store, the container
     * carries references.  @p name must match [A-Za-z0-9._-]+.
     */
    void save(const std::string &name, const Checkpoint &ck,
              CkptCounters *c = nullptr);

    /** Load ckpts/<name>.ckpt, resolving page references through this
     *  store. */
    Checkpoint load(const std::string &name, CkptCounters *c = nullptr);

    /** Path of the container a save(name, ...) writes. */
    std::string ckptPath(const std::string &name) const;

    /** Path of the page blob for @p hash (whether or not it exists). */
    std::string pagePath(uint64_t hash) const;

    /** Number of page blobs currently in the store (directory walk;
     *  for tools and tests, not hot paths). */
    uint64_t pageBlobCount() const;

    /** Total bytes of all page blobs (directory walk). */
    uint64_t pageBlobBytes() const;

  private:
    std::string root_;
};

} // namespace ckpt
} // namespace onespec

#endif // ONESPEC_CKPT_STORE_HPP
