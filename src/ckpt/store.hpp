/**
 * @file
 * Content-addressed checkpoint store.
 *
 * A CkptStore is a directory holding two kinds of objects (layout is
 * normative in docs/CKPT_FORMAT.md):
 *
 *   pages/<ff>/<16-hex-hash>.pg   one block-coded page image, named by
 *                                 the FNV-1a 64 hash of its raw bytes
 *   ckpts/<name>.ckpt             an OSPCKPT2 container whose MEM
 *                                 section carries page *references*
 *                                 (u64 hashes) instead of page bytes
 *
 * Because a page blob's name is its content hash, identical pages are
 * written once no matter how many checkpoints, delta chains, or fleet
 * jobs reference them -- the store is the dedup mechanism.  putPage()
 * on an existing hash is a metadata-only existence check (a dedup hit);
 * getPage() re-verifies the blob's magic, hash, CRC, and decoded
 * content hash, so a damaged or misfiled blob surfaces as CkptError,
 * never as silently wrong guest memory.
 *
 * Concurrency contract: concurrent writers are safe as long as they
 * save under *distinct* container names.  Page blobs are content
 * addressed, so two writers racing on the same page write the same
 * bytes; every write goes through a uniquely-named temp file + atomic
 * rename, so a crashed or racing writer never leaves a truncated blob
 * under a valid name.  (The service daemon's preemption path has one
 * writer per in-flight job, each saving under a job-unique name.)
 * gc() is the exception: run it only while no writer is active, since
 * it deletes blobs a concurrent save might be about to reference.
 */

#ifndef ONESPEC_CKPT_STORE_HPP
#define ONESPEC_CKPT_STORE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace onespec {
namespace ckpt {

/** Directory-backed content-addressed page and checkpoint store. */
class CkptStore
{
  public:
    /** Open (creating if needed) the store rooted at @p root.  Throws
     *  CkptError if the directory cannot be created. */
    explicit CkptStore(const std::string &root);

    const std::string &root() const { return root_; }

    /**
     * Ensure the page image @p bytes (Memory::kPageSize long) is in the
     * store and return its content hash.  Counts a dedup hit instead of
     * writing when a blob with that hash already exists.
     */
    uint64_t putPage(const uint8_t *bytes, CkptCounters *c = nullptr);

    /** True if a page blob with this content hash exists. */
    bool hasPage(uint64_t hash) const;

    /**
     * Load and fully verify the page blob for @p hash into @p dst
     * (Memory::kPageSize bytes).  Throws CkptError with "dangling store
     * reference" if no blob exists, or a corruption message if the blob
     * fails its magic/CRC/hash checks.
     */
    void getPage(uint64_t hash, uint8_t *dst, CkptCounters *c = nullptr);

    /**
     * Serialize @p ck as a store-backed OSPCKPT2 container under
     * ckpts/<name>.ckpt: pages go into the page store, the container
     * carries references.  @p name must match [A-Za-z0-9._-]+.
     */
    void save(const std::string &name, const Checkpoint &ck,
              CkptCounters *c = nullptr);

    /** Load ckpts/<name>.ckpt, resolving page references through this
     *  store. */
    Checkpoint load(const std::string &name, CkptCounters *c = nullptr);

    /** Path of the container a save(name, ...) writes. */
    std::string ckptPath(const std::string &name) const;

    /** Path of the page blob for @p hash (whether or not it exists). */
    std::string pagePath(uint64_t hash) const;

    /** Number of page blobs currently in the store (directory walk;
     *  for tools and tests, not hot paths). */
    uint64_t pageBlobCount() const;

    /** Total bytes of all page blobs (directory walk). */
    uint64_t pageBlobBytes() const;

    /** Names of every saved container (ckpts/<name>.ckpt), sorted. */
    std::vector<std::string> listCheckpoints() const;

    /**
     * Delete ckpts/<name>.ckpt.  Returns false if no such container.
     * The pages it referenced stay behind as (possibly unreferenced)
     * blobs -- the preempted-job churn gc() exists to sweep.
     */
    bool removeCheckpoint(const std::string &name);

    /** What a gc() sweep found and did. */
    struct GcStats
    {
        uint64_t containers = 0;     ///< named containers inspected
        uint64_t refs = 0;           ///< page references seen (with dups)
        uint64_t blobsScanned = 0;   ///< page blobs in the store
        uint64_t blobsDeleted = 0;   ///< unreferenced blobs removed
        uint64_t bytesReclaimed = 0; ///< bytes those blobs occupied
        uint64_t danglingRefs = 0;   ///< refs with no blob (store damage)
    };

    /**
     * Sweep the page store: delete every page blob no named container
     * references (with @p dry_run, only count).  Containers are CRC/
     * structure-checked by inspect() while their references are
     * gathered; a damaged container aborts the sweep with CkptError
     * before anything is deleted, because its references cannot be
     * trusted.  Dangling references (a container naming a blob that is
     * already gone) are counted, not fatal -- loading that container
     * reports them precisely.  Single-process only: see the class
     * comment's concurrency contract.
     */
    GcStats gc(bool dry_run = false);

  private:
    std::string root_;
};

} // namespace ckpt
} // namespace onespec

#endif // ONESPEC_CKPT_STORE_HPP
