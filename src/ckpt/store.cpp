#include "ckpt/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <unordered_set>

#include "ckpt/blockcodec.hpp"
#include "runtime/memory.hpp"
#include "support/crc32.hpp"

namespace onespec {
namespace ckpt {

namespace fs = std::filesystem;

namespace {

/** Page blob magic (docs/CKPT_FORMAT.md, "Page blob format"). */
constexpr char kPageMagic[8] = {'O', 'S', 'P', 'P', 'A', 'G', 'E', '1'};

std::string
hexHash(uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf, 16);
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

std::vector<uint8_t>
readWholeFile(const std::string &path, const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw CkptError(std::string("cannot open ") + what + ": " + path);
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        throw CkptError(std::string("error reading ") + what + ": " + path);
    return bytes;
}

/** Write via uniquely-named temp + atomic rename: a valid blob name
 *  never holds a partial file, even if the writer dies mid-write or two
 *  writers race on the same content-addressed blob (each renames its own
 *  complete temp file; last one wins with identical bytes). */
void
writeFileAtomic(const std::string &path, const std::vector<uint8_t> &bytes,
                const char *what)
{
    static std::atomic<uint64_t> seq{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid())) +
        "." + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw CkptError(std::string("cannot open ") + what +
                        " for writing: " + tmp);
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = n == bytes.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        throw CkptError(std::string("short write to ") + what + ": " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        throw CkptError(std::string("cannot rename ") + what + " into "
                        "place: " + path + " (" + ec.message() + ")");
    }
}

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (char c : name) {
        bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

CkptStore::CkptStore(const std::string &root) : root_(root)
{
    std::error_code ec;
    fs::create_directories(fs::path(root_) / "pages", ec);
    if (!ec)
        fs::create_directories(fs::path(root_) / "ckpts", ec);
    if (ec)
        throw CkptError("cannot create checkpoint store at " + root_ +
                        " (" + ec.message() + ")");
}

std::string
CkptStore::pagePath(uint64_t hash) const
{
    const std::string hex = hexHash(hash);
    // Two-hex-digit fanout keeps any one directory small.
    return (fs::path(root_) / "pages" / hex.substr(0, 2) / (hex + ".pg"))
        .string();
}

std::string
CkptStore::ckptPath(const std::string &name) const
{
    return (fs::path(root_) / "ckpts" / (name + ".ckpt")).string();
}

bool
CkptStore::hasPage(uint64_t hash) const
{
    std::error_code ec;
    return fs::exists(pagePath(hash), ec);
}

uint64_t
CkptStore::putPage(const uint8_t *bytes, CkptCounters *c)
{
    const uint64_t hash = fnv1a(bytes, Memory::kPageSize);
    if (c)
        ++c->storePagePuts;
    if (hasPage(hash)) {
        if (c)
            ++c->storePageDedupHits;
        return hash;
    }

    std::vector<uint8_t> blob;
    blob.insert(blob.end(), kPageMagic, kPageMagic + sizeof(kPageMagic));
    putU64(blob, hash);
    codec::CodecStats *st = c ? &c->codecEncode : nullptr;
    std::vector<uint8_t> stream;
    codec::encodeStream(stream, bytes, Memory::kPageSize, st);
    putU32(blob, crc32(0, stream.data(), stream.size()));
    blob.insert(blob.end(), stream.begin(), stream.end());

    const std::string path = pagePath(hash);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        throw CkptError("cannot create page-store directory for " + path +
                        " (" + ec.message() + ")");
    writeFileAtomic(path, blob, "page blob");
    if (c)
        c->storeBytesWritten += blob.size();
    return hash;
}

void
CkptStore::getPage(uint64_t hash, uint8_t *dst, CkptCounters *c)
{
    const std::string path = pagePath(hash);
    if (!hasPage(hash))
        throw CkptError("dangling store reference: page " + hexHash(hash) +
                        " not found in store " + root_);
    std::vector<uint8_t> blob = readWholeFile(path, "page blob");
    // Framing: magic8 + u64 hash + u32 crc, then the block stream.
    constexpr size_t kFrame = 8 + 8 + 4;
    if (blob.size() < kFrame)
        throw CkptError("page blob truncated: " + path);
    if (std::memcmp(blob.data(), kPageMagic, sizeof(kPageMagic)) != 0)
        throw CkptError("page blob has bad magic: " + path);
    const uint64_t storedHash = getU64(blob.data() + 8);
    if (storedHash != hash)
        throw CkptError("page blob " + path + " claims hash " +
                        hexHash(storedHash) + ", filed under " +
                        hexHash(hash));
    const uint32_t storedCrc = getU32(blob.data() + 16);
    const uint8_t *stream = blob.data() + kFrame;
    const size_t streamLen = blob.size() - kFrame;
    if (crc32(0, stream, streamLen) != storedCrc)
        throw CkptError("page blob CRC mismatch (file corrupt): " + path);
    size_t consumed = 0;
    codec::decodeStream(stream, streamLen, consumed, dst,
                        Memory::kPageSize,
                        c ? &c->codecDecode : nullptr);
    if (consumed != streamLen)
        throw CkptError("page blob has " +
                        std::to_string(streamLen - consumed) +
                        " trailing bytes: " + path);
    // The name is the contract: decoded content must hash to it.
    if (fnv1a(dst, Memory::kPageSize) != hash)
        throw CkptError("page blob content does not match its hash "
                        "(file corrupt): " + path);
    if (c)
        c->storeBytesRead += blob.size();
}

void
CkptStore::save(const std::string &name, const Checkpoint &ck,
                CkptCounters *c)
{
    if (!validName(name))
        throw CkptError("invalid checkpoint store name '" + name +
                        "' (use [A-Za-z0-9._-]+)");
    EncodeOptions opt;
    opt.store = this;
    std::vector<uint8_t> bytes = encode(ck, opt, c);
    writeFileAtomic(ckptPath(name), bytes, "checkpoint file");
}

Checkpoint
CkptStore::load(const std::string &name, CkptCounters *c)
{
    if (!validName(name))
        throw CkptError("invalid checkpoint store name '" + name +
                        "' (use [A-Za-z0-9._-]+)");
    std::vector<uint8_t> bytes =
        readWholeFile(ckptPath(name), "checkpoint file");
    return decode(bytes, this, c);
}

uint64_t
CkptStore::pageBlobCount() const
{
    uint64_t n = 0;
    std::error_code ec;
    fs::recursive_directory_iterator it(fs::path(root_) / "pages", ec);
    if (ec)
        return 0;
    for (const auto &ent : it)
        n += ent.is_regular_file() && ent.path().extension() == ".pg";
    return n;
}

std::vector<std::string>
CkptStore::listCheckpoints() const
{
    std::vector<std::string> names;
    std::error_code ec;
    fs::directory_iterator it(fs::path(root_) / "ckpts", ec);
    if (ec)
        return names;
    for (const auto &ent : it) {
        if (ent.is_regular_file() && ent.path().extension() == ".ckpt")
            names.push_back(ent.path().stem().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
CkptStore::removeCheckpoint(const std::string &name)
{
    if (!validName(name))
        throw CkptError("invalid checkpoint store name '" + name +
                        "' (use [A-Za-z0-9._-]+)");
    std::error_code ec;
    return fs::remove(ckptPath(name), ec) && !ec;
}

CkptStore::GcStats
CkptStore::gc(bool dry_run)
{
    GcStats st;

    // Phase 1: gather the referenced-page set.  inspect() CRC/structure-
    // checks each container; a damaged one throws CkptError here, before
    // anything is deleted -- its reference list cannot be trusted, so a
    // sweep over it could orphan live data.
    std::unordered_set<uint64_t> referenced;
    for (const std::string &name : listCheckpoints()) {
        std::vector<uint8_t> bytes =
            readWholeFile(ckptPath(name), "checkpoint file");
        ContainerInfo info = inspect(bytes);
        ++st.containers;
        st.refs += info.pageRefs.size();
        referenced.insert(info.pageRefs.begin(), info.pageRefs.end());
    }

    // Phase 2: count dangling references (named but missing blobs).
    // Not fatal: loading the container reports the precise page.
    for (uint64_t h : referenced)
        st.danglingRefs += !hasPage(h);

    // Phase 3: sweep the blob directory.
    std::error_code ec;
    fs::recursive_directory_iterator it(fs::path(root_) / "pages", ec);
    if (ec)
        return st;
    std::vector<fs::path> doomed;
    for (const auto &ent : it) {
        if (!ent.is_regular_file() || ent.path().extension() != ".pg")
            continue;
        ++st.blobsScanned;
        const std::string stem = ent.path().stem().string();
        char *end = nullptr;
        uint64_t hash = std::strtoull(stem.c_str(), &end, 16);
        // A blob whose name is not 16 hex digits was never written by
        // this store; leave it alone.
        if (stem.size() != 16 || !end || *end != '\0')
            continue;
        if (referenced.count(hash))
            continue;
        ++st.blobsDeleted;
        st.bytesReclaimed += ent.file_size();
        if (!dry_run)
            doomed.push_back(ent.path());
    }
    for (const auto &p : doomed) {
        std::error_code rmEc;
        fs::remove(p, rmEc);
    }
    return st;
}

uint64_t
CkptStore::pageBlobBytes() const
{
    uint64_t n = 0;
    std::error_code ec;
    fs::recursive_directory_iterator it(fs::path(root_) / "pages", ec);
    if (ec)
        return 0;
    for (const auto &ent : it)
        if (ent.is_regular_file() && ent.path().extension() == ".pg")
            n += ent.file_size();
    return n;
}

} // namespace ckpt
} // namespace onespec
