#include "ckpt/blockcodec.hpp"

#include <cstring>
#include <string>

#include "ckpt/checkpoint.hpp"

namespace onespec {
namespace ckpt {
namespace codec {

namespace {

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** Minimal bounds-checked cursor over an encoded stream. */
struct Cur
{
    const uint8_t *p;
    size_t len;
    size_t pos = 0;

    void
    need(size_t n) const
    {
        if (len - pos < n)
            throw CkptError(
                "corrupt compressed block: stream truncated (need " +
                std::to_string(n) + " bytes at offset " +
                std::to_string(pos) + ", " + std::to_string(len - pos) +
                " remain)");
    }

    uint8_t
    u8()
    {
        need(1);
        return p[pos++];
    }

    uint16_t
    u16()
    {
        need(2);
        uint16_t v = static_cast<uint16_t>(
            p[pos] | (static_cast<uint16_t>(p[pos + 1]) << 8));
        pos += 2;
        return v;
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }
};

/** Encode one block of @p n bytes, picking the cheapest representation. */
void
encodeBlock(std::vector<uint8_t> &out, const uint8_t *b, size_t n,
            CodecStats *st)
{
    bool zero = true, fillable = true;
    const uint8_t first = b[0];
    for (size_t i = 0; i < n; ++i) {
        if (b[i] != 0)
            zero = false;
        if (b[i] != first)
            fillable = false;
        if (!zero && !fillable)
            break;
    }
    if (zero) {
        out.push_back(static_cast<uint8_t>(Tag::Zero));
        if (st)
            ++st->zero;
        return;
    }
    if (fillable) {
        out.push_back(static_cast<uint8_t>(Tag::Fill));
        out.push_back(first);
        if (st)
            ++st->fill;
        return;
    }

    // Byte-level runs; bail to RAW as soon as RLE cannot win.
    std::vector<std::pair<uint16_t, uint8_t>> runs;
    const size_t rawCost = 1 + n;
    size_t i = 0;
    bool viable = true;
    while (i < n) {
        size_t j = i + 1;
        while (j < n && b[j] == b[i])
            ++j;
        runs.emplace_back(static_cast<uint16_t>(j - i), b[i]);
        if (1 + 2 + runs.size() * 3 >= rawCost) {
            viable = false;
            break;
        }
        i = j;
    }
    if (viable) {
        out.push_back(static_cast<uint8_t>(Tag::Rle));
        putU16(out, static_cast<uint16_t>(runs.size()));
        for (const auto &[len, val] : runs) {
            putU16(out, len);
            out.push_back(val);
        }
        if (st)
            ++st->rle;
        return;
    }
    out.push_back(static_cast<uint8_t>(Tag::Raw));
    out.insert(out.end(), b, b + n);
    if (st)
        ++st->raw;
}

/**
 * Shared stream walker: validates every block and either copies the
 * payload into @p dst (decode) or only accounts it (scan, dst null).
 * Returns the stream's advertised rawLen.
 */
size_t
walkStream(const uint8_t *p, size_t avail, size_t &consumed, uint8_t *dst,
           size_t expectLen, bool haveExpect, CodecStats *st)
{
    Cur c{p, avail};
    const size_t rawLen = c.u32();
    const size_t encLen = c.u32();
    if (haveExpect && rawLen != expectLen)
        throw CkptError("corrupt compressed block: stream advertises " +
                        std::to_string(rawLen) + " decoded bytes, " +
                        std::to_string(expectLen) + " expected");
    c.need(encLen);
    const size_t end = c.pos + encLen;

    size_t produced = 0;
    while (produced < rawLen) {
        const size_t blockLen = std::min(kBlockSize, rawLen - produced);
        if (c.pos >= end)
            throw CkptError("corrupt compressed block: stream ended "
                            "after " + std::to_string(produced) + " of " +
                            std::to_string(rawLen) + " bytes");
        const uint8_t tag = c.u8();
        switch (static_cast<Tag>(tag)) {
          case Tag::Raw:
            c.need(blockLen);
            if (dst)
                std::memcpy(dst + produced, c.p + c.pos, blockLen);
            c.pos += blockLen;
            if (st)
                ++st->raw;
            break;
          case Tag::Zero:
            if (dst)
                std::memset(dst + produced, 0, blockLen);
            if (st)
                ++st->zero;
            break;
          case Tag::Fill: {
            const uint8_t v = c.u8();
            if (dst)
                std::memset(dst + produced, v, blockLen);
            if (st)
                ++st->fill;
            break;
          }
          case Tag::Rle: {
            const uint16_t nRuns = c.u16();
            size_t blockFill = 0;
            for (uint16_t r = 0; r < nRuns; ++r) {
                const uint16_t runLen = c.u16();
                const uint8_t v = c.u8();
                if (runLen == 0 || blockFill + runLen > blockLen)
                    throw CkptError(
                        "corrupt compressed block: RLE run table does "
                        "not fit its block (run " + std::to_string(r) +
                        " of " + std::to_string(nRuns) + ")");
                if (dst)
                    std::memset(dst + produced + blockFill, v, runLen);
                blockFill += runLen;
            }
            if (blockFill != blockLen)
                throw CkptError(
                    "corrupt compressed block: RLE runs cover " +
                    std::to_string(blockFill) + " of " +
                    std::to_string(blockLen) + " block bytes");
            if (st)
                ++st->rle;
            break;
          }
          default:
            throw CkptError("corrupt compressed block: unknown encoding "
                            "tag " + std::to_string(tag));
        }
        produced += blockLen;
    }
    if (c.pos != end)
        throw CkptError("corrupt compressed block: stream length field "
                        "says " + std::to_string(encLen) +
                        " encoded bytes, blocks consumed " +
                        std::to_string(c.pos - 8));
    if (st) {
        st->bytesRaw += rawLen;
        st->bytesEncoded += c.pos;
    }
    consumed += c.pos;
    return rawLen;
}

} // namespace

CodecStats &
CodecStats::operator+=(const CodecStats &o)
{
    raw += o.raw;
    zero += o.zero;
    fill += o.fill;
    rle += o.rle;
    bytesRaw += o.bytesRaw;
    bytesEncoded += o.bytesEncoded;
    return *this;
}

void
encodeStream(std::vector<uint8_t> &out, const uint8_t *data, size_t len,
             CodecStats *st)
{
    const size_t start = out.size();
    putU32(out, static_cast<uint32_t>(len));
    putU32(out, 0); // encodedLen backpatched below
    for (size_t off = 0; off < len; off += kBlockSize)
        encodeBlock(out, data + off, std::min(kBlockSize, len - off), st);
    const uint32_t encLen = static_cast<uint32_t>(out.size() - start - 8);
    for (int i = 0; i < 4; ++i)
        out[start + 4 + i] = static_cast<uint8_t>(encLen >> (8 * i));
    if (st) {
        st->bytesRaw += len;
        st->bytesEncoded += 8 + encLen;
    }
}

void
decodeStream(const uint8_t *p, size_t avail, size_t &consumed,
             uint8_t *dst, size_t expectLen, CodecStats *st)
{
    walkStream(p, avail, consumed, dst, expectLen, true, st);
}

size_t
scanStream(const uint8_t *p, size_t avail, size_t &consumed,
           CodecStats *st)
{
    return walkStream(p, avail, consumed, nullptr, 0, false, st);
}

} // namespace codec
} // namespace ckpt
} // namespace onespec
