#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/flight_recorder.hpp"
#include "stats/trace.hpp"
#include "support/crc32.hpp"
#include "support/logging.hpp"

namespace onespec {
namespace ckpt {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'P', 'C', 'K', 'P', 'T', '1'};

/** Section tags, readable in a hex dump. */
constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

constexpr uint32_t kTagArch = fourcc('A', 'R', 'C', 'H');
constexpr uint32_t kTagOs = fourcc('O', 'S', ' ', ' ');
constexpr uint32_t kTagMem = fourcc('M', 'E', 'M', ' ');

std::string
tagName(uint32_t tag)
{
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
        s[i] = (c >= 0x20 && c < 0x7F) ? c : '.';
    }
    return s;
}

/** Little-endian byte-at-a-time writer: host endianness never leaks. */
class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    size_t size() const { return buf_.size(); }
    std::vector<uint8_t> take() { return std::move(buf_); }
    const std::vector<uint8_t> &data() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian reader over a container image. */
class Reader
{
  public:
    Reader(const uint8_t *p, size_t len, const char *what)
        : p_(p), len_(len), what_(what)
    {}

    size_t pos() const { return pos_; }

    void
    need(size_t n) const
    {
        if (len_ - pos_ < n)
            throw CkptError(std::string("truncated checkpoint: ") +
                            what_ + " needs " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", only " + std::to_string(len_ - pos_) +
                            " remain");
    }

    uint8_t
    u8()
    {
        need(1);
        return p_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p_[pos_++]) << (8 * i);
        return v;
    }

    void
    bytes(void *dst, size_t n)
    {
        need(n);
        std::memcpy(dst, p_ + pos_, n);
        pos_ += n;
    }

  private:
    const uint8_t *p_;
    size_t len_;
    size_t pos_ = 0;
    const char *what_;
};

uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** FNV-1a 64 over raw bytes and fixed-width values. */
struct Fnv
{
    uint64_t h = 14695981039346656037ull;

    void
    bytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    }

    void
    u64(uint64_t v)
    {
        // Hash the little-endian byte image so the id is host-independent.
        uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<uint8_t>(v >> (8 * i));
        bytes(b, 8);
    }
};

void
fillCommon(Checkpoint &ck, SimContext &ctx)
{
    ck.specFingerprint = ctx.spec().fingerprint;
    ck.specName = ctx.spec().props.name;
    ck.instrsRetired = ctx.instrsRetired();
    ck.pc = ctx.state().pc();
    const ArchState &st = ctx.state();
    ck.words.resize(st.numWords());
    for (unsigned i = 0; i < st.numWords(); ++i)
        ck.words[i] = st.rawWord(i);
    ck.os = ctx.os().snapshot();
}

/** Install one checkpoint's ARCH/OS/retired view into the context. */
void
applyScalarState(SimContext &ctx, const Checkpoint &ck)
{
    ArchState &st = ctx.state();
    if (ck.words.size() != st.numWords())
        throw CkptError(
            "checkpoint register state has " +
            std::to_string(ck.words.size()) + " words but spec '" +
            ctx.spec().props.name + "' declares " +
            std::to_string(st.numWords()));
    for (unsigned i = 0; i < st.numWords(); ++i)
        st.setRawWord(i, ck.words[i]);
    st.setPc(ck.pc);
    ctx.os().restoreSnapshot(ck.os);
    ctx.setRetired(ck.instrsRetired);
}

void
checkSpec(const SimContext &ctx, const Checkpoint &ck, const char *op)
{
    if (ck.specFingerprint != ctx.spec().fingerprint)
        throw CkptError(
            std::string("cannot ") + op + ": checkpoint was captured "
            "for spec '" + ck.specName + "' (fingerprint " +
            std::to_string(ck.specFingerprint) +
            "), context runs spec '" + ctx.spec().props.name +
            "' (fingerprint " +
            std::to_string(ctx.spec().fingerprint) + ")");
}

void
installPages(SimContext &ctx, const Checkpoint &ck)
{
    for (const CkptPage &pg : ck.pages) {
        ONESPEC_ASSERT(pg.bytes.size() == Memory::kPageSize,
                       "malformed in-memory checkpoint page");
        ctx.mem().installPage(pg.idx, pg.bytes.data());
    }
}

} // namespace

CkptCounters &
CkptCounters::operator+=(const CkptCounters &o)
{
    fullCaptures += o.fullCaptures;
    deltaCaptures += o.deltaCaptures;
    restores += o.restores;
    pagesCaptured += o.pagesCaptured;
    pagesRestored += o.pagesRestored;
    bytesEncoded += o.bytesEncoded;
    bytesDecoded += o.bytesDecoded;
    captureNanos += o.captureNanos;
    restoreNanos += o.restoreNanos;
    return *this;
}

void
CkptCounters::publish(stats::StatGroup &g) const
{
    g.counter("full_captures", "full checkpoints captured")
        .add(fullCaptures);
    g.counter("delta_captures", "delta checkpoints captured")
        .add(deltaCaptures);
    g.counter("restores", "checkpoints applied to a context")
        .add(restores);
    g.counter("pages_captured", "memory pages serialized into checkpoints")
        .add(pagesCaptured);
    g.counter("pages_restored", "memory pages installed from checkpoints")
        .add(pagesRestored);
    g.counter("bytes_encoded", "container bytes produced by encode()")
        .add(bytesEncoded);
    g.counter("bytes_decoded", "container bytes consumed by decode()")
        .add(bytesDecoded);
    g.counter("capture_nanos", "wall nanoseconds spent capturing")
        .add(captureNanos);
    g.counter("restore_nanos", "wall nanoseconds spent restoring")
        .add(restoreNanos);
}

uint64_t
contentHash(const Checkpoint &ck)
{
    // Identity covers the machine state and lineage, not host-side
    // bookkeeping: epochMark is deliberately excluded so the same state
    // reached by different capture schedules hashes the same.
    Fnv f;
    f.u64(ck.specFingerprint);
    f.u64(ck.delta ? 1 : 0);
    f.u64(ck.parentId);
    f.u64(ck.instrsRetired);
    f.u64(ck.pc);
    f.u64(ck.words.size());
    for (uint64_t w : ck.words)
        f.u64(w);
    f.u64(ck.os.exited ? 1 : 0);
    f.u64(static_cast<uint64_t>(static_cast<int64_t>(ck.os.exitCode)));
    f.u64(ck.os.output.size());
    f.bytes(ck.os.output.data(), ck.os.output.size());
    f.u64(ck.os.inputPos);
    f.u64(ck.os.brk);
    f.u64(ck.os.timeMs);
    f.u64(ck.os.syscallCount);
    f.u64(ck.pages.size());
    for (const CkptPage &pg : ck.pages) {
        f.u64(pg.idx);
        f.bytes(pg.bytes.data(), pg.bytes.size());
    }
    return f.h;
}

bool
verifyId(const Checkpoint &ck)
{
    return contentHash(ck) == ck.id;
}

Checkpoint
capture(SimContext &ctx, CkptCounters *c)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::FrSpan span(obs::EvType::CkptCapture, 0);
    Checkpoint ck;
    fillCommon(ck, ctx);
    ctx.mem().forEachPage([&](uint64_t idx, const uint8_t *data, uint64_t) {
        CkptPage pg;
        pg.idx = idx;
        pg.bytes.assign(data, data + Memory::kPageSize);
        ck.pages.push_back(std::move(pg));
    });
    std::sort(ck.pages.begin(), ck.pages.end(),
              [](const CkptPage &a, const CkptPage &b) {
                  return a.idx < b.idx;
              });
    ck.epochMark = ctx.mem().newEpoch();
    ck.id = contentHash(ck);
    span.setArgs(ck.pages.size(), 0);
    ONESPEC_TRACE("ckpt", "capture", ck.pages.size(), ck.instrsRetired);
    if (c) {
        ++c->fullCaptures;
        c->pagesCaptured += ck.pages.size();
        c->captureNanos += nanosSince(t0);
    }
    return ck;
}

Checkpoint
captureDelta(SimContext &ctx, const Checkpoint &parent, CkptCounters *c)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::FrSpan span(obs::EvType::CkptCapture, 0, 0, 1);
    checkSpec(ctx, parent, "capture a delta");
    Checkpoint ck;
    ck.delta = true;
    ck.parentId = parent.id;
    fillCommon(ck, ctx);
    ctx.mem().forEachPage(
        [&](uint64_t idx, const uint8_t *data, uint64_t epoch) {
            if (epoch < parent.epochMark)
                return;
            CkptPage pg;
            pg.idx = idx;
            pg.bytes.assign(data, data + Memory::kPageSize);
            ck.pages.push_back(std::move(pg));
        });
    std::sort(ck.pages.begin(), ck.pages.end(),
              [](const CkptPage &a, const CkptPage &b) {
                  return a.idx < b.idx;
              });
    ck.epochMark = ctx.mem().newEpoch();
    ck.id = contentHash(ck);
    span.setArgs(ck.pages.size(), 1);
    ONESPEC_TRACE("ckpt", "capture_delta", ck.pages.size(),
                  ck.instrsRetired);
    if (c) {
        ++c->deltaCaptures;
        c->pagesCaptured += ck.pages.size();
        c->captureNanos += nanosSince(t0);
    }
    return ck;
}

void
restore(SimContext &ctx, const Checkpoint &ck, CkptCounters *c)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::FrSpan span(obs::EvType::CkptRestore, 0, ck.pages.size(), 0);
    if (ck.delta)
        throw CkptError(
            "cannot restore a delta checkpoint directly; restore its "
            "chain starting from the full parent (restoreChain)");
    checkSpec(ctx, ck, "restore");
    ctx.mem().clear();
    installPages(ctx, ck);
    applyScalarState(ctx, ck);
    // Journaled undo entries describe the pre-restore execution.
    ctx.journal().clear();
    ONESPEC_TRACE("ckpt", "restore", ck.pages.size(), ck.instrsRetired);
    if (c) {
        ++c->restores;
        c->pagesRestored += ck.pages.size();
        c->restoreNanos += nanosSince(t0);
    }
}

void
restoreChain(SimContext &ctx,
             const std::vector<const Checkpoint *> &chain, CkptCounters *c)
{
    if (chain.empty())
        throw CkptError("cannot restore an empty checkpoint chain");
    restore(ctx, *chain[0], c);
    for (size_t i = 1; i < chain.size(); ++i) {
        auto t0 = std::chrono::steady_clock::now();
        const Checkpoint &d = *chain[i];
        obs::FrSpan span(obs::EvType::CkptRestore, 0, d.pages.size(), i);
        if (!d.delta)
            throw CkptError(
                "checkpoint chain link " + std::to_string(i) +
                " is a full checkpoint; only the chain root may be");
        if (d.parentId != chain[i - 1]->id)
            throw CkptError(
                "checkpoint chain broken at link " + std::to_string(i) +
                ": parent id " + std::to_string(d.parentId) +
                " does not match preceding checkpoint id " +
                std::to_string(chain[i - 1]->id));
        checkSpec(ctx, d, "restore");
        installPages(ctx, d);
        applyScalarState(ctx, d);
        ONESPEC_TRACE("ckpt", "restore", d.pages.size(), d.instrsRetired);
        if (c) {
            ++c->restores;
            c->pagesRestored += d.pages.size();
            c->restoreNanos += nanosSince(t0);
        }
    }
}

std::vector<uint8_t>
encode(const Checkpoint &ck, CkptCounters *c)
{
    // Build section payloads first; the header's section table needs
    // their sizes and CRCs.
    Writer arch;
    arch.u64(ck.pc);
    arch.u32(static_cast<uint32_t>(ck.words.size()));
    for (uint64_t w : ck.words)
        arch.u64(w);

    Writer os;
    os.u8(ck.os.exited ? 1 : 0);
    os.u32(static_cast<uint32_t>(ck.os.exitCode));
    os.u64(ck.os.brk);
    os.u64(ck.os.timeMs);
    os.u64(ck.os.syscallCount);
    os.u64(ck.os.inputPos);
    os.u64(ck.os.output.size());
    os.bytes(ck.os.output.data(), ck.os.output.size());

    Writer mem;
    mem.u64(Memory::kPageSize);
    mem.u64(ck.pages.size());
    for (const CkptPage &pg : ck.pages) {
        ONESPEC_ASSERT(pg.bytes.size() == Memory::kPageSize,
                       "malformed in-memory checkpoint page");
        mem.u64(pg.idx);
        mem.bytes(pg.bytes.data(), pg.bytes.size());
    }

    struct Section
    {
        uint32_t tag;
        const Writer *payload;
    };
    const Section sections[] = {
        {kTagArch, &arch}, {kTagOs, &os}, {kTagMem, &mem}};
    constexpr size_t kNumSections = 3;
    constexpr size_t kTableEntry = 4 + 8 + 8 + 4; // tag, offset, len, crc

    const size_t headerLen = 8                       // magic
                             + 4 + 4                 // version, flags
                             + 8 * 5                 // fp, id, parent,
                                                     // retired, epoch
                             + 4 + ck.specName.size()
                             + 4                     // section count
                             + kNumSections * kTableEntry
                             + 4;                    // header CRC

    Writer out;
    out.bytes(kMagic, sizeof(kMagic));
    out.u32(kFormatVersion);
    out.u32(ck.delta ? 1u : 0u);
    out.u64(ck.specFingerprint);
    out.u64(ck.id);
    out.u64(ck.parentId);
    out.u64(ck.instrsRetired);
    out.u64(ck.epochMark);
    out.u32(static_cast<uint32_t>(ck.specName.size()));
    out.bytes(ck.specName.data(), ck.specName.size());
    out.u32(kNumSections);
    uint64_t offset = headerLen;
    for (const Section &s : sections) {
        out.u32(s.tag);
        out.u64(offset);
        out.u64(s.payload->size());
        out.u32(crc32(0, s.payload->data().data(), s.payload->size()));
        offset += s.payload->size();
    }
    out.u32(crc32(0, out.data().data(), out.size()));
    ONESPEC_ASSERT(out.size() == headerLen, "checkpoint header size drift");
    for (const Section &s : sections)
        out.bytes(s.payload->data().data(), s.payload->size());
    if (c)
        c->bytesEncoded += out.size();
    return out.take();
}

namespace {

Checkpoint
decodeImpl(const std::vector<uint8_t> &bytes, CkptCounters *c)
{
    Reader hdr(bytes.data(), bytes.size(), "header");
    char magic[8];
    hdr.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw CkptError("not a OneSpec checkpoint (bad magic)");
    uint32_t version = hdr.u32();
    if (version != kFormatVersion)
        throw CkptError("unsupported checkpoint format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kFormatVersion) + ")");
    Checkpoint ck;
    uint32_t flags = hdr.u32();
    ck.delta = (flags & 1u) != 0;
    ck.specFingerprint = hdr.u64();
    ck.id = hdr.u64();
    ck.parentId = hdr.u64();
    ck.instrsRetired = hdr.u64();
    ck.epochMark = hdr.u64();
    uint32_t nameLen = hdr.u32();
    hdr.need(nameLen);
    ck.specName.resize(nameLen);
    hdr.bytes(ck.specName.data(), nameLen);
    uint32_t nsec = hdr.u32();

    struct Entry
    {
        uint32_t tag;
        uint64_t offset;
        uint64_t length;
        uint32_t crc;
    };
    std::vector<Entry> table(nsec);
    for (Entry &e : table) {
        e.tag = hdr.u32();
        e.offset = hdr.u64();
        e.length = hdr.u64();
        e.crc = hdr.u32();
    }
    size_t crcPos = hdr.pos();
    uint32_t storedHeaderCrc = hdr.u32();
    uint32_t computedHeaderCrc = crc32(0, bytes.data(), crcPos);
    if (storedHeaderCrc != computedHeaderCrc)
        throw CkptError("checkpoint header CRC mismatch (file corrupt)");

    bool sawArch = false, sawOs = false, sawMem = false;
    for (const Entry &e : table) {
        if (e.offset > bytes.size() || e.length > bytes.size() - e.offset)
            throw CkptError("checkpoint section '" + tagName(e.tag) +
                            "' extends past end of file (truncated?)");
        const uint8_t *payload = bytes.data() + e.offset;
        uint32_t crc = crc32(0, payload, e.length);
        if (crc != e.crc)
            throw CkptError("checkpoint section '" + tagName(e.tag) +
                            "' CRC mismatch (file corrupt)");
        Reader r(payload, static_cast<size_t>(e.length),
                 tagName(e.tag).c_str());
        if (e.tag == kTagArch) {
            sawArch = true;
            ck.pc = r.u64();
            uint32_t n = r.u32();
            ck.words.resize(n);
            for (uint32_t i = 0; i < n; ++i)
                ck.words[i] = r.u64();
        } else if (e.tag == kTagOs) {
            sawOs = true;
            ck.os.exited = r.u8() != 0;
            ck.os.exitCode = static_cast<int>(
                static_cast<int32_t>(r.u32()));
            ck.os.brk = r.u64();
            ck.os.timeMs = r.u64();
            ck.os.syscallCount = r.u64();
            ck.os.inputPos = static_cast<size_t>(r.u64());
            uint64_t outLen = r.u64();
            r.need(static_cast<size_t>(outLen));
            ck.os.output.resize(static_cast<size_t>(outLen));
            r.bytes(ck.os.output.data(), static_cast<size_t>(outLen));
        } else if (e.tag == kTagMem) {
            sawMem = true;
            uint64_t pageSize = r.u64();
            if (pageSize != Memory::kPageSize)
                throw CkptError(
                    "checkpoint page size " + std::to_string(pageSize) +
                    " does not match this build's " +
                    std::to_string(Memory::kPageSize));
            uint64_t npages = r.u64();
            ck.pages.resize(static_cast<size_t>(npages));
            for (CkptPage &pg : ck.pages) {
                pg.idx = r.u64();
                pg.bytes.resize(Memory::kPageSize);
                r.bytes(pg.bytes.data(), Memory::kPageSize);
            }
        }
        // Unknown tags within a known version are tolerated (a hedge for
        // same-version extensions); their CRC was still enforced above.
    }
    if (!sawArch || !sawOs || !sawMem)
        throw CkptError(std::string("checkpoint is missing a required "
                                    "section: ") +
                        (!sawArch ? "ARCH" : !sawOs ? "OS" : "MEM"));
    if (c)
        c->bytesDecoded += bytes.size();
    return ck;
}

} // namespace

Checkpoint
decode(const std::vector<uint8_t> &bytes, CkptCounters *c)
{
    try {
        return decodeImpl(bytes, c);
    } catch (const CkptError &) {
        // Every rejection path (magic, version, CRC, truncation) funnels
        // through here so observers can count damaged containers.
        ONESPEC_TRACE("ckpt", "reject", bytes.size(), 0);
        throw;
    }
}

void
saveFile(const std::string &path, const Checkpoint &ck, CkptCounters *c)
{
    std::vector<uint8_t> bytes = encode(ck, c);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw CkptError("cannot open checkpoint file for writing: " +
                        path);
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = n == bytes.size() && std::fclose(f) == 0;
    if (!ok)
        throw CkptError("short write to checkpoint file: " + path);
}

Checkpoint
loadFile(const std::string &path, CkptCounters *c)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw CkptError("cannot open checkpoint file: " + path);
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        throw CkptError("error reading checkpoint file: " + path);
    return decode(bytes, c);
}

} // namespace ckpt
} // namespace onespec
