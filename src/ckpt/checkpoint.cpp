#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "ckpt/store.hpp"
#include "obs/flight_recorder.hpp"
#include "stats/trace.hpp"
#include "support/crc32.hpp"
#include "support/logging.hpp"

namespace onespec {
namespace ckpt {

namespace {

constexpr char kMagicV1[8] = {'O', 'S', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'O', 'S', 'P', 'C', 'K', 'P', 'T', '2'};

/** Largest page-index span the v2 MEM section represents as a bitmap;
 *  sparser sets fall back to an explicit index list (both forms are
 *  block-coded).  1M pages of bitmap is 128 KiB before coding. */
constexpr uint64_t kMaxBitmapSpan = uint64_t{1} << 20;

/** v2 MEM page-set representations (docs/CKPT_FORMAT.md). */
constexpr uint8_t kMapBitmap = 0;
constexpr uint8_t kMapIndexList = 1;

/** Section tags, readable in a hex dump. */
constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

constexpr uint32_t kTagArch = fourcc('A', 'R', 'C', 'H');
constexpr uint32_t kTagOs = fourcc('O', 'S', ' ', ' ');
constexpr uint32_t kTagMem = fourcc('M', 'E', 'M', ' ');

std::string
tagName(uint32_t tag)
{
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
        s[i] = (c >= 0x20 && c < 0x7F) ? c : '.';
    }
    return s;
}

/** Little-endian byte-at-a-time writer: host endianness never leaks. */
class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    size_t size() const { return buf_.size(); }
    std::vector<uint8_t> take() { return std::move(buf_); }
    const std::vector<uint8_t> &data() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian reader over a container image. */
class Reader
{
  public:
    Reader(const uint8_t *p, size_t len, const char *what)
        : p_(p), len_(len), what_(what)
    {}

    size_t pos() const { return pos_; }
    /** Raw cursor access for embedded block-coded streams. */
    const uint8_t *cur() const { return p_ + pos_; }
    size_t avail() const { return len_ - pos_; }
    void skip(size_t n) { need(n); pos_ += n; }

    void
    need(size_t n) const
    {
        if (len_ - pos_ < n)
            throw CkptError(std::string("truncated checkpoint: ") +
                            what_ + " needs " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", only " + std::to_string(len_ - pos_) +
                            " remain");
    }

    uint8_t
    u8()
    {
        need(1);
        return p_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p_[pos_++]) << (8 * i);
        return v;
    }

    void
    bytes(void *dst, size_t n)
    {
        need(n);
        std::memcpy(dst, p_ + pos_, n);
        pos_ += n;
    }

  private:
    const uint8_t *p_;
    size_t len_;
    size_t pos_ = 0;
    const char *what_;
};

uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** FNV-1a 64 over raw bytes and fixed-width values. */
struct Fnv
{
    uint64_t h = 14695981039346656037ull;

    void
    bytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    }

    void
    u64(uint64_t v)
    {
        // Hash the little-endian byte image so the id is host-independent.
        uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<uint8_t>(v >> (8 * i));
        bytes(b, 8);
    }
};

void
fillCommon(Checkpoint &ck, SimContext &ctx)
{
    ck.specFingerprint = ctx.spec().fingerprint;
    ck.specName = ctx.spec().props.name;
    ck.instrsRetired = ctx.instrsRetired();
    ck.pc = ctx.state().pc();
    const ArchState &st = ctx.state();
    ck.words.resize(st.numWords());
    for (unsigned i = 0; i < st.numWords(); ++i)
        ck.words[i] = st.rawWord(i);
    ck.os = ctx.os().snapshot();
}

/** Install one checkpoint's ARCH/OS/retired view into the context. */
void
applyScalarState(SimContext &ctx, const Checkpoint &ck)
{
    ArchState &st = ctx.state();
    if (ck.words.size() != st.numWords())
        throw CkptError(
            "checkpoint register state has " +
            std::to_string(ck.words.size()) + " words but spec '" +
            ctx.spec().props.name + "' declares " +
            std::to_string(st.numWords()));
    for (unsigned i = 0; i < st.numWords(); ++i)
        st.setRawWord(i, ck.words[i]);
    st.setPc(ck.pc);
    ctx.os().restoreSnapshot(ck.os);
    ctx.setRetired(ck.instrsRetired);
}

void
checkSpec(const SimContext &ctx, const Checkpoint &ck, const char *op)
{
    if (ck.specFingerprint != ctx.spec().fingerprint)
        throw CkptError(
            std::string("cannot ") + op + ": checkpoint was captured "
            "for spec '" + ck.specName + "' (fingerprint " +
            std::to_string(ck.specFingerprint) +
            "), context runs spec '" + ctx.spec().props.name +
            "' (fingerprint " +
            std::to_string(ctx.spec().fingerprint) + ")");
}

void
installPages(SimContext &ctx, const Checkpoint &ck)
{
    for (const CkptPage &pg : ck.pages) {
        ONESPEC_ASSERT(pg.bytes.size() == Memory::kPageSize,
                       "malformed in-memory checkpoint page");
        ctx.mem().installPage(pg.idx, pg.bytes.data());
    }
}

/** Raw (pre-codec) byte image of the v2 page-index map. */
std::vector<uint8_t>
buildPageMap(const Checkpoint &ck, uint64_t base, uint64_t span,
             uint8_t mapKind)
{
    std::vector<uint8_t> raw;
    if (mapKind == kMapBitmap) {
        raw.resize(static_cast<size_t>((span + 7) / 8), 0);
        for (const CkptPage &pg : ck.pages) {
            const uint64_t bit = pg.idx - base;
            raw[static_cast<size_t>(bit >> 3)] |=
                static_cast<uint8_t>(1u << (bit & 7));
        }
    } else {
        raw.reserve(ck.pages.size() * 8);
        for (const CkptPage &pg : ck.pages)
            for (int i = 0; i < 8; ++i)
                raw.push_back(static_cast<uint8_t>(pg.idx >> (8 * i)));
    }
    return raw;
}

/** Recover ascending page indices from a decoded v2 page map. */
std::vector<uint64_t>
parsePageMap(const std::vector<uint8_t> &raw, uint64_t base, uint64_t span,
             uint64_t npages, uint8_t mapKind)
{
    std::vector<uint64_t> idx;
    idx.reserve(static_cast<size_t>(npages));
    if (mapKind == kMapBitmap) {
        for (uint64_t bit = 0; bit < span; ++bit)
            if (raw[static_cast<size_t>(bit >> 3)] & (1u << (bit & 7)))
                idx.push_back(base + bit);
    } else {
        for (uint64_t i = 0; i < npages; ++i) {
            uint64_t v = 0;
            for (int b = 0; b < 8; ++b)
                v |= static_cast<uint64_t>(raw[static_cast<size_t>(
                         i * 8 + b)])
                     << (8 * b);
            idx.push_back(v);
        }
    }
    if (idx.size() != npages)
        throw CkptError("checkpoint page map lists " +
                        std::to_string(idx.size()) + " pages, header "
                        "says " + std::to_string(npages));
    for (size_t i = 0; i < idx.size(); ++i) {
        const uint64_t v = idx[i];
        if (v < base || v - base >= span)
            throw CkptError("checkpoint page map entry " +
                            std::to_string(v) + " falls outside the "
                            "declared span");
        if (i > 0 && idx[i - 1] >= v)
            throw CkptError("checkpoint page map is not strictly "
                            "ascending");
    }
    return idx;
}

/**
 * Serialize the v2 MEM section: page-count header, block-coded page
 * map, then per-page payloads -- inline block-coded images, or u64
 * store references when @p store is set.
 */
void
writeMemV2(Writer &mem, const Checkpoint &ck, CkptStore *store,
           CkptCounters *c)
{
    codec::CodecStats *st = c ? &c->codecEncode : nullptr;
    mem.u64(Memory::kPageSize);
    mem.u64(ck.pages.size());
    mem.u8(store ? 1 : 0);
    if (ck.pages.empty())
        return;
    const uint64_t base = ck.pages.front().idx;
    const uint64_t span = ck.pages.back().idx - base + 1;
    const uint8_t mapKind =
        span <= kMaxBitmapSpan ? kMapBitmap : kMapIndexList;
    mem.u64(base);
    mem.u64(span);
    mem.u8(mapKind);
    const std::vector<uint8_t> mapRaw =
        buildPageMap(ck, base, span, mapKind);
    std::vector<uint8_t> stream;
    codec::encodeStream(stream, mapRaw.data(), mapRaw.size(), st);
    mem.bytes(stream.data(), stream.size());
    for (const CkptPage &pg : ck.pages) {
        ONESPEC_ASSERT(pg.bytes.size() == Memory::kPageSize,
                       "malformed in-memory checkpoint page");
        if (store) {
            mem.u64(store->putPage(pg.bytes.data(), c));
        } else {
            stream.clear();
            codec::encodeStream(stream, pg.bytes.data(), pg.bytes.size(),
                                st);
            mem.bytes(stream.data(), stream.size());
        }
    }
}

/** Parse the v2 MEM section into @p ck, resolving store references
 *  through @p store (throws if references appear and store is null). */
void
readMemV2(Reader &r, Checkpoint &ck, CkptStore *store, CkptCounters *c)
{
    codec::CodecStats *st = c ? &c->codecDecode : nullptr;
    const uint64_t pageSize = r.u64();
    if (pageSize != Memory::kPageSize)
        throw CkptError(
            "checkpoint page size " + std::to_string(pageSize) +
            " does not match this build's " +
            std::to_string(Memory::kPageSize));
    const uint64_t npages = r.u64();
    const bool byRef = r.u8() != 0;
    if (npages == 0)
        return;
    const uint64_t base = r.u64();
    const uint64_t span = r.u64();
    if (span == 0 || span < npages)
        throw CkptError("checkpoint page map span " +
                        std::to_string(span) + " cannot hold " +
                        std::to_string(npages) + " pages");
    const uint8_t mapKind = r.u8();
    if (mapKind != kMapBitmap && mapKind != kMapIndexList)
        throw CkptError("checkpoint page map kind " +
                        std::to_string(mapKind) + " is not recognized");
    if (mapKind == kMapBitmap && span > kMaxBitmapSpan)
        throw CkptError("checkpoint page bitmap spans " +
                        std::to_string(span) + " pages, limit is " +
                        std::to_string(kMaxBitmapSpan));
    const size_t mapRawLen = mapKind == kMapBitmap
                                 ? static_cast<size_t>((span + 7) / 8)
                                 : static_cast<size_t>(npages) * 8;
    std::vector<uint8_t> mapRaw(mapRawLen);
    size_t consumed = 0;
    codec::decodeStream(r.cur(), r.avail(), consumed, mapRaw.data(),
                        mapRawLen, st);
    r.skip(consumed);
    const std::vector<uint64_t> indices =
        parsePageMap(mapRaw, base, span, npages, mapKind);

    ck.pages.resize(static_cast<size_t>(npages));
    for (size_t i = 0; i < indices.size(); ++i) {
        CkptPage &pg = ck.pages[i];
        pg.idx = indices[i];
        pg.bytes.resize(Memory::kPageSize);
        if (byRef) {
            const uint64_t hash = r.u64();
            if (!store)
                throw CkptError(
                    "checkpoint carries store references but no store "
                    "was provided (pass --store / a CkptStore)");
            store->getPage(hash, pg.bytes.data(), c);
        } else {
            consumed = 0;
            codec::decodeStream(r.cur(), r.avail(), consumed,
                                pg.bytes.data(), Memory::kPageSize, st);
            r.skip(consumed);
        }
    }
}

} // namespace

uint64_t
fnv1a(const void *data, size_t len)
{
    Fnv f;
    f.bytes(data, len);
    return f.h;
}

CkptCounters &
CkptCounters::operator+=(const CkptCounters &o)
{
    fullCaptures += o.fullCaptures;
    deltaCaptures += o.deltaCaptures;
    restores += o.restores;
    pagesCaptured += o.pagesCaptured;
    pagesRestored += o.pagesRestored;
    bytesEncoded += o.bytesEncoded;
    bytesDecoded += o.bytesDecoded;
    captureNanos += o.captureNanos;
    restoreNanos += o.restoreNanos;
    codecEncode += o.codecEncode;
    codecDecode += o.codecDecode;
    storePagePuts += o.storePagePuts;
    storePageDedupHits += o.storePageDedupHits;
    storeBytesWritten += o.storeBytesWritten;
    storeBytesRead += o.storeBytesRead;
    return *this;
}

void
CkptCounters::publish(stats::StatGroup &g) const
{
    g.counter("full_captures", "full checkpoints captured")
        .add(fullCaptures);
    g.counter("delta_captures", "delta checkpoints captured")
        .add(deltaCaptures);
    g.counter("restores", "checkpoints applied to a context")
        .add(restores);
    g.counter("pages_captured", "memory pages serialized into checkpoints")
        .add(pagesCaptured);
    g.counter("pages_restored", "memory pages installed from checkpoints")
        .add(pagesRestored);
    g.counter("bytes_encoded", "container bytes produced by encode()")
        .add(bytesEncoded);
    g.counter("bytes_decoded", "container bytes consumed by decode()")
        .add(bytesDecoded);
    g.counter("capture_nanos", "wall nanoseconds spent capturing")
        .add(captureNanos);
    g.counter("restore_nanos", "wall nanoseconds spent restoring")
        .add(restoreNanos);
    g.counter("blocks_raw", "v2 blocks encoded verbatim")
        .add(codecEncode.raw);
    g.counter("blocks_zero", "v2 blocks encoded as all-zero")
        .add(codecEncode.zero);
    g.counter("blocks_fill", "v2 blocks encoded as one repeated byte")
        .add(codecEncode.fill);
    g.counter("blocks_rle", "v2 blocks encoded as byte runs")
        .add(codecEncode.rle);
    g.counter("codec_bytes_raw", "payload bytes offered to the block codec")
        .add(codecEncode.bytesRaw);
    g.counter("codec_bytes_encoded", "stream bytes the block codec emitted")
        .add(codecEncode.bytesEncoded);
    g.counter("store_page_puts", "pages offered to a content store")
        .add(storePagePuts);
    g.counter("store_dedup_hits", "page puts satisfied by existing blobs")
        .add(storePageDedupHits);
    g.counter("store_bytes_written", "page-blob bytes written to a store")
        .add(storeBytesWritten);
    g.counter("store_bytes_read", "page-blob bytes read from a store")
        .add(storeBytesRead);
}

uint64_t
contentHash(const Checkpoint &ck)
{
    // Identity covers the machine state and lineage, not host-side
    // bookkeeping: epochMark is deliberately excluded so the same state
    // reached by different capture schedules hashes the same.
    Fnv f;
    f.u64(ck.specFingerprint);
    f.u64(ck.delta ? 1 : 0);
    f.u64(ck.parentId);
    f.u64(ck.instrsRetired);
    f.u64(ck.pc);
    f.u64(ck.words.size());
    for (uint64_t w : ck.words)
        f.u64(w);
    f.u64(ck.os.exited ? 1 : 0);
    f.u64(static_cast<uint64_t>(static_cast<int64_t>(ck.os.exitCode)));
    f.u64(ck.os.output.size());
    f.bytes(ck.os.output.data(), ck.os.output.size());
    f.u64(ck.os.inputPos);
    f.u64(ck.os.brk);
    f.u64(ck.os.timeMs);
    f.u64(ck.os.syscallCount);
    f.u64(ck.pages.size());
    for (const CkptPage &pg : ck.pages) {
        f.u64(pg.idx);
        f.bytes(pg.bytes.data(), pg.bytes.size());
    }
    return f.h;
}

bool
verifyId(const Checkpoint &ck)
{
    return contentHash(ck) == ck.id;
}

Checkpoint
capture(SimContext &ctx, CkptCounters *c)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::FrSpan span(obs::EvType::CkptCapture, 0);
    Checkpoint ck;
    fillCommon(ck, ctx);
    ctx.mem().forEachPageSorted(
        [&](uint64_t idx, const uint8_t *data, uint64_t) {
            CkptPage pg;
            pg.idx = idx;
            pg.bytes.assign(data, data + Memory::kPageSize);
            ck.pages.push_back(std::move(pg));
        });
    ck.epochMark = ctx.mem().newEpoch();
    ck.id = contentHash(ck);
    span.setArgs(ck.pages.size(), 0);
    ONESPEC_TRACE("ckpt", "capture", ck.pages.size(), ck.instrsRetired);
    if (c) {
        ++c->fullCaptures;
        c->pagesCaptured += ck.pages.size();
        c->captureNanos += nanosSince(t0);
    }
    return ck;
}

Checkpoint
captureDelta(SimContext &ctx, const Checkpoint &parent, CkptCounters *c)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::FrSpan span(obs::EvType::CkptCapture, 0, 0, 1);
    checkSpec(ctx, parent, "capture a delta");
    Checkpoint ck;
    ck.delta = true;
    ck.parentId = parent.id;
    fillCommon(ck, ctx);
    ctx.mem().forEachPageSorted(
        [&](uint64_t idx, const uint8_t *data, uint64_t epoch) {
            if (epoch < parent.epochMark)
                return;
            CkptPage pg;
            pg.idx = idx;
            pg.bytes.assign(data, data + Memory::kPageSize);
            ck.pages.push_back(std::move(pg));
        });
    ck.epochMark = ctx.mem().newEpoch();
    ck.id = contentHash(ck);
    span.setArgs(ck.pages.size(), 1);
    ONESPEC_TRACE("ckpt", "capture_delta", ck.pages.size(),
                  ck.instrsRetired);
    if (c) {
        ++c->deltaCaptures;
        c->pagesCaptured += ck.pages.size();
        c->captureNanos += nanosSince(t0);
    }
    return ck;
}

void
restore(SimContext &ctx, const Checkpoint &ck, CkptCounters *c)
{
    auto t0 = std::chrono::steady_clock::now();
    obs::FrSpan span(obs::EvType::CkptRestore, 0, ck.pages.size(), 0);
    if (ck.delta)
        throw CkptError(
            "cannot restore a delta checkpoint directly; restore its "
            "chain starting from the full parent (restoreChain)");
    checkSpec(ctx, ck, "restore");
    ctx.mem().clear();
    installPages(ctx, ck);
    applyScalarState(ctx, ck);
    // Journaled undo entries describe the pre-restore execution.
    ctx.journal().clear();
    ONESPEC_TRACE("ckpt", "restore", ck.pages.size(), ck.instrsRetired);
    if (c) {
        ++c->restores;
        c->pagesRestored += ck.pages.size();
        c->restoreNanos += nanosSince(t0);
    }
}

void
restoreChain(SimContext &ctx,
             const std::vector<const Checkpoint *> &chain, CkptCounters *c)
{
    if (chain.empty())
        throw CkptError("cannot restore an empty checkpoint chain");
    restore(ctx, *chain[0], c);
    for (size_t i = 1; i < chain.size(); ++i) {
        auto t0 = std::chrono::steady_clock::now();
        const Checkpoint &d = *chain[i];
        obs::FrSpan span(obs::EvType::CkptRestore, 0, d.pages.size(), i);
        if (!d.delta)
            throw CkptError(
                "checkpoint chain link " + std::to_string(i) +
                " is a full checkpoint; only the chain root may be");
        if (d.parentId != chain[i - 1]->id)
            throw CkptError(
                "checkpoint chain broken at link " + std::to_string(i) +
                ": parent id " + std::to_string(d.parentId) +
                " does not match preceding checkpoint id " +
                std::to_string(chain[i - 1]->id));
        checkSpec(ctx, d, "restore");
        installPages(ctx, d);
        applyScalarState(ctx, d);
        ONESPEC_TRACE("ckpt", "restore", d.pages.size(), d.instrsRetired);
        if (c) {
            ++c->restores;
            c->pagesRestored += d.pages.size();
            c->restoreNanos += nanosSince(t0);
        }
    }
}

std::vector<uint8_t>
encode(const Checkpoint &ck, const EncodeOptions &opt, CkptCounters *c)
{
    if (opt.version != kFormatVersion && opt.version != kFormatVersionV1)
        throw CkptError("cannot encode checkpoint format version " +
                        std::to_string(opt.version) + " (this build "
                        "writes versions 1 and 2)");
    if (opt.store && opt.version != kFormatVersion)
        throw CkptError("store-backed encoding requires container "
                        "format version 2");
    const bool v2 = opt.version == kFormatVersion;

    // Build section payloads first; the header's section table needs
    // their sizes and CRCs.
    Writer arch;
    arch.u64(ck.pc);
    arch.u32(static_cast<uint32_t>(ck.words.size()));
    for (uint64_t w : ck.words)
        arch.u64(w);

    Writer os;
    os.u8(ck.os.exited ? 1 : 0);
    os.u32(static_cast<uint32_t>(ck.os.exitCode));
    os.u64(ck.os.brk);
    os.u64(ck.os.timeMs);
    os.u64(ck.os.syscallCount);
    os.u64(ck.os.inputPos);
    os.u64(ck.os.output.size());
    os.bytes(ck.os.output.data(), ck.os.output.size());

    Writer mem;
    if (v2) {
        writeMemV2(mem, ck, opt.store, c);
    } else {
        mem.u64(Memory::kPageSize);
        mem.u64(ck.pages.size());
        for (const CkptPage &pg : ck.pages) {
            ONESPEC_ASSERT(pg.bytes.size() == Memory::kPageSize,
                           "malformed in-memory checkpoint page");
            mem.u64(pg.idx);
            mem.bytes(pg.bytes.data(), pg.bytes.size());
        }
    }

    struct Section
    {
        uint32_t tag;
        const Writer *payload;
    };
    const Section sections[] = {
        {kTagArch, &arch}, {kTagOs, &os}, {kTagMem, &mem}};
    constexpr size_t kNumSections = 3;
    constexpr size_t kTableEntry = 4 + 8 + 8 + 4; // tag, offset, len, crc

    const size_t headerLen = 8                       // magic
                             + 4 + 4                 // version, flags
                             + 8 * 5                 // fp, id, parent,
                                                     // retired, epoch
                             + 4 + ck.specName.size()
                             + 4                     // section count
                             + kNumSections * kTableEntry
                             + 4;                    // header CRC

    Writer out;
    out.bytes(v2 ? kMagicV2 : kMagicV1, 8);
    out.u32(opt.version);
    out.u32(ck.delta ? 1u : 0u);
    out.u64(ck.specFingerprint);
    out.u64(ck.id);
    out.u64(ck.parentId);
    out.u64(ck.instrsRetired);
    out.u64(ck.epochMark);
    out.u32(static_cast<uint32_t>(ck.specName.size()));
    out.bytes(ck.specName.data(), ck.specName.size());
    out.u32(kNumSections);
    uint64_t offset = headerLen;
    for (const Section &s : sections) {
        out.u32(s.tag);
        out.u64(offset);
        out.u64(s.payload->size());
        out.u32(crc32(0, s.payload->data().data(), s.payload->size()));
        offset += s.payload->size();
    }
    out.u32(crc32(0, out.data().data(), out.size()));
    ONESPEC_ASSERT(out.size() == headerLen, "checkpoint header size drift");
    for (const Section &s : sections)
        out.bytes(s.payload->data().data(), s.payload->size());
    if (c)
        c->bytesEncoded += out.size();
    return out.take();
}

std::vector<uint8_t>
encode(const Checkpoint &ck, CkptCounters *c)
{
    return encode(ck, EncodeOptions{}, c);
}

namespace {

/** Parsed header + validated section table, shared by decode and
 *  inspect. */
struct Parsed
{
    uint32_t version = 0;
    Checkpoint ck;
    std::vector<SectionInfo> table;
};

Parsed
parseHeader(const std::vector<uint8_t> &bytes)
{
    Parsed ps;
    Reader hdr(bytes.data(), bytes.size(), "header");
    char magic[8];
    hdr.bytes(magic, sizeof(magic));
    uint32_t expectVersion;
    if (std::memcmp(magic, kMagicV1, 8) == 0)
        expectVersion = kFormatVersionV1;
    else if (std::memcmp(magic, kMagicV2, 8) == 0)
        expectVersion = kFormatVersion;
    else
        throw CkptError("not a OneSpec checkpoint (bad magic)");
    uint32_t version = hdr.u32();
    if (version != expectVersion)
        throw CkptError("unsupported checkpoint format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kFormatVersionV1) + " and " +
                        std::to_string(kFormatVersion) + ")");
    ps.version = version;
    Checkpoint &ck = ps.ck;
    uint32_t flags = hdr.u32();
    ck.delta = (flags & 1u) != 0;
    ck.specFingerprint = hdr.u64();
    ck.id = hdr.u64();
    ck.parentId = hdr.u64();
    ck.instrsRetired = hdr.u64();
    ck.epochMark = hdr.u64();
    uint32_t nameLen = hdr.u32();
    hdr.need(nameLen);
    ck.specName.resize(nameLen);
    hdr.bytes(ck.specName.data(), nameLen);
    uint32_t nsec = hdr.u32();

    ps.table.resize(nsec);
    for (SectionInfo &e : ps.table) {
        e.tag = hdr.u32();
        e.offset = hdr.u64();
        e.length = hdr.u64();
        e.crc = hdr.u32();
        e.name = tagName(e.tag);
    }
    size_t crcPos = hdr.pos();
    uint32_t storedHeaderCrc = hdr.u32();
    uint32_t computedHeaderCrc = crc32(0, bytes.data(), crcPos);
    if (storedHeaderCrc != computedHeaderCrc)
        throw CkptError("checkpoint header CRC mismatch (file corrupt)");

    for (const SectionInfo &e : ps.table) {
        if (e.offset > bytes.size() || e.length > bytes.size() - e.offset)
            throw CkptError("checkpoint section '" + e.name +
                            "' extends past end of file (truncated?)");
        uint32_t crc = crc32(0, bytes.data() + e.offset, e.length);
        if (crc != e.crc)
            throw CkptError("checkpoint section '" + e.name +
                            "' CRC mismatch (file corrupt)");
    }
    return ps;
}

Checkpoint
decodeImpl(const std::vector<uint8_t> &bytes, CkptStore *store,
           CkptCounters *c)
{
    Parsed ps = parseHeader(bytes);
    Checkpoint &ck = ps.ck;
    bool sawArch = false, sawOs = false, sawMem = false;
    for (const SectionInfo &e : ps.table) {
        const uint8_t *payload = bytes.data() + e.offset;
        Reader r(payload, static_cast<size_t>(e.length), e.name.c_str());
        if (e.tag == kTagArch) {
            sawArch = true;
            ck.pc = r.u64();
            uint32_t n = r.u32();
            ck.words.resize(n);
            for (uint32_t i = 0; i < n; ++i)
                ck.words[i] = r.u64();
        } else if (e.tag == kTagOs) {
            sawOs = true;
            ck.os.exited = r.u8() != 0;
            ck.os.exitCode = static_cast<int>(
                static_cast<int32_t>(r.u32()));
            ck.os.brk = r.u64();
            ck.os.timeMs = r.u64();
            ck.os.syscallCount = r.u64();
            ck.os.inputPos = static_cast<size_t>(r.u64());
            uint64_t outLen = r.u64();
            r.need(static_cast<size_t>(outLen));
            ck.os.output.resize(static_cast<size_t>(outLen));
            r.bytes(ck.os.output.data(), static_cast<size_t>(outLen));
        } else if (e.tag == kTagMem) {
            sawMem = true;
            if (ps.version == kFormatVersionV1) {
                uint64_t pageSize = r.u64();
                if (pageSize != Memory::kPageSize)
                    throw CkptError(
                        "checkpoint page size " +
                        std::to_string(pageSize) +
                        " does not match this build's " +
                        std::to_string(Memory::kPageSize));
                uint64_t npages = r.u64();
                ck.pages.resize(static_cast<size_t>(npages));
                for (CkptPage &pg : ck.pages) {
                    pg.idx = r.u64();
                    pg.bytes.resize(Memory::kPageSize);
                    r.bytes(pg.bytes.data(), Memory::kPageSize);
                }
            } else {
                readMemV2(r, ck, store, c);
            }
        }
        // Unknown tags within a known version are tolerated (a hedge for
        // same-version extensions); their CRC was still enforced above.
    }
    if (!sawArch || !sawOs || !sawMem)
        throw CkptError(std::string("checkpoint is missing a required "
                                    "section: ") +
                        (!sawArch ? "ARCH" : !sawOs ? "OS" : "MEM"));
    if (c)
        c->bytesDecoded += bytes.size();
    return ck;
}

Checkpoint
decodeFunnel(const std::vector<uint8_t> &bytes, CkptStore *store,
             CkptCounters *c)
{
    try {
        return decodeImpl(bytes, store, c);
    } catch (const CkptError &) {
        // Every rejection path (magic, version, CRC, truncation, corrupt
        // block, dangling reference) funnels through here so observers
        // can count damaged containers.
        ONESPEC_TRACE("ckpt", "reject", bytes.size(), 0);
        throw;
    }
}

} // namespace

Checkpoint
decode(const std::vector<uint8_t> &bytes, CkptCounters *c)
{
    return decodeFunnel(bytes, nullptr, c);
}

Checkpoint
decode(const std::vector<uint8_t> &bytes, CkptStore *store, CkptCounters *c)
{
    return decodeFunnel(bytes, store, c);
}

ContainerInfo
inspect(const std::vector<uint8_t> &bytes)
{
    Parsed ps = parseHeader(bytes);
    ContainerInfo info;
    info.version = ps.version;
    info.delta = ps.ck.delta;
    info.specFingerprint = ps.ck.specFingerprint;
    info.specName = ps.ck.specName;
    info.id = ps.ck.id;
    info.parentId = ps.ck.parentId;
    info.instrsRetired = ps.ck.instrsRetired;
    info.epochMark = ps.ck.epochMark;
    info.fileLen = bytes.size();
    info.sections = ps.table;
    uint64_t headerLen = bytes.size();
    for (const SectionInfo &e : ps.table)
        headerLen = std::min(headerLen, e.offset);
    info.headerLen = headerLen;

    for (const SectionInfo &e : ps.table) {
        if (e.tag != kTagMem)
            continue;
        const uint8_t *payload = bytes.data() + e.offset;
        Reader r(payload, static_cast<size_t>(e.length), "MEM ");
        if (ps.version == kFormatVersionV1) {
            r.u64(); // page size
            info.pageCount = r.u64();
            continue;
        }
        r.u64(); // page size
        info.pageCount = r.u64();
        info.pagesByRef = r.u8() != 0;
        if (info.pageCount == 0)
            continue;
        r.u64(); // base
        r.u64(); // span
        r.u8();  // map kind
        size_t consumed = 0;
        codec::scanStream(r.cur(), r.avail(), consumed, &info.codec);
        r.skip(consumed);
        for (uint64_t i = 0; i < info.pageCount; ++i) {
            if (info.pagesByRef) {
                info.pageRefs.push_back(r.u64());
            } else {
                consumed = 0;
                codec::scanStream(r.cur(), r.avail(), consumed,
                                  &info.codec);
                r.skip(consumed);
            }
        }
    }
    return info;
}

void
saveFile(const std::string &path, const Checkpoint &ck,
         const EncodeOptions &opt, CkptCounters *c)
{
    std::vector<uint8_t> bytes = encode(ck, opt, c);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw CkptError("cannot open checkpoint file for writing: " +
                        path);
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = n == bytes.size() && std::fclose(f) == 0;
    if (!ok)
        throw CkptError("short write to checkpoint file: " + path);
}

void
saveFile(const std::string &path, const Checkpoint &ck, CkptCounters *c)
{
    saveFile(path, ck, EncodeOptions{}, c);
}

namespace {

std::vector<uint8_t>
readCkptFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw CkptError("cannot open checkpoint file: " + path);
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        throw CkptError("error reading checkpoint file: " + path);
    return bytes;
}

} // namespace

Checkpoint
loadFile(const std::string &path, CkptCounters *c)
{
    return decode(readCkptFile(path), c);
}

Checkpoint
loadFile(const std::string &path, CkptStore *store, CkptCounters *c)
{
    return decode(readCkptFile(path), store, c);
}

} // namespace ckpt
} // namespace onespec
