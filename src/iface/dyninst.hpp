/**
 * @file
 * The dynamic-instruction record: the unit of information flowing across
 * the functional-to-timing interface (the paper's Figure 2).
 *
 * Layout: a fixed header that is always maintained (it is *semantic*:
 * pc/npc/fault/written-mask are needed for correct execution regardless of
 * the interface's informational detail) plus a flat array of value slots.
 * Which slots are actually stored is the buildset's informational detail:
 * hidden slots never touch this record -- in generated simulators they
 * live in function-local variables and are dead-store-eliminated.
 */

#ifndef ONESPEC_IFACE_DYNINST_HPP
#define ONESPEC_IFACE_DYNINST_HPP

#include <cstdint>

#include "adl/builtins.hpp"
#include "adl/spec.hpp"

namespace onespec {

/** Flag bits in DynInst::flags. */
enum DynInstFlags : uint8_t
{
    kFlagBranchTaken = 1 << 0,  ///< branch() redirected control flow
    kFlagSyscall = 1 << 1,      ///< instruction entered OS emulation
    kFlagHalted = 1 << 2,       ///< instruction requested simulation halt
};

/**
 * One dynamic instruction crossing the interface.
 *
 * The record is deliberately *not* cleared between instructions: visible
 * slots are written when the instruction produces them (tracked in
 * `written`), mirroring how generated code initializes only what it
 * computes.  Consumers must consult `written` before trusting a slot.
 */
struct DynInst
{
    uint64_t pc = 0;
    uint64_t npc = 0;
    uint64_t written = 0;       ///< slot-written mask (always maintained)
    uint32_t inst = 0;          ///< raw instruction word
    uint16_t opId = 0xffff;     ///< decoded instruction id; 0xffff illegal
    FaultKind fault = FaultKind::None;
    uint8_t flags = 0;
    uint8_t nOps = 0;
    uint8_t opRegs[kMaxOps] = {};   ///< operand register indices
    uint8_t opMeta[kMaxOps] = {};   ///< bit7 = isDst; low bits = file id

    uint64_t vals[kMaxSlots] = {};

    bool slotWritten(int idx) const
    {
        return (written >> idx) & 1;
    }

    uint64_t val(int idx) const { return vals[idx]; }

    void
    setVal(int idx, uint64_t v)
    {
        vals[idx] = v;
        written |= uint64_t{1} << idx;
    }

    bool branchTaken() const { return flags & kFlagBranchTaken; }
    bool isSyscall() const { return flags & kFlagSyscall; }

    /** Reset per-instruction header state (slots are left stale). */
    void
    beginInstr(uint64_t pc_, uint64_t npc_)
    {
        pc = pc_;
        npc = npc_;
        written = 0;
        opId = 0xffff;
        fault = FaultKind::None;
        flags = 0;
        nOps = 0;
    }
};

/** Operand-meta helpers. */
constexpr uint8_t
makeOpMeta(bool is_dst, unsigned file_id)
{
    return static_cast<uint8_t>((is_dst ? 0x80 : 0) | (file_id & 0x7f));
}

constexpr bool opMetaIsDst(uint8_t m) { return m & 0x80; }
constexpr unsigned opMetaFile(uint8_t m) { return m & 0x7f; }

} // namespace onespec

#endif // ONESPEC_IFACE_DYNINST_HPP
