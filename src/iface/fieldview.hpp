/**
 * @file
 * FieldView: ISA-generic, name-based access to a DynInst's informational
 * content.  Timing simulators that are not specialized to one ISA resolve
 * slot names once (at setup) and then read slots by index.
 */

#ifndef ONESPEC_IFACE_FIELDVIEW_HPP
#define ONESPEC_IFACE_FIELDVIEW_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "adl/spec.hpp"
#include "iface/dyninst.hpp"

namespace onespec {

/** Resolves slot names against one Spec for repeated DynInst queries. */
class FieldView
{
  public:
    explicit FieldView(const Spec &spec) : spec_(&spec) {}

    /** Slot handle for @p name; -1 if the ISA has no such slot. */
    int handle(const std::string &name) const
    {
        return spec_->findSlot(name);
    }

    /**
     * Value of slot @p h in @p di, if the executing instruction produced
     * it *and* the interface made it visible.
     */
    std::optional<uint64_t>
    get(const DynInst &di, int h) const
    {
        if (h < 0 || !di.slotWritten(h))
            return std::nullopt;
        return di.val(h);
    }

    std::optional<uint64_t>
    get(const DynInst &di, const std::string &name) const
    {
        return get(di, handle(name));
    }

    const Spec &spec() const { return *spec_; }

  private:
    const Spec *spec_;
};

} // namespace onespec

#endif // ONESPEC_IFACE_FIELDVIEW_HPP
