/**
 * @file
 * The abstract functional-to-timing simulator interface.  A concrete
 * simulator (interpreter-backed or synthesized by lisc) implements the
 * entrypoints its buildset defines; calling an entrypoint the buildset
 * does not provide is a usage error and panics, mirroring how a tailored
 * interface simply does not offer calls the timing simulator did not ask
 * for.
 *
 * Semantic detail -> entrypoints:
 *   block  : executeBlock() / fastForward()
 *   one    : execute()
 *   step   : step(Step::Fetch..Step::Exception)
 *   custom : call(entrypointIndex, di)
 *
 * Speculation (when the buildset enables it): undo(n).
 *
 * Every public entrypoint is a non-virtual wrapper that counts the
 * interface crossing and dispatches to a protected virtual (doExecute,
 * doExecuteBlock, ...).  The paper's whole argument is about what each
 * crossing of this boundary costs; the wrappers make those crossings
 * observable for free at every call site.  Counters live as plain
 * members (hot path stays pointer-chase free) and are folded into the
 * hierarchical stats registry on demand via publishStats().
 */

#ifndef ONESPEC_IFACE_FUNCTIONAL_SIMULATOR_HPP
#define ONESPEC_IFACE_FUNCTIONAL_SIMULATOR_HPP

#include <cstdint>

#include "adl/spec.hpp"
#include "iface/dyninst.hpp"
#include "runtime/context.hpp"
#include "stats/stats.hpp"

namespace onespec {

namespace obs {
class PcProfiler;
}

/** Outcome of advancing the functional simulation. */
enum class RunStatus : uint8_t
{
    Ok,     ///< instruction(s) executed normally
    Halted, ///< program exited (OS exit or halt())
    Fault,  ///< an architectural fault was raised; see DynInst::fault
};

/** Result of a run-to-completion helper. */
struct RunResult
{
    RunStatus status = RunStatus::Ok;
    uint64_t instrs = 0;
};

/**
 * Interface-crossing counters for one simulator instance.  A "crossing"
 * is one call through the functional-to-timing interface; instrs counts
 * what those crossings delivered, so instrs/crossings() is the
 * amortization the Block semantic level buys.
 */
struct IfaceCounters
{
    uint64_t executeCalls = 0;
    uint64_t executeBlockCalls = 0;
    uint64_t stepCalls = 0;
    uint64_t customCalls = 0;
    uint64_t fastForwardCalls = 0;
    uint64_t undoCalls = 0;
    uint64_t instrs = 0;        ///< instructions delivered across the iface
    uint64_t undoneInstrs = 0;  ///< instructions squashed by undo()

    uint64_t
    crossings() const
    {
        return executeCalls + executeBlockCalls + stepCalls +
               customCalls + fastForwardCalls + undoCalls;
    }

    double
    instrsPerCrossing() const
    {
        uint64_t c = crossings();
        return c ? static_cast<double>(instrs) / static_cast<double>(c)
                 : 0.0;
    }

    /** Field-wise accumulation (bench cells sum over kernels). */
    IfaceCounters &
    operator+=(const IfaceCounters &o)
    {
        executeCalls += o.executeCalls;
        executeBlockCalls += o.executeBlockCalls;
        stepCalls += o.stepCalls;
        customCalls += o.customCalls;
        fastForwardCalls += o.fastForwardCalls;
        undoCalls += o.undoCalls;
        instrs += o.instrs;
        undoneInstrs += o.undoneInstrs;
        return *this;
    }
};

/** Abstract functional simulator over a SimContext. */
class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(SimContext &ctx) : ctx_(ctx) {}
    virtual ~FunctionalSimulator();

    FunctionalSimulator(const FunctionalSimulator &) = delete;
    FunctionalSimulator &operator=(const FunctionalSimulator &) = delete;

    /** The interface specification this simulator was built for. */
    virtual const BuildsetInfo &buildset() const = 0;

    /** One-detail entrypoint: execute a single instruction. */
    RunStatus
    execute(DynInst &di)
    {
        ++counters_.executeCalls;
        RunStatus st = doExecute(di);
        ++counters_.instrs;
        return st;
    }

    /**
     * Block-detail entrypoint: execute up to @p cap instructions, stopping
     * after the first control-flow instruction (end of basic block), a
     * fault, or program exit.  Fills @p out[0..n) and returns n.
     */
    unsigned
    executeBlock(DynInst *out, unsigned cap, RunStatus &status)
    {
        ++counters_.executeBlockCalls;
        unsigned n = doExecuteBlock(out, cap, status);
        counters_.instrs += n;
        return n;
    }

    /** Step-detail entrypoint: run one semantic step of an instruction. */
    RunStatus
    step(Step s, DynInst &di)
    {
        ++counters_.stepCalls;
        RunStatus st = doStep(s, di);
        if (s == Step::Exception)
            ++counters_.instrs;
        return st;
    }

    /**
     * Custom entrypoints: invoke entrypoint @p index of the buildset on
     * @p di.  Default maps standard groupings onto the One/Step paths.
     */
    RunStatus
    call(unsigned index, DynInst &di)
    {
        ++counters_.customCalls;
        RunStatus st = doCall(index, di);
        // An entrypoint that carries the retire (Exception) step is the
        // one that completes an instruction.
        const BuildsetInfo &bs = buildset();
        if (index < bs.entrypoints.size()) {
            for (Step s : bs.entrypoints[index].steps) {
                if (s == Step::Exception) {
                    ++counters_.instrs;
                    break;
                }
            }
        }
        return st;
    }

    /**
     * Fast-forward: execute up to @p max_instrs with no per-instruction
     * information (the sampling use case).  Returns instructions retired.
     */
    uint64_t
    fastForward(uint64_t max_instrs, RunStatus &status)
    {
        ++counters_.fastForwardCalls;
        uint64_t n = doFastForward(max_instrs, status);
        counters_.instrs += n;
        return n;
    }

    /** Undo the last @p n instructions (requires speculation support). */
    void
    undo(uint64_t n)
    {
        ++counters_.undoCalls;
        counters_.undoneInstrs += n;
        doUndo(n);
    }

    /** True if the buildset journals for rollback. */
    bool supportsUndo() const { return buildset().speculation; }

    /** Redirect the next fetch (timing simulators use this on flushes). */
    void redirect(uint64_t pc) { ctx_.state().setPc(pc); }

    /**
     * Notify the simulator that the context's state was mutated behind
     * its back (checkpoint restore, program reload).  Back ends drop any
     * cached view of that state -- decode caches, translated-block
     * caches -- through their doOnStateRestored() override; there is one
     * invalidation point, not one per cache.  Not an interface crossing:
     * it is a host-side control action, so it is not counted.
     */
    void onStateRestored() { doOnStateRestored(); }

    SimContext &ctx() { return ctx_; }
    const SimContext &ctx() const { return ctx_; }

    /** Interface-crossing counters accumulated since construction. */
    const IfaceCounters &ifaceCounters() const { return counters_; }
    void resetIfaceCounters() { counters_ = IfaceCounters{}; }

    /**
     * Attach (or detach with nullptr) a guest hot-PC profiler.  Both
     * back ends call prof_->tick(pc, opId) at their retire point -- the
     * interpreter from runSteps, synthesized simulators from a hook
     * cppgen emits ahead of retire(di).  Detached cost: one predictable
     * null-pointer branch per retired instruction.  The profiler is not
     * owned and must outlive the runs it observes.
     */
    void setProfiler(obs::PcProfiler *p) { prof_ = p; }
    obs::PcProfiler *profiler() const { return prof_; }

    /**
     * Fold this simulator's counters into @p g as registry counters
     * (entrypoint calls, crossings, instructions delivered), then let the
     * concrete back end add its own (decode/block caches, ...) via
     * publishDerivedStats().  Safe to call repeatedly; values accumulate
     * into the registry, which is what per-cell bench reporting wants.
     */
    void publishStats(stats::StatGroup &g) const;

    /**
     * Run to completion (or @p max_instrs) through the buildset's natural
     * entrypoints.  Convenience for validation and speed measurement.
     */
    RunResult run(uint64_t max_instrs);

  protected:
    virtual RunStatus doExecute(DynInst &di);
    virtual unsigned doExecuteBlock(DynInst *out, unsigned cap,
                                    RunStatus &status);
    virtual RunStatus doStep(Step s, DynInst &di);
    virtual RunStatus doCall(unsigned index, DynInst &di);
    virtual uint64_t doFastForward(uint64_t max_instrs,
                                   RunStatus &status);
    virtual void doUndo(uint64_t n);

    /** Invalidate cached views of context state; default has none. */
    virtual void doOnStateRestored() {}

    /** Back-end-specific stats (caches, journals); default none. */
    virtual void publishDerivedStats(stats::StatGroup &g) const;

    [[noreturn]] void unsupported(const char *what) const;

    SimContext &ctx_;
    IfaceCounters counters_;
    /** Hot-PC sampling hook; nullptr (disarmed) by default. */
    obs::PcProfiler *prof_ = nullptr;
    /** Snapshot at the last publishStats(), so repeated publishes into
     *  the same registry group add only the delta. */
    mutable IfaceCounters published_;
};

} // namespace onespec

#endif // ONESPEC_IFACE_FUNCTIONAL_SIMULATOR_HPP
