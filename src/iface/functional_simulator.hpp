/**
 * @file
 * The abstract functional-to-timing simulator interface.  A concrete
 * simulator (interpreter-backed or synthesized by lisc) implements the
 * entrypoints its buildset defines; calling an entrypoint the buildset
 * does not provide is a usage error and panics, mirroring how a tailored
 * interface simply does not offer calls the timing simulator did not ask
 * for.
 *
 * Semantic detail -> entrypoints:
 *   block  : executeBlock() / fastForward()
 *   one    : execute()
 *   step   : step(Step::Fetch..Step::Exception)
 *   custom : call(entrypointIndex, di)
 *
 * Speculation (when the buildset enables it): undo(n).
 */

#ifndef ONESPEC_IFACE_FUNCTIONAL_SIMULATOR_HPP
#define ONESPEC_IFACE_FUNCTIONAL_SIMULATOR_HPP

#include <cstdint>

#include "adl/spec.hpp"
#include "iface/dyninst.hpp"
#include "runtime/context.hpp"

namespace onespec {

/** Outcome of advancing the functional simulation. */
enum class RunStatus : uint8_t
{
    Ok,     ///< instruction(s) executed normally
    Halted, ///< program exited (OS exit or halt())
    Fault,  ///< an architectural fault was raised; see DynInst::fault
};

/** Result of a run-to-completion helper. */
struct RunResult
{
    RunStatus status = RunStatus::Ok;
    uint64_t instrs = 0;
};

/** Abstract functional simulator over a SimContext. */
class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(SimContext &ctx) : ctx_(ctx) {}
    virtual ~FunctionalSimulator();

    FunctionalSimulator(const FunctionalSimulator &) = delete;
    FunctionalSimulator &operator=(const FunctionalSimulator &) = delete;

    /** The interface specification this simulator was built for. */
    virtual const BuildsetInfo &buildset() const = 0;

    /** One-detail entrypoint: execute a single instruction. */
    virtual RunStatus execute(DynInst &di);

    /**
     * Block-detail entrypoint: execute up to @p cap instructions, stopping
     * after the first control-flow instruction (end of basic block), a
     * fault, or program exit.  Fills @p out[0..n) and returns n.
     */
    virtual unsigned executeBlock(DynInst *out, unsigned cap,
                                  RunStatus &status);

    /** Step-detail entrypoint: run one semantic step of an instruction. */
    virtual RunStatus step(Step s, DynInst &di);

    /**
     * Custom entrypoints: invoke entrypoint @p index of the buildset on
     * @p di.  Default maps standard groupings onto execute()/step().
     */
    virtual RunStatus call(unsigned index, DynInst &di);

    /**
     * Fast-forward: execute up to @p max_instrs with no per-instruction
     * information (the sampling use case).  Returns instructions retired.
     */
    virtual uint64_t fastForward(uint64_t max_instrs, RunStatus &status);

    /** Undo the last @p n instructions (requires speculation support). */
    virtual void undo(uint64_t n);

    /** True if the buildset journals for rollback. */
    bool supportsUndo() const { return buildset().speculation; }

    /** Redirect the next fetch (timing simulators use this on flushes). */
    void redirect(uint64_t pc) { ctx_.state().setPc(pc); }

    SimContext &ctx() { return ctx_; }
    const SimContext &ctx() const { return ctx_; }

    /**
     * Run to completion (or @p max_instrs) through the buildset's natural
     * entrypoints.  Convenience for validation and speed measurement.
     */
    RunResult run(uint64_t max_instrs);

  protected:
    [[noreturn]] void unsupported(const char *what) const;

    SimContext &ctx_;
};

} // namespace onespec

#endif // ONESPEC_IFACE_FUNCTIONAL_SIMULATOR_HPP
