/**
 * @file
 * Registry of synthesized simulators.  Each generated translation unit
 * registers a factory keyed by (isa, buildset) together with the
 * fingerprint of the specification it was generated from; creating a
 * simulator against a context whose loaded Spec has a different
 * fingerprint is refused -- the generated code would disagree with the
 * description it claims to implement.
 *
 * Threading contract: registration happens exclusively during static
 * initialization (every SimRegistrar is a namespace-scope object in a
 * generated translation unit), which the C++ runtime serializes before
 * main().  The registry is read-only from then on, so create() and
 * buildsetsFor() are safe to call concurrently from fleet workers with
 * no locking.  The first lookup freezes the registry; a late add() --
 * which would race readers -- panics instead of corrupting the table.
 */

#ifndef ONESPEC_IFACE_REGISTRY_HPP
#define ONESPEC_IFACE_REGISTRY_HPP

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "iface/functional_simulator.hpp"

namespace onespec {

/** Factory signature for registered simulators. */
using SimFactory =
    std::unique_ptr<FunctionalSimulator> (*)(SimContext &ctx);

/** Global registry of generated simulators. */
class SimRegistry
{
  public:
    static SimRegistry &instance();

    void add(const std::string &isa, const std::string &buildset,
             uint64_t fingerprint, SimFactory factory);

    /**
     * Create the generated simulator for @p buildset over @p ctx.
     * Returns nullptr if no such simulator is registered.  fatal()s on a
     * fingerprint mismatch.
     */
    std::unique_ptr<FunctionalSimulator>
    create(SimContext &ctx, const std::string &buildset) const;

    /** Buildsets registered for @p isa. */
    std::vector<std::string> buildsetsFor(const std::string &isa) const;

  private:
    struct Entry
    {
        std::string isa;
        std::string buildset;
        uint64_t fingerprint;
        SimFactory factory;
    };

    std::vector<Entry> entries_;
    /** Set by the first lookup; add() afterwards is a usage error. */
    mutable std::atomic<bool> frozen_{false};
};

/** Static-initialization helper used by generated code. */
struct SimRegistrar
{
    SimRegistrar(const char *isa, const char *buildset,
                 uint64_t fingerprint, SimFactory factory)
    {
        SimRegistry::instance().add(isa, buildset, fingerprint, factory);
    }
};

} // namespace onespec

#endif // ONESPEC_IFACE_REGISTRY_HPP
