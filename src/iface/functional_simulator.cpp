#include "functional_simulator.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace onespec {

FunctionalSimulator::~FunctionalSimulator() = default;

void
FunctionalSimulator::unsupported(const char *what) const
{
    ONESPEC_PANIC("buildset '", buildset().name, "' does not provide the ",
                  what, " entrypoint");
}

RunStatus
FunctionalSimulator::doExecute(DynInst &)
{
    unsupported("execute()");
}

unsigned
FunctionalSimulator::doExecuteBlock(DynInst *, unsigned, RunStatus &)
{
    unsupported("executeBlock()");
}

RunStatus
FunctionalSimulator::doStep(Step, DynInst &)
{
    unsupported("step()");
}

RunStatus
FunctionalSimulator::doCall(unsigned index, DynInst &di)
{
    const BuildsetInfo &bs = buildset();
    ONESPEC_ASSERT(index < bs.entrypoints.size(), "bad entrypoint index");
    // Dispatch to the underlying virtuals, not the public wrappers: the
    // call() crossing has already been counted.
    switch (bs.semantic) {
      case SemanticLevel::One:
      case SemanticLevel::Block:
        return doExecute(di);
      case SemanticLevel::Step:
        return doStep(bs.entrypoints[index].steps[0], di);
      case SemanticLevel::Custom:
        break;
    }
    unsupported("call()");
}

uint64_t
FunctionalSimulator::doFastForward(uint64_t, RunStatus &)
{
    unsupported("fastForward()");
}

void
FunctionalSimulator::doUndo(uint64_t)
{
    unsupported("undo()");
}

void
FunctionalSimulator::publishDerivedStats(stats::StatGroup &) const
{}

void
FunctionalSimulator::publishStats(stats::StatGroup &g) const
{
    // Add only the delta since this instance's last publish, so both
    // repeated publishes of one simulator and publishes of many
    // simulators into the same group accumulate correctly.
    auto pub = [&g](const char *name, const char *desc, uint64_t v) {
        g.counter(name, desc).add(v);
    };
    const IfaceCounters &c = counters_;
    IfaceCounters d = c;
    d.executeCalls -= published_.executeCalls;
    d.executeBlockCalls -= published_.executeBlockCalls;
    d.stepCalls -= published_.stepCalls;
    d.customCalls -= published_.customCalls;
    d.fastForwardCalls -= published_.fastForwardCalls;
    d.undoCalls -= published_.undoCalls;
    d.instrs -= published_.instrs;
    d.undoneInstrs -= published_.undoneInstrs;
    published_ = c;

    pub("execute_calls", "execute() interface crossings", d.executeCalls);
    pub("execute_block_calls", "executeBlock() interface crossings",
        d.executeBlockCalls);
    pub("step_calls", "step() interface crossings", d.stepCalls);
    pub("custom_calls", "call() interface crossings", d.customCalls);
    pub("fast_forward_calls", "fastForward() interface crossings",
        d.fastForwardCalls);
    pub("undo_calls", "undo() interface crossings", d.undoCalls);
    pub("crossings", "total functional-to-timing interface crossings",
        d.executeCalls + d.executeBlockCalls + d.stepCalls +
            d.customCalls + d.fastForwardCalls + d.undoCalls);
    pub("instrs", "instructions delivered across the interface",
        d.instrs);
    pub("undone_instrs", "instructions squashed by undo()",
        d.undoneInstrs);

    stats::Counter &instrs = g.counter("instrs", "");
    stats::Counter &crossings = g.counter("crossings", "");
    g.formula("instrs_per_crossing",
              "instructions delivered per interface crossing",
              [&instrs, &crossings] {
                  uint64_t x = crossings.value();
                  return x ? static_cast<double>(instrs.value()) /
                                 static_cast<double>(x)
                           : 0.0;
              });

    publishDerivedStats(g);
}

RunResult
FunctionalSimulator::run(uint64_t max_instrs)
{
    RunResult rr;
    const BuildsetInfo &bs = buildset();
    DynInst di;
    switch (bs.semantic) {
      case SemanticLevel::Block: {
        DynInst block[64];
        while (rr.instrs < max_instrs) {
            RunStatus st = RunStatus::Ok;
            unsigned cap = static_cast<unsigned>(
                std::min<uint64_t>(64, max_instrs - rr.instrs));
            unsigned n = executeBlock(block, cap, st);
            rr.instrs += n;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }

      case SemanticLevel::One: {
        while (rr.instrs < max_instrs) {
            RunStatus st = execute(di);
            ++rr.instrs;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }

      case SemanticLevel::Step: {
        while (rr.instrs < max_instrs) {
            RunStatus st = RunStatus::Ok;
            for (unsigned s = 0; s < kNumSteps; ++s) {
                st = step(static_cast<Step>(s), di);
                if (st != RunStatus::Ok)
                    break;
            }
            ++rr.instrs;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }

      case SemanticLevel::Custom: {
        while (rr.instrs < max_instrs) {
            RunStatus st = RunStatus::Ok;
            for (unsigned e = 0; e < bs.entrypoints.size(); ++e) {
                st = call(e, di);
                if (st != RunStatus::Ok)
                    break;
            }
            ++rr.instrs;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }
    }
    rr.status = RunStatus::Ok;
    return rr;
}

} // namespace onespec
