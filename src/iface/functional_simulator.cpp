#include "functional_simulator.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace onespec {

FunctionalSimulator::~FunctionalSimulator() = default;

void
FunctionalSimulator::unsupported(const char *what) const
{
    ONESPEC_PANIC("buildset '", buildset().name, "' does not provide the ",
                  what, " entrypoint");
}

RunStatus
FunctionalSimulator::execute(DynInst &)
{
    unsupported("execute()");
}

unsigned
FunctionalSimulator::executeBlock(DynInst *, unsigned, RunStatus &)
{
    unsupported("executeBlock()");
}

RunStatus
FunctionalSimulator::step(Step, DynInst &)
{
    unsupported("step()");
}

RunStatus
FunctionalSimulator::call(unsigned index, DynInst &di)
{
    const BuildsetInfo &bs = buildset();
    ONESPEC_ASSERT(index < bs.entrypoints.size(), "bad entrypoint index");
    switch (bs.semantic) {
      case SemanticLevel::One:
      case SemanticLevel::Block:
        return execute(di);
      case SemanticLevel::Step:
        return step(bs.entrypoints[index].steps[0], di);
      case SemanticLevel::Custom:
        break;
    }
    unsupported("call()");
}

uint64_t
FunctionalSimulator::fastForward(uint64_t, RunStatus &)
{
    unsupported("fastForward()");
}

void
FunctionalSimulator::undo(uint64_t)
{
    unsupported("undo()");
}

RunResult
FunctionalSimulator::run(uint64_t max_instrs)
{
    RunResult rr;
    const BuildsetInfo &bs = buildset();
    DynInst di;
    switch (bs.semantic) {
      case SemanticLevel::Block: {
        DynInst block[64];
        while (rr.instrs < max_instrs) {
            RunStatus st = RunStatus::Ok;
            unsigned cap = static_cast<unsigned>(
                std::min<uint64_t>(64, max_instrs - rr.instrs));
            unsigned n = executeBlock(block, cap, st);
            rr.instrs += n;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }

      case SemanticLevel::One: {
        while (rr.instrs < max_instrs) {
            RunStatus st = execute(di);
            ++rr.instrs;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }

      case SemanticLevel::Step: {
        while (rr.instrs < max_instrs) {
            RunStatus st = RunStatus::Ok;
            for (unsigned s = 0; s < kNumSteps; ++s) {
                st = step(static_cast<Step>(s), di);
                if (st != RunStatus::Ok)
                    break;
            }
            ++rr.instrs;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }

      case SemanticLevel::Custom: {
        while (rr.instrs < max_instrs) {
            RunStatus st = RunStatus::Ok;
            for (unsigned e = 0; e < bs.entrypoints.size(); ++e) {
                st = call(e, di);
                if (st != RunStatus::Ok)
                    break;
            }
            ++rr.instrs;
            if (st != RunStatus::Ok) {
                rr.status = st;
                return rr;
            }
        }
        break;
      }
    }
    rr.status = RunStatus::Ok;
    return rr;
}

} // namespace onespec
