#include "registry.hpp"

#include "support/logging.hpp"

namespace onespec {

SimRegistry &
SimRegistry::instance()
{
    static SimRegistry reg;
    return reg;
}

void
SimRegistry::add(const std::string &isa, const std::string &buildset,
                 uint64_t fingerprint, SimFactory factory)
{
    for (const auto &e : entries_) {
        if (e.isa == isa && e.buildset == buildset) {
            ONESPEC_PANIC("simulator for ", isa, "/", buildset,
                          " registered twice");
        }
    }
    entries_.push_back({isa, buildset, fingerprint, factory});
}

std::unique_ptr<FunctionalSimulator>
SimRegistry::create(SimContext &ctx, const std::string &buildset) const
{
    const std::string &isa = ctx.spec().props.name;
    for (const auto &e : entries_) {
        if (e.isa == isa && e.buildset == buildset) {
            if (e.fingerprint != ctx.spec().fingerprint) {
                ONESPEC_FATAL(
                    "generated simulator ", isa, "/", buildset,
                    " was synthesized from a different description than "
                    "the one loaded (fingerprint mismatch); re-run lisc");
            }
            return e.factory(ctx);
        }
    }
    return nullptr;
}

std::vector<std::string>
SimRegistry::buildsetsFor(const std::string &isa) const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (e.isa == isa)
            out.push_back(e.buildset);
    return out;
}

} // namespace onespec
