#include "registry.hpp"

#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

SimRegistry &
SimRegistry::instance()
{
    static SimRegistry reg;
    return reg;
}

void
SimRegistry::add(const std::string &isa, const std::string &buildset,
                 uint64_t fingerprint, SimFactory factory)
{
    if (frozen_.load(std::memory_order_acquire)) {
        ONESPEC_PANIC(
            "simulator for ", isa, "/", buildset,
            " registered after the registry was first read; registration "
            "must finish during static initialization (see registry.hpp "
            "threading contract)");
    }
    for (const auto &e : entries_) {
        if (e.isa == isa && e.buildset == buildset) {
            ONESPEC_PANIC("simulator for ", isa, "/", buildset,
                          " registered twice");
        }
    }
    entries_.push_back({isa, buildset, fingerprint, factory});
}

std::unique_ptr<FunctionalSimulator>
SimRegistry::create(SimContext &ctx, const std::string &buildset) const
{
    frozen_.store(true, std::memory_order_release);
    const std::string &isa = ctx.spec().props.name;
    for (const auto &e : entries_) {
        if (e.isa == isa && e.buildset == buildset) {
            if (e.fingerprint != ctx.spec().fingerprint) {
                throw SpecError(
                    "registry",
                    "generated simulator " + isa + "/" + buildset +
                        " was synthesized from a different description than "
                        "the one loaded (fingerprint mismatch); re-run lisc");
            }
            return e.factory(ctx);
        }
    }
    return nullptr;
}

std::vector<std::string>
SimRegistry::buildsetsFor(const std::string &isa) const
{
    frozen_.store(true, std::memory_order_release);
    std::vector<std::string> out;
    for (const auto &e : entries_)
        if (e.isa == isa)
            out.push_back(e.buildset);
    return out;
}

} // namespace onespec
