/**
 * @file
 * Sparse paged simulated memory.  Pages are allocated on first write;
 * reads of untouched memory return zero (deterministic, and matches how
 * user-mode simulators typically present bss).  Accesses above a sanity
 * limit raise BadMemory so runaway programs fail fast instead of
 * allocating the host to death.
 *
 * The hot single-page path is inline; generated simulators call these
 * functions directly.
 *
 * Dirty-page tracking: every page remembers the write epoch of its most
 * recent mutation.  newEpoch() advances the clock (the checkpoint layer
 * calls it when it captures a snapshot), so "pages written since
 * checkpoint C" is simply "pages whose epoch >= C's epoch mark" -- the
 * basis of cheap delta checkpoints in src/ckpt/.  Reads never dirty.
 * The write fast path stays a single compare: a separate one-entry
 * write cache holds the page that is already marked for the current
 * epoch, and newEpoch() invalidates it.
 */

#ifndef ONESPEC_RUNTIME_MEMORY_HPP
#define ONESPEC_RUNTIME_MEMORY_HPP

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "adl/builtins.hpp"
#include "support/bitutil.hpp"

namespace onespec {

/** Simulated byte-addressable memory. */
class Memory
{
  public:
    static constexpr unsigned kPageBits = 16;
    static constexpr uint64_t kPageSize = uint64_t{1} << kPageBits;
    static constexpr uint64_t kPageMask = kPageSize - 1;
    /** Addresses at or above this limit fault. */
    static constexpr uint64_t kAddrLimit = uint64_t{1} << 48;

    /**
     * Fault-injection hook (src/fault/).  When installed, every
     * architectural read/write offers the access for perturbation:
     * the hook may rewrite @p value or raise @p fault.  Detached (the
     * default) costs exactly one never-taken branch per access.
     */
    struct FaultHook
    {
        virtual ~FaultHook() = default;
        virtual void onRead(uint64_t addr, unsigned len, uint64_t &value,
                            FaultKind &fault) = 0;
        virtual void onWrite(uint64_t addr, unsigned len, uint64_t &value,
                             FaultKind &fault) = 0;
    };

    explicit Memory(bool big_endian = false) : bigEndian_(big_endian) {}

    bool bigEndian() const { return bigEndian_; }

    void setFaultHook(FaultHook *hook) { hook_ = hook; }
    FaultHook *faultHook() const { return hook_; }

    /**
     * Read @p len (1/2/4/8) bytes at @p addr.  Returns the zero-extended
     * value in target byte order.  Sets @p fault on bad addresses.
     */
    uint64_t
    read(uint64_t addr, unsigned len, FaultKind &fault)
    {
        // Overflow-safe form: addr + len can wrap for addresses near
        // 2^64 and would then slip past a naive `addr + len > limit`.
        if (addr >= kAddrLimit || len > kAddrLimit - addr) [[unlikely]] {
            fault = FaultKind::BadMemory;
            return 0;
        }
        const uint8_t *p = pageFor(addr, false);
        uint64_t off = addr & kPageMask;
        uint64_t v = 0;
        if (off + len <= kPageSize) [[likely]] {
            if (!p)
                return 0;
            std::memcpy(&v, p + off, len);
        } else {
            for (unsigned i = 0; i < len; ++i) {
                const uint8_t *q = pageFor(addr + i, false);
                uint8_t b = q ? q[(addr + i) & kPageMask] : 0;
                v |= static_cast<uint64_t>(b) << (8 * i);
            }
        }
        if (bigEndian_)
            v = swapBytes(v, len);
        if (hook_) [[unlikely]]
            hook_->onRead(addr, len, v, fault);
        return v;
    }

    /** Write @p len (1/2/4/8) bytes at @p addr. */
    void
    write(uint64_t addr, uint64_t value, unsigned len, FaultKind &fault)
    {
        if (addr >= kAddrLimit || len > kAddrLimit - addr) [[unlikely]] {
            fault = FaultKind::BadMemory;
            return;
        }
        if (hook_) [[unlikely]] {
            hook_->onWrite(addr, len, value, fault);
            if (fault != FaultKind::None)
                return;
        }
        if (bigEndian_)
            value = swapBytes(value, len);
        uint8_t *p = pageFor(addr, true);
        uint64_t off = addr & kPageMask;
        if (off + len <= kPageSize) [[likely]] {
            std::memcpy(p + off, &value, len);
        } else {
            for (unsigned i = 0; i < len; ++i) {
                uint8_t *q = pageFor(addr + i, true);
                q[(addr + i) & kPageMask] =
                    static_cast<uint8_t>(value >> (8 * i));
            }
        }
    }

    /** Raw byte access in *host* order (for loaders and the OS layer). */
    uint8_t
    readByte(uint64_t addr)
    {
        const uint8_t *p = pageFor(addr, false);
        return p ? p[addr & kPageMask] : 0;
    }

    void
    writeByte(uint64_t addr, uint8_t v)
    {
        pageFor(addr, true)[addr & kPageMask] = v;
    }

    /** Bulk copy into simulated memory. */
    void
    writeBlock(uint64_t addr, const void *src, size_t len)
    {
        const uint8_t *s = static_cast<const uint8_t *>(src);
        while (len > 0) {
            uint64_t off = addr & kPageMask;
            size_t chunk = static_cast<size_t>(
                std::min<uint64_t>(len, kPageSize - off));
            std::memcpy(pageFor(addr, true) + off, s, chunk);
            addr += chunk;
            s += chunk;
            len -= chunk;
        }
    }

    /** Bulk copy out of simulated memory. */
    void
    readBlock(uint64_t addr, void *dst, size_t len)
    {
        uint8_t *d = static_cast<uint8_t *>(dst);
        while (len > 0) {
            uint64_t off = addr & kPageMask;
            size_t chunk = static_cast<size_t>(
                std::min<uint64_t>(len, kPageSize - off));
            const uint8_t *p = pageFor(addr, false);
            if (p)
                std::memcpy(d, p + off, chunk);
            else
                std::memset(d, 0, chunk);
            addr += chunk;
            d += chunk;
            len -= chunk;
        }
    }

    /** Number of allocated pages (for tests and statistics). */
    size_t pageCount() const { return pages_.size(); }

    /** Drop all contents.  The epoch clock keeps running: checkpoint
     *  epoch marks taken before a clear stay meaningful afterwards. */
    void
    clear()
    {
        pages_.clear();
        cachedIdx_ = ~uint64_t{0};
        cachedPage_ = nullptr;
        cachedWIdx_ = ~uint64_t{0};
        cachedWPage_ = nullptr;
    }

    // ----- dirty-page tracking (the checkpoint layer's view) -----

    /** The current write epoch; pages written now carry this value. */
    uint64_t currentEpoch() const { return epoch_; }

    /**
     * Advance the write epoch and return the new value E.  Pages written
     * from now on satisfy pageEpoch() >= E; pages untouched since the
     * call do not.  Capturing a checkpoint calls this and stores E as
     * its epoch mark.
     */
    uint64_t
    newEpoch()
    {
        // The write cache holds a page already marked for the old epoch;
        // its next write must take the slow path to be re-marked.
        cachedWIdx_ = ~uint64_t{0};
        cachedWPage_ = nullptr;
        return ++epoch_;
    }

    /** Write epoch of page @p idx; 0 if the page is not allocated. */
    uint64_t
    pageEpoch(uint64_t idx) const
    {
        auto it = pages_.find(idx);
        return it == pages_.end() ? 0 : it->second.epoch;
    }

    /** Pages written at or after epoch @p since (delta-size preview). */
    size_t
    dirtyPageCount(uint64_t since) const
    {
        size_t n = 0;
        for (const auto &[idx, rec] : pages_)
            n += rec.epoch >= since;
        return n;
    }

    /**
     * Visit every allocated page as (index, data, epoch).  Iteration
     * order is the hash map's -- callers that serialize must sort by
     * index themselves for a stable byte stream.
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        for (const auto &[idx, rec] : pages_)
            fn(idx, rec.data->data(), rec.epoch);
    }

    /**
     * Visit every allocated page in ascending page-index order, as
     * (index, data, epoch).  The serialization-facing variant of
     * forEachPage(): the checkpoint layer and its block encoders need a
     * stable byte stream, so the sort lives here instead of in every
     * caller.  Costs one index collection + sort per call.
     */
    template <typename Fn>
    void
    forEachPageSorted(Fn &&fn) const
    {
        std::vector<uint64_t> order;
        order.reserve(pages_.size());
        for (const auto &[idx, rec] : pages_)
            order.push_back(idx);
        std::sort(order.begin(), order.end());
        for (uint64_t idx : order) {
            const PageRec &rec = pages_.at(idx);
            fn(idx, rec.data->data(), rec.epoch);
        }
    }

    /**
     * Install a full page image at page index @p idx (allocating or
     * overwriting), marking it written at the current epoch.  The
     * checkpoint-restore path: a full restore clears then installs, a
     * delta restore installs over the parent's pages.
     */
    void
    installPage(uint64_t idx, const uint8_t *bytes)
    {
        uint8_t *p = pageFor(idx << kPageBits, true);
        std::memcpy(p, bytes, kPageSize);
    }

  private:
    using Page = std::array<uint8_t, kPageSize>;

    struct PageRec
    {
        std::unique_ptr<Page> data;
        uint64_t epoch = 0;     ///< epoch of the most recent write
    };

    static uint64_t
    swapBytes(uint64_t v, unsigned len)
    {
        switch (len) {
          case 1: return v;
          case 2: return __builtin_bswap16(static_cast<uint16_t>(v));
          case 4: return __builtin_bswap32(static_cast<uint32_t>(v));
          default: return __builtin_bswap64(v);
        }
    }

    uint8_t *
    pageFor(uint64_t addr, bool alloc)
    {
        uint64_t idx = addr >> kPageBits;
        if (alloc) {
            // Write path: the cached page is already marked for the
            // current epoch (newEpoch() invalidates this cache).
            if (idx == cachedWIdx_) [[likely]]
                return cachedWPage_;
            auto it = pages_.find(idx);
            if (it == pages_.end()) {
                it = pages_.emplace(idx, PageRec{}).first;
                it->second.data = std::make_unique<Page>();
                std::memset(it->second.data->data(), 0, kPageSize);
            }
            it->second.epoch = epoch_;
            cachedWIdx_ = idx;
            cachedWPage_ = it->second.data->data();
            // Keep the read cache coherent with the classic behavior of
            // a single shared cache (write then read of one page).
            cachedIdx_ = idx;
            cachedPage_ = cachedWPage_;
            return cachedWPage_;
        }
        if (idx == cachedIdx_) [[likely]]
            return cachedPage_;
        auto it = pages_.find(idx);
        if (it == pages_.end())
            return nullptr;
        cachedIdx_ = idx;
        cachedPage_ = it->second.data->data();
        return cachedPage_;
    }

    bool bigEndian_;
    std::unordered_map<uint64_t, PageRec> pages_;
    uint64_t epoch_ = 1;
    uint64_t cachedIdx_ = ~uint64_t{0};
    uint8_t *cachedPage_ = nullptr;
    uint64_t cachedWIdx_ = ~uint64_t{0};
    uint8_t *cachedWPage_ = nullptr;
    FaultHook *hook_ = nullptr;
};

} // namespace onespec

#endif // ONESPEC_RUNTIME_MEMORY_HPP
