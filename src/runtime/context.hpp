/**
 * @file
 * SimContext: the complete simulated machine that functional simulators
 * execute against -- memory, architectural state, OS emulation, and the
 * rollback journal.  Several simulators (different buildsets, or the
 * interpreter and a generated simulator) can drive the *same* context,
 * which is how rotating-interface validation works.
 */

#ifndef ONESPEC_RUNTIME_CONTEXT_HPP
#define ONESPEC_RUNTIME_CONTEXT_HPP

#include <cstdint>
#include <memory>

#include "adl/spec.hpp"
#include "runtime/archstate.hpp"
#include "runtime/memory.hpp"
#include "runtime/os.hpp"
#include "runtime/program.hpp"
#include "runtime/rollback.hpp"
#include "support/sim_error.hpp"

namespace onespec {

/** One simulated machine context. */
class SimContext
{
  public:
    explicit SimContext(const Spec &spec)
        : spec_(&spec), mem_(!spec.props.littleEndian),
          state_(spec.state), os_(spec.abi, mem_, state_)
    {}

    const Spec &spec() const { return *spec_; }
    Memory &mem() { return mem_; }
    ArchState &state() { return state_; }
    const ArchState &state() const { return state_; }
    OsEmulator &os() { return os_; }
    RollbackLog &journal() { return journal_; }

    /**
     * Load @p prog: clear everything, map segments, set pc and sp.
     * Throws GuestError if the image is malformed (addresses past the
     * memory sanity limit) -- a bad binary faults the job, not the
     * process.
     */
    void
    load(const Program &prog)
    {
        validate(prog);
        mem_.clear();
        state_.reset();
        journal_.clear();
        for (const auto &seg : prog.segments)
            mem_.writeBlock(seg.base, seg.bytes.data(), seg.bytes.size());
        state_.setPc(prog.entry);
        if (spec_->abi.stack.valid)
            state_.writeRef(spec_->abi.stack, prog.stackTop);
        uint64_t brk = prog.initialBrk ? prog.initialBrk
                                       : prog.highWater();
        os_.reset(brk);
        os_.setInput(prog.stdinData);
        instrsRetired_ = 0;
    }

    uint64_t instrsRetired() const { return instrsRetired_; }
    void addRetired(uint64_t n) { instrsRetired_ += n; }
    /** Overwrite the retired count (checkpoint restore). */
    void setRetired(uint64_t n) { instrsRetired_ = n; }

  private:
    static void
    validate(const Program &prog)
    {
        auto bad = [&](const std::string &what) {
            throw GuestError("loader", "malformed image '" + prog.name +
                                           "': " + what);
        };
        if (prog.entry >= Memory::kAddrLimit)
            bad("entry point past the address limit");
        if (prog.stackTop > Memory::kAddrLimit)
            bad("stack top past the address limit");
        if (prog.initialBrk >= Memory::kAddrLimit)
            bad("initial break past the address limit");
        for (const auto &seg : prog.segments) {
            if (seg.base >= Memory::kAddrLimit ||
                seg.bytes.size() > Memory::kAddrLimit - seg.base)
                bad("segment extends past the address limit");
        }
    }

    const Spec *spec_;
    Memory mem_;
    ArchState state_;
    OsEmulator os_;
    RollbackLog journal_;
    uint64_t instrsRetired_ = 0;
};

} // namespace onespec

#endif // ONESPEC_RUNTIME_CONTEXT_HPP
