#include "program.hpp"

#include <algorithm>

namespace onespec {

uint64_t
Program::highWater() const
{
    uint64_t hi = 0;
    for (const auto &s : segments)
        hi = std::max(hi, s.base + s.bytes.size());
    return hi;
}

} // namespace onespec
