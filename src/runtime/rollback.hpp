/**
 * @file
 * The rollback journal behind speculation support.  When a buildset
 * enables speculation, every architectural write (registers, memory, and
 * undoable OS effects) is journaled with its old value, with one mark per
 * instruction, so undo(n) can restore the context to any recent point --
 * the mechanism the paper generates from operand accessors' default
 * store/restore methods.
 */

#ifndef ONESPEC_RUNTIME_ROLLBACK_HPP
#define ONESPEC_RUNTIME_ROLLBACK_HPP

#include <cstdint>
#include <vector>

#include "runtime/archstate.hpp"
#include "runtime/memory.hpp"
#include "support/logging.hpp"

namespace onespec {

/** Journal of undoable architectural effects. */
class RollbackLog
{
  public:
    /** Bound on retained history, in instructions. */
    static constexpr size_t kHorizon = 100000;

    struct Entry
    {
        enum Kind : uint8_t { RegWrite, MemWrite };
        Kind kind;
        uint8_t len;            ///< memory access size
        uint32_t stateOffset;   ///< flat word offset (RegWrite)
        uint64_t addr;          ///< memory address (MemWrite)
        uint64_t old;           ///< previous value
    };

    struct Mark
    {
        size_t entryCount;      ///< journal length at instruction start
        uint64_t pc;            ///< pc of the journaled instruction
        size_t osOutputLen;     ///< OS output length at instruction start
        uint64_t osBrk;         ///< program break at instruction start
        size_t osInputPos;      ///< stdin read position
    };

    void
    beginInstr(uint64_t pc, size_t os_output_len, uint64_t os_brk,
               size_t os_input_pos)
    {
        if (marks_.capacity() == marks_.size()) [[unlikely]] {
            if (marks_.size() > 2 * kHorizon)
                trim();
            marks_.reserve(marks_.size() + kHorizon);
            entries_.reserve(entries_.size() + 2 * kHorizon);
        }
        marks_.push_back({entries_.size(), pc, os_output_len, os_brk,
                          os_input_pos});
    }

    void
    recordReg(uint32_t state_offset, uint64_t old)
    {
        entries_.push_back(
            {Entry::RegWrite, 0, state_offset, 0, old});
    }

    void
    recordMem(uint64_t addr, unsigned len, uint64_t old)
    {
        entries_.push_back(
            {Entry::MemWrite, static_cast<uint8_t>(len), 0, addr, old});
    }

    /** Number of instructions that can currently be undone. */
    size_t depth() const { return marks_.size(); }

    /**
     * Undo the last @p n instructions against @p state and @p mem.
     * Returns the mark of the earliest undone instruction so the caller
     * can restore pc and OS-layer state.
     */
    Mark
    undo(size_t n, ArchState &state, Memory &mem)
    {
        ONESPEC_ASSERT(n > 0 && n <= marks_.size(),
                       "undo(", n, ") with only ", marks_.size(),
                       " instructions journaled");
        Mark target = marks_[marks_.size() - n];
        while (entries_.size() > target.entryCount) {
            const Entry &e = entries_.back();
            if (e.kind == Entry::RegWrite) {
                state.setRawWord(e.stateOffset, e.old);
            } else {
                FaultKind f = FaultKind::None;
                mem.write(e.addr, e.old, e.len, f);
            }
            entries_.pop_back();
        }
        marks_.resize(marks_.size() - n);
        state.setPc(target.pc);
        return target;
    }

    void
    clear()
    {
        entries_.clear();
        marks_.clear();
    }

    size_t entryCount() const { return entries_.size(); }

  private:
    void
    trim()
    {
        size_t drop = marks_.size() - kHorizon;
        size_t entry_base = marks_[drop].entryCount;
        entries_.erase(entries_.begin(),
                       entries_.begin() +
                           static_cast<std::ptrdiff_t>(entry_base));
        marks_.erase(marks_.begin(),
                     marks_.begin() + static_cast<std::ptrdiff_t>(drop));
        for (auto &m : marks_)
            m.entryCount -= entry_base;
    }

    std::vector<Entry> entries_;
    std::vector<Mark> marks_;
};

} // namespace onespec

#endif // ONESPEC_RUNTIME_ROLLBACK_HPP
