#include "os.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

void
OsEmulator::doSyscall()
{
    ++syscallCount_;
    uint64_t num = state_->readRef(abi_->syscallNum);
    // Flight-recorder only (no TraceBus event): guest OS calls can be a
    // firehose, and the ring absorbs those; a hook bus should not.
    ONESPEC_FR_INSTANT(obs::EvType::Syscall, 0, num, syscallCount_);
    auto arg = [&](size_t i) -> uint64_t {
        if (i >= abi_->args.size())
            return 0;
        return state_->readRef(abi_->args[i]);
    };
    auto setResult = [&](uint64_t v, bool err) {
        SyscallRecord rec;
        if (hook_) [[unlikely]] {
            // Capture the arguments before the result register is
            // written: on some ABIs (arm32) they alias.
            rec.num = num;
            rec.a0 = arg(0);
            rec.a1 = arg(1);
            rec.a2 = arg(2);
            rec.ret = v;
            rec.err = err;
        }
        state_->writeRef(abi_->ret, v);
        if (abi_->error.valid)
            state_->writeRef(abi_->error, err ? 1 : 0);
        if (hook_) [[unlikely]]
            hook_->onSyscallResult(rec);
    };

    if (hook_) [[unlikely]] {
        if (hook_->onSyscall(num)) {
            setResult(static_cast<uint64_t>(-1), true);
            return;
        }
    }

    switch (num) {
      case kSysExit:
        exited_ = true;
        exitCode_ = static_cast<int>(arg(0));
        setResult(0, false);
        return;

      case kSysWrite: {
        uint64_t fd = arg(0);
        uint64_t buf = arg(1);
        uint64_t len = arg(2);
        if (fd != 1 && fd != 2) {
            setResult(static_cast<uint64_t>(-1), true);
            return;
        }
        len = std::min<uint64_t>(len, 1 << 20);
        std::vector<char> tmp(static_cast<size_t>(len));
        mem_->readBlock(buf, tmp.data(), tmp.size());
        output_.append(tmp.data(), tmp.size());
        setResult(len, false);
        return;
      }

      case kSysRead: {
        uint64_t fd = arg(0);
        uint64_t buf = arg(1);
        uint64_t len = arg(2);
        if (fd != 0) {
            setResult(static_cast<uint64_t>(-1), true);
            return;
        }
        uint64_t avail = input_.size() - inputPos_;
        uint64_t n = std::min(len, avail);
        if (n > 0)
            mem_->writeBlock(buf, input_.data() + inputPos_,
                             static_cast<size_t>(n));
        inputPos_ += static_cast<size_t>(n);
        setResult(n, false);
        return;
      }

      case kSysBrk: {
        uint64_t addr = arg(0);
        if (addr != 0) {
            if (addr >= brk_ && addr < Memory::kAddrLimit)
                brk_ = addr;
        }
        setResult(brk_, false);
        return;
      }

      case kSysTimeMs:
        // Deterministic: advances by one millisecond per query.
        setResult(timeMs_++, false);
        return;

      case kSysGetPid:
        setResult(1000, false);
        return;

      default:
        if (strict_) {
            throw GuestError("os", "unknown OS call " + std::to_string(num) +
                                       " (strict mode)");
        }
        ONESPEC_WARN("unknown OS call ", num, "; returning -1");
        setResult(static_cast<uint64_t>(-1), true);
        return;
    }
}

} // namespace onespec
