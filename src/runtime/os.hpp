/**
 * @file
 * Deterministic user-mode OS-call emulation (the paper: "operating system
 * calls were emulated").  All three ISA descriptions share one portable
 * "OneSpec OS personality": syscall numbers and semantics are identical;
 * only the ABI registers that carry them differ, and those are declared in
 * each description's `abi` block.
 *
 * Everything is deterministic: time is a counter, stdin is preset, output
 * is captured.  This keeps every interface's validation run bit-exact.
 */

#ifndef ONESPEC_RUNTIME_OS_HPP
#define ONESPEC_RUNTIME_OS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "adl/spec.hpp"
#include "runtime/archstate.hpp"
#include "runtime/memory.hpp"

namespace onespec {

/** OneSpec OS personality syscall numbers. */
enum OsCall : uint64_t
{
    kSysExit = 1,
    kSysWrite = 2,   ///< write(fd, buf, len) -> len
    kSysRead = 3,    ///< read(fd, buf, len) -> bytes read (stdin only)
    kSysBrk = 4,     ///< brk(addr); addr==0 queries -> new break
    kSysTimeMs = 5,  ///< deterministic milliseconds counter
    kSysGetPid = 6,  ///< always 1000
};

/** Emulates OS calls for one simulated context. */
class OsEmulator
{
  public:
    /**
     * One completed OS call as seen at the interface: number, the ABI
     * argument registers, and the result the guest observed.  This is
     * the unit of nondeterminism the replay tape records (src/replay/).
     */
    struct SyscallRecord
    {
        uint64_t num = 0;
        uint64_t a0 = 0, a1 = 0, a2 = 0;
        uint64_t ret = 0;
        bool err = false;
    };

    /**
     * Fault-injection hook (src/fault/).  Consulted before each OS call
     * is emulated; returning true makes the call fail with -1/error as
     * if the OS had rejected it.  Detached by default (one branch).
     */
    struct SyscallHook
    {
        virtual ~SyscallHook() = default;
        virtual bool onSyscall(uint64_t num) = 0;
        /** Called after every emulated call with the result the guest
         *  saw (including hook-forced failures).  Default: ignore, so
         *  existing hooks (the fault injector) are unaffected. */
        virtual void onSyscallResult(const SyscallRecord &) {}
    };

    OsEmulator(const ResolvedAbi &abi, Memory &mem, ArchState &state)
        : abi_(&abi), mem_(&mem), state_(&state)
    {}

    /** Handle one OS call per the ABI registers.  */
    void doSyscall();

    void setSyscallHook(SyscallHook *hook) { hook_ = hook; }
    SyscallHook *syscallHook() const { return hook_; }

    /**
     * In strict mode an unknown OS-call number throws GuestError (the
     * fleet quarantines the job).  The lenient default warns and returns
     * -1 to the guest, matching classic user-mode-simulator behavior.
     */
    void setStrictUnknownSyscalls(bool strict) { strict_ = strict; }
    bool strictUnknownSyscalls() const { return strict_; }

    bool exited() const { return exited_; }
    int exitCode() const { return exitCode_; }

    const std::string &output() const { return output_; }

    void
    setInput(std::vector<uint8_t> data)
    {
        input_ = std::move(data);
        inputPos_ = 0;
    }

    uint64_t brk() const { return brk_; }
    void setBrk(uint64_t b) { brk_ = b; }
    size_t inputPos() const { return inputPos_; }
    uint64_t timeMs() const { return timeMs_; }

    /** Restore undoable OS state (used by rollback). */
    void
    restore(size_t output_len, uint64_t brk, size_t input_pos)
    {
        ONESPEC_ASSERT(output_len <= output_.size(),
                       "cannot restore OS output forward");
        output_.resize(output_len);
        brk_ = brk;
        inputPos_ = input_pos;
        // An undone exit is no longer an exit.
        exited_ = false;
    }

    void
    reset(uint64_t initial_brk)
    {
        exited_ = false;
        exitCode_ = 0;
        output_.clear();
        inputPos_ = 0;
        brk_ = initial_brk;
        timeMs_ = 0;
        syscallCount_ = 0;
    }

    uint64_t syscallCount() const { return syscallCount_; }

    /**
     * Complete serializable OS state.  stdin *contents* are not part of
     * it -- they come from the Program, which the restorer reloads --
     * only the cursor into them is.
     */
    struct OsState
    {
        bool exited = false;
        int exitCode = 0;
        std::string output;
        size_t inputPos = 0;
        uint64_t brk = 0;
        uint64_t timeMs = 0;
        uint64_t syscallCount = 0;
    };

    OsState
    snapshot() const
    {
        return {exited_, exitCode_, output_, inputPos_,
                brk_, timeMs_, syscallCount_};
    }

    void
    restoreSnapshot(const OsState &s)
    {
        exited_ = s.exited;
        exitCode_ = s.exitCode;
        output_ = s.output;
        inputPos_ = s.inputPos;
        brk_ = s.brk;
        timeMs_ = s.timeMs;
        syscallCount_ = s.syscallCount;
    }

  private:
    const ResolvedAbi *abi_;
    Memory *mem_;
    ArchState *state_;
    SyscallHook *hook_ = nullptr;
    bool strict_ = false;

    bool exited_ = false;
    int exitCode_ = 0;
    std::string output_;
    std::vector<uint8_t> input_;
    size_t inputPos_ = 0;
    uint64_t brk_ = 0;
    uint64_t timeMs_ = 0;
    uint64_t syscallCount_ = 0;
};

} // namespace onespec

#endif // ONESPEC_RUNTIME_OS_HPP
