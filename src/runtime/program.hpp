/**
 * @file
 * Program images.  OneSpec uses a simple in-memory program format (the
 * workload generator produces these directly through the derived
 * assembler), with code/data segments, an entry point, an initial program
 * break for brk() emulation, and optional preset standard input.
 */

#ifndef ONESPEC_RUNTIME_PROGRAM_HPP
#define ONESPEC_RUNTIME_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace onespec {

/** One contiguous initialized region of a program image. */
struct Segment
{
    uint64_t base = 0;
    std::vector<uint8_t> bytes;
};

/** A loadable program. */
struct Program
{
    std::string name;
    uint64_t entry = 0;
    std::vector<Segment> segments;

    /** Initial program break (end of static data); 0 = auto. */
    uint64_t initialBrk = 0;

    /** Initial stack pointer. */
    uint64_t stackTop = 0x7ff0'0000;

    /** Preset bytes readable via the read() OS call. */
    std::vector<uint8_t> stdinData;

    /** Highest address of any segment plus one (0 if no segments). */
    uint64_t highWater() const;
};

} // namespace onespec

#endif // ONESPEC_RUNTIME_PROGRAM_HPP
