/**
 * @file
 * Architectural register state, laid out per the Spec's StateLayout in a
 * single flat uint64_t array.  PC is implicit and kept separately.  Zero
 * registers (e.g. Alpha R31) read as zero and discard writes.
 */

#ifndef ONESPEC_RUNTIME_ARCHSTATE_HPP
#define ONESPEC_RUNTIME_ARCHSTATE_HPP

#include <cstdint>
#include <vector>

#include "adl/spec.hpp"
#include "adl/types.hpp"
#include "support/logging.hpp"

namespace onespec {

/** All architectural register state of one simulated context. */
class ArchState
{
  public:
    explicit ArchState(const StateLayout &layout)
        : layout_(&layout), words_(layout.totalWords, 0)
    {}

    const StateLayout &layout() const { return *layout_; }

    uint64_t pc() const { return pc_; }
    void setPc(uint64_t v) { pc_ = v; }

    /** Read regfile @p file element @p idx (normalized to element type). */
    uint64_t
    readReg(unsigned file, unsigned idx) const
    {
        const auto &f = layout_->files[file];
        if (static_cast<int>(idx) == f.zeroReg)
            return 0;
        return words_[f.base + idx];
    }

    /** Write regfile @p file element @p idx. */
    void
    writeReg(unsigned file, unsigned idx, uint64_t v)
    {
        const auto &f = layout_->files[file];
        if (static_cast<int>(idx) == f.zeroReg)
            return;
        words_[f.base + idx] = normalize(v, f.type);
    }

    uint64_t
    readScalar(unsigned idx) const
    {
        return words_[layout_->scalars[idx].offset];
    }

    void
    writeScalar(unsigned idx, uint64_t v)
    {
        const auto &s = layout_->scalars[idx];
        words_[s.offset] = normalize(v, s.type);
    }

    /** Access by resolved ABI reference. */
    uint64_t
    readRef(const ResolvedStateRef &r) const
    {
        ONESPEC_ASSERT(r.valid, "reading invalid state ref");
        return r.scalar ? readScalar(r.scalarIdx)
                        : readReg(r.fileIndex, r.regIndex);
    }

    void
    writeRef(const ResolvedStateRef &r, uint64_t v)
    {
        ONESPEC_ASSERT(r.valid, "writing invalid state ref");
        if (r.scalar)
            writeScalar(r.scalarIdx, v);
        else
            writeReg(r.fileIndex, r.regIndex, v);
    }

    /** Raw flat-word access (rollback and checkers). */
    uint64_t rawWord(unsigned offset) const { return words_[offset]; }
    void setRawWord(unsigned offset, uint64_t v) { words_[offset] = v; }

    /** Raw pointer to the flat word array (generated simulators). */
    uint64_t *rawData() { return words_.data(); }
    unsigned numWords() const
    {
        return static_cast<unsigned>(words_.size());
    }

    bool
    operator==(const ArchState &o) const
    {
        return pc_ == o.pc_ && words_ == o.words_;
    }

    /** Zero every register and the PC. */
    void
    reset()
    {
        std::fill(words_.begin(), words_.end(), 0);
        pc_ = 0;
    }

  private:
    const StateLayout *layout_;
    std::vector<uint64_t> words_;
    uint64_t pc_ = 0;
};

} // namespace onespec

#endif // ONESPEC_RUNTIME_ARCHSTATE_HPP
