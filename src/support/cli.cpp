#include "support/cli.hpp"

#include <algorithm>
#include <cstdio>

#include "support/sim_error.hpp"

namespace onespec::cli {

int
quarantineExitCode(unsigned quarantined)
{
    return static_cast<int>(
        std::min(quarantined, static_cast<unsigned>(kQuarantineExitCap)));
}

int
runCliMain(const char *tool, const std::function<int()> &real_main)
{
    try {
        return real_main();
    } catch (const SimError &e) {
        std::fprintf(stderr, "%s: fatal (%s/%s): %s\n", tool,
                     errorKindName(e.kind()), e.context().c_str(),
                     e.what());
        return kExitFatal;
    }
}

} // namespace onespec::cli
