#include "support/sim_error.hpp"

namespace onespec {

const char *
errorKindName(ErrorKind k)
{
    switch (k) {
      case ErrorKind::None:     return "none";
      case ErrorKind::Guest:    return "guest";
      case ErrorKind::Spec:     return "spec";
      case ErrorKind::Resource: return "resource";
      case ErrorKind::Internal: return "internal";
    }
    return "?";
}

SimError::SimError(ErrorKind kind, std::string context, const std::string &msg)
    : std::runtime_error("[" + context + "] " + msg),
      kind_(kind), context_(std::move(context))
{}

void
throwRunawayLoop(const std::string &instr_name)
{
    throw GuestError("action",
                     "runaway while-loop in action code of '" + instr_name +
                     "' (exceeded " + std::to_string(kActionLoopGuard) +
                     " iterations)");
}

} // namespace onespec
