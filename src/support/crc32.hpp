/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) for
 * integrity checking of serialized artifacts -- most importantly the
 * per-section checksums of the checkpoint container (src/ckpt/).  The
 * checksum must be stable across hosts and compilers, so the
 * implementation is a plain table-driven byte loop with no
 * endianness-dependent tricks.
 */

#ifndef ONESPEC_SUPPORT_CRC32_HPP
#define ONESPEC_SUPPORT_CRC32_HPP

#include <cstddef>
#include <cstdint>

namespace onespec {

/**
 * Incrementally extend @p crc (pass 0 to start) with @p len bytes.
 * crc32(crc32(0, a), b) == crc32(0, ab).
 */
uint32_t crc32(uint32_t crc, const void *data, size_t len);

} // namespace onespec

#endif // ONESPEC_SUPPORT_CRC32_HPP
