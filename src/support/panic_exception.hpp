/**
 * @file
 * Exception types thrown by panic()/fatal() when running under a test
 * harness.  Production runs abort/exit; tests flip throwInsteadOfAbort()
 * so that death paths become observable without forking.
 */

#ifndef ONESPEC_SUPPORT_PANIC_EXCEPTION_HPP
#define ONESPEC_SUPPORT_PANIC_EXCEPTION_HPP

#include <stdexcept>
#include <string>

namespace onespec {

/** Thrown by ONESPEC_PANIC under test harnesses. */
class PanicException : public std::runtime_error
{
  public:
    explicit PanicException(const std::string &msg)
        : std::runtime_error(msg) {}

    /** Global switch: when true, panic/fatal throw instead of aborting. */
    static bool &throwInsteadOfAbort();
};

/** Thrown by ONESPEC_FATAL under test harnesses. */
class FatalException : public std::runtime_error
{
  public:
    explicit FatalException(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** RAII guard enabling throw-mode for the current scope (used in tests). */
class ScopedThrowOnPanic
{
  public:
    ScopedThrowOnPanic()
        : saved_(PanicException::throwInsteadOfAbort())
    {
        PanicException::throwInsteadOfAbort() = true;
    }
    ~ScopedThrowOnPanic() { PanicException::throwInsteadOfAbort() = saved_; }

    ScopedThrowOnPanic(const ScopedThrowOnPanic &) = delete;
    ScopedThrowOnPanic &operator=(const ScopedThrowOnPanic &) = delete;

  private:
    bool saved_;
};

} // namespace onespec

#endif // ONESPEC_SUPPORT_PANIC_EXCEPTION_HPP
