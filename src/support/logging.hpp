/**
 * @file
 * Error and status reporting in the style of gem5's logging facilities.
 *
 * panic()  -- a OneSpec bug: a condition that should never happen no matter
 *             what the user does.  Aborts (core-dumpable).
 * fatal()  -- a user error (bad description, bad arguments): the simulation
 *             cannot continue but OneSpec itself is fine.  Exits with code 1.
 *             Reserved for tool-level argument/usage errors; anything a
 *             *job input* can cause (guest image, action loop, checkpoint,
 *             description file) throws the SimError taxonomy from
 *             support/sim_error.hpp instead, so fleets can contain it.
 * warn()   -- something is probably not modeled as well as it could be.
 * inform() -- normal operating status.
 */

#ifndef ONESPEC_SUPPORT_LOGGING_HPP
#define ONESPEC_SUPPORT_LOGGING_HPP

#include <sstream>
#include <string>

namespace onespec {

/** Concatenate any streamable arguments into one std::string. */
template <typename... Args>
std::string
strcat_args(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Number of warnings emitted so far (for tests). */
int warnCount();

} // namespace detail

} // namespace onespec

#define ONESPEC_PANIC(...)                                                   \
    ::onespec::detail::panicImpl(__FILE__, __LINE__,                         \
                                 ::onespec::strcat_args(__VA_ARGS__))

#define ONESPEC_FATAL(...)                                                   \
    ::onespec::detail::fatalImpl(__FILE__, __LINE__,                         \
                                 ::onespec::strcat_args(__VA_ARGS__))

#define ONESPEC_WARN(...)                                                    \
    ::onespec::detail::warnImpl(__FILE__, __LINE__,                          \
                                ::onespec::strcat_args(__VA_ARGS__))

#define ONESPEC_INFORM(...)                                                  \
    ::onespec::detail::informImpl(::onespec::strcat_args(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define ONESPEC_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ONESPEC_PANIC("assertion '" #cond "' failed: ",                  \
                          ::onespec::strcat_args(__VA_ARGS__));              \
        }                                                                    \
    } while (0)

#endif // ONESPEC_SUPPORT_LOGGING_HPP
