/**
 * @file
 * Source locations and diagnostics for the LIS front end.  The parser and
 * semantic analyzer accumulate diagnostics into a DiagnosticEngine rather
 * than aborting, so a single run reports every problem in a description.
 */

#ifndef ONESPEC_SUPPORT_DIAG_HPP
#define ONESPEC_SUPPORT_DIAG_HPP

#include <string>
#include <vector>

namespace onespec {

/** A position within a LIS description file. */
struct SourceLoc
{
    std::string file;
    int line = 0;
    int col = 0;

    std::string str() const;
};

/** Severity of a diagnostic. */
enum class DiagSeverity { Error, Warning, Note };

/** One diagnostic message with its location. */
struct Diagnostic
{
    DiagSeverity severity = DiagSeverity::Error;
    SourceLoc loc;
    std::string message;

    std::string str() const;
};

/** Collects diagnostics produced while processing a description. */
class DiagnosticEngine
{
  public:
    void error(const SourceLoc &loc, const std::string &msg);
    void warning(const SourceLoc &loc, const std::string &msg);
    void note(const SourceLoc &loc, const std::string &msg);

    bool hasErrors() const { return errorCount_ > 0; }
    int errorCount() const { return errorCount_; }
    const std::vector<Diagnostic> &all() const { return diags_; }

    /** All diagnostics, one per line, for error reporting / tests. */
    std::string str() const;

  private:
    std::vector<Diagnostic> diags_;
    int errorCount_ = 0;
};

} // namespace onespec

#endif // ONESPEC_SUPPORT_DIAG_HPP
