#include "diag.hpp"

#include <sstream>

namespace onespec {

std::string
SourceLoc::str() const
{
    std::ostringstream os;
    os << (file.empty() ? "<input>" : file) << ":" << line << ":" << col;
    return os.str();
}

std::string
Diagnostic::str() const
{
    const char *sev = severity == DiagSeverity::Error     ? "error"
                      : severity == DiagSeverity::Warning ? "warning"
                                                          : "note";
    return loc.str() + ": " + sev + ": " + message;
}

void
DiagnosticEngine::error(const SourceLoc &loc, const std::string &msg)
{
    diags_.push_back({DiagSeverity::Error, loc, msg});
    ++errorCount_;
}

void
DiagnosticEngine::warning(const SourceLoc &loc, const std::string &msg)
{
    diags_.push_back({DiagSeverity::Warning, loc, msg});
}

void
DiagnosticEngine::note(const SourceLoc &loc, const std::string &msg)
{
    diags_.push_back({DiagSeverity::Note, loc, msg});
}

std::string
DiagnosticEngine::str() const
{
    std::ostringstream os;
    for (const auto &d : diags_)
        os << d.str() << "\n";
    return os.str();
}

} // namespace onespec
