/**
 * @file
 * The shared CLI exit-code contract (normative in docs/ROBUSTNESS.md,
 * "CLI exit codes").  Every OneSpec executable reports contained
 * failures the same way:
 *
 *   0..100   success; fleet-shaped tools return the quarantined-job
 *            count, capped at kQuarantineExitCap
 *   101      usage error (bad flags / arguments)
 *   102      fatal SimError: the run as a whole was unbuildable or the
 *            command failed (bad description file, damaged checkpoint,
 *            unreachable daemon, ...)
 *
 * runCliMain() is the one place a SimError escaping a tool's real main
 * is turned into the uniform "tool: fatal (kind/context): message"
 * stderr line and exit code 102 -- so `onespec-fleet`, `onespec-ckpt`,
 * `lisc`, `onespec-served`, and `onespec-sub` can never drift apart in
 * how they report the taxonomy of support/sim_error.hpp.
 */

#ifndef ONESPEC_SUPPORT_CLI_HPP
#define ONESPEC_SUPPORT_CLI_HPP

#include <functional>

namespace onespec::cli {

/** Fleet-shaped tools exit with min(quarantined jobs, this cap). */
constexpr int kQuarantineExitCap = 100;
/** Bad flags or arguments (the tool printed usage). */
constexpr int kExitUsage = 101;
/** A SimError escaped the tool's main: nothing (or not everything)
 *  was run. */
constexpr int kExitFatal = 102;

/** Clamp a quarantined-job count into the 0..kQuarantineExitCap band. */
int quarantineExitCode(unsigned quarantined);

/**
 * Run @p real_main under the shared contract: a SimError propagating out
 * is reported to stderr as "<tool>: fatal (<kind>/<context>): <message>"
 * and becomes kExitFatal.  Anything else (a panic, std::bad_alloc)
 * stays fatal-by-termination -- those are process bugs, not contained
 * input failures, and must not be laundered into an exit code.
 */
int runCliMain(const char *tool, const std::function<int()> &real_main);

} // namespace onespec::cli

#endif // ONESPEC_SUPPORT_CLI_HPP
