/**
 * @file
 * The containment error taxonomy.
 *
 * panic() (support/logging.hpp) remains the contract for OneSpec bugs:
 * conditions no input should be able to produce abort the process so the
 * bug cannot propagate.  Everything an *input* can cause -- a malformed
 * guest image, a divergent action loop, a damaged checkpoint, a missing
 * description file -- must instead fault the one job that supplied the
 * input.  Those paths throw SimError subclasses:
 *
 *   GuestError     the guest program or its serialized state is bad
 *                  (malformed image, runaway action loop, unknown OS
 *                  call under strict mode, damaged checkpoint).  Never
 *                  retryable: the same input fails the same way.
 *   SpecError      the simulation was *configured* wrong (unknown
 *                  kernel/buildset/ISA, description errors, stale
 *                  generated code).  Never retryable.
 *   ResourceError  the host failed us (unreadable file, watchdog
 *                  deadline).  Possibly transient, so the fleet's retry
 *                  policy applies to this class only.
 *
 * SimFleet (src/parallel/fleet.hpp) catches SimError per job and turns
 * it into a structured quarantine record; single-simulator drivers catch
 * it in main().  docs/ROBUSTNESS.md states the full contract.
 */

#ifndef ONESPEC_SUPPORT_SIM_ERROR_HPP
#define ONESPEC_SUPPORT_SIM_ERROR_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace onespec {

/** Containment class of a SimError (see file comment). */
enum class ErrorKind : uint8_t
{
    None = 0,     ///< no error (FleetResult default)
    Guest = 1,    ///< bad guest input; deterministic, not retryable
    Spec = 2,     ///< bad simulation configuration; not retryable
    Resource = 3, ///< host-side failure; retry may succeed
    Internal = 4, ///< non-SimError exception escaped a job (a bug)
};

const char *errorKindName(ErrorKind k);

/** Base of every contained (job-scoped) failure. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, std::string context, const std::string &msg);

    ErrorKind kind() const { return kind_; }
    /** Component that raised the error ("interp", "os", "ckpt", ...). */
    const std::string &context() const { return context_; }

  private:
    ErrorKind kind_;
    std::string context_;
};

/** The guest program (or its serialized state) is at fault. */
class GuestError : public SimError
{
  public:
    GuestError(std::string context, const std::string &msg)
        : SimError(ErrorKind::Guest, std::move(context), msg)
    {}
};

/** The simulation configuration is at fault. */
class SpecError : public SimError
{
  public:
    SpecError(std::string context, const std::string &msg)
        : SimError(ErrorKind::Spec, std::move(context), msg)
    {}
};

/** The host is at fault; the fleet may retry these. */
class ResourceError : public SimError
{
  public:
    ResourceError(std::string context, const std::string &msg)
        : SimError(ErrorKind::Resource, std::move(context), msg)
    {}
};

/** A fleet job exceeded its wall-clock watchdog deadline.  Modeled as a
 *  ResourceError because the commonest cause on a loaded host is CPU
 *  contention, which a retry (with backoff) can genuinely outlive. */
class DeadlineError : public ResourceError
{
  public:
    DeadlineError(const std::string &msg, uint64_t elapsed_ns)
        : ResourceError("watchdog", msg), elapsedNs_(elapsed_ns)
    {}

    uint64_t elapsedNs() const { return elapsedNs_; }

  private:
    uint64_t elapsedNs_;
};

/**
 * Ceiling on iterations of one `while` loop in action code, shared by
 * the interpreter and the synthesized simulators so both back ends fault
 * a divergent guest at exactly the same point.  Exceeding it raises
 * GuestError through throwRunawayLoop().
 */
constexpr uint64_t kActionLoopGuard = uint64_t{1} << 24;

/** Raise the contained runaway-action-loop GuestError (both back ends
 *  funnel through here so the message and type can never diverge). */
[[noreturn]] void throwRunawayLoop(const std::string &instr_name);

} // namespace onespec

#endif // ONESPEC_SUPPORT_SIM_ERROR_HPP
