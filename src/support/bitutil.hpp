/**
 * @file
 * Bit-manipulation helpers shared by the decoder, encoder, action-language
 * evaluator, and generated simulators.  Everything operates on uint64_t so
 * the same helpers back every value type in the action language.
 */

#ifndef ONESPEC_SUPPORT_BITUTIL_HPP
#define ONESPEC_SUPPORT_BITUTIL_HPP

#include <bit>
#include <cstdint>

namespace onespec {

/** Mask with the low @p n bits set (n in [0, 64]). */
constexpr uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** Extract bits [hi:lo] of @p v (inclusive, hi >= lo). */
constexpr uint64_t
bits(uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & lowMask(hi - lo + 1);
}

/** Insert the low (hi-lo+1) bits of @p field into bits [hi:lo] of @p v. */
constexpr uint64_t
insertBits(uint64_t v, unsigned hi, unsigned lo, uint64_t field)
{
    uint64_t m = lowMask(hi - lo + 1);
    return (v & ~(m << lo)) | ((field & m) << lo);
}

/** Sign-extend the low @p n bits of @p v to 64 bits (n in [1, 64]). */
constexpr uint64_t
sext(uint64_t v, unsigned n)
{
    if (n >= 64)
        return v;
    uint64_t sign_bit = uint64_t{1} << (n - 1);
    uint64_t masked = v & lowMask(n);
    return (masked ^ sign_bit) - sign_bit;
}

/** Zero-extend the low @p n bits of @p v. */
constexpr uint64_t
zext(uint64_t v, unsigned n)
{
    return v & lowMask(n);
}

/** Truncate @p v to @p bits bits (identity for bits >= 64). */
constexpr uint64_t
truncate(uint64_t v, unsigned bits_)
{
    return v & lowMask(bits_);
}

constexpr uint32_t
rotl32(uint32_t v, unsigned s)
{
    return std::rotl(v, static_cast<int>(s & 31));
}

constexpr uint32_t
rotr32(uint32_t v, unsigned s)
{
    return std::rotr(v, static_cast<int>(s & 31));
}

constexpr uint64_t
rotl64(uint64_t v, unsigned s)
{
    return std::rotl(v, static_cast<int>(s & 63));
}

constexpr uint64_t
rotr64(uint64_t v, unsigned s)
{
    return std::rotr(v, static_cast<int>(s & 63));
}

/** Count leading zeros of the low @p width bits (returns width if zero). */
constexpr unsigned
clz(uint64_t v, unsigned width)
{
    v = truncate(v, width);
    if (v == 0)
        return width;
    return static_cast<unsigned>(std::countl_zero(v)) - (64 - width);
}

/** Count trailing zeros of the low @p width bits (returns width if zero). */
constexpr unsigned
ctz(uint64_t v, unsigned width)
{
    v = truncate(v, width);
    if (v == 0)
        return width;
    return static_cast<unsigned>(std::countr_zero(v));
}

constexpr unsigned
popcount(uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** True if @p v is aligned to @p align (a power of two). */
constexpr bool
isAligned(uint64_t v, uint64_t align)
{
    return (v & (align - 1)) == 0;
}

/**
 * Unsigned add-with-carry-out: returns carry of a + b + cin as 0/1 for the
 * given operand @p width in bits.
 */
constexpr uint64_t
carryOut(uint64_t a, uint64_t b, uint64_t cin, unsigned width)
{
    a = truncate(a, width);
    b = truncate(b, width);
    if (width < 64) {
        return ((a + b + cin) >> width) & 1;
    }
    uint64_t s = a + b;
    uint64_t c1 = s < a;
    uint64_t s2 = s + cin;
    uint64_t c2 = s2 < s;
    return c1 | c2;
}

/** Signed overflow of a + b + cin at the given width, as 0/1. */
constexpr uint64_t
overflowAdd(uint64_t a, uint64_t b, uint64_t cin, unsigned width)
{
    uint64_t sum = truncate(a + b + cin, width);
    uint64_t sa = bits(a, width - 1, width - 1);
    uint64_t sb = bits(b, width - 1, width - 1);
    uint64_t ss = bits(sum, width - 1, width - 1);
    return (sa == sb && sa != ss) ? 1 : 0;
}

} // namespace onespec

#endif // ONESPEC_SUPPORT_BITUTIL_HPP
