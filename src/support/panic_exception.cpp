#include "panic_exception.hpp"

namespace onespec {

bool &
PanicException::throwInsteadOfAbort()
{
    static bool flag = false;
    return flag;
}

} // namespace onespec
