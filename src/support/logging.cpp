#include "logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "panic_exception.hpp"

namespace onespec {
namespace detail {

namespace {
std::atomic<int> warn_counter{0};
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = strcat_args("panic: ", msg, " @ ", file, ":", line);
    if (PanicException::throwInsteadOfAbort()) {
        throw PanicException(full);
    }
    std::fprintf(stderr, "%s\n", full.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = strcat_args("fatal: ", msg, " @ ", file, ":", line);
    if (PanicException::throwInsteadOfAbort()) {
        throw FatalException(full);
    }
    std::fprintf(stderr, "%s\n", full.c_str());
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    warn_counter.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "warn: %s @ %s:%d\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

int
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

} // namespace detail
} // namespace onespec
