/**
 * @file
 * A classic set-associative cache model with LRU replacement, used by the
 * timing simulators.  Timing-only: holds tags, not data (the functional
 * simulator owns the data; this is precisely the decoupling the paper's
 * organizations rely on).
 */

#ifndef ONESPEC_TIMING_CACHE_HPP
#define ONESPEC_TIMING_CACHE_HPP

#include <cstdint>
#include <vector>

#include "stats/stats.hpp"
#include "support/bitutil.hpp"
#include "support/logging.hpp"

namespace onespec {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    unsigned sizeBytes = 32 * 1024;
    unsigned lineBytes = 64;
    unsigned ways = 4;
    unsigned hitLatency = 1;
};

/** Tag-only set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg) : cfg_(cfg)
    {
        ONESPEC_ASSERT(cfg.lineBytes != 0 &&
                           (cfg.lineBytes & (cfg.lineBytes - 1)) == 0,
                       "line size must be a power of two");
        sets_ = cfg.sizeBytes / (cfg.lineBytes * cfg.ways);
        ONESPEC_ASSERT(sets_ > 0 && (sets_ & (sets_ - 1)) == 0,
                       "set count must be a power of two");
        tags_.assign(static_cast<size_t>(sets_) * cfg.ways, kInvalid);
        lru_.assign(tags_.size(), 0);
    }

    /** Access @p addr; returns true on hit and updates LRU state. */
    bool
    access(uint64_t addr)
    {
        ++accesses_;
        uint64_t line = addr / cfg_.lineBytes;
        unsigned set = static_cast<unsigned>(line & (sets_ - 1));
        uint64_t tag = line; // full line id as tag
        size_t base = static_cast<size_t>(set) * cfg_.ways;
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (tags_[base + w] == tag) {
                touch(base, w);
                return true;
            }
        }
        ++misses_;
        // Fill: replace the LRU way.
        unsigned victim = 0;
        uint64_t oldest = lru_[base];
        for (unsigned w = 1; w < cfg_.ways; ++w) {
            if (lru_[base + w] < oldest) {
                oldest = lru_[base + w];
                victim = w;
            }
        }
        tags_[base + victim] = tag;
        touch(base, victim);
        return false;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    unsigned hitLatency() const { return cfg_.hitLatency; }

    /** Fold accesses/misses (+ a miss-rate formula) into @p g. */
    void
    publishStats(stats::StatGroup &g) const
    {
        stats::Counter &acc = g.counter("accesses", "cache accesses");
        stats::Counter &mis = g.counter("misses", "cache misses");
        acc.add(accesses_ - accessesPublished_);
        mis.add(misses_ - missesPublished_);
        accessesPublished_ = accesses_;
        missesPublished_ = misses_;
        g.formula("miss_rate", "misses / accesses", [&acc, &mis] {
            uint64_t a = acc.value();
            return a ? static_cast<double>(mis.value()) /
                           static_cast<double>(a)
                     : 0.0;
        });
    }

    void
    reset()
    {
        std::fill(tags_.begin(), tags_.end(), kInvalid);
        std::fill(lru_.begin(), lru_.end(), 0);
        accesses_ = misses_ = 0;
        accessesPublished_ = missesPublished_ = 0;
        clock_ = 0;
    }

  private:
    static constexpr uint64_t kInvalid = ~uint64_t{0};

    void
    touch(size_t base, unsigned way)
    {
        lru_[base + way] = ++clock_;
    }

    CacheConfig cfg_;
    unsigned sets_;
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> lru_;
    uint64_t clock_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
    mutable uint64_t accessesPublished_ = 0;
    mutable uint64_t missesPublished_ = 0;
};

/** A two-level hierarchy: split L1 I/D over a unified L2. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1i, const CacheConfig &l1d,
                   const CacheConfig &l2, unsigned mem_latency = 100)
        : l1i_(l1i), l1d_(l1d), l2_(l2), memLatency_(mem_latency)
    {}

    /** Latency in cycles of an instruction fetch at @p addr. */
    unsigned
    fetch(uint64_t addr)
    {
        if (l1i_.access(addr))
            return l1i_.hitLatency();
        if (l2_.access(addr))
            return l1i_.hitLatency() + l2_.hitLatency();
        return l1i_.hitLatency() + l2_.hitLatency() + memLatency_;
    }

    /** Latency in cycles of a data access at @p addr. */
    unsigned
    data(uint64_t addr)
    {
        if (l1d_.access(addr))
            return l1d_.hitLatency();
        if (l2_.access(addr))
            return l1d_.hitLatency() + l2_.hitLatency();
        return l1d_.hitLatency() + l2_.hitLatency() + memLatency_;
    }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    /** Publish all three levels as child groups of @p g. */
    void
    publishStats(stats::StatGroup &g) const
    {
        l1i_.publishStats(g.group("l1i"));
        l1d_.publishStats(g.group("l1d"));
        l2_.publishStats(g.group("l2"));
    }

    void
    reset()
    {
        l1i_.reset();
        l1d_.reset();
        l2_.reset();
    }

  private:
    Cache l1i_, l1d_, l2_;
    unsigned memLatency_;
};

} // namespace onespec

#endif // ONESPEC_TIMING_CACHE_HPP
