/**
 * @file
 * A sampling driver in the SMARTS style (paper Sections I-II): detailed
 * timing simulation for short windows, functional fast-forward between
 * them.  Uses two interfaces of the *same* functional simulator context:
 * the Step-detail interface inside windows and a Block-detail
 * fast-forward interface between them -- the paper's canonical case for
 * multiple interfaces derived from one specification.
 */

#ifndef ONESPEC_TIMING_SAMPLING_HPP
#define ONESPEC_TIMING_SAMPLING_HPP

#include "timing/timing_directed.hpp"

namespace onespec {

/** Sampling configuration. */
struct SamplingConfig
{
    uint64_t windowInstrs = 1000;   ///< detailed window length
    uint64_t periodInstrs = 100000; ///< window start-to-start distance
    TimingDirectedConfig pipeline;

    /**
     * Give every window a freshly constructed pipeline instead of one
     * pipeline kept warm across windows.  Checkpoint-parallel sampling
     * necessarily starts each window cold (windows run in different
     * jobs), so its serial reference must too -- with this flag the two
     * schedules are bit-identical.  Default off: the classic
     * warm-pipeline driver is unchanged.
     */
    bool independentWindows = false;
};

/** Result of a sampled simulation. */
struct SamplingStats
{
    TimingStats detailed;       ///< aggregated over windows
    uint64_t fastForwarded = 0; ///< instructions skipped functionally
    uint64_t windows = 0;

    /** Estimated whole-program CPI from the sampled windows. */
    double
    estimatedCpi() const
    {
        return detailed.instrs
                   ? static_cast<double>(detailed.cycles) /
                         static_cast<double>(detailed.instrs)
                   : 0.0;
    }

    /** Fold one window's timing results in (field-wise sum). */
    void
    accumulateWindow(const TimingStats &w)
    {
        detailed.cycles += w.cycles;
        detailed.instrs += w.instrs;
        detailed.icacheMisses += w.icacheMisses;
        detailed.dcacheMisses += w.dcacheMisses;
        detailed.branches += w.branches;
        detailed.mispredicts += w.mispredicts;
        detailed.mismatches += w.mismatches;
        detailed.rollbacks += w.rollbacks;
        detailed.rolledBackInstrs += w.rolledBackInstrs;
        ++windows;
    }

    /** Fold into registry group @p g: window timing plus sampling's own
     *  counters, so serial and checkpoint-parallel runs dump through the
     *  same path (their dumps can be diffed byte-for-byte). */
    void
    publish(stats::StatGroup &g) const
    {
        detailed.publishStats(g);
        g.counter("fast_forwarded", "instructions skipped functionally")
            .add(fastForwarded);
        g.counter("windows", "detailed windows measured").add(windows);
    }
};

/**
 * Run sampled simulation: @p detailed provides Step detail, @p fast
 * provides fastForward(); both must execute over the same SimContext.
 */
SamplingStats runSampled(const Spec &spec, FunctionalSimulator &detailed,
                         FunctionalSimulator &fast,
                         const SamplingConfig &cfg, uint64_t max_instrs);

} // namespace onespec

#endif // ONESPEC_TIMING_SAMPLING_HPP
