#include "sampling.hpp"

#include "support/logging.hpp"

namespace onespec {

SamplingStats
runSampled(const Spec &spec, FunctionalSimulator &detailed,
           FunctionalSimulator &fast, const SamplingConfig &cfg,
           uint64_t max_instrs)
{
    ONESPEC_ASSERT(&detailed.ctx() == &fast.ctx(),
                   "sampling interfaces must share one context");
    SamplingStats out;
    TimingDirectedPipeline pipe(spec, cfg.pipeline);
    uint64_t total = 0;
    RunStatus status = RunStatus::Ok;

    while (total < max_instrs && status == RunStatus::Ok) {
        // Detailed window.  Optionally on a cold pipeline, to match the
        // schedule checkpoint-parallel sampling is forced into.
        uint64_t cap = std::min(cfg.windowInstrs, max_instrs - total);
        TimingStats w;
        if (cfg.independentWindows) {
            TimingDirectedPipeline fresh(spec, cfg.pipeline);
            w = fresh.run(detailed, cap);
        } else {
            w = pipe.run(detailed, cap);
        }
        out.accumulateWindow(w);
        total += w.instrs;
        if (w.instrs < cfg.windowInstrs)
            break; // program ended inside the window

        // Fast-forward to the next window.
        uint64_t ff = cfg.periodInstrs > cfg.windowInstrs
                          ? cfg.periodInstrs - cfg.windowInstrs
                          : 0;
        ff = std::min(ff, max_instrs - total);
        if (ff) {
            uint64_t done = fast.fastForward(ff, status);
            out.fastForwarded += done;
            total += done;
            if (done < ff)
                break;
        }
    }
    return out;
}

} // namespace onespec
