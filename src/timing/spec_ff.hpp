/**
 * @file
 * The speculative functional-first organization (paper Section II-E,
 * after UTFast/FastSim): the functional simulator runs ahead producing a
 * stream of execution records, all of which are considered speculative.
 * When the timing simulator decides the functional execution diverged
 * from the timing-correct one (e.g. a different memory order), it
 * commands the functional simulator to undo and re-execute.
 *
 * The interface therefore needs Block/One semantic detail, Decode-level
 * information plus load values, and -- crucially -- speculation support
 * (the rollback journal generated when a buildset says `speculation on`).
 *
 * Timing-dependent divergence itself needs a multi-context memory system
 * we do not model, so divergences are *declared* on a configurable
 * schedule; what is really exercised is the undo/redirect/re-execute
 * machinery and its cost accounting.
 */

#ifndef ONESPEC_TIMING_SPEC_FF_HPP
#define ONESPEC_TIMING_SPEC_FF_HPP

#include "iface/functional_simulator.hpp"
#include "timing/stats.hpp"

namespace onespec {

/** Speculative functional-first configuration. */
struct SpecFFConfig
{
    /** Declare a misspeculation every N instructions (0 = never). */
    uint64_t violationEvery = 10000;
    /** How many instructions are squashed per violation. */
    uint64_t squashDepth = 20;
    /** Cycles charged per squashed instruction on re-execution. */
    unsigned replayCostPerInstr = 1;
};

/** Drives an undo-capable functional simulator with declared violations. */
class SpecFunctionalFirstModel
{
  public:
    explicit SpecFunctionalFirstModel(const SpecFFConfig &cfg = {})
        : cfg_(cfg)
    {}

    /**
     * @p sim must be a Block-detail buildset with speculation on
     * (e.g. BlockDecYes).  Returns stats including rollback counts.
     */
    TimingStats run(FunctionalSimulator &sim, uint64_t max_instrs);

  private:
    SpecFFConfig cfg_;
};

} // namespace onespec

#endif // ONESPEC_TIMING_SPEC_FF_HPP
