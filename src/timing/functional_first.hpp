/**
 * @file
 * The functional-first organization (paper Section II-B): the functional
 * simulator runs in charge, producing a stream of dynamic-instruction
 * records that the timing model consumes.  The interface needs low
 * semantic detail (one call per instruction or basic block) and moderate
 * informational detail -- decoded operand identifiers, branch
 * resolutions, and effective addresses -- i.e. a `Decode`-level buildset.
 */

#ifndef ONESPEC_TIMING_FUNCTIONAL_FIRST_HPP
#define ONESPEC_TIMING_FUNCTIONAL_FIRST_HPP

#include "iface/fieldview.hpp"
#include "iface/functional_simulator.hpp"
#include "timing/bpred.hpp"
#include "timing/cache.hpp"
#include "timing/stats.hpp"

namespace onespec {

/** Configuration of the trace-consuming superscalar-ish timing model. */
struct FunctionalFirstConfig
{
    CacheConfig l1i{16 * 1024, 64, 2, 1};
    CacheConfig l1d{16 * 1024, 64, 4, 2};
    CacheConfig l2{256 * 1024, 64, 8, 10};
    unsigned memLatency = 100;
    unsigned mispredictPenalty = 8;
};

/**
 * Consumes the instruction stream of a Block- or One-detail functional
 * simulator and computes cycles with cache and branch-predictor models.
 */
class FunctionalFirstModel
{
  public:
    FunctionalFirstModel(const Spec &spec,
                         const FunctionalFirstConfig &cfg = {});

    /**
     * Run up to @p max_instrs through @p sim (which must offer Block or
     * One semantic detail and at least Decode informational detail).
     */
    TimingStats run(FunctionalSimulator &sim, uint64_t max_instrs);

    /** Publish cache-hierarchy and branch-predictor state into @p g. */
    void
    publishStats(stats::StatGroup &g) const
    {
        caches_.publishStats(g.group("caches"));
        bpred_.publishStats(g.group("bpred"));
    }

  private:
    void account(const DynInst &di, TimingStats &st);

    const Spec *spec_;
    FunctionalFirstConfig cfg_;
    CacheHierarchy caches_;
    BranchPredictor bpred_;
    int eaSlot_;
};

} // namespace onespec

#endif // ONESPEC_TIMING_FUNCTIONAL_FIRST_HPP
