#include "spec_ff.hpp"

#include "stats/trace.hpp"
#include "support/logging.hpp"

namespace onespec {

TimingStats
SpecFunctionalFirstModel::run(FunctionalSimulator &sim,
                              uint64_t max_instrs)
{
    ONESPEC_ASSERT(sim.supportsUndo(),
                   "speculative functional-first requires a speculation-"
                   "enabled buildset");
    TimingStats st;
    RunStatus status = RunStatus::Ok;
    DynInst block[64];
    uint64_t since_violation = 0;

    while (st.instrs < max_instrs && status == RunStatus::Ok) {
        unsigned n = sim.executeBlock(block, 64, status);
        st.instrs += n;
        st.cycles += n; // base CPI 1 for the consuming timing model
        since_violation += n;
        if (n == 0)
            break;

        if (cfg_.violationEvery &&
            since_violation >= cfg_.violationEvery &&
            status == RunStatus::Ok) {
            // The timing model declares the recent execution
            // timing-inconsistent: squash and re-execute.
            uint64_t depth =
                std::min<uint64_t>(cfg_.squashDepth,
                                   sim.ctx().journal().depth());
            if (depth > 0) {
                ONESPEC_TRACE("spec", "violation", depth, st.instrs);
                sim.undo(depth);
                ++st.rollbacks;
                st.rolledBackInstrs += depth;
                st.instrs -= depth;
                st.cycles += depth * cfg_.replayCostPerInstr;
            }
            since_violation = 0;
        }
    }
    return st;
}

} // namespace onespec
