#include "timing_directed.hpp"

#include <cstring>

#include "support/logging.hpp"

namespace onespec {

TimingDirectedPipeline::TimingDirectedPipeline(
    const Spec &spec, const TimingDirectedConfig &cfg)
    : spec_(&spec), cfg_(cfg),
      caches_(cfg.l1i, cfg.l1d, cfg.l2, cfg.memLatency), bpred_(12),
      eaSlot_(spec.findSlot("effective_addr"))
{}

TimingStats
TimingDirectedPipeline::run(FunctionalSimulator &sim, uint64_t max_instrs)
{
    TimingStats st;
    RunStatus status = RunStatus::Ok;
    uint64_t i0 = caches_.l1i().misses();
    uint64_t d0 = caches_.l1d().misses();
    uint64_t b0 = bpred_.branches();
    uint64_t m0 = bpred_.mispredicts();

    // Scoreboard state: the cycle at which the previous instruction
    // occupied each stage, register-ready cycles for bypassing, and the
    // front-end redirect cycle.
    uint64_t prev_if = 0, prev_id = 0, prev_rd = 0, prev_ex = 0,
             prev_mem = 0, prev_wb = 0;
    uint64_t redirect = 0;

    // Register ready-time map, indexed by (fileId, reg).  128 entries per
    // file id is plenty for the shipped ISAs.
    uint64_t ready[128][32];
    std::memset(ready, 0, sizeof(ready));
    auto regSlot = [](uint8_t meta, uint8_t reg) -> std::pair<int, int> {
        unsigned file = opMetaFile(meta);
        return {static_cast<int>(file & 0x7f) % 128, reg % 32};
    };

    DynInst di;
    while (st.instrs < max_instrs && status == RunStatus::Ok) {
        // ---- IF
        uint64_t c_if = std::max(prev_if + 1, redirect);
        status = sim.step(Step::Fetch, di);
        if (status != RunStatus::Ok)
            break;
        unsigned if_lat = caches_.fetch(di.pc);
        // ---- ID
        uint64_t c_id = std::max(c_if + if_lat, prev_id + 1);
        status = sim.step(Step::Decode, di);
        if (status != RunStatus::Ok)
            break;
        // ---- RD: stall until source operands are ready.
        uint64_t c_rd = std::max(c_id + 1, prev_rd + 1);
        for (unsigned i = 0; i < di.nOps; ++i) {
            if (opMetaIsDst(di.opMeta[i]))
                continue;
            auto [f, r] = regSlot(di.opMeta[i], di.opRegs[i]);
            c_rd = std::max(c_rd, ready[f][r]);
        }
        status = sim.step(Step::ReadOperands, di);
        if (status != RunStatus::Ok)
            break;
        // ---- EX
        uint64_t c_ex = std::max(c_rd + 1, prev_ex + 1);
        status = sim.step(Step::Execute, di);
        if (status != RunStatus::Ok)
            break;
        // ---- MEM
        uint64_t c_mem = std::max(c_ex + 1, prev_mem + 1);
        bool is_mem = di.opId != 0xffff &&
                      spec_->instrs[di.opId].hasMemAccess;
        if (is_mem && eaSlot_ >= 0 && di.slotWritten(eaSlot_))
            c_mem += caches_.data(di.vals[eaSlot_]) - 1;
        status = sim.step(Step::Memory, di);
        if (status != RunStatus::Ok)
            break;
        // ---- WB
        uint64_t c_wb = std::max(c_mem + 1, prev_wb + 1);
        status = sim.step(Step::Writeback, di);
        if (status != RunStatus::Ok)
            break;
        // Destination registers become ready at WB (bypassed to RD).
        for (unsigned i = 0; i < di.nOps; ++i) {
            if (!opMetaIsDst(di.opMeta[i]))
                continue;
            auto [f, r] = regSlot(di.opMeta[i], di.opRegs[i]);
            ready[f][r] = is_mem ? c_mem + 1 : c_ex + 1;
        }
        // ---- retire
        status = sim.step(Step::Exception, di);
        ++st.instrs;
        st.cycles = c_wb;

        // Branch resolution at EX: train the predictor; charge redirect.
        if (di.opId != 0xffff && spec_->instrs[di.opId].isControlFlow) {
            bool taken = di.branchTaken();
            bool predicted = bpred_.predictTaken(di.pc);
            uint64_t ptarget = bpred_.predictTarget(di.pc);
            bpred_.update(di.pc, taken, di.npc);
            if (predicted != taken || (taken && ptarget != di.npc))
                redirect = c_ex + 1;
        }

        prev_if = c_if;
        prev_id = c_id;
        prev_rd = c_rd;
        prev_ex = c_ex;
        prev_mem = c_mem;
        prev_wb = c_wb;
    }

    st.icacheMisses = caches_.l1i().misses() - i0;
    st.dcacheMisses = caches_.l1d().misses() - d0;
    st.branches = bpred_.branches() - b0;
    st.mispredicts = bpred_.mispredicts() - m0;
    return st;
}

} // namespace onespec
