/**
 * @file
 * The timing-directed organization (paper Section II-C): the timing
 * simulator is in control and asks the functional simulator to perform
 * individual elements of each instruction's behaviour -- exactly the
 * Step-level semantic detail, with All informational detail (operand
 * identifiers for hazard detection, effective addresses for the data
 * cache, branch resolution for redirects).
 *
 * The model is a classic five-stage in-order pipeline computed with a
 * scoreboard recurrence; the functional simulator's step() calls are
 * issued in program order as each instruction traverses the stages.
 * Wrong-path instructions are not executed (correct-path timing-directed
 * simulation); mispredicted branches charge a redirect penalty.
 */

#ifndef ONESPEC_TIMING_TIMING_DIRECTED_HPP
#define ONESPEC_TIMING_TIMING_DIRECTED_HPP

#include "iface/functional_simulator.hpp"
#include "timing/bpred.hpp"
#include "timing/cache.hpp"
#include "timing/stats.hpp"

namespace onespec {

/** Pipeline configuration. */
struct TimingDirectedConfig
{
    CacheConfig l1i{16 * 1024, 64, 2, 1};
    CacheConfig l1d{16 * 1024, 64, 4, 2};
    CacheConfig l2{256 * 1024, 64, 8, 10};
    unsigned memLatency = 100;
};

/** Five-stage in-order pipeline driving a Step-detail interface. */
class TimingDirectedPipeline
{
  public:
    TimingDirectedPipeline(const Spec &spec,
                           const TimingDirectedConfig &cfg = {});

    /**
     * Run up to @p max_instrs.  @p sim must provide the Step entrypoints
     * with All informational detail.
     */
    TimingStats run(FunctionalSimulator &sim, uint64_t max_instrs);

  private:
    const Spec *spec_;
    TimingDirectedConfig cfg_;
    CacheHierarchy caches_;
    BranchPredictor bpred_;
    int eaSlot_;
};

} // namespace onespec

#endif // ONESPEC_TIMING_TIMING_DIRECTED_HPP
