/**
 * @file
 * The timing-first organization (paper Section II-D, after TFsim): an
 * "integrated" timing simulator executes instructions itself and a
 * functional simulator checks it, instruction by instruction, by
 * comparing architectural state.  On a mismatch the timing simulator's
 * state is reloaded from the functional simulator and its pipeline is
 * flushed.  The interface needs only one call per instruction and no
 * per-instruction information at all -- the checker queries architectural
 * state directly.
 *
 * To exercise the checking machinery, the model can inject functional
 * bugs into the "timing" side at a configurable interval (standing in for
 * the corner cases a timing-first timing model is allowed to get wrong).
 */

#ifndef ONESPEC_TIMING_TIMING_FIRST_HPP
#define ONESPEC_TIMING_TIMING_FIRST_HPP

#include "iface/functional_simulator.hpp"
#include "timing/stats.hpp"

namespace onespec {

/** Timing-first checker configuration. */
struct TimingFirstConfig
{
    /** Inject a register corruption every N instructions (0 = never). */
    uint64_t injectBugEvery = 0;
    /** Pipeline-flush penalty charged per detected mismatch. */
    unsigned flushPenalty = 12;
};

/**
 * Runs a "timing" context and a checker context in lockstep.  Both
 * simulators must execute over *different* SimContexts loaded with the
 * same program.
 */
class TimingFirstModel
{
  public:
    explicit TimingFirstModel(const TimingFirstConfig &cfg = {})
        : cfg_(cfg)
    {}

    /**
     * @p timing executes the integrated model's functionality;
     * @p checker is the trusted functional simulator.
     */
    TimingStats run(FunctionalSimulator &timing,
                    FunctionalSimulator &checker, uint64_t max_instrs);

  private:
    TimingFirstConfig cfg_;
};

} // namespace onespec

#endif // ONESPEC_TIMING_TIMING_FIRST_HPP
