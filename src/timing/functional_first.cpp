#include "functional_first.hpp"

#include "support/logging.hpp"

namespace onespec {

FunctionalFirstModel::FunctionalFirstModel(const Spec &spec,
                                           const FunctionalFirstConfig &cfg)
    : spec_(&spec), cfg_(cfg),
      caches_(cfg.l1i, cfg.l1d, cfg.l2, cfg.memLatency),
      bpred_(12), eaSlot_(spec.findSlot("effective_addr"))
{
    ONESPEC_ASSERT(eaSlot_ >= 0,
                   "functional-first model needs an effective_addr field");
}

void
FunctionalFirstModel::account(const DynInst &di, TimingStats &st)
{
    ++st.instrs;
    uint64_t cycles = 1;

    unsigned flat = caches_.fetch(di.pc);
    cycles += flat - 1;

    if (di.opId != 0xffff) {
        const InstrInfo &ii = spec_->instrs[di.opId];
        if (ii.hasMemAccess && di.slotWritten(eaSlot_)) {
            unsigned dlat = caches_.data(di.vals[eaSlot_]);
            cycles += dlat - 1;
        }
        if (ii.isControlFlow) {
            bool taken = di.branchTaken();
            bool predicted = bpred_.predictTaken(di.pc);
            uint64_t ptarget = bpred_.predictTarget(di.pc);
            bpred_.update(di.pc, taken, di.npc);
            if (predicted != taken || (taken && ptarget != di.npc))
                cycles += cfg_.mispredictPenalty;
        }
    }
    st.cycles += cycles;
}

TimingStats
FunctionalFirstModel::run(FunctionalSimulator &sim, uint64_t max_instrs)
{
    TimingStats st;
    const BuildsetInfo &bs = sim.buildset();
    RunStatus status = RunStatus::Ok;
    uint64_t i0 = caches_.l1i().misses();
    uint64_t d0 = caches_.l1d().misses();
    uint64_t b0 = bpred_.branches();
    uint64_t m0 = bpred_.mispredicts();

    if (bs.semantic == SemanticLevel::Block) {
        DynInst block[64];
        while (st.instrs < max_instrs && status == RunStatus::Ok) {
            unsigned cap = static_cast<unsigned>(
                std::min<uint64_t>(64, max_instrs - st.instrs));
            unsigned n = sim.executeBlock(block, cap, status);
            for (unsigned i = 0; i < n; ++i)
                account(block[i], st);
            if (n == 0)
                break;
        }
    } else {
        DynInst di;
        while (st.instrs < max_instrs && status == RunStatus::Ok) {
            status = sim.execute(di);
            account(di, st);
        }
    }

    st.icacheMisses = caches_.l1i().misses() - i0;
    st.dcacheMisses = caches_.l1d().misses() - d0;
    st.branches = bpred_.branches() - b0;
    st.mispredicts = bpred_.mispredicts() - m0;
    return st;
}

} // namespace onespec
