/**
 * @file
 * Branch prediction for the timing simulators: a gshare direction
 * predictor with 2-bit saturating counters plus a direct-mapped BTB for
 * targets.
 */

#ifndef ONESPEC_TIMING_BPRED_HPP
#define ONESPEC_TIMING_BPRED_HPP

#include <cstdint>
#include <vector>

#include "stats/stats.hpp"

namespace onespec {

/** gshare + BTB. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(unsigned history_bits = 12)
        : historyBits_(history_bits),
          counters_(size_t{1} << history_bits, 1),
          btbTags_(kBtbSize, ~uint64_t{0}), btbTargets_(kBtbSize, 0)
    {}

    /** Predict the direction of the branch at @p pc. */
    bool
    predictTaken(uint64_t pc) const
    {
        return counters_[index(pc)] >= 2;
    }

    /** Predicted target (0 if the BTB misses). */
    uint64_t
    predictTarget(uint64_t pc) const
    {
        unsigned i = btbIndex(pc);
        return btbTags_[i] == pc ? btbTargets_[i] : 0;
    }

    /** Train with the resolved outcome. */
    void
    update(uint64_t pc, bool taken, uint64_t target)
    {
        ++branches_;
        bool predicted = predictTaken(pc);
        uint64_t ptarget = predictTarget(pc);
        if (predicted != taken || (taken && ptarget != target))
            ++mispredicts_;
        uint8_t &c = counters_[index(pc)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                   ((uint64_t{1} << historyBits_) - 1);
        if (taken) {
            unsigned i = btbIndex(pc);
            btbTags_[i] = pc;
            btbTargets_[i] = target;
        }
    }

    uint64_t branches() const { return branches_; }
    uint64_t mispredicts() const { return mispredicts_; }

    /** Direction+target accuracy over everything trained so far. */
    double
    accuracy() const
    {
        return branches_ ? 1.0 - static_cast<double>(mispredicts_) /
                                     static_cast<double>(branches_)
                         : 0.0;
    }

    /** Fold branches/mispredicts (+ an accuracy formula) into @p g. */
    void
    publishStats(stats::StatGroup &g) const
    {
        stats::Counter &br = g.counter("branches", "branches trained");
        stats::Counter &mp =
            g.counter("mispredicts", "direction or target mispredicted");
        br.add(branches_ - branchesPublished_);
        mp.add(mispredicts_ - mispredictsPublished_);
        branchesPublished_ = branches_;
        mispredictsPublished_ = mispredicts_;
        g.formula("accuracy", "1 - mispredicts/branches", [&br, &mp] {
            uint64_t b = br.value();
            return b ? 1.0 - static_cast<double>(mp.value()) /
                                 static_cast<double>(b)
                     : 0.0;
        });
    }

    void
    reset()
    {
        std::fill(counters_.begin(), counters_.end(), 1);
        std::fill(btbTags_.begin(), btbTags_.end(), ~uint64_t{0});
        history_ = 0;
        branches_ = mispredicts_ = 0;
        branchesPublished_ = mispredictsPublished_ = 0;
    }

  private:
    static constexpr unsigned kBtbSize = 1024;

    size_t
    index(uint64_t pc) const
    {
        return static_cast<size_t>(((pc >> 2) ^ history_) &
                                   ((uint64_t{1} << historyBits_) - 1));
    }

    static unsigned
    btbIndex(uint64_t pc)
    {
        return static_cast<unsigned>((pc >> 2) & (kBtbSize - 1));
    }

    unsigned historyBits_;
    std::vector<uint8_t> counters_;
    std::vector<uint64_t> btbTags_;
    std::vector<uint64_t> btbTargets_;
    uint64_t history_ = 0;
    uint64_t branches_ = 0;
    uint64_t mispredicts_ = 0;
    mutable uint64_t branchesPublished_ = 0;
    mutable uint64_t mispredictsPublished_ = 0;
};

} // namespace onespec

#endif // ONESPEC_TIMING_BPRED_HPP
