#include "timing_first.hpp"

#include "support/logging.hpp"

namespace onespec {

TimingStats
TimingFirstModel::run(FunctionalSimulator &timing,
                      FunctionalSimulator &checker, uint64_t max_instrs)
{
    TimingStats st;
    SimContext &tctx = timing.ctx();
    SimContext &cctx = checker.ctx();
    ONESPEC_ASSERT(&tctx != &cctx,
                   "timing-first needs two separate contexts");

    DynInst tdi, cdi;
    RunStatus ts = RunStatus::Ok;
    while (st.instrs < max_instrs && ts == RunStatus::Ok) {
        ts = timing.execute(tdi);
        RunStatus cs = checker.execute(cdi);
        ++st.instrs;
        st.cycles += 1;

        // Optionally corrupt the timing side's *result* (a "timing-model
        // bug" producing a wrong value); the checker must catch it at
        // this instruction's comparison, so the corruption never steers
        // subsequent execution or memory traffic.
        if (cfg_.injectBugEvery &&
            st.instrs % cfg_.injectBugEvery == 0) {
            unsigned off =
                static_cast<unsigned>(st.instrs %
                                      tctx.state().numWords());
            tctx.state().setRawWord(off,
                                    tctx.state().rawWord(off) ^ 0x1);
        }

        if (!(tctx.state() == cctx.state())) {
            // Mismatch: flush and reload architectural state from the
            // functional simulator (TFsim-style recovery).
            ++st.mismatches;
            st.cycles += cfg_.flushPenalty;
            for (unsigned i = 0; i < cctx.state().numWords(); ++i)
                tctx.state().setRawWord(i, cctx.state().rawWord(i));
            tctx.state().setPc(cctx.state().pc());
        }
        if (cs != RunStatus::Ok)
            ts = cs;
    }
    return st;
}

} // namespace onespec
