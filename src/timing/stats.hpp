/**
 * @file
 * Statistics shared by the timing-simulator organizations.  The struct
 * is the cheap in-run accumulator; publishStats() folds a finished run
 * into the hierarchical registry so timing results live in the same
 * dumpable tree as the functional-interface counters.
 */

#ifndef ONESPEC_TIMING_STATS_HPP
#define ONESPEC_TIMING_STATS_HPP

#include <cstdint>

#include "stats/stats.hpp"

namespace onespec {

/** Results of a timing-simulation run. */
struct TimingStats
{
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    // timing-first organization
    uint64_t mismatches = 0;

    // speculative functional-first organization
    uint64_t rollbacks = 0;
    uint64_t rolledBackInstrs = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** Fold this run's results into registry group @p g (accumulates). */
    void
    publishStats(stats::StatGroup &g) const
    {
        stats::Counter &cyc = g.counter("cycles", "simulated cycles");
        stats::Counter &ins =
            g.counter("instrs", "instructions timed");
        cyc.add(cycles);
        ins.add(instrs);
        g.counter("icache_misses", "L1I misses").add(icacheMisses);
        g.counter("dcache_misses", "L1D misses").add(dcacheMisses);
        stats::Counter &br = g.counter("branches", "branches resolved");
        stats::Counter &mp =
            g.counter("mispredicts", "branch mispredictions");
        br.add(branches);
        mp.add(mispredicts);
        g.counter("mismatches", "timing-first checker mismatches")
            .add(mismatches);
        g.counter("rollbacks", "speculative-FF rollback commands")
            .add(rollbacks);
        g.counter("rolled_back_instrs", "instructions squashed")
            .add(rolledBackInstrs);
        g.formula("ipc", "instructions per cycle", [&ins, &cyc] {
            uint64_t c = cyc.value();
            return c ? static_cast<double>(ins.value()) /
                           static_cast<double>(c)
                     : 0.0;
        });
        g.formula("bpred_accuracy", "1 - mispredicts/branches",
                  [&br, &mp] {
                      uint64_t b = br.value();
                      return b ? 1.0 - static_cast<double>(mp.value()) /
                                           static_cast<double>(b)
                               : 0.0;
                  });
    }
};

} // namespace onespec

#endif // ONESPEC_TIMING_STATS_HPP
