/**
 * @file
 * Statistics shared by the timing-simulator organizations.
 */

#ifndef ONESPEC_TIMING_STATS_HPP
#define ONESPEC_TIMING_STATS_HPP

#include <cstdint>

namespace onespec {

/** Results of a timing-simulation run. */
struct TimingStats
{
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    uint64_t icacheMisses = 0;
    uint64_t dcacheMisses = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    // timing-first organization
    uint64_t mismatches = 0;

    // speculative functional-first organization
    uint64_t rollbacks = 0;
    uint64_t rolledBackInstrs = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace onespec

#endif // ONESPEC_TIMING_STATS_HPP
