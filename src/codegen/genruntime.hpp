/**
 * @file
 * Runtime support for lisc-generated simulators.  Generated code derives
 * from GenSimBase and calls the same inline evaluation helpers
 * (adl/eval.hpp) the interpreter uses, so the two back ends cannot
 * disagree about action-language semantics; what the generator adds is
 * specialization -- semantics inlined into entrypoints, hidden fields as
 * locals, constant state-layout offsets, and decoded-block caching.
 */

#ifndef ONESPEC_CODEGEN_GENRUNTIME_HPP
#define ONESPEC_CODEGEN_GENRUNTIME_HPP

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "adl/encexpr.hpp"
#include "adl/eval.hpp"
#include "iface/dyninst.hpp"
#include "iface/functional_simulator.hpp"
#include "iface/registry.hpp"
#include "obs/pc_profile.hpp" // full type for the cppgen-emitted prof_ hook
#include "stats/trace.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

/** Base class for generated simulators. */
class GenSimBase : public FunctionalSimulator
{
  public:
    GenSimBase(SimContext &ctx, const char *bs_name)
        : FunctionalSimulator(ctx),
          bs_(ctx.spec().findBuildset(bs_name)),
          dcache_(kDecodeCacheSize), bcache_(kBlockCacheSize)
    {
        if (!bs_)
            throw SpecError("gensim", std::string("context spec has no "
                                                  "buildset '") +
                                          bs_name + "'");
        stateWords_ = ctx.state().rawData();
    }

    const BuildsetInfo &buildset() const override { return *bs_; }

    /** Ablation knobs (used by the block-cache ablation bench). */
    void setDecodeCacheEnabled(bool on) { dcEnabled_ = on; }
    void setBlockCacheEnabled(bool on) { bcEnabled_ = on; }

    void
    flushCaches()
    {
        std::fill(dcache_.begin(), dcache_.end(), DEnt{});
        for (auto &s : bcache_) {
            s.pc = ~uint64_t{0};
            s.blk.instrs.clear();
        }
    }

    uint64_t blockCacheHits() const { return bcHits_; }
    uint64_t blockCacheMisses() const { return bcMisses_; }

  protected:
    /** Decoded instructions and block images may describe stale memory. */
    void doOnStateRestored() override { flushCaches(); }

    void
    doUndo(uint64_t n) override
    {
        if (!bs_->speculation)
            FunctionalSimulator::doUndo(n); // panics with a clear message
        size_t depth = ctx_.journal().depth();
        maxJournalDepth_ = std::max<uint64_t>(maxJournalDepth_, depth);
        ONESPEC_TRACE("spec", "undo", n, depth);
        auto mark = ctx_.journal().undo(static_cast<size_t>(n),
                                        ctx_.state(), ctx_.mem());
        ctx_.os().restore(mark.osOutputLen, mark.osBrk, mark.osInputPos);
    }

    /** Block-cache behavior plus rollback-log observations. */
    void
    publishDerivedStats(stats::StatGroup &g) const override
    {
        g.counter("block_cache_hits", "decoded-block cache hits")
            .add(bcHits_ - bcHitsPublished_);
        g.counter("block_cache_misses", "decoded-block cache misses")
            .add(bcMisses_ - bcMissesPublished_);
        bcHitsPublished_ = bcHits_;
        bcMissesPublished_ = bcMisses_;
        if (bs_->speculation) {
            stats::Counter &depth = g.counter(
                "rollback_log_peak_depth",
                "max journal depth observed at undo() (high water)");
            if (maxJournalDepth_ > depth.value())
                depth.add(maxJournalDepth_ - depth.value());
            // Squash behavior itself (undo_calls / undone_instrs) is
            // published by the base-class interface counters.
        }
    }
    static constexpr unsigned kDecodeCacheBits = 14;
    static constexpr unsigned kDecodeCacheSize = 1u << kDecodeCacheBits;
    static constexpr unsigned kMaxBlockLen = 64;

    struct DEnt
    {
        uint64_t pc = ~uint64_t{0};
        uint32_t inst = 0;
        uint16_t opId = 0xffff;
    };

    /** A decoded basic block (the unit of Block-detail dispatch). */
    struct CBlock
    {
        std::vector<std::pair<uint32_t, uint16_t>> instrs;
    };

    /** Direct-mapped decoded-block cache slot. */
    struct BSlot
    {
        uint64_t pc = ~uint64_t{0};
        CBlock blk;
    };

    static constexpr unsigned kBlockCacheBits = 12;
    static constexpr unsigned kBlockCacheSize = 1u << kBlockCacheBits;

    DEnt &
    dentFor(uint64_t pc)
    {
        return dcache_[(pc >> 2) & (kDecodeCacheSize - 1)];
    }

    CBlock *
    blockFor(uint64_t pc)
    {
        BSlot &s = bcache_[(pc >> 2) & (kBlockCacheSize - 1)];
        return s.pc == pc ? &s.blk : nullptr;
    }

    void
    insertBlock(uint64_t pc, CBlock &&blk)
    {
        BSlot &s = bcache_[(pc >> 2) & (kBlockCacheSize - 1)];
        s.pc = pc;
        s.blk = std::move(blk);
    }

    /** Memory read; faults are recorded in the DynInst. */
    uint64_t
    memRead(uint64_t addr, unsigned len, DynInst &di)
    {
        FaultKind f = FaultKind::None;
        uint64_t v = ctx_.mem().read(addr, len, f);
        if (f != FaultKind::None && di.fault == FaultKind::None)
            di.fault = f;
        return v;
    }

    /** Memory write, optionally journaled for rollback. */
    template <bool Journal>
    void
    memWrite(uint64_t addr, uint64_t value, unsigned len, DynInst &di)
    {
        FaultKind f = FaultKind::None;
        if constexpr (Journal) {
            uint64_t old = ctx_.mem().read(addr, len, f);
            if (f == FaultKind::None)
                ctx_.journal().recordMem(addr, len, old);
        }
        ctx_.mem().write(addr, value, len, f);
        if (f != FaultKind::None && di.fault == FaultKind::None)
            di.fault = f;
    }

    /** Journal one flat state word before overwriting it. */
    void
    journalWord(unsigned offset)
    {
        ctx_.journal().recordReg(offset, stateWords_[offset]);
    }

    void
    journalBegin(uint64_t pc)
    {
        ctx_.journal().beginInstr(pc, ctx_.os().output().size(),
                                  ctx_.os().brk(), ctx_.os().inputPos());
    }

    void
    doSyscall(DynInst &di)
    {
        di.flags |= kFlagSyscall;
        ctx_.os().doSyscall();
    }

    /** Retire: commit next pc, count, and surface halt/exit. */
    RunStatus
    retire(DynInst &di)
    {
        ctx_.state().setPc(di.npc);
        ctx_.addRetired(1);
        if ((di.flags & kFlagHalted) || ctx_.os().exited())
            return RunStatus::Halted;
        return RunStatus::Ok;
    }

    const BuildsetInfo *bs_;
    uint64_t *stateWords_ = nullptr;
    std::vector<DEnt> dcache_;
    std::vector<BSlot> bcache_;
    bool dcEnabled_ = true;
    bool bcEnabled_ = true;
    uint64_t bcHits_ = 0;
    uint64_t bcMisses_ = 0;
    mutable uint64_t bcHitsPublished_ = 0;
    mutable uint64_t bcMissesPublished_ = 0;
    uint64_t maxJournalDepth_ = 0;
};

/** fault() builtin support. */
inline void
osgRaise(DynInst &di, uint64_t code)
{
    if (di.fault == FaultKind::None)
        di.fault = static_cast<FaultKind>(code & 0xff);
}

inline uint64_t
osgMulhU(uint64_t a, uint64_t b)
{
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(a) *
         static_cast<unsigned __int128>(b)) >> 64);
}

inline uint64_t
osgMulhS(uint64_t a, uint64_t b)
{
    __int128 p = static_cast<__int128>(static_cast<int64_t>(a)) *
                 static_cast<__int128>(static_cast<int64_t>(b));
    return static_cast<uint64_t>(static_cast<uint64_t>(p >> 64));
}

} // namespace onespec

#endif // ONESPEC_CODEGEN_GENRUNTIME_HPP
