/**
 * @file
 * The C++ back end: synthesizes a specialized functional simulator per
 * buildset.  This is the tool half of the single-specification principle:
 * instruction semantics are inlined into each interface entrypoint,
 * hidden fields become function-local variables (dead-store-eliminated by
 * the C++ compiler), and visible fields are stored into the DynInst
 * record -- the specialization strategy of Section V-C of the paper.
 */

#ifndef ONESPEC_CODEGEN_CPPGEN_HPP
#define ONESPEC_CODEGEN_CPPGEN_HPP

#include <string>

#include "adl/spec.hpp"

namespace onespec {

/**
 * Generate one C++ translation unit containing a simulator class per
 * buildset (or only @p only_buildset if non-empty), each registered with
 * the SimRegistry under (isa, buildset).
 */
std::string generateSimulators(const Spec &spec,
                               const std::string &only_buildset = "");

} // namespace onespec

#endif // ONESPEC_CODEGEN_CPPGEN_HPP
