#include "cppgen.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "adl/builtins.hpp"
#include "iface/dyninst.hpp"
#include "support/bitutil.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

namespace {

/** Step-mask bits. */
constexpr unsigned
stepBit(Step s)
{
    return 1u << static_cast<unsigned>(s);
}

constexpr unsigned kFullMask = (1u << kNumSteps) - 1;

/**
 * A specialization profile: the properties that change generated code.
 * Buildsets sharing a profile share generated group functions.
 */
struct Profile
{
    SlotMask vis = 0;
    bool spec = false;
    bool opRegs = true;
    int id = 0;
};

/** One generated group function: a set of steps for one profile. */
struct Group
{
    int profile = 0;
    unsigned mask = 0;
    bool decodePreset = false;  ///< di.inst/di.opId supplied by the caller
    std::string fnName;
};

class CppGen
{
  public:
    CppGen(const Spec &spec, std::string only)
        : spec_(spec), only_(std::move(only))
    {}

    std::string run();

  private:
    int profileFor(const BuildsetInfo &bs);
    const std::string &groupFn(int profile, unsigned mask, bool preset);
    void planBuildsets();

    void emitPrelude();
    void emitDecoder();
    void emitDecodeNode(const DecodeNode &node, int indent);
    void emitTables();
    void emitEngineOpen();
    void emitGroup(const Group &g);
    void emitInstrCase(const Group &g, const Profile &p, uint16_t id);
    void emitBlockExec(int profile);
    void emitBuildsetClass(const BuildsetInfo &bs);
    void emitEpilogue();

    // Action-language emission.
    struct ECtx
    {
        const InstrInfo *instr = nullptr;
        const FormatDecl *fmt = nullptr;
        bool spec = false;
        SlotMask vis = 0;
        int faultLabel = 0;
        bool sawMayFault = false;
        int loopLabel = 0;
    };

    std::string emitExpr(const Expr &e, ECtx &ctx);
    std::string emitCall(const Expr &e, ECtx &ctx);
    void emitStmt(const Stmt &s, ECtx &ctx, int ind);
    static bool stmtMayFault(const Stmt &s);
    static bool exprMayFault(const Expr &e);

    std::string emitIndexExpr(const Expr &e, const InstrInfo &ii);
    std::string regRead(const ResolvedOperand &op, const std::string &idx);

    static std::string vt(ValueType t);
    static std::string hex(uint64_t v);
    std::string norm(const std::string &e, ValueType from, ValueType to);

    void
    line(int ind, const std::string &s)
    {
        for (int i = 0; i < ind; ++i)
            out_ << "    ";
        out_ << s << "\n";
    }

    const Spec &spec_;
    std::string only_;
    std::ostringstream out_;

    std::vector<Profile> profiles_;
    std::vector<Group> groups_;
    std::vector<const BuildsetInfo *> selected_;
    int labelCounter_ = 0;
};

// ---------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------

std::string
CppGen::vt(ValueType t)
{
    std::ostringstream os;
    os << "VT{" << static_cast<int>(t.bits) << ", "
       << (t.isSigned ? "true" : "false") << "}";
    return os.str();
}

std::string
CppGen::hex(uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v << "ull";
    return os.str();
}

std::string
CppGen::norm(const std::string &e, ValueType from, ValueType to)
{
    if (from == to)
        return e;
    return "::onespec::normalize(" + e + ", " + vt(to) + ")";
}

// ---------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------

int
CppGen::profileFor(const BuildsetInfo &bs)
{
    for (const auto &p : profiles_) {
        if (p.vis == bs.visibleSlots && p.spec == bs.speculation &&
            p.opRegs == bs.opRegsVisible) {
            return p.id;
        }
    }
    Profile p;
    p.vis = bs.visibleSlots;
    p.spec = bs.speculation;
    p.opRegs = bs.opRegsVisible;
    p.id = static_cast<int>(profiles_.size());
    profiles_.push_back(p);
    return p.id;
}

const std::string &
CppGen::groupFn(int profile, unsigned mask, bool preset)
{
    for (const auto &g : groups_) {
        if (g.profile == profile && g.mask == mask &&
            g.decodePreset == preset) {
            return g.fnName;
        }
    }
    Group g;
    g.profile = profile;
    g.mask = mask;
    g.decodePreset = preset;
    std::ostringstream n;
    n << "g_p" << profile << "_m" << std::hex << mask
      << (preset ? "_pre" : "");
    g.fnName = n.str();
    groups_.push_back(std::move(g));
    return groups_.back().fnName;
}

void
CppGen::planBuildsets()
{
    for (const auto &bs : spec_.buildsets) {
        if (!only_.empty() && bs.name != only_)
            continue;
        selected_.push_back(&bs);
        int p = profileFor(bs);
        switch (bs.semantic) {
          case SemanticLevel::One:
            groupFn(p, kFullMask, false);
            break;
          case SemanticLevel::Block:
            groupFn(p, kFullMask, false);
            // Cached-block replay path: decode preset by the cache.
            groupFn(p, kFullMask & ~stepBit(Step::Fetch), true);
            break;
          case SemanticLevel::Step:
            for (unsigned s = 0; s < kNumSteps; ++s)
                groupFn(p, 1u << s, false);
            break;
          case SemanticLevel::Custom:
            for (const auto &ep : bs.entrypoints) {
                unsigned m = 0;
                for (Step st : ep.steps)
                    m |= stepBit(st);
                groupFn(p, m, false);
            }
            break;
        }
    }
    if (selected_.empty())
        throw SpecError("codegen",
                        "no buildset selected for code generation" +
                            (only_.empty() ? std::string()
                                           : " (wanted '" + only_ + "')"));
}

// ---------------------------------------------------------------------
// Expression emission
// ---------------------------------------------------------------------

bool
CppGen::exprMayFault(const Expr &e)
{
    if (e.kind == Expr::Kind::Call && e.builtinIndex >= 0) {
        const BuiltinInfo &bi =
            builtinInfo(static_cast<Builtin>(e.builtinIndex));
        if (bi.isMemLoad || bi.isMemStore ||
            static_cast<Builtin>(e.builtinIndex) == Builtin::Fault) {
            return true;
        }
    }
    if (e.a && exprMayFault(*e.a))
        return true;
    if (e.b && exprMayFault(*e.b))
        return true;
    if (e.c && exprMayFault(*e.c))
        return true;
    for (const auto &a : e.args)
        if (exprMayFault(*a))
            return true;
    return false;
}

bool
CppGen::stmtMayFault(const Stmt &s)
{
    switch (s.kind) {
      case Stmt::Kind::Block:
        for (const auto &st : s.body)
            if (stmtMayFault(*st))
                return true;
        return false;
      case Stmt::Kind::LocalDecl:
        return s.init && exprMayFault(*s.init);
      case Stmt::Kind::Assign:
        return exprMayFault(*s.value);
      case Stmt::Kind::If:
        return exprMayFault(*s.cond) || stmtMayFault(*s.thenStmt) ||
               (s.elseStmt && stmtMayFault(*s.elseStmt));
      case Stmt::Kind::While:
        return exprMayFault(*s.cond) || stmtMayFault(*s.thenStmt);
      case Stmt::Kind::ExprStmt:
        return exprMayFault(*s.value);
      case Stmt::Kind::Inline:
        break;
    }
    return false;
}

std::string
CppGen::emitCall(const Expr &e, ECtx &ctx)
{
    Builtin b = static_cast<Builtin>(e.builtinIndex);
    std::vector<std::string> a;
    for (const auto &arg : e.args)
        a.push_back(emitExpr(*arg, ctx));

    switch (b) {
      case Builtin::Sext8: return "::onespec::sext(" + a[0] + ", 8)";
      case Builtin::Sext16: return "::onespec::sext(" + a[0] + ", 16)";
      case Builtin::Sext32: return "::onespec::sext(" + a[0] + ", 32)";
      case Builtin::Zext8: return "::onespec::zext(" + a[0] + ", 8)";
      case Builtin::Zext16: return "::onespec::zext(" + a[0] + ", 16)";
      case Builtin::Zext32: return "::onespec::zext(" + a[0] + ", 32)";
      case Builtin::Rotl32:
        return "(uint64_t)::onespec::rotl32((uint32_t)(" + a[0] +
               "), (unsigned)(" + a[1] + "))";
      case Builtin::Rotr32:
        return "(uint64_t)::onespec::rotr32((uint32_t)(" + a[0] +
               "), (unsigned)(" + a[1] + "))";
      case Builtin::Rotl64:
        return "::onespec::rotl64(" + a[0] + ", (unsigned)(" + a[1] +
               "))";
      case Builtin::Rotr64:
        return "::onespec::rotr64(" + a[0] + ", (unsigned)(" + a[1] +
               "))";
      case Builtin::Clz32:
        return "(uint64_t)::onespec::clz(" + a[0] + ", 32)";
      case Builtin::Clz64:
        return "(uint64_t)::onespec::clz(" + a[0] + ", 64)";
      case Builtin::Ctz32:
        return "(uint64_t)::onespec::ctz(" + a[0] + ", 32)";
      case Builtin::Ctz64:
        return "(uint64_t)::onespec::ctz(" + a[0] + ", 64)";
      case Builtin::Popcount:
        return "(uint64_t)::onespec::popcount(" + a[0] + ")";
      case Builtin::Addc32:
        return "::onespec::carryOut(" + a[0] + ", " + a[1] + ", (" +
               a[2] + ") & 1, 32)";
      case Builtin::Addv32:
        return "::onespec::overflowAdd(" + a[0] + ", " + a[1] + ", (" +
               a[2] + ") & 1, 32)";
      case Builtin::Addc64:
        return "::onespec::carryOut(" + a[0] + ", " + a[1] + ", (" +
               a[2] + ") & 1, 64)";
      case Builtin::Addv64:
        return "::onespec::overflowAdd(" + a[0] + ", " + a[1] + ", (" +
               a[2] + ") & 1, 64)";
      case Builtin::MulhU64:
        return "::onespec::osgMulhU(" + a[0] + ", " + a[1] + ")";
      case Builtin::MulhS64:
        return "::onespec::osgMulhS(" + a[0] + ", " + a[1] + ")";

      case Builtin::LoadU8:
        ctx.sawMayFault = true;
        return "this->memRead(" + a[0] + ", 1, di)";
      case Builtin::LoadU16:
        ctx.sawMayFault = true;
        return "this->memRead(" + a[0] + ", 2, di)";
      case Builtin::LoadU32:
        ctx.sawMayFault = true;
        return "this->memRead(" + a[0] + ", 4, di)";
      case Builtin::LoadU64:
        ctx.sawMayFault = true;
        return "this->memRead(" + a[0] + ", 8, di)";

      case Builtin::StoreU8:
      case Builtin::StoreU16:
      case Builtin::StoreU32:
      case Builtin::StoreU64: {
        ctx.sawMayFault = true;
        unsigned len = 1u << (static_cast<int>(b) -
                              static_cast<int>(Builtin::StoreU8));
        return "(this->memWrite<" +
               std::string(ctx.spec ? "true" : "false") + ">(" + a[0] +
               ", " + a[1] + ", " + std::to_string(len) +
               ", di), 0ull)";
      }

      case Builtin::Branch:
        return "(di.npc = (" + a[0] +
               "), di.flags |= ::onespec::kFlagBranchTaken, 0ull)";
      case Builtin::Fault:
        ctx.sawMayFault = true;
        return "(::onespec::osgRaise(di, " + a[0] + "), 0ull)";
      case Builtin::SyscallEmu:
        return "(this->doSyscall(di), 0ull)";
      case Builtin::Halt:
        return "(di.flags |= ::onespec::kFlagHalted, 0ull)";

      default:
        ONESPEC_PANIC("unknown builtin in codegen");
    }
}

std::string
CppGen::emitExpr(const Expr &e, ECtx &ctx)
{
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return hex(normalize(e.intValue, e.type));

      case Expr::Kind::Ident:
        switch (e.symKind) {
          case SymKind::Local:
            return "l" + std::to_string(e.symIndex);
          case SymKind::Slot:
            return "s" + std::to_string(e.symIndex);
          case SymKind::EncField: {
            const FormatField &ff = ctx.fmt->fields[e.symIndex];
            return "::onespec::bits(inst, " + std::to_string(ff.hi) +
                   ", " + std::to_string(ff.lo) + ")";
          }
          case SymKind::ImplicitPc:
            return "di.pc";
          case SymKind::ImplicitNpc:
            return "di.npc";
          case SymKind::ImplicitInst:
            return "(uint64_t)inst";
          case SymKind::Unresolved:
            break;
        }
        ONESPEC_PANIC("unresolved identifier in codegen");

      case Expr::Kind::Unary: {
        std::string a = emitExpr(*e.a, ctx);
        switch (e.unOp) {
          case UnOp::Neg:
            return norm("(0 - " + a + ")", ValueType{64, false}, e.type);
          case UnOp::BitNot:
            return norm("(~(" + a + "))", ValueType{64, false}, e.type);
          case UnOp::LogNot:
            return "((" + a + ") == 0 ? 1ull : 0ull)";
        }
        ONESPEC_PANIC("bad unop");
      }

      case Expr::Kind::Binary: {
        if (e.binOp == BinOp::LogAnd) {
            return "(((" + emitExpr(*e.a, ctx) + ") != 0) && ((" +
                   emitExpr(*e.b, ctx) + ") != 0) ? 1ull : 0ull)";
        }
        if (e.binOp == BinOp::LogOr) {
            return "(((" + emitExpr(*e.a, ctx) + ") != 0) || ((" +
                   emitExpr(*e.b, ctx) + ") != 0) ? 1ull : 0ull)";
        }
        std::string a =
            norm(emitExpr(*e.a, ctx), e.a->type, e.promotedType);
        std::string b = emitExpr(*e.b, ctx);
        if (e.binOp != BinOp::Shl && e.binOp != BinOp::Shr)
            b = norm(b, e.b->type, e.promotedType);
        static const char *names[] = {
            "Add", "Sub", "Mul", "Div", "Rem", "And", "Or",  "Xor",
            "Shl", "Shr", "Eq",  "Ne",  "Lt",  "Le",  "Gt",  "Ge",
        };
        return "::onespec::evalBinOpT<::onespec::BinOp::" +
               std::string(names[static_cast<int>(e.binOp)]) + ">(" + a +
               ", " + b + ", " + vt(e.promotedType) + ", " + vt(e.type) +
               ")";
      }

      case Expr::Kind::Ternary: {
        std::string a = emitExpr(*e.a, ctx);
        std::string b = norm(emitExpr(*e.b, ctx), e.b->type, e.type);
        std::string c = norm(emitExpr(*e.c, ctx), e.c->type, e.type);
        return "((" + a + ") != 0 ? (" + b + ") : (" + c + "))";
      }

      case Expr::Kind::Cast:
        return norm(emitExpr(*e.a, ctx), e.a->type, e.castType);

      case Expr::Kind::Call:
        return emitCall(e, ctx);
    }
    ONESPEC_PANIC("unreachable expression kind");
}

void
CppGen::emitStmt(const Stmt &s, ECtx &ctx, int ind)
{
    switch (s.kind) {
      case Stmt::Kind::Block: {
        line(ind, "{");
        for (const auto &st : s.body) {
            emitStmt(*st, ctx, ind + 1);
            if (stmtMayFault(*st)) {
                line(ind + 1,
                     "if (di.fault != ::onespec::FaultKind::None) goto "
                     "act_end_" + std::to_string(ctx.faultLabel) + ";");
            }
        }
        line(ind, "}");
        return;
      }

      case Stmt::Kind::LocalDecl: {
        std::string init =
            s.init ? norm(emitExpr(*s.init, ctx), s.init->type, s.declType)
                   : "0";
        line(ind, "[[maybe_unused]] uint64_t l" +
                      std::to_string(s.localIndex) + " = " + init + ";");
        return;
      }

      case Stmt::Kind::Assign: {
        const Expr &t = *s.target;
        std::string v = emitExpr(*s.value, ctx);
        if (t.symKind == SymKind::Local) {
            line(ind, "l" + std::to_string(t.symIndex) + " = " +
                          norm(v, s.value->type, t.type) + ";");
        } else {
            ValueType st_ = spec_.slots[t.symIndex].type;
            line(ind, "s" + std::to_string(t.symIndex) + " = " +
                          norm(v, s.value->type, st_) + ";");
            line(ind, "wr |= " + hex(uint64_t{1} << t.symIndex) + ";");
            // Visible slots write through to the record eagerly, as the
            // interface contract requires (a consumer between calls must
            // see them); hidden slots stay in the local.
            if (ctx.vis & (SlotMask{1} << t.symIndex)) {
                line(ind, "di.vals[" + std::to_string(t.symIndex) +
                              "] = s" + std::to_string(t.symIndex) + ";");
            }
        }
        return;
      }

      case Stmt::Kind::If: {
        line(ind, "if ((" + emitExpr(*s.cond, ctx) + ") != 0)");
        if (s.thenStmt->kind == Stmt::Kind::Block) {
            emitStmt(*s.thenStmt, ctx, ind);
        } else {
            line(ind, "{");
            emitStmt(*s.thenStmt, ctx, ind + 1);
            line(ind, "}");
        }
        if (s.elseStmt) {
            line(ind, "else");
            if (s.elseStmt->kind == Stmt::Kind::Block) {
                emitStmt(*s.elseStmt, ctx, ind);
            } else {
                line(ind, "{");
                emitStmt(*s.elseStmt, ctx, ind + 1);
                line(ind, "}");
            }
        }
        return;
      }

      case Stmt::Kind::While: {
        // Guarded like the interpreter (same kActionLoopGuard constant),
        // so a divergent action loop faults the job instead of hanging
        // the process, and both back ends fault at the same iteration.
        std::string lg = "lg_" + std::to_string(ctx.loopLabel++);
        line(ind, "{");
        line(ind + 1, "uint64_t " + lg + " = 0;");
        line(ind + 1, "while ((" + emitExpr(*s.cond, ctx) + ") != 0)");
        line(ind + 1, "{");
        emitStmt(*s.thenStmt, ctx, ind + 2);
        if (stmtMayFault(*s.thenStmt)) {
            line(ind + 2,
                 "if (di.fault != ::onespec::FaultKind::None) goto "
                 "act_end_" + std::to_string(ctx.faultLabel) + ";");
        }
        line(ind + 2,
             "if (++" + lg + " > ::onespec::kActionLoopGuard) "
             "::onespec::throwRunawayLoop(\"" +
             (ctx.instr ? ctx.instr->name : std::string("?")) + "\");");
        line(ind + 1, "}");
        line(ind, "}");
        return;
      }

      case Stmt::Kind::ExprStmt:
        line(ind, "(void)(" + emitExpr(*s.value, ctx) + ");");
        return;

      case Stmt::Kind::Inline:
        break;
    }
    ONESPEC_PANIC("unreachable statement kind in codegen");
}

std::string
CppGen::emitIndexExpr(const Expr &e, const InstrInfo &ii)
{
    ECtx ctx;
    ctx.instr = &ii;
    ctx.fmt = &spec_.formats[ii.formatIndex];
    return emitExpr(e, ctx);
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

void
CppGen::emitDecodeNode(const DecodeNode &node, int indent)
{
    if (node.testMask == 0) {
        for (uint16_t id : node.candidates) {
            const InstrInfo &ii = spec_.instrs[id];
            line(indent, "if ((w & " + hex(ii.fixedMask) + ") == " +
                             hex(ii.fixedBits) + ") return " +
                             std::to_string(id) + "; // " + ii.name);
        }
        line(indent, "return -1;");
        return;
    }

    // Gather the masked bits into a compact key.
    std::ostringstream g;
    uint32_t m = node.testMask;
    unsigned pos = 0;
    bool first = true;
    while (m) {
        unsigned b = static_cast<unsigned>(std::countr_zero(m));
        if (!first)
            g << " | ";
        g << "(((w >> " << b << ") & 1u) << " << pos << ")";
        first = false;
        ++pos;
        m &= m - 1;
    }
    line(indent, "switch (" + g.str() + ") {");
    std::vector<std::pair<uint32_t, const DecodeNode *>> kids;
    for (const auto &[k, child] : node.children)
        kids.emplace_back(k, child.get());
    std::sort(kids.begin(), kids.end(),
              [](auto &a, auto &b) { return a.first < b.first; });
    for (const auto &[k, child] : kids) {
        line(indent, "  case " + std::to_string(k) + ": {");
        emitDecodeNode(*child, indent + 1);
        line(indent, "  }");
    }
    line(indent, "  default: return -1;");
    line(indent, "}");
}

void
CppGen::emitDecoder()
{
    line(0, "int");
    line(0, "Engine::decodeWord(uint32_t w)");
    line(0, "{");
    emitDecodeNode(*spec_.decodeRoot, 1);
    line(0, "}");
    line(0, "");
}

void
CppGen::emitTables()
{
    std::ostringstream t;
    t << "constexpr bool kIsCtl[" << spec_.instrs.size() << "] = {";
    for (const auto &ii : spec_.instrs)
        t << (ii.isControlFlow ? "true, " : "false, ");
    t << "};";
    line(0, t.str());
    line(0, "");
}

// ---------------------------------------------------------------------
// Group functions
// ---------------------------------------------------------------------

void
CppGen::emitInstrCase(const Group &g, const Profile &p, uint16_t id)
{
    const InstrInfo &ii = spec_.instrs[id];
    ECtx ctx;
    ctx.instr = &ii;
    ctx.fmt = &spec_.formats[ii.formatIndex];
    ctx.spec = p.spec;
    ctx.vis = p.vis;
    ctx.faultLabel = ++labelCounter_;

    bool has_decode = g.mask & stepBit(Step::Decode);
    bool has_read = g.mask & stepBit(Step::ReadOperands);
    bool has_wb = g.mask & stepBit(Step::Writeback);

    // Which slots does this group touch for this instruction?
    SlotMask touched = 0;
    for (unsigned s = 0; s < kNumSteps; ++s) {
        if (g.mask & (1u << s))
            touched |= ii.slotReads[s] | ii.slotWrites[s];
    }

    // Does this instruction contribute anything to this group at all?
    bool has_actions = false;
    for (unsigned s = 2; s < kNumSteps; ++s) {
        if ((g.mask & (1u << s)) && ii.actions[s].body)
            has_actions = true;
    }
    bool op_regs_here = has_decode && p.opRegs && !ii.operands.empty();
    if (!has_actions && !touched && !op_regs_here &&
        !(has_read || has_wb)) {
        return; // nothing to emit; default case is a no-op
    }

    // Will any emitted statement route to the fault label?
    bool may_fault = false;
    for (unsigned s = 2; s < kNumSteps; ++s) {
        if ((g.mask & (1u << s)) && ii.actions[s].body &&
            stmtMayFault(*ii.actions[s].body)) {
            may_fault = true;
        }
    }

    line(2, "case " + std::to_string(id) + ": { // " + ii.name);

    // Operand register identifiers (decode step).
    if (op_regs_here) {
        line(3, "di.nOps = " + std::to_string(ii.operands.size()) + ";");
        for (size_t i = 0; i < ii.operands.size(); ++i) {
            const ResolvedOperand &op = ii.operands[i];
            std::string reg =
                op.scalar ? "0" : emitIndexExpr(*op.indexExpr, ii);
            unsigned file_id =
                op.scalar ? (0x40u | static_cast<unsigned>(op.scalarIdx))
                          : static_cast<unsigned>(op.fileIndex);
            line(3, "di.opRegs[" + std::to_string(i) + "] = (uint8_t)(" +
                        reg + ");");
            line(3, "di.opMeta[" + std::to_string(i) + "] = " +
                        std::to_string(makeOpMeta(op.isDst, file_id)) +
                        ";");
        }
    }

    // Slot locals: visible slots resume from the record, hidden start 0.
    for (unsigned i = 0; i < spec_.slots.size(); ++i) {
        if (!(touched & (SlotMask{1} << i)))
            continue;
        if (p.vis & (SlotMask{1} << i)) {
            line(3, "[[maybe_unused]] uint64_t s" + std::to_string(i) +
                        " = di.vals[" + std::to_string(i) + "];");
        } else {
            line(3, "[[maybe_unused]] uint64_t s" + std::to_string(i) +
                        " = 0;");
        }
    }

    // Steps in canonical order.
    for (unsigned s = 2; s < kNumSteps; ++s) {
        if (!(g.mask & (1u << s)))
            continue;
        Step st = static_cast<Step>(s);

        if (st == Step::ReadOperands) {
            for (const auto &op : ii.operands) {
                if (op.isDst)
                    continue;
                std::string bit = hex(uint64_t{1} << op.slotIndex);
                if (op.scalar) {
                    unsigned off =
                        spec_.state.scalars[op.scalarIdx].offset;
                    line(3, "s" + std::to_string(op.slotIndex) +
                                " = stateWords_[" + std::to_string(off) +
                                "];");
                } else {
                    const auto &f = spec_.state.files[op.fileIndex];
                    std::string idx = emitIndexExpr(*op.indexExpr, ii);
                    std::string read;
                    if (f.zeroReg >= 0) {
                        read = "((" + idx + ") == " +
                               std::to_string(f.zeroReg) +
                               " ? 0ull : stateWords_[" +
                               std::to_string(f.base) + " + (" + idx +
                               ")])";
                    } else {
                        read = "stateWords_[" + std::to_string(f.base) +
                               " + (" + idx + ")]";
                    }
                    line(3, "s" + std::to_string(op.slotIndex) + " = " +
                                read + ";");
                }
                line(3, "wr |= " + bit + ";");
                if (p.vis & (SlotMask{1} << op.slotIndex)) {
                    line(3, "di.vals[" + std::to_string(op.slotIndex) +
                                "] = s" + std::to_string(op.slotIndex) +
                                ";");
                }
            }
        }

        if (ii.actions[s].body) {
            line(3, "// action " + std::string(stepName(st)));
            emitStmt(*ii.actions[s].body, ctx, 3);
        }

        if (st == Step::Writeback) {
            for (const auto &op : ii.operands) {
                if (!op.isDst)
                    continue;
                std::string bit = hex(uint64_t{1} << op.slotIndex);
                std::string sv = "s" + std::to_string(op.slotIndex);
                line(3, "if (wr & " + bit + ") {");
                if (op.scalar) {
                    const auto &sc = spec_.state.scalars[op.scalarIdx];
                    std::string off = std::to_string(sc.offset);
                    if (p.spec)
                        line(4, "this->journalWord(" + off + ");");
                    line(4, "stateWords_[" + off + "] = " +
                                norm(sv, sc.type, sc.type) /*identity*/ +
                                ";");
                } else {
                    const auto &f = spec_.state.files[op.fileIndex];
                    std::string idx = emitIndexExpr(*op.indexExpr, ii);
                    line(4, "const uint64_t rix = " + idx + ";");
                    std::string guard =
                        f.zeroReg >= 0
                            ? "if (rix != " + std::to_string(f.zeroReg) +
                                  ") {"
                            : "{";
                    line(4, guard);
                    std::string off =
                        std::to_string(f.base) + " + (unsigned)rix";
                    if (p.spec)
                        line(5, "this->journalWord(" + off + ");");
                    line(5, "stateWords_[" + off +
                                "] = ::onespec::normalize(" + sv + ", " +
                                vt(f.type) + ");");
                    line(4, "}");
                }
                line(3, "}");
            }
        }
    }

    if (may_fault)
        line(3, "act_end_" + std::to_string(ctx.faultLabel) + ":;");

    line(3, "break;");
    line(2, "}");
}

void
CppGen::emitGroup(const Group &g)
{
    const Profile &p = profiles_[g.profile];

    line(0, "RunStatus");
    line(0, "Engine::" + g.fnName + "(DynInst &di)");
    line(0, "{");

    bool has_fetch = g.mask & stepBit(Step::Fetch);
    bool has_decode = g.mask & stepBit(Step::Decode);
    bool has_later = (g.mask & ~0x3u) != 0;
    bool has_exc = g.mask & stepBit(Step::Exception);

    if (has_fetch) {
        line(1, "{");
        line(2, "const uint64_t fpc = ctx_.state().pc();");
        line(2, "di.beginInstr(fpc, fpc + " +
                    std::to_string(spec_.props.instrBytes) + ");");
        if (p.spec)
            line(2, "this->journalBegin(fpc);");
        line(2, "DEnt &de = dentFor(fpc);");
        line(2, "if (dcEnabled_ && de.pc == fpc) {");
        line(3, "di.inst = de.inst;");
        if (has_decode)
            line(3, "di.opId = de.opId;");
        line(2, "} else {");
        line(3, "di.inst = (uint32_t)this->memRead(fpc, " +
                    std::to_string(spec_.props.instrBytes) + ", di);");
        line(3, "if (di.fault != ::onespec::FaultKind::None) return "
                "RunStatus::Fault;");
        if (has_decode) {
            line(3, "const int dec = decodeWord(di.inst);");
            line(3, "di.opId = dec < 0 ? 0xffff : (uint16_t)dec;");
            line(3, "if (dcEnabled_) { de.pc = fpc; de.inst = di.inst; "
                    "de.opId = di.opId; }");
        }
        line(2, "}");
        line(1, "}");
    }

    if (has_decode && !has_fetch && !g.decodePreset) {
        // Standalone decode step (Step detail): decode di.inst.
        line(1, "{");
        line(2, "DEnt &de = dentFor(di.pc);");
        line(2, "if (dcEnabled_ && de.pc == di.pc && de.inst == di.inst) "
                "{");
        line(3, "di.opId = de.opId;");
        line(2, "} else {");
        line(3, "const int dec = decodeWord(di.inst);");
        line(3, "di.opId = dec < 0 ? 0xffff : (uint16_t)dec;");
        line(3, "if (dcEnabled_) { de.pc = di.pc; de.inst = di.inst; "
                "de.opId = di.opId; }");
        line(2, "}");
        line(1, "}");
    }

    if (has_decode || g.decodePreset || has_later) {
        line(1, "if (di.opId == 0xffff) { di.fault = "
                "::onespec::FaultKind::IllegalInstr; return "
                "RunStatus::Fault; }");
    }

    if (has_decode || has_later) {
        line(1, "const uint32_t inst = di.inst;");
        line(1, "(void)inst;");
        line(1, "uint64_t wr = di.written;");
        line(1, "switch (di.opId) {");
        for (uint16_t id = 0; id < spec_.instrs.size(); ++id)
            emitInstrCase(g, p, id);
        line(2, "default: break;");
        line(1, "}");
        line(1, "di.written = wr;");
    }

    line(1, "if (di.fault != ::onespec::FaultKind::None) return "
            "RunStatus::Fault;");
    if (has_exc) {
        // Hot-PC profiler sample hook at the generated retire point,
        // mirroring the interpreter's hook in runSteps.  Disarmed cost:
        // one predictable null-pointer branch per retired instruction.
        line(1, "if (this->prof_) [[unlikely]] "
                "this->prof_->tick(di.pc, di.opId);");
        line(1, "return this->retire(di);");
    } else {
        line(1, "return RunStatus::Ok;");
    }
    line(0, "}");
    line(0, "");
}

void
CppGen::emitBlockExec(int profile)
{
    const Profile &p = profiles_[profile];
    std::string full = groupFn(profile, kFullMask, false);
    std::string rest =
        groupFn(profile, kFullMask & ~stepBit(Step::Fetch), true);

    line(0, "unsigned");
    line(0, "Engine::blockExec_p" + std::to_string(profile) +
                "(DynInst *out, unsigned cap, RunStatus &st)");
    line(0, "{");
    line(1, "unsigned n = 0;");
    line(1, "st = RunStatus::Ok;");
    line(1, "uint64_t pc = ctx_.state().pc();");
    line(1, "CBlock *cb = bcEnabled_ ? blockFor(pc) : nullptr;");
    line(1, "if (cb) {");
    line(2, "++bcHits_;");
    line(2, "for (const auto &ip : cb->instrs) {");
    line(3, "if (n >= cap) return n;");
    line(3, "DynInst &di = out[n];");
    line(3, "di.beginInstr(pc, pc + " +
                std::to_string(spec_.props.instrBytes) + ");");
    if (p.spec)
        line(3, "this->journalBegin(pc);");
    line(3, "di.inst = ip.first;");
    line(3, "di.opId = ip.second;");
    line(3, "RunStatus s = " + rest + "(di);");
    line(3, "++n;");
    line(3, "pc = ctx_.state().pc();");
    line(3, "if (s != RunStatus::Ok) { st = s; return n; }");
    line(2, "}");
    line(2, "return n;");
    line(1, "}");
    line(1, "++bcMisses_;");
    line(1, "CBlock blk;");
    line(1, "while (n < cap && blk.instrs.size() < kMaxBlockLen) {");
    line(2, "DynInst &di = out[n];");
    line(2, "RunStatus s = " + full + "(di);");
    line(2, "++n;");
    line(2, "if (s != RunStatus::Ok) { st = s; return n; }");
    line(2, "blk.instrs.emplace_back(di.inst, di.opId);");
    line(2, "if (kIsCtl[di.opId]) {");
    line(3, "if (bcEnabled_) insertBlock(pc, std::move(blk));");
    line(3, "return n;");
    line(2, "}");
    line(1, "}");
    line(1, "return n;");
    line(0, "}");
    line(0, "");
}

// ---------------------------------------------------------------------
// Top-level structure
// ---------------------------------------------------------------------

void
CppGen::emitPrelude()
{
    line(0, "// Generated by lisc from the " + spec_.props.name +
                " description. DO NOT EDIT.");
    line(0, "//");
    line(0, "// One specialized simulator class per buildset; group");
    line(0, "// functions are shared between buildsets with identical");
    line(0, "// (visibility, speculation) profiles.");
    line(0, "");
    line(0, "#include \"codegen/genruntime.hpp\"");
    line(0, "");
    line(0, "namespace onespec_gen_" + spec_.props.name + " {");
    line(0, "");
    line(0, "using namespace ::onespec;");
    line(0, "using VT = ::onespec::ValueType;");
    line(0, "");
    line(0, "constexpr uint64_t kFingerprint = " + hex(spec_.fingerprint) +
                ";");
    line(0, "");
}

void
CppGen::emitEngineOpen()
{
    line(0, "class Engine : public GenSimBase");
    line(0, "{");
    line(0, "  public:");
    line(0, "    using GenSimBase::GenSimBase;");
    line(0, "");
    line(0, "  protected:");
    line(0, "    static int decodeWord(uint32_t w);");
    for (const auto &g : groups_)
        line(0, "    RunStatus " + g.fnName + "(DynInst &di);");
    for (const auto &p : profiles_) {
        bool block_used = false;
        for (const auto &g : groups_)
            if (g.profile == p.id && g.decodePreset)
                block_used = true;
        if (block_used) {
            line(0, "    unsigned blockExec_p" + std::to_string(p.id) +
                        "(DynInst *out, unsigned cap, RunStatus &st);");
        }
    }
    line(0, "};");
    line(0, "");
}

void
CppGen::emitBuildsetClass(const BuildsetInfo &bs)
{
    int p = profileFor(bs);
    std::string cls = "Sim_" + bs.name;
    line(0, "class " + cls + " final : public Engine");
    line(0, "{");
    line(0, "  public:");
    line(0, "    explicit " + cls + "(SimContext &ctx) : Engine(ctx, \"" +
                bs.name + "\") {}");
    line(0, "");

    switch (bs.semantic) {
      case SemanticLevel::One: {
        std::string fn = groupFn(p, kFullMask, false);
        line(0, "    RunStatus");
        line(0, "    doExecute(DynInst &di) override");
        line(0, "    {");
        line(0, "        return " + fn + "(di);");
        line(0, "    }");
        break;
      }

      case SemanticLevel::Block: {
        line(0, "    unsigned");
        line(0, "    doExecuteBlock(DynInst *out, unsigned cap, "
                "RunStatus &st) override");
        line(0, "    {");
        line(0, "        return blockExec_p" + std::to_string(p) +
                    "(out, cap, st);");
        line(0, "    }");
        line(0, "");
        line(0, "    uint64_t");
        line(0, "    doFastForward(uint64_t max_instrs, RunStatus &st) "
                "override");
        line(0, "    {");
        line(0, "        DynInst scratch[kMaxBlockLen];");
        line(0, "        uint64_t done = 0;");
        line(0, "        st = RunStatus::Ok;");
        line(0, "        while (done < max_instrs) {");
        line(0, "            unsigned cap = (unsigned)std::min<uint64_t>("
                "kMaxBlockLen, max_instrs - done);");
        line(0, "            unsigned n = blockExec_p" +
                    std::to_string(p) + "(scratch, cap, st);");
        line(0, "            done += n;");
        line(0, "            if (st != RunStatus::Ok) break;");
        line(0, "        }");
        line(0, "        return done;");
        line(0, "    }");
        break;
      }

      case SemanticLevel::Step: {
        line(0, "    RunStatus");
        line(0, "    doStep(Step s, DynInst &di) override");
        line(0, "    {");
        line(0, "        switch (s) {");
        for (unsigned s = 0; s < kNumSteps; ++s) {
            std::string fn = groupFn(p, 1u << s, false);
            line(0, "          case Step::" +
                        std::string(
                            s == 0   ? "Fetch"
                            : s == 1 ? "Decode"
                            : s == 2 ? "ReadOperands"
                            : s == 3 ? "Execute"
                            : s == 4 ? "Memory"
                            : s == 5 ? "Writeback"
                                     : "Exception") +
                        ": return " + fn + "(di);");
        }
        line(0, "        }");
        line(0, "        ONESPEC_PANIC(\"bad step\");");
        line(0, "    }");
        break;
      }

      case SemanticLevel::Custom: {
        line(0, "    RunStatus");
        line(0, "    doCall(unsigned index, DynInst &di) override");
        line(0, "    {");
        line(0, "        switch (index) {");
        for (size_t e = 0; e < bs.entrypoints.size(); ++e) {
            unsigned m = 0;
            for (Step st : bs.entrypoints[e].steps)
                m |= stepBit(st);
            std::string fn = groupFn(p, m, false);
            line(0, "          case " + std::to_string(e) + ": return " +
                        fn + "(di); // " + bs.entrypoints[e].name);
        }
        line(0, "        }");
        line(0, "        ONESPEC_PANIC(\"bad entrypoint index\");");
        line(0, "    }");
        break;
      }
    }

    line(0, "};");
    line(0, "");
    line(0, "std::unique_ptr<FunctionalSimulator>");
    line(0, "make_" + bs.name + "(SimContext &ctx)");
    line(0, "{");
    line(0, "    return std::make_unique<" + cls + ">(ctx);");
    line(0, "}");
    line(0, "");
    line(0, "static SimRegistrar reg_" + bs.name + "(\"" +
                spec_.props.name + "\", \"" + bs.name +
                "\", kFingerprint, &make_" + bs.name + ");");
    line(0, "");
}

void
CppGen::emitEpilogue()
{
    line(0, "");
    line(0, "} // namespace onespec_gen_" + spec_.props.name);
}

std::string
CppGen::run()
{
    planBuildsets();
    emitPrelude();
    emitEngineOpen();
    emitTables();
    emitDecoder();
    for (const auto &g : groups_)
        emitGroup(g);
    for (const auto &p : profiles_) {
        bool block_used = false;
        for (const auto &g : groups_)
            if (g.profile == p.id && g.decodePreset)
                block_used = true;
        if (block_used)
            emitBlockExec(p.id);
    }
    for (const auto *bs : selected_)
        emitBuildsetClass(*bs);
    emitEpilogue();
    return out_.str();
}

} // namespace

std::string
generateSimulators(const Spec &spec, const std::string &only_buildset)
{
    return CppGen(spec, only_buildset).run();
}

} // namespace onespec
