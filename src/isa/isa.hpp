/**
 * @file
 * Access to the shipped ISA descriptions.  Descriptions live in
 * src/isa/descriptions/ and are loaded at run time (they are the single
 * specification both back ends derive from).  The directory is baked in
 * at configure time and can be overridden with $ONESPEC_ISA_DIR.
 */

#ifndef ONESPEC_ISA_ISA_HPP
#define ONESPEC_ISA_ISA_HPP

#include <memory>
#include <string>
#include <vector>

#include "adl/spec.hpp"

namespace onespec {

/** Directory containing the .lis descriptions. */
std::string isaDescriptionDir();

/** The ISAs shipped with OneSpec. */
const std::vector<std::string> &shippedIsas();

/** Description files (ISA + OS support + shared buildsets) for @p isa. */
std::vector<std::string> isaDescriptionFiles(const std::string &isa);

/** Load and analyze the shipped description of @p isa; fatal on error. */
std::unique_ptr<Spec> loadIsa(const std::string &isa);

} // namespace onespec

#endif // ONESPEC_ISA_ISA_HPP
