#include "isa.hpp"

#include <cstdlib>

#include "adl/load.hpp"
#include "support/logging.hpp"

#ifndef ONESPEC_ISA_DIR
#define ONESPEC_ISA_DIR "src/isa/descriptions"
#endif

namespace onespec {

std::string
isaDescriptionDir()
{
    if (const char *env = std::getenv("ONESPEC_ISA_DIR"))
        return env;
    return ONESPEC_ISA_DIR;
}

const std::vector<std::string> &
shippedIsas()
{
    static const std::vector<std::string> isas = {"alpha64", "arm32",
                                                  "ppc32"};
    return isas;
}

std::vector<std::string>
isaDescriptionFiles(const std::string &isa)
{
    std::string dir = isaDescriptionDir();
    return {
        dir + "/" + isa + ".lis",
        dir + "/" + isa + "_os.lis",
        dir + "/buildsets.lis",
    };
}

std::unique_ptr<Spec>
loadIsa(const std::string &isa)
{
    return loadSpecOrFatal(isaDescriptionFiles(isa));
}

} // namespace onespec
