/**
 * @file
 * Semantic analysis: turns a parsed Description into a resolved Spec.
 *
 * Responsibilities:
 *  - build the architectural-state layout and resolve the ABI;
 *  - build the slot table (fields + operand value slots);
 *  - merge opclass behaviour into instructions (class actions run before
 *    instruction actions for the same step);
 *  - resolve and type-check all action code and operand index expressions;
 *  - compute per-step slot data flow and instruction properties;
 *  - build and conflict-check the decode tree;
 *  - resolve buildsets (entrypoints, visibility) and run the
 *    interface-completeness check: a slot produced in one entrypoint and
 *    consumed in another must be visible, otherwise its value cannot cross
 *    the interface (reported as a warning; the paper observes such errors
 *    manifest within a few hundred simulated instructions).
 */

#ifndef ONESPEC_ADL_SEMA_HPP
#define ONESPEC_ADL_SEMA_HPP

#include <memory>

#include "adl/ast.hpp"
#include "adl/spec.hpp"
#include "support/diag.hpp"

namespace onespec {

/**
 * Analyze @p desc.  Returns a Spec (only meaningful when
 * !diags.hasErrors()).  @p desc is consumed: action ASTs are moved into
 * the Spec.
 */
std::unique_ptr<Spec> analyze(Description desc, DiagnosticEngine &diags);

} // namespace onespec

#endif // ONESPEC_ADL_SEMA_HPP
