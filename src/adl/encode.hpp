/**
 * @file
 * The encoder: the inverse view of the decode specification.  Because
 * instruction encodings are declarative (format bitfields + match
 * constraints), an assembler can be *derived* from the same single
 * specification that produces the decoder -- no separate encoding tables
 * to keep in sync.
 */

#ifndef ONESPEC_ADL_ENCODE_HPP
#define ONESPEC_ADL_ENCODE_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "adl/spec.hpp"

namespace onespec {

/** A (format-field-name, value) pair for encoding. */
using EncField = std::pair<std::string, uint64_t>;

/**
 * Encode instruction @p instr_id with the given field values.  Unlisted
 * non-fixed fields encode as 0.  On error (unknown field, value too wide,
 * conflict with the match pattern) returns false and sets @p err.
 */
bool encodeInstr(const Spec &spec, int instr_id,
                 const std::vector<EncField> &fields, uint32_t &out,
                 std::string &err);

/** Encode by instruction name; panics on unknown name or encode error. */
uint32_t mustEncode(const Spec &spec, const std::string &name,
                    const std::vector<EncField> &fields);

} // namespace onespec

#endif // ONESPEC_ADL_ENCODE_HPP
