/**
 * @file
 * Tokenizer for LIS descriptions.  All alphabetic words lex as identifiers;
 * the parser gives contextual keywords their meaning, which keeps the ADL's
 * vocabulary extensible without reserving names.
 */

#ifndef ONESPEC_ADL_LEXER_HPP
#define ONESPEC_ADL_LEXER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/diag.hpp"

namespace onespec {

enum class TokKind
{
    Ident,
    Int,
    // punctuation / operators
    LBrace, RBrace, LBracket, RBracket, LParen, RParen,
    Colon, Semi, Comma, At, Question, Dot,
    Assign,          // =
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    Shl, Shr, AmpAmp, PipePipe,
    Eof,
};

/** One lexed token. */
struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;       // identifier spelling
    uint64_t intValue = 0;  // for Int
    SourceLoc loc;

    bool is(TokKind k) const { return kind == k; }
    bool isIdent(const char *s) const
    {
        return kind == TokKind::Ident && text == s;
    }
};

/** Human-readable token-kind name for diagnostics. */
const char *tokKindName(TokKind k);

/**
 * Tokenize @p source.  Comments run from '#' or "//" to end of line.
 * Lexical errors are reported to @p diags; lexing continues past them.
 */
std::vector<Token> lex(const std::string &source, const std::string &filename,
                       DiagnosticEngine &diags);

} // namespace onespec

#endif // ONESPEC_ADL_LEXER_HPP
