#include "parser.hpp"

#include "adl/lexer.hpp"
#include "support/logging.hpp"

namespace onespec {

namespace {

/**
 * One-file parser.  Appends declarations into a shared Description so that
 * multi-file descriptions merge naturally.
 */
class Parser
{
  public:
    Parser(std::vector<Token> toks, Description &desc,
           DiagnosticEngine &diags)
        : toks_(std::move(toks)), desc_(desc), diags_(diags)
    {}

    void run();

  private:
    const Token &peek(int off = 0) const
    {
        size_t i = pos_ + off;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    const Token &advance()
    {
        const Token &t = toks_[pos_];
        if (pos_ + 1 < toks_.size())
            ++pos_;
        return t;
    }

    bool check(TokKind k) const { return peek().is(k); }

    bool
    accept(TokKind k)
    {
        if (check(k)) {
            advance();
            return true;
        }
        return false;
    }

    bool
    acceptIdent(const char *s)
    {
        if (peek().isIdent(s)) {
            advance();
            return true;
        }
        return false;
    }

    const Token &
    expect(TokKind k, const char *what)
    {
        if (!check(k)) {
            diags_.error(peek().loc,
                         strcat_args("expected ", tokKindName(k), " (",
                                     what, "), found ",
                                     tokKindName(peek().kind),
                                     peek().kind == TokKind::Ident
                                         ? " '" + peek().text + "'"
                                         : ""));
            // Return current token without consuming so the caller can
            // resynchronize; mark the error state.
            hadSyntaxError_ = true;
            return peek();
        }
        return advance();
    }

    std::string
    expectIdent(const char *what)
    {
        const Token &t = expect(TokKind::Ident, what);
        return t.is(TokKind::Ident) ? t.text : std::string{};
    }

    uint64_t
    expectInt(const char *what)
    {
        const Token &t = expect(TokKind::Int, what);
        return t.is(TokKind::Int) ? t.intValue : 0;
    }

    ValueType
    expectType(const char *what)
    {
        SourceLoc loc = peek().loc;
        std::string n = expectIdent(what);
        auto t = parseValueType(n);
        if (!t) {
            diags_.error(loc, strcat_args("'", n, "' is not a value type (",
                                          what, ")"));
            return U64;
        }
        return *t;
    }

    /** Skip tokens until after the next ';' or matching '}'. */
    void
    synchronize()
    {
        int depth = 0;
        while (!check(TokKind::Eof)) {
            if (check(TokKind::LBrace)) {
                ++depth;
            } else if (check(TokKind::RBrace)) {
                if (depth == 0) {
                    advance();
                    return;
                }
                --depth;
            } else if (check(TokKind::Semi) && depth == 0) {
                advance();
                return;
            }
            advance();
        }
    }

    static bool
    isTopLevelKeyword(const Token &t)
    {
        if (!t.is(TokKind::Ident))
            return false;
        return t.text == "isa" || t.text == "state" || t.text == "abi" ||
               t.text == "field" || t.text == "format" ||
               t.text == "helper" || t.text == "opclass" ||
               t.text == "instr" || t.text == "buildset";
    }

    /** Recover at top level: stop at the next declaration keyword. */
    void
    syncTopLevel()
    {
        int depth = 0;
        while (!check(TokKind::Eof)) {
            if (depth == 0 && isTopLevelKeyword(peek()))
                return;
            if (check(TokKind::LBrace)) {
                ++depth;
            } else if (check(TokKind::RBrace)) {
                if (depth > 0)
                    --depth;
            } else if (check(TokKind::Semi) && depth == 0) {
                advance();
                return;
            }
            advance();
        }
    }

    // Top-level declarations.
    void parseIsa();
    void parseState();
    void parseAbi();
    void parseField();
    void parseFormat();
    void parseOpClassOrInstr(bool is_class);
    void parseBuildset();

    StateRef parseStateRef();
    std::vector<MatchCond> parseMatchList();
    OperandDecl parseOperand(bool is_dst);
    ActionDecl parseAction();

    // Action language.
    StmtPtr parseStmt();
    StmtPtr parseStmtBlock();
    ExprPtr parseExpr();
    ExprPtr parseTernary();
    ExprPtr parseBinary(int min_prec);
    ExprPtr parseUnary();
    ExprPtr parsePrimary();

    std::vector<Token> toks_;
    size_t pos_ = 0;
    Description &desc_;
    DiagnosticEngine &diags_;
    bool hadSyntaxError_ = false;
    bool sawIsa_ = false;
};

void
Parser::parseIsa()
{
    SourceLoc loc = peek().loc;
    advance(); // 'isa'
    if (!desc_.isa.name.empty()) {
        diags_.error(loc, "duplicate 'isa' declaration (already declared "
                          "as '" + desc_.isa.name + "')");
    }
    desc_.isa.name = expectIdent("isa name");
    desc_.isa.loc = loc;
    expect(TokKind::LBrace, "isa body");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        SourceLoc ploc = peek().loc;
        if (acceptIdent("bits")) {
            uint64_t b = expectInt("word size");
            if (b != 32 && b != 64)
                diags_.error(ploc, "word size must be 32 or 64");
            desc_.isa.wordBits = static_cast<unsigned>(b);
            expect(TokKind::Semi, "after bits");
        } else if (acceptIdent("instr_bytes")) {
            uint64_t b = expectInt("instruction size");
            if (b != 2 && b != 4 && b != 8)
                diags_.error(ploc, "instr_bytes must be 2, 4 or 8");
            desc_.isa.instrBytes = static_cast<unsigned>(b);
            expect(TokKind::Semi, "after instr_bytes");
        } else if (acceptIdent("endian")) {
            std::string e = expectIdent("endianness");
            if (e == "little") {
                desc_.isa.littleEndian = true;
            } else if (e == "big") {
                desc_.isa.littleEndian = false;
            } else {
                diags_.error(ploc, "endian must be 'little' or 'big'");
            }
            expect(TokKind::Semi, "after endian");
        } else {
            diags_.error(ploc, "unknown isa property '" + peek().text + "'");
            synchronize();
        }
    }
    expect(TokKind::RBrace, "end of isa body");
    sawIsa_ = true;
}

void
Parser::parseState()
{
    advance(); // 'state'
    expect(TokKind::LBrace, "state body");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        SourceLoc loc = peek().loc;
        if (acceptIdent("regfile")) {
            RegFileDecl rf;
            rf.loc = loc;
            rf.name = expectIdent("regfile name");
            expect(TokKind::LBracket, "regfile size");
            rf.count = static_cast<unsigned>(expectInt("regfile size"));
            expect(TokKind::RBracket, "regfile size");
            expect(TokKind::Colon, "regfile type");
            rf.type = expectType("regfile element type");
            if (acceptIdent("zero")) {
                rf.zeroReg = static_cast<int>(expectInt("zero register"));
                if (rf.zeroReg >= static_cast<int>(rf.count)) {
                    diags_.error(loc, "zero register index out of range");
                }
            }
            expect(TokKind::Semi, "after regfile");
            if (rf.count == 0)
                diags_.error(loc, "regfile must have at least one register");
            desc_.regfiles.push_back(std::move(rf));
        } else if (acceptIdent("reg")) {
            RegDecl r;
            r.loc = loc;
            r.name = expectIdent("register name");
            expect(TokKind::Colon, "register type");
            r.type = expectType("register type");
            expect(TokKind::Semi, "after reg");
            desc_.regs.push_back(std::move(r));
        } else {
            diags_.error(loc, "expected 'regfile' or 'reg' in state block");
            synchronize();
        }
    }
    expect(TokKind::RBrace, "end of state body");
}

StateRef
Parser::parseStateRef()
{
    StateRef ref;
    ref.loc = peek().loc;
    ref.name = expectIdent("state reference");
    if (accept(TokKind::LBracket)) {
        ref.index = static_cast<int>(expectInt("register index"));
        expect(TokKind::RBracket, "register index");
    }
    return ref;
}

void
Parser::parseAbi()
{
    SourceLoc loc = peek().loc;
    advance(); // 'abi'
    desc_.abi.loc = loc;
    expect(TokKind::LBrace, "abi body");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        SourceLoc ploc = peek().loc;
        if (acceptIdent("syscall_num")) {
            desc_.abi.syscallNum = parseStateRef();
            expect(TokKind::Semi, "after syscall_num");
        } else if (acceptIdent("arg")) {
            desc_.abi.args.push_back(parseStateRef());
            while (accept(TokKind::Comma))
                desc_.abi.args.push_back(parseStateRef());
            expect(TokKind::Semi, "after arg");
        } else if (acceptIdent("ret")) {
            desc_.abi.ret = parseStateRef();
            expect(TokKind::Semi, "after ret");
        } else if (acceptIdent("error")) {
            desc_.abi.error = parseStateRef();
            expect(TokKind::Semi, "after error");
        } else if (acceptIdent("stack")) {
            desc_.abi.stack = parseStateRef();
            expect(TokKind::Semi, "after stack");
        } else {
            diags_.error(ploc, "unknown abi entry '" + peek().text + "'");
            synchronize();
        }
    }
    expect(TokKind::RBrace, "end of abi body");
}

void
Parser::parseField()
{
    SourceLoc loc = peek().loc;
    advance(); // 'field'
    FieldDecl f;
    f.loc = loc;
    f.name = expectIdent("field name");
    expect(TokKind::Colon, "field type");
    f.type = expectType("field type");
    if (acceptIdent("decode"))
        f.category = FieldCategory::Decode;
    expect(TokKind::Semi, "after field");
    desc_.fields.push_back(std::move(f));
}

void
Parser::parseFormat()
{
    SourceLoc loc = peek().loc;
    advance(); // 'format'
    FormatDecl fmt;
    fmt.loc = loc;
    fmt.name = expectIdent("format name");
    expect(TokKind::LBrace, "format body");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        FormatField ff;
        ff.loc = peek().loc;
        ff.name = expectIdent("format field name");
        expect(TokKind::LBracket, "bit range");
        ff.hi = static_cast<unsigned>(expectInt("high bit"));
        if (accept(TokKind::Colon)) {
            ff.lo = static_cast<unsigned>(expectInt("low bit"));
        } else {
            ff.lo = ff.hi;
        }
        expect(TokKind::RBracket, "bit range");
        accept(TokKind::Comma); // commas between fields are optional
        if (ff.hi < ff.lo)
            diags_.error(ff.loc, "bit range high < low");
        fmt.fields.push_back(std::move(ff));
        if (hadSyntaxError_) {
            synchronize();
            hadSyntaxError_ = false;
            break;
        }
    }
    expect(TokKind::RBrace, "end of format body");
    desc_.formats.push_back(std::move(fmt));
}

std::vector<MatchCond>
Parser::parseMatchList()
{
    std::vector<MatchCond> conds;
    bool parens = accept(TokKind::LParen);
    do {
        MatchCond c;
        c.loc = peek().loc;
        c.field = expectIdent("match field");
        expect(TokKind::EqEq, "match comparison");
        c.value = expectInt("match value");
        conds.push_back(std::move(c));
    } while (accept(TokKind::Comma));
    if (parens)
        expect(TokKind::RParen, "end of match list");
    return conds;
}

OperandDecl
Parser::parseOperand(bool is_dst)
{
    OperandDecl op;
    op.loc = peek().loc;
    op.isDst = is_dst;
    advance(); // 'src' / 'dst'
    op.slotName = expectIdent("operand slot name");
    expect(TokKind::Assign, "operand binding");
    op.stateName = expectIdent("register or regfile name");
    if (accept(TokKind::LBracket)) {
        op.indexExpr = parseExpr();
        expect(TokKind::RBracket, "register index");
    }
    expect(TokKind::Semi, "after operand");
    return op;
}

ActionDecl
Parser::parseAction()
{
    ActionDecl a;
    a.loc = peek().loc;
    advance(); // 'action'
    if (acceptIdent("late"))
        a.late = true;
    a.step = expectIdent("step name");
    a.body = parseStmtBlock();
    return a;
}

void
Parser::parseOpClassOrInstr(bool is_class)
{
    SourceLoc loc = peek().loc;
    advance(); // 'opclass' / 'instr'

    std::string name = expectIdent(is_class ? "opclass name" : "instr name");
    std::string parent;
    if (accept(TokKind::Colon))
        parent = expectIdent("format or opclass name");

    std::vector<MatchCond> match;
    if (acceptIdent("match"))
        match = parseMatchList();

    std::vector<OperandDecl> operands;
    std::vector<ActionDecl> actions;
    expect(TokKind::LBrace, "body");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        if (peek().isIdent("src")) {
            operands.push_back(parseOperand(false));
        } else if (peek().isIdent("dst")) {
            operands.push_back(parseOperand(true));
        } else if (peek().isIdent("action")) {
            actions.push_back(parseAction());
        } else {
            diags_.error(peek().loc,
                         "expected 'src', 'dst' or 'action' in body, found '"
                             + peek().text + "'");
            synchronize();
        }
        if (hadSyntaxError_) {
            hadSyntaxError_ = false;
            synchronize();
        }
    }
    expect(TokKind::RBrace, "end of body");

    if (is_class) {
        OpClassDecl cls;
        cls.loc = loc;
        cls.name = std::move(name);
        cls.formatName = std::move(parent); // sema decides format vs class
        cls.match = std::move(match);
        cls.operands = std::move(operands);
        cls.actions = std::move(actions);
        desc_.classes.push_back(std::move(cls));
    } else {
        InstrDecl ins;
        ins.loc = loc;
        ins.name = std::move(name);
        ins.formatName = std::move(parent); // sema decides format vs class
        ins.match = std::move(match);
        ins.operands = std::move(operands);
        ins.actions = std::move(actions);
        desc_.instrs.push_back(std::move(ins));
    }
}

void
Parser::parseBuildset()
{
    SourceLoc loc = peek().loc;
    advance(); // 'buildset'
    BuildsetDecl bs;
    bs.loc = loc;
    bs.name = expectIdent("buildset name");
    bs.semantic = SemanticLevel::One;
    bs.info = InfoLevel::All;
    expect(TokKind::LBrace, "buildset body");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        SourceLoc ploc = peek().loc;
        if (acceptIdent("semantic")) {
            std::string l = expectIdent("semantic level");
            if (l == "block") {
                bs.semantic = SemanticLevel::Block;
            } else if (l == "one") {
                bs.semantic = SemanticLevel::One;
            } else if (l == "step") {
                bs.semantic = SemanticLevel::Step;
            } else {
                diags_.error(ploc,
                             "semantic level must be block, one or step");
            }
            expect(TokKind::Semi, "after semantic");
        } else if (acceptIdent("info")) {
            std::string l = expectIdent("informational level");
            if (l == "min") {
                bs.info = InfoLevel::Min;
            } else if (l == "decode") {
                bs.info = InfoLevel::Decode;
            } else if (l == "all") {
                bs.info = InfoLevel::All;
            } else {
                diags_.error(ploc, "info level must be min, decode or all");
            }
            expect(TokKind::Semi, "after info");
        } else if (acceptIdent("speculation")) {
            std::string l = expectIdent("speculation switch");
            if (l == "on") {
                bs.speculation = true;
            } else if (l == "off") {
                bs.speculation = false;
            } else {
                diags_.error(ploc, "speculation must be 'on' or 'off'");
            }
            expect(TokKind::Semi, "after speculation");
        } else if (acceptIdent("entrypoint")) {
            EntrypointDecl ep;
            ep.loc = ploc;
            ep.name = expectIdent("entrypoint name");
            expect(TokKind::Assign, "entrypoint steps");
            ep.steps.push_back(expectIdent("step name"));
            while (accept(TokKind::Comma))
                ep.steps.push_back(expectIdent("step name"));
            expect(TokKind::Semi, "after entrypoint");
            bs.semantic = SemanticLevel::Custom;
            bs.entrypoints.push_back(std::move(ep));
        } else if (acceptIdent("visibility")) {
            bool hide;
            if (acceptIdent("hide")) {
                hide = true;
            } else if (acceptIdent("show")) {
                hide = false;
            } else {
                diags_.error(ploc, "visibility must be 'hide' or 'show'");
                synchronize();
                continue;
            }
            auto &list = hide ? bs.hideList : bs.showList;
            list.push_back(expectIdent("field name"));
            while (accept(TokKind::Comma))
                list.push_back(expectIdent("field name"));
            expect(TokKind::Semi, "after visibility");
            bs.info = InfoLevel::Custom;
        } else {
            diags_.error(ploc,
                         "unknown buildset item '" + peek().text + "'");
            synchronize();
        }
        if (hadSyntaxError_) {
            hadSyntaxError_ = false;
            synchronize();
        }
    }
    expect(TokKind::RBrace, "end of buildset body");
    desc_.buildsets.push_back(std::move(bs));
}

// ---------------------------------------------------------------------
// Action language
// ---------------------------------------------------------------------

StmtPtr
Parser::parseStmtBlock()
{
    auto blk = std::make_unique<Stmt>();
    blk->kind = Stmt::Kind::Block;
    blk->loc = peek().loc;
    expect(TokKind::LBrace, "block");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
        blk->body.push_back(parseStmt());
        if (hadSyntaxError_) {
            hadSyntaxError_ = false;
            synchronize();
        }
    }
    expect(TokKind::RBrace, "end of block");
    return blk;
}

StmtPtr
Parser::parseStmt()
{
    SourceLoc loc = peek().loc;
    if (check(TokKind::LBrace))
        return parseStmtBlock();

    if (peek().isIdent("if")) {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::If;
        s->loc = loc;
        expect(TokKind::LParen, "if condition");
        s->cond = parseExpr();
        expect(TokKind::RParen, "if condition");
        s->thenStmt = parseStmt();
        if (acceptIdent("else"))
            s->elseStmt = parseStmt();
        return s;
    }

    // Helper splice: `inline <name>;`
    if (peek().isIdent("inline") && peek(1).is(TokKind::Ident) &&
        peek(2).is(TokKind::Semi)) {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Inline;
        s->loc = loc;
        s->name = advance().text;
        advance(); // ;
        return s;
    }

    if (peek().isIdent("while")) {
        advance();
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::While;
        s->loc = loc;
        expect(TokKind::LParen, "while condition");
        s->cond = parseExpr();
        expect(TokKind::RParen, "while condition");
        s->thenStmt = parseStmt();
        return s;
    }

    // Local declaration: TYPE IDENT [= expr] ;
    if (check(TokKind::Ident) && parseValueType(peek().text) &&
        peek(1).is(TokKind::Ident)) {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::LocalDecl;
        s->loc = loc;
        s->declType = *parseValueType(advance().text);
        s->name = expectIdent("local variable name");
        if (accept(TokKind::Assign))
            s->init = parseExpr();
        expect(TokKind::Semi, "after declaration");
        return s;
    }

    // Expression or assignment.
    ExprPtr e = parseExpr();
    if (accept(TokKind::Assign)) {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::Assign;
        s->loc = loc;
        if (e->kind != Expr::Kind::Ident) {
            diags_.error(e->loc, "assignment target must be a field, "
                                 "operand slot or local variable");
        }
        s->target = std::move(e);
        s->value = parseExpr();
        expect(TokKind::Semi, "after assignment");
        return s;
    }
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::ExprStmt;
    s->loc = loc;
    s->value = std::move(e);
    expect(TokKind::Semi, "after expression");
    return s;
}

ExprPtr
Parser::parseExpr()
{
    return parseTernary();
}

ExprPtr
Parser::parseTernary()
{
    ExprPtr cond = parseBinary(0);
    if (accept(TokKind::Question)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Ternary;
        e->loc = cond->loc;
        e->a = std::move(cond);
        e->b = parseTernary();
        expect(TokKind::Colon, "ternary");
        e->c = parseTernary();
        return e;
    }
    return cond;
}

namespace {

struct OpInfo
{
    BinOp op;
    int prec;
};

/** Binary-operator precedence (higher binds tighter). */
bool
binOpFor(TokKind k, OpInfo &out)
{
    switch (k) {
      case TokKind::PipePipe: out = {BinOp::LogOr, 1}; return true;
      case TokKind::AmpAmp: out = {BinOp::LogAnd, 2}; return true;
      case TokKind::Pipe: out = {BinOp::Or, 3}; return true;
      case TokKind::Caret: out = {BinOp::Xor, 4}; return true;
      case TokKind::Amp: out = {BinOp::And, 5}; return true;
      case TokKind::EqEq: out = {BinOp::Eq, 6}; return true;
      case TokKind::NotEq: out = {BinOp::Ne, 6}; return true;
      case TokKind::Lt: out = {BinOp::Lt, 7}; return true;
      case TokKind::Le: out = {BinOp::Le, 7}; return true;
      case TokKind::Gt: out = {BinOp::Gt, 7}; return true;
      case TokKind::Ge: out = {BinOp::Ge, 7}; return true;
      case TokKind::Shl: out = {BinOp::Shl, 8}; return true;
      case TokKind::Shr: out = {BinOp::Shr, 8}; return true;
      case TokKind::Plus: out = {BinOp::Add, 9}; return true;
      case TokKind::Minus: out = {BinOp::Sub, 9}; return true;
      case TokKind::Star: out = {BinOp::Mul, 10}; return true;
      case TokKind::Slash: out = {BinOp::Div, 10}; return true;
      case TokKind::Percent: out = {BinOp::Rem, 10}; return true;
      default: return false;
    }
}

} // namespace

ExprPtr
Parser::parseBinary(int min_prec)
{
    ExprPtr lhs = parseUnary();
    for (;;) {
        OpInfo info;
        if (!binOpFor(peek().kind, info) || info.prec < min_prec)
            return lhs;
        advance();
        ExprPtr rhs = parseBinary(info.prec + 1);
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Binary;
        e->loc = lhs->loc;
        e->binOp = info.op;
        e->a = std::move(lhs);
        e->b = std::move(rhs);
        lhs = std::move(e);
    }
}

ExprPtr
Parser::parseUnary()
{
    SourceLoc loc = peek().loc;
    UnOp op;
    if (accept(TokKind::Minus)) {
        op = UnOp::Neg;
    } else if (accept(TokKind::Tilde)) {
        op = UnOp::BitNot;
    } else if (accept(TokKind::Bang)) {
        op = UnOp::LogNot;
    } else {
        return parsePrimary();
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::Unary;
    e->loc = loc;
    e->unOp = op;
    e->a = parseUnary();
    return e;
}

ExprPtr
Parser::parsePrimary()
{
    SourceLoc loc = peek().loc;

    if (check(TokKind::Int)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::IntLit;
        e->loc = loc;
        e->intValue = advance().intValue;
        return e;
    }

    if (check(TokKind::LParen)) {
        // Cast: '(' TYPE ')' unary
        if (peek(1).is(TokKind::Ident) && parseValueType(peek(1).text) &&
            peek(2).is(TokKind::RParen)) {
            advance(); // (
            ValueType t = *parseValueType(advance().text);
            advance(); // )
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Cast;
            e->loc = loc;
            e->castType = t;
            e->a = parseUnary();
            return e;
        }
        advance();
        ExprPtr inner = parseExpr();
        expect(TokKind::RParen, "closing parenthesis");
        return inner;
    }

    if (check(TokKind::Ident)) {
        std::string name = advance().text;
        if (check(TokKind::LParen)) {
            advance();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Call;
            e->loc = loc;
            e->name = std::move(name);
            if (!check(TokKind::RParen)) {
                e->args.push_back(parseExpr());
                while (accept(TokKind::Comma))
                    e->args.push_back(parseExpr());
            }
            expect(TokKind::RParen, "end of call");
            return e;
        }
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Ident;
        e->loc = loc;
        e->name = std::move(name);
        return e;
    }

    diags_.error(loc, strcat_args("expected expression, found ",
                                  tokKindName(peek().kind)));
    hadSyntaxError_ = true;
    if (!check(TokKind::Eof))
        advance();
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::IntLit;
    e->loc = loc;
    e->intValue = 0;
    return e;
}

void
Parser::run()
{
    while (!check(TokKind::Eof)) {
        if (peek().isIdent("isa")) {
            parseIsa();
        } else if (peek().isIdent("state")) {
            parseState();
        } else if (peek().isIdent("abi")) {
            parseAbi();
        } else if (peek().isIdent("field")) {
            parseField();
        } else if (peek().isIdent("format")) {
            parseFormat();
        } else if (peek().isIdent("helper")) {
            SourceLoc hloc = peek().loc;
            advance();
            HelperDecl h;
            h.loc = hloc;
            h.name = expectIdent("helper name");
            h.body = parseStmtBlock();
            desc_.helpers.push_back(std::move(h));
        } else if (peek().isIdent("opclass")) {
            parseOpClassOrInstr(true);
        } else if (peek().isIdent("instr")) {
            parseOpClassOrInstr(false);
        } else if (peek().isIdent("buildset")) {
            parseBuildset();
        } else {
            diags_.error(peek().loc,
                         "expected a top-level declaration, found '" +
                             peek().text + "'");
            syncTopLevel();
        }
        if (hadSyntaxError_) {
            hadSyntaxError_ = false;
            syncTopLevel();
        }
    }
}

} // namespace

Description
parseFiles(const std::vector<SourceFile> &files, DiagnosticEngine &diags)
{
    Description desc;
    for (const auto &f : files) {
        auto toks = lex(f.text, f.name, diags);
        Parser(std::move(toks), desc, diags).run();
    }
    return desc;
}

Description
parseString(const std::string &text, DiagnosticEngine &diags,
            const std::string &name)
{
    return parseFiles({{text, name}}, diags);
}

} // namespace onespec
