#include "sema.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "adl/builtins.hpp"
#include "support/bitutil.hpp"
#include "support/logging.hpp"

namespace onespec {

namespace {

/** Names that action code may not shadow. */
bool
isReservedName(const std::string &n)
{
    return n == "pc" || n == "npc" || n == "inst";
}

class Analyzer
{
  public:
    Analyzer(Description desc, DiagnosticEngine &diags)
        : desc_(std::move(desc)), diags_(diags),
          spec_(std::make_unique<Spec>())
    {}

    std::unique_ptr<Spec> run();

  private:
    void buildState();
    ResolvedStateRef resolveStateRef(const StateRef &ref, bool required);
    void buildAbi();
    void buildSlots();
    void checkFormats();
    void mergeAndResolveInstrs();
    void resolveInstr(InstrDecl &decl);
    void computeFixedBits(InstrInfo &ii, const std::vector<MatchCond> &conds);
    void buildDecodeTree();
    std::unique_ptr<DecodeNode> buildDecodeNode(std::vector<uint16_t> cands,
                                                uint32_t used_mask,
                                                int depth);
    void resolveBuildsets();
    void checkInterfaceCompleteness(BuildsetInfo &bs);
    void computeFingerprint();

    // Action resolution.
    struct ActionCtx
    {
        InstrInfo *instr = nullptr;
        const FormatDecl *format = nullptr;
        Step step = Step::Execute;
        std::vector<std::unordered_map<std::string, int>> scopes;
        std::vector<ValueType> localTypes;
        SlotMask reads = 0;
        SlotMask writes = 0;
        bool controlFlow = false;
        bool syscall = false;
        bool memAccess = false;
        bool indexExprMode = false; ///< restrict to encoding fields
    };

    void expandInlines(StmtPtr &s, int depth);
    void resolveStmt(Stmt &s, ActionCtx &ctx);
    ValueType resolveExpr(Expr &e, ActionCtx &ctx);
    void resolveIdent(Expr &e, ActionCtx &ctx);
    void adoptLiteral(Expr &e, ValueType t);

    Description desc_;
    DiagnosticEngine &diags_;
    std::unique_ptr<Spec> spec_;

    std::unordered_map<std::string, int> formatIndex_;
    std::unordered_map<std::string, const OpClassDecl *> classByName_;
};

// ---------------------------------------------------------------------
// State & ABI
// ---------------------------------------------------------------------

void
Analyzer::buildState()
{
    std::set<std::string> names;
    unsigned offset = 0;
    for (const auto &rf : desc_.regfiles) {
        if (!names.insert(rf.name).second)
            diags_.error(rf.loc, "duplicate state name '" + rf.name + "'");
        if (isReservedName(rf.name))
            diags_.error(rf.loc, "'" + rf.name + "' is a reserved name");
        StateLayout::File f;
        f.name = rf.name;
        f.count = rf.count;
        f.type = rf.type;
        f.zeroReg = rf.zeroReg;
        f.base = offset;
        offset += rf.count;
        spec_->state.files.push_back(std::move(f));
    }
    for (const auto &r : desc_.regs) {
        if (!names.insert(r.name).second)
            diags_.error(r.loc, "duplicate state name '" + r.name + "'");
        if (isReservedName(r.name))
            diags_.error(r.loc, "'" + r.name + "' is a reserved name");
        StateLayout::Scalar s;
        s.name = r.name;
        s.type = r.type;
        s.offset = offset;
        offset += 1;
        spec_->state.scalars.push_back(std::move(s));
    }
    spec_->state.totalWords = offset;
    if (offset == 0) {
        diags_.error(desc_.isa.loc,
                     "description declares no architectural state");
    }
}

ResolvedStateRef
Analyzer::resolveStateRef(const StateRef &ref, bool required)
{
    ResolvedStateRef out;
    if (ref.name.empty()) {
        if (required)
            diags_.error(desc_.abi.loc, "missing required abi register");
        return out;
    }
    int fi = spec_->state.fileIndex(ref.name);
    if (fi >= 0) {
        if (ref.index < 0) {
            diags_.error(ref.loc, "regfile reference '" + ref.name +
                                      "' requires an index");
            return out;
        }
        if (ref.index >= static_cast<int>(spec_->state.files[fi].count)) {
            diags_.error(ref.loc, "register index out of range");
            return out;
        }
        out.valid = true;
        out.scalar = false;
        out.fileIndex = fi;
        out.regIndex = ref.index;
        return out;
    }
    int si = spec_->state.scalarIndex(ref.name);
    if (si >= 0) {
        if (ref.index >= 0) {
            diags_.error(ref.loc, "scalar register '" + ref.name +
                                      "' cannot be indexed");
            return out;
        }
        out.valid = true;
        out.scalar = true;
        out.scalarIdx = si;
        return out;
    }
    diags_.error(ref.loc, "unknown state '" + ref.name + "' in abi");
    return out;
}

void
Analyzer::buildAbi()
{
    spec_->abi.syscallNum = resolveStateRef(desc_.abi.syscallNum, true);
    for (const auto &a : desc_.abi.args)
        spec_->abi.args.push_back(resolveStateRef(a, true));
    spec_->abi.ret = resolveStateRef(desc_.abi.ret, true);
    spec_->abi.error = resolveStateRef(desc_.abi.error, false);
    spec_->abi.stack = resolveStateRef(desc_.abi.stack, true);
}

// ---------------------------------------------------------------------
// Slots
// ---------------------------------------------------------------------

void
Analyzer::buildSlots()
{
    auto addSlot = [&](const std::string &name, ValueType type,
                       FieldCategory cat, bool is_operand,
                       const SourceLoc &loc) {
        if (isReservedName(name)) {
            diags_.error(loc, "'" + name + "' is a reserved name");
            return;
        }
        auto it = spec_->slotIndex.find(name);
        if (it != spec_->slotIndex.end()) {
            Slot &s = spec_->slots[it->second];
            if (!is_operand || !s.isOperand) {
                diags_.error(loc, "duplicate slot name '" + name + "'");
            } else if (!(s.type == type)) {
                diags_.error(loc, "operand slot '" + name +
                                      "' redeclared with a different type");
            }
            return;
        }
        spec_->slotIndex.emplace(name, static_cast<int>(spec_->slots.size()));
        spec_->slots.push_back({name, type, cat, is_operand});
    };

    for (const auto &f : desc_.fields)
        addSlot(f.name, f.type, f.category, false, f.loc);

    auto operandType = [&](const OperandDecl &op) -> ValueType {
        int fi = spec_->state.fileIndex(op.stateName);
        if (fi >= 0)
            return spec_->state.files[fi].type;
        int si = spec_->state.scalarIndex(op.stateName);
        if (si >= 0)
            return spec_->state.scalars[si].type;
        diags_.error(op.loc,
                     "unknown state '" + op.stateName + "' in operand");
        return U64;
    };

    for (const auto &cls : desc_.classes)
        for (const auto &op : cls.operands)
            addSlot(op.slotName, operandType(op), FieldCategory::All, true,
                    op.loc);
    for (const auto &ins : desc_.instrs)
        for (const auto &op : ins.operands)
            addSlot(op.slotName, operandType(op), FieldCategory::All, true,
                    op.loc);

    if (spec_->slots.size() > kMaxSlots) {
        diags_.error(desc_.isa.loc,
                     strcat_args("too many slots (", spec_->slots.size(),
                                 "); the limit is ", kMaxSlots));
    }

    // Slot names must not collide with encoding field names: the shadowing
    // would silently change meaning between instructions.
    for (const auto &fmt : desc_.formats) {
        for (const auto &ff : fmt.fields) {
            if (spec_->slotIndex.count(ff.name)) {
                diags_.error(ff.loc,
                             "encoding field '" + ff.name +
                                 "' collides with a field/operand slot name");
            }
        }
    }
}

void
Analyzer::checkFormats()
{
    unsigned instr_bits = desc_.isa.instrBytes * 8;
    for (auto &fmt : desc_.formats) {
        if (formatIndex_.count(fmt.name)) {
            diags_.error(fmt.loc, "duplicate format '" + fmt.name + "'");
            continue;
        }
        std::set<std::string> names;
        for (const auto &ff : fmt.fields) {
            if (!names.insert(ff.name).second) {
                diags_.error(ff.loc, "duplicate field '" + ff.name +
                                         "' in format '" + fmt.name + "'");
            }
            if (ff.hi >= instr_bits) {
                diags_.error(ff.loc,
                             strcat_args("bit ", ff.hi,
                                         " exceeds instruction width ",
                                         instr_bits));
            }
        }
        formatIndex_.emplace(fmt.name,
                             static_cast<int>(spec_->formats.size()));
        spec_->formats.push_back(fmt);
    }
}

// ---------------------------------------------------------------------
// Instruction merging and resolution
// ---------------------------------------------------------------------

void
Analyzer::computeFixedBits(InstrInfo &ii, const std::vector<MatchCond> &conds)
{
    if (ii.formatIndex < 0)
        return;
    const FormatDecl &fmt = spec_->formats[ii.formatIndex];
    for (const auto &c : conds) {
        const FormatField *ff = nullptr;
        for (const auto &f : fmt.fields) {
            if (f.name == c.field) {
                ff = &f;
                break;
            }
        }
        if (!ff) {
            diags_.error(c.loc, "match field '" + c.field +
                                    "' not in format '" + fmt.name + "'");
            continue;
        }
        unsigned width = ff->hi - ff->lo + 1;
        if (c.value > lowMask(width)) {
            diags_.error(c.loc,
                         strcat_args("match value ", c.value,
                                     " does not fit in ", width, " bits"));
            continue;
        }
        uint32_t mask =
            static_cast<uint32_t>(lowMask(width)) << ff->lo;
        uint32_t bits_ = static_cast<uint32_t>(c.value) << ff->lo;
        if ((ii.fixedMask & mask) && (ii.fixedBits & mask) != bits_) {
            diags_.error(c.loc, "conflicting match conditions on field '" +
                                    c.field + "'");
            continue;
        }
        ii.fixedMask |= mask;
        ii.fixedBits |= bits_;
    }
}

void
Analyzer::resolveInstr(InstrDecl &decl)
{
    InstrInfo ii;
    ii.name = decl.name;
    ii.loc = decl.loc;

    // The parent name is either a format or an opclass.
    const OpClassDecl *cls = nullptr;
    if (!decl.formatName.empty()) {
        auto fit = formatIndex_.find(decl.formatName);
        if (fit != formatIndex_.end()) {
            ii.formatIndex = fit->second;
        } else {
            auto cit = classByName_.find(decl.formatName);
            if (cit != classByName_.end()) {
                cls = cit->second;
            } else {
                diags_.error(decl.loc, "unknown format or opclass '" +
                                           decl.formatName + "'");
                return;
            }
        }
    }
    if (cls && !cls->formatName.empty()) {
        auto fit = formatIndex_.find(cls->formatName);
        if (fit == formatIndex_.end()) {
            diags_.error(cls->loc, "opclass '" + cls->name +
                                       "' names unknown format '" +
                                       cls->formatName + "'");
            return;
        }
        ii.formatIndex = fit->second;
    }
    if (ii.formatIndex < 0) {
        diags_.error(decl.loc,
                     "instruction '" + decl.name + "' has no format");
        return;
    }

    // Match conditions: class first, then instruction.
    if (cls)
        computeFixedBits(ii, cls->match);
    computeFixedBits(ii, decl.match);
    if (ii.fixedMask == 0) {
        diags_.error(decl.loc, "instruction '" + decl.name +
                                   "' has no match condition");
    }

    const FormatDecl &fmt = spec_->formats[ii.formatIndex];

    // Operands: class operands first, then instruction operands.
    auto addOperand = [&](const OperandDecl &od) {
        for (const auto &existing : ii.operands) {
            if (spec_->slots[existing.slotIndex].name == od.slotName) {
                diags_.error(od.loc, "operand slot '" + od.slotName +
                                         "' declared twice in '" +
                                         decl.name + "'");
                return;
            }
        }
        ResolvedOperand ro;
        ro.isDst = od.isDst;
        ro.slotIndex = spec_->findSlot(od.slotName);
        if (ro.slotIndex < 0)
            return; // error reported in buildSlots
        int fi = spec_->state.fileIndex(od.stateName);
        if (fi >= 0) {
            ro.scalar = false;
            ro.fileIndex = fi;
            if (!od.indexExpr) {
                diags_.error(od.loc, "regfile operand requires an index");
                return;
            }
            ro.indexExpr = cloneExpr(*od.indexExpr);
            ActionCtx ctx;
            ctx.instr = &ii;
            ctx.format = &fmt;
            ctx.indexExprMode = true;
            ctx.scopes.emplace_back();
            resolveExpr(*ro.indexExpr, ctx);
        } else {
            int si = spec_->state.scalarIndex(od.stateName);
            if (si < 0)
                return; // error reported in buildSlots
            if (od.indexExpr) {
                diags_.error(od.loc, "scalar operand cannot be indexed");
                return;
            }
            ro.scalar = true;
            ro.scalarIdx = si;
        }
        ii.operands.push_back(std::move(ro));
    };

    if (cls)
        for (const auto &od : cls->operands)
            addOperand(od);
    for (const auto &od : decl.operands)
        addOperand(od);

    if (ii.operands.size() > kMaxOps) {
        diags_.error(decl.loc,
                     strcat_args("too many operands (", ii.operands.size(),
                                 "); the limit is ", kMaxOps));
    }

    // Actions: non-late actions run in declaration order (class before
    // instruction); `late` actions run after all non-late actions of the
    // same step, again class before instruction.
    std::array<std::vector<StmtPtr>, kNumSteps> pre_bodies, late_bodies;
    auto placeAction = [&](const ActionDecl &ad) {
        Step st;
        if (!parseStep(ad.step, st)) {
            diags_.error(ad.loc, "unknown step '" + ad.step + "'");
            return;
        }
        if (st == Step::Fetch || st == Step::Decode) {
            diags_.error(ad.loc,
                         strcat_args("step '", ad.step,
                                     "' is implicit and cannot carry "
                                     "instruction actions"));
            return;
        }
        auto &zone = ad.late ? late_bodies : pre_bodies;
        zone[static_cast<unsigned>(st)].push_back(cloneStmt(*ad.body));
    };

    if (cls)
        for (const auto &ad : cls->actions)
            placeAction(ad);
    for (const auto &ad : decl.actions)
        placeAction(ad);

    for (unsigned s = 0; s < kNumSteps; ++s) {
        auto &pre = pre_bodies[s];
        auto &late = late_bodies[s];
        if (pre.empty() && late.empty())
            continue;
        InstrAction &ia = ii.actions[s];
        if (pre.size() == 1 && late.empty()) {
            ia.body = std::move(pre[0]);
            continue;
        }
        auto blk = std::make_unique<Stmt>();
        blk->kind = Stmt::Kind::Block;
        blk->loc = !pre.empty() ? pre[0]->loc : late[0]->loc;
        for (auto &b : pre)
            blk->body.push_back(std::move(b));
        for (auto &b : late)
            blk->body.push_back(std::move(b));
        ia.body = std::move(blk);
    }

    // Resolve and analyze each step's action.
    for (unsigned s = 0; s < kNumSteps; ++s) {
        InstrAction &ia = ii.actions[s];
        if (!ia.body)
            continue;
        expandInlines(ia.body, 0);
        ActionCtx ctx;
        ctx.instr = &ii;
        ctx.format = &fmt;
        ctx.step = static_cast<Step>(s);
        ctx.scopes.emplace_back();
        resolveStmt(*ia.body, ctx);
        ia.numLocals = static_cast<unsigned>(ctx.localTypes.size());
        ia.localTypes = std::move(ctx.localTypes);
        ii.slotReads[s] |= ctx.reads;
        ii.slotWrites[s] |= ctx.writes;
        ii.isControlFlow |= ctx.controlFlow;
        ii.isSyscall |= ctx.syscall;
        ii.hasMemAccess |= ctx.memAccess;
    }

    // Implicit operand data flow.
    for (const auto &op : ii.operands) {
        SlotMask bit = SlotMask{1} << op.slotIndex;
        if (op.isDst) {
            ii.slotReads[static_cast<unsigned>(Step::Writeback)] |= bit;
        } else {
            ii.slotWrites[static_cast<unsigned>(Step::ReadOperands)] |= bit;
        }
    }

    if (spec_->instrIndex.count(ii.name)) {
        diags_.error(decl.loc,
                     "duplicate instruction '" + ii.name + "'");
        return;
    }
    spec_->instrIndex.emplace(ii.name,
                              static_cast<int>(spec_->instrs.size()));
    spec_->instrs.push_back(std::move(ii));
}

void
Analyzer::mergeAndResolveInstrs()
{
    for (const auto &cls : desc_.classes) {
        if (classByName_.count(cls.name)) {
            diags_.error(cls.loc, "duplicate opclass '" + cls.name + "'");
            continue;
        }
        if (formatIndex_.count(cls.name)) {
            diags_.error(cls.loc, "opclass '" + cls.name +
                                      "' collides with a format name");
            continue;
        }
        classByName_.emplace(cls.name, &cls);
    }
    for (auto &ins : desc_.instrs)
        resolveInstr(ins);
    if (spec_->instrs.empty())
        diags_.error(desc_.isa.loc, "description declares no instructions");
}

// ---------------------------------------------------------------------
// Action resolution & type checking
// ---------------------------------------------------------------------

void
Analyzer::adoptLiteral(Expr &e, ValueType t)
{
    if (e.kind == Expr::Kind::IntLit)
        e.type = t;
}

void
Analyzer::resolveIdent(Expr &e, ActionCtx &ctx)
{
    // Locals (innermost scope first).
    for (auto it = ctx.scopes.rbegin(); it != ctx.scopes.rend(); ++it) {
        auto f = it->find(e.name);
        if (f != it->end()) {
            e.symKind = SymKind::Local;
            e.symIndex = f->second;
            e.type = ctx.localTypes[f->second];
            return;
        }
    }

    if (ctx.indexExprMode) {
        // Operand index expressions may only use encoding fields.
        if (ctx.format) {
            for (size_t i = 0; i < ctx.format->fields.size(); ++i) {
                if (ctx.format->fields[i].name == e.name) {
                    e.symKind = SymKind::EncField;
                    e.symIndex = static_cast<int>(i);
                    e.type = U32;
                    return;
                }
            }
        }
        diags_.error(e.loc, "operand index may only reference encoding "
                            "fields; '" + e.name + "' is not one");
        e.symKind = SymKind::EncField;
        e.symIndex = 0;
        e.type = U32;
        return;
    }

    // Slots: fields are global; operand slots must belong to this instr.
    int si = spec_->findSlot(e.name);
    if (si >= 0) {
        const Slot &slot = spec_->slots[si];
        if (slot.isOperand) {
            bool mine = false;
            for (const auto &op : ctx.instr->operands)
                if (op.slotIndex == si)
                    mine = true;
            if (!mine) {
                diags_.error(e.loc, "operand slot '" + e.name +
                                        "' is not declared by this "
                                        "instruction");
            }
        }
        e.symKind = SymKind::Slot;
        e.symIndex = si;
        e.type = slot.type;
        return;
    }

    // Encoding fields of this instruction's format.
    if (ctx.format) {
        for (size_t i = 0; i < ctx.format->fields.size(); ++i) {
            if (ctx.format->fields[i].name == e.name) {
                e.symKind = SymKind::EncField;
                e.symIndex = static_cast<int>(i);
                e.type = U32;
                return;
            }
        }
    }

    if (e.name == "pc") {
        e.symKind = SymKind::ImplicitPc;
        e.type = U64;
        return;
    }
    if (e.name == "npc") {
        e.symKind = SymKind::ImplicitNpc;
        e.type = U64;
        return;
    }
    if (e.name == "inst") {
        e.symKind = SymKind::ImplicitInst;
        e.type = U32;
        return;
    }

    diags_.error(e.loc, "unknown identifier '" + e.name + "'");
    e.symKind = SymKind::Local;
    e.symIndex = 0;
    e.type = U64;
    // Make sure symIndex 0 exists so downstream passes don't crash.
    if (ctx.localTypes.empty())
        ctx.localTypes.push_back(U64);
}

ValueType
Analyzer::resolveExpr(Expr &e, ActionCtx &ctx)
{
    switch (e.kind) {
      case Expr::Kind::IntLit:
        e.type = U64;
        return e.type;

      case Expr::Kind::Ident:
        resolveIdent(e, ctx);
        if (e.symKind == SymKind::Slot)
            ctx.reads |= SlotMask{1} << e.symIndex;
        return e.type;

      case Expr::Kind::Unary: {
        ValueType t = resolveExpr(*e.a, ctx);
        e.type = (e.unOp == UnOp::LogNot) ? U8 : t;
        return e.type;
      }

      case Expr::Kind::Binary: {
        ValueType ta = resolveExpr(*e.a, ctx);
        ValueType tb = resolveExpr(*e.b, ctx);
        // Bare literals adopt the other operand's type -- except around
        // shifts, where the amount's type must not narrow the value (a
        // literal shifted by a u8 amount still shifts at 64 bits).
        bool is_shift = e.binOp == BinOp::Shl || e.binOp == BinOp::Shr;
        if (!is_shift) {
            if (e.a->kind == Expr::Kind::IntLit &&
                e.b->kind != Expr::Kind::IntLit) {
                adoptLiteral(*e.a, tb);
                ta = tb;
            } else if (e.b->kind == Expr::Kind::IntLit &&
                       e.a->kind != Expr::Kind::IntLit) {
                adoptLiteral(*e.b, ta);
                tb = ta;
            }
        }
        switch (e.binOp) {
          case BinOp::Shl:
          case BinOp::Shr: {
            // C-style integer promotion: narrow left operands shift at
            // (at least) 32 bits, so `u8_flag << 29` behaves as in C.
            ValueType tp = ta.bits >= 32 ? ta
                                         : ValueType{32, ta.isSigned};
            e.type = tp;
            e.promotedType = tp;
            break;
          }
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
            e.type = U8;
            e.promotedType = promote(ta, tb);
            break;
          case BinOp::LogAnd:
          case BinOp::LogOr:
            e.type = U8;
            e.promotedType = U8;
            break;
          default:
            e.type = promote(ta, tb);
            e.promotedType = e.type;
            break;
        }
        return e.type;
      }

      case Expr::Kind::Ternary: {
        resolveExpr(*e.a, ctx);
        ValueType tb = resolveExpr(*e.b, ctx);
        ValueType tc = resolveExpr(*e.c, ctx);
        if (e.b->kind == Expr::Kind::IntLit &&
            e.c->kind != Expr::Kind::IntLit) {
            adoptLiteral(*e.b, tc);
            tb = tc;
        } else if (e.c->kind == Expr::Kind::IntLit &&
                   e.b->kind != Expr::Kind::IntLit) {
            adoptLiteral(*e.c, tb);
            tc = tb;
        }
        e.type = promote(tb, tc);
        return e.type;
      }

      case Expr::Kind::Cast: {
        resolveExpr(*e.a, ctx);
        e.type = e.castType;
        return e.type;
      }

      case Expr::Kind::Call: {
        auto b = lookupBuiltin(e.name);
        if (!b) {
            diags_.error(e.loc, "unknown function '" + e.name + "'");
            e.builtinIndex = -1;
            e.type = U64;
            for (auto &arg : e.args)
                resolveExpr(*arg, ctx);
            return e.type;
        }
        const BuiltinInfo &info = builtinInfo(*b);
        if (static_cast<int>(e.args.size()) != info.numArgs) {
            diags_.error(e.loc,
                         strcat_args("'", e.name, "' expects ",
                                     info.numArgs, " argument(s), got ",
                                     e.args.size()));
        }
        if (ctx.indexExprMode) {
            diags_.error(e.loc, "function calls are not allowed in operand "
                                "index expressions");
        }
        for (auto &arg : e.args) {
            resolveExpr(*arg, ctx);
            adoptLiteral(*arg, U64);
        }
        e.builtinIndex = static_cast<int>(*b);
        e.type = info.result;
        ctx.memAccess |= info.isMemLoad || info.isMemStore;
        ctx.controlFlow |= info.isControlFlow;
        if (*b == Builtin::SyscallEmu)
            ctx.syscall = true;
        return e.type;
      }
    }
    ONESPEC_PANIC("unreachable expression kind");
}

void
Analyzer::expandInlines(StmtPtr &s, int depth)
{
    if (!s)
        return;
    if (s->kind == Stmt::Kind::Inline) {
        if (depth > 16) {
            diags_.error(s->loc, "helper expansion too deep (recursive "
                                 "helpers?)");
            s->kind = Stmt::Kind::Block;
            s->name.clear();
            return;
        }
        const HelperDecl *h = nullptr;
        for (const auto &hd : desc_.helpers)
            if (hd.name == s->name)
                h = &hd;
        if (!h) {
            diags_.error(s->loc, "unknown helper '" + s->name + "'");
            // Neutralize so later passes don't trip on it.
            s->kind = Stmt::Kind::Block;
            return;
        }
        s = cloneStmt(*h->body);
        expandInlines(s, depth + 1);
        return;
    }
    for (auto &st : s->body)
        expandInlines(st, depth);
    expandInlines(s->thenStmt, depth);
    expandInlines(s->elseStmt, depth);
}

void
Analyzer::resolveStmt(Stmt &s, ActionCtx &ctx)
{
    switch (s.kind) {
      case Stmt::Kind::Inline:
        ONESPEC_PANIC("inline statement survived expansion");
      case Stmt::Kind::Block: {
        ctx.scopes.emplace_back();
        for (auto &st : s.body)
            resolveStmt(*st, ctx);
        ctx.scopes.pop_back();
        return;
      }

      case Stmt::Kind::LocalDecl: {
        if (s.init) {
            resolveExpr(*s.init, ctx);
            adoptLiteral(*s.init, s.declType);
        }
        if (isReservedName(s.name)) {
            diags_.error(s.loc, "'" + s.name + "' is a reserved name");
        }
        auto &scope = ctx.scopes.back();
        if (scope.count(s.name)) {
            diags_.error(s.loc,
                         "redeclaration of local '" + s.name + "'");
        }
        s.localIndex = static_cast<int>(ctx.localTypes.size());
        ctx.localTypes.push_back(s.declType);
        scope[s.name] = s.localIndex;
        return;
      }

      case Stmt::Kind::Assign: {
        // Resolve the target without counting it as a slot read.
        if (s.target->kind == Expr::Kind::Ident) {
            resolveIdent(*s.target, ctx);
            switch (s.target->symKind) {
              case SymKind::Local:
                break;
              case SymKind::Slot:
                ctx.writes |= SlotMask{1} << s.target->symIndex;
                break;
              default:
                diags_.error(s.loc, "cannot assign to '" +
                                        s.target->name + "'");
                break;
            }
        } else {
            resolveExpr(*s.target, ctx);
            diags_.error(s.loc, "assignment target must be an identifier");
        }
        ValueType tt = s.target->type;
        resolveExpr(*s.value, ctx);
        adoptLiteral(*s.value, tt);
        return;
      }

      case Stmt::Kind::If: {
        resolveExpr(*s.cond, ctx);
        resolveStmt(*s.thenStmt, ctx);
        if (s.elseStmt)
            resolveStmt(*s.elseStmt, ctx);
        return;
      }

      case Stmt::Kind::While: {
        resolveExpr(*s.cond, ctx);
        resolveStmt(*s.thenStmt, ctx);
        return;
      }

      case Stmt::Kind::ExprStmt: {
        resolveExpr(*s.value, ctx);
        if (s.value->kind == Expr::Kind::Call &&
            s.value->builtinIndex >= 0) {
            // Fine: builtin call used for effect.
        } else {
            diags_.warning(s.loc, "expression statement has no effect");
        }
        return;
      }
    }
    ONESPEC_PANIC("unreachable statement kind");
}

// ---------------------------------------------------------------------
// Decode tree
// ---------------------------------------------------------------------

std::unique_ptr<DecodeNode>
Analyzer::buildDecodeNode(std::vector<uint16_t> cands, uint32_t used_mask,
                          int depth)
{
    auto node = std::make_unique<DecodeNode>();
    auto makeLeaf = [&] {
        std::stable_sort(cands.begin(), cands.end(),
                         [&](uint16_t a, uint16_t b) {
                             return std::popcount(
                                        spec_->instrs[a].fixedMask) >
                                    std::popcount(spec_->instrs[b].fixedMask);
                         });
        node->testMask = 0;
        node->candidates = std::move(cands);
    };

    if (cands.size() <= 2 || depth > 6) {
        makeLeaf();
        return node;
    }

    uint32_t common = ~uint32_t{0};
    for (uint16_t id : cands)
        common &= spec_->instrs[id].fixedMask;
    common &= ~used_mask;
    if (common == 0) {
        makeLeaf();
        return node;
    }

    // Bound fanout: keep at most the 12 most-significant common bits.
    while (std::popcount(common) > 12)
        common &= common - 1; // drop lowest set bit

    node->testMask = common;
    std::unordered_map<uint32_t, std::vector<uint16_t>> groups;
    for (uint16_t id : cands) {
        uint32_t key = 0;
        uint32_t m = common;
        unsigned pos = 0;
        uint32_t fixed = spec_->instrs[id].fixedBits;
        while (m) {
            unsigned b = static_cast<unsigned>(std::countr_zero(m));
            key |= ((fixed >> b) & 1u) << pos;
            ++pos;
            m &= m - 1;
        }
        groups[key].push_back(id);
    }
    if (groups.size() == 1) {
        // No discrimination achieved; fall back to a leaf.
        makeLeaf();
        return node;
    }
    for (auto &[key, group] : groups) {
        node->children.emplace(
            key, buildDecodeNode(std::move(group), used_mask | common,
                                 depth + 1));
    }
    return node;
}

void
Analyzer::buildDecodeTree()
{
    // Conflict check: identical patterns cannot be distinguished.
    std::unordered_map<uint64_t, uint16_t> seen;
    for (size_t i = 0; i < spec_->instrs.size(); ++i) {
        const InstrInfo &ii = spec_->instrs[i];
        uint64_t key = (static_cast<uint64_t>(ii.fixedMask) << 32) |
                       ii.fixedBits;
        auto [it, fresh] = seen.emplace(key, static_cast<uint16_t>(i));
        if (!fresh) {
            diags_.error(ii.loc,
                         "instructions '" + spec_->instrs[it->second].name +
                             "' and '" + ii.name +
                             "' have identical encodings");
        }
    }

    std::vector<uint16_t> all(spec_->instrs.size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<uint16_t>(i);
    spec_->decodeRoot = buildDecodeNode(std::move(all), 0, 0);
}

// ---------------------------------------------------------------------
// Buildsets
// ---------------------------------------------------------------------

void
Analyzer::resolveBuildsets()
{
    std::set<std::string> names;
    for (auto &decl : desc_.buildsets) {
        if (!names.insert(decl.name).second) {
            diags_.error(decl.loc,
                         "duplicate buildset '" + decl.name + "'");
            continue;
        }
        BuildsetInfo bs;
        bs.name = decl.name;
        bs.semantic = decl.semantic;
        bs.info = decl.info;
        bs.speculation = decl.speculation;

        // Entrypoints.
        auto allSteps = [] {
            std::vector<Step> v;
            for (unsigned i = 0; i < kNumSteps; ++i)
                v.push_back(static_cast<Step>(i));
            return v;
        };
        switch (decl.semantic) {
          case SemanticLevel::Block:
            bs.entrypoints.push_back({"block", allSteps()});
            break;
          case SemanticLevel::One:
            bs.entrypoints.push_back({"one", allSteps()});
            break;
          case SemanticLevel::Step:
            for (unsigned i = 0; i < kNumSteps; ++i) {
                Step st = static_cast<Step>(i);
                bs.entrypoints.push_back({stepName(st), {st}});
            }
            break;
          case SemanticLevel::Custom: {
            for (const auto &ep : decl.entrypoints) {
                EntrypointInfo info;
                info.name = ep.name;
                for (const auto &sn : ep.steps) {
                    Step st;
                    if (!parseStep(sn, st)) {
                        diags_.error(ep.loc,
                                     "unknown step '" + sn +
                                         "' in entrypoint '" + ep.name +
                                         "'");
                        continue;
                    }
                    info.steps.push_back(st);
                }
                bs.entrypoints.push_back(std::move(info));
            }
            break;
          }
        }

        // Every step must appear exactly once, in canonical order within
        // each entrypoint.
        bs.stepOwner.fill(-1);
        for (size_t e = 0; e < bs.entrypoints.size(); ++e) {
            Step prev = Step::Fetch;
            bool first = true;
            for (Step st : bs.entrypoints[e].steps) {
                unsigned si = static_cast<unsigned>(st);
                if (bs.stepOwner[si] != -1) {
                    diags_.error(decl.loc,
                                 strcat_args("step '", stepName(st),
                                             "' appears in more than one "
                                             "entrypoint of buildset '",
                                             decl.name, "'"));
                }
                bs.stepOwner[si] = static_cast<int>(e);
                if (!first && static_cast<unsigned>(st) <=
                                  static_cast<unsigned>(prev)) {
                    diags_.error(decl.loc,
                                 strcat_args("steps of entrypoint '",
                                             bs.entrypoints[e].name,
                                             "' are not in canonical "
                                             "order"));
                }
                prev = st;
                first = false;
            }
        }
        for (unsigned i = 0; i < kNumSteps; ++i) {
            if (bs.stepOwner[i] == -1) {
                diags_.error(decl.loc,
                             strcat_args("step '",
                                         stepName(static_cast<Step>(i)),
                                         "' is missing from buildset '",
                                         decl.name, "'"));
            }
        }

        // Visibility.
        switch (decl.info) {
          case InfoLevel::Min:
            bs.visibleSlots = 0;
            bs.opRegsVisible = false;
            break;
          case InfoLevel::Decode:
            bs.visibleSlots = spec_->slotsForInfoLevel(InfoLevel::Decode);
            bs.opRegsVisible = true;
            break;
          case InfoLevel::All:
            bs.visibleSlots = spec_->slotsForInfoLevel(InfoLevel::All);
            bs.opRegsVisible = true;
            break;
          case InfoLevel::Custom: {
            if (!decl.showList.empty()) {
                bs.visibleSlots = 0;
                for (const auto &n : decl.showList) {
                    int si = spec_->findSlot(n);
                    if (si < 0) {
                        diags_.error(decl.loc,
                                     "unknown field '" + n +
                                         "' in visibility list");
                        continue;
                    }
                    bs.visibleSlots |= SlotMask{1} << si;
                }
            } else {
                bs.visibleSlots = spec_->slotsForInfoLevel(InfoLevel::All);
            }
            for (const auto &n : decl.hideList) {
                int si = spec_->findSlot(n);
                if (si < 0) {
                    diags_.error(decl.loc, "unknown field '" + n +
                                               "' in visibility list");
                    continue;
                }
                bs.visibleSlots &= ~(SlotMask{1} << si);
            }
            bs.opRegsVisible = true;
            break;
          }
        }

        checkInterfaceCompleteness(bs);
        spec_->buildsets.push_back(std::move(bs));
    }
}

void
Analyzer::checkInterfaceCompleteness(BuildsetInfo &bs)
{
    if (bs.entrypoints.size() <= 1)
        return; // everything stays in one call's locals

    for (const auto &ii : spec_->instrs) {
        // For each slot, the last entrypoint that wrote it must be the one
        // that reads it, or the slot must be visible.
        for (unsigned si = 0; si < spec_->slots.size(); ++si) {
            SlotMask bit = SlotMask{1} << si;
            if (bs.visibleSlots & bit)
                continue;
            int writer_ep = -1;
            for (unsigned st = 0; st < kNumSteps; ++st) {
                int ep = bs.stepOwner[st];
                if ((ii.slotReads[st] & bit) && writer_ep >= 0 &&
                    writer_ep != ep) {
                    diags_.warning(
                        ii.loc,
                        strcat_args("buildset '", bs.name, "': slot '",
                                    spec_->slots[si].name,
                                    "' of instruction '", ii.name,
                                    "' crosses entrypoints but is hidden; "
                                    "its value will be lost"));
                    break;
                }
                if (ii.slotWrites[st] & bit)
                    writer_ep = ep;
            }
        }
        // Operand register identifiers flow decode -> read_operands /
        // writeback.
        if (!bs.opRegsVisible && !ii.operands.empty()) {
            int dec_ep = bs.stepOwner[static_cast<unsigned>(Step::Decode)];
            int rd_ep =
                bs.stepOwner[static_cast<unsigned>(Step::ReadOperands)];
            int wb_ep = bs.stepOwner[static_cast<unsigned>(Step::Writeback)];
            if (dec_ep != rd_ep || dec_ep != wb_ep) {
                diags_.warning(ii.loc,
                               strcat_args(
                                   "buildset '", bs.name,
                                   "': operand identifiers are hidden but "
                                   "decode and operand access are in "
                                   "different entrypoints"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------

void
Analyzer::computeFingerprint()
{
    uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    auto mixs = [&](const std::string &s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
    };
    mixs(spec_->props.name);
    mix(spec_->props.wordBits);
    mix(spec_->props.instrBytes);
    mix(spec_->props.littleEndian);
    mix(spec_->state.totalWords);
    mix(spec_->slots.size());
    for (const auto &s : spec_->slots) {
        mixs(s.name);
        mix(s.type.bits);
    }
    mix(spec_->instrs.size());
    for (const auto &ii : spec_->instrs) {
        mixs(ii.name);
        mix(ii.fixedMask);
        mix(ii.fixedBits);
        mix(ii.operands.size());
    }
    spec_->fingerprint = h;
}

// ---------------------------------------------------------------------

std::unique_ptr<Spec>
Analyzer::run()
{
    if (desc_.isa.name.empty()) {
        diags_.error(SourceLoc{}, "description has no 'isa' declaration");
        return std::move(spec_);
    }
    spec_->props = desc_.isa;
    if (desc_.isa.instrBytes != 4 && desc_.isa.instrBytes != 2) {
        diags_.error(desc_.isa.loc,
                     "only 2- and 4-byte instructions are supported");
    }

    buildState();
    if (diags_.hasErrors())
        return std::move(spec_);
    buildAbi();
    checkFormats();
    buildSlots();
    if (diags_.hasErrors())
        return std::move(spec_);
    mergeAndResolveInstrs();
    if (diags_.hasErrors())
        return std::move(spec_);
    buildDecodeTree();
    resolveBuildsets();
    computeFingerprint();
    return std::move(spec_);
}

} // namespace

std::unique_ptr<Spec>
analyze(Description desc, DiagnosticEngine &diags)
{
    return Analyzer(std::move(desc), diags).run();
}

} // namespace onespec
