#include "encode.hpp"

#include "support/bitutil.hpp"
#include "support/logging.hpp"

namespace onespec {

bool
encodeInstr(const Spec &spec, int instr_id,
            const std::vector<EncField> &fields, uint32_t &out,
            std::string &err)
{
    if (instr_id < 0 || instr_id >= static_cast<int>(spec.instrs.size())) {
        err = "bad instruction id";
        return false;
    }
    const InstrInfo &ii = spec.instrs[instr_id];
    const FormatDecl &fmt = spec.formats[ii.formatIndex];

    uint32_t word = ii.fixedBits;
    uint32_t set_mask = ii.fixedMask;

    for (const auto &[name, value] : fields) {
        const FormatField *ff = nullptr;
        for (const auto &f : fmt.fields) {
            if (f.name == name) {
                ff = &f;
                break;
            }
        }
        if (!ff) {
            err = "format '" + fmt.name + "' has no field '" + name + "'";
            return false;
        }
        unsigned width = ff->hi - ff->lo + 1;
        if (value > lowMask(width)) {
            err = strcat_args("value ", value, " does not fit in field '",
                              name, "' (", width, " bits)");
            return false;
        }
        uint32_t fmask = static_cast<uint32_t>(lowMask(width)) << ff->lo;
        uint32_t fbits = static_cast<uint32_t>(value) << ff->lo;
        if ((set_mask & fmask) &&
            ((word & fmask & set_mask) != (fbits & set_mask & fmask))) {
            err = "field '" + name + "' conflicts with bits already fixed "
                  "by the instruction's match pattern";
            return false;
        }
        word = (word & ~fmask) | fbits | (word & set_mask & fmask);
        set_mask |= fmask;
    }
    out = word;
    return true;
}

uint32_t
mustEncode(const Spec &spec, const std::string &name,
           const std::vector<EncField> &fields)
{
    auto it = spec.instrIndex.find(name);
    if (it == spec.instrIndex.end())
        ONESPEC_PANIC("unknown instruction '", name, "'");
    uint32_t out = 0;
    std::string err;
    if (!encodeInstr(spec, it->second, fields, out, err))
        ONESPEC_PANIC("encode '", name, "': ", err);
    return out;
}

} // namespace onespec
