/**
 * @file
 * Evaluation semantics of the LIS action language, shared verbatim by the
 * interpreter and by generated simulators (generated code #includes this
 * header and calls the same inline functions).  This guarantees the two
 * back ends implement identical arithmetic: wrap-at-width, deterministic
 * division (x/0 == 0, INT_MIN/-1 == INT_MIN), and shift amounts >= width
 * yielding 0 (or the sign fill for arithmetic right shifts).
 *
 * Values are carried in uint64_t in *normalized* form for their static
 * type: unsigned values are zero-extended, signed values sign-extended.
 */

#ifndef ONESPEC_ADL_EVAL_HPP
#define ONESPEC_ADL_EVAL_HPP

#include <cstdint>

#include "adl/ast.hpp"
#include "adl/builtins.hpp"
#include "adl/types.hpp"
#include "support/bitutil.hpp"

namespace onespec {

/** Deterministic unsigned division (x/0 == 0). */
inline uint64_t
safeDivU(uint64_t a, uint64_t b)
{
    return b == 0 ? 0 : a / b;
}

/** Deterministic signed division (x/0 == 0, INT64_MIN/-1 == INT64_MIN). */
inline int64_t
safeDivS(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == INT64_MIN && b == -1)
        return INT64_MIN;
    return a / b;
}

inline uint64_t
safeRemU(uint64_t a, uint64_t b)
{
    return b == 0 ? 0 : a % b;
}

inline int64_t
safeRemS(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

/** Left shift at @p width bits; amounts >= width yield 0. */
inline uint64_t
shiftL(uint64_t a, uint64_t amt, unsigned width)
{
    if (amt >= width)
        return 0;
    return a << amt;
}

/** Logical right shift of the low @p width bits. */
inline uint64_t
shiftRU(uint64_t a, uint64_t amt, unsigned width)
{
    if (amt >= width)
        return 0;
    return truncate(a, width) >> amt;
}

/** Arithmetic right shift; @p a must be sign-extended already. */
inline uint64_t
shiftRS(uint64_t a, uint64_t amt, unsigned width)
{
    int64_t sa = static_cast<int64_t>(sext(a, width));
    if (amt >= width)
        return static_cast<uint64_t>(sa < 0 ? -1 : 0);
    return static_cast<uint64_t>(sa >> amt);
}

/**
 * Evaluate a binary operator.  @p a and @p b are normalized for @p pt (the
 * promoted operand type; for shifts, the left operand's type); the result
 * is normalized for @p rt.  LogAnd/LogOr are short-circuit and must be
 * handled by the caller.
 */
template <BinOp op>
inline uint64_t
evalBinOpT(uint64_t a, uint64_t b, ValueType pt, ValueType rt)
{
    if constexpr (op == BinOp::Add)
        return normalize(a + b, rt);
    else if constexpr (op == BinOp::Sub)
        return normalize(a - b, rt);
    else if constexpr (op == BinOp::Mul)
        return normalize(a * b, rt);
    else if constexpr (op == BinOp::Div) {
        if (pt.isSigned) {
            return normalize(static_cast<uint64_t>(safeDivS(
                                 static_cast<int64_t>(a),
                                 static_cast<int64_t>(b))),
                             rt);
        }
        return normalize(safeDivU(truncate(a, pt.bits),
                                  truncate(b, pt.bits)),
                         rt);
    } else if constexpr (op == BinOp::Rem) {
        if (pt.isSigned) {
            return normalize(static_cast<uint64_t>(safeRemS(
                                 static_cast<int64_t>(a),
                                 static_cast<int64_t>(b))),
                             rt);
        }
        return normalize(safeRemU(truncate(a, pt.bits),
                                  truncate(b, pt.bits)),
                         rt);
    } else if constexpr (op == BinOp::And)
        return normalize(a & b, rt);
    else if constexpr (op == BinOp::Or)
        return normalize(a | b, rt);
    else if constexpr (op == BinOp::Xor)
        return normalize(a ^ b, rt);
    else if constexpr (op == BinOp::Shl)
        return normalize(shiftL(a, b, pt.bits), rt);
    else if constexpr (op == BinOp::Shr) {
        if (pt.isSigned)
            return normalize(shiftRS(a, b, pt.bits), rt);
        return normalize(shiftRU(a, b, pt.bits), rt);
    } else if constexpr (op == BinOp::Eq)
        return a == b;
    else if constexpr (op == BinOp::Ne)
        return a != b;
    else if constexpr (op == BinOp::Lt) {
        if (pt.isSigned)
            return static_cast<int64_t>(a) < static_cast<int64_t>(b);
        return truncate(a, pt.bits) < truncate(b, pt.bits);
    } else if constexpr (op == BinOp::Le) {
        if (pt.isSigned)
            return static_cast<int64_t>(a) <= static_cast<int64_t>(b);
        return truncate(a, pt.bits) <= truncate(b, pt.bits);
    } else if constexpr (op == BinOp::Gt) {
        if (pt.isSigned)
            return static_cast<int64_t>(a) > static_cast<int64_t>(b);
        return truncate(a, pt.bits) > truncate(b, pt.bits);
    } else if constexpr (op == BinOp::Ge) {
        if (pt.isSigned)
            return static_cast<int64_t>(a) >= static_cast<int64_t>(b);
        return truncate(a, pt.bits) >= truncate(b, pt.bits);
    } else {
        static_assert(op != BinOp::LogAnd && op != BinOp::LogOr,
                      "logical operators are short-circuit; evaluate in "
                      "the caller");
        return 0;
    }
}

/** Runtime-dispatch version for the interpreter. */
inline uint64_t
evalBinOp(BinOp op, uint64_t a, uint64_t b, ValueType pt, ValueType rt)
{
    switch (op) {
      case BinOp::Add: return evalBinOpT<BinOp::Add>(a, b, pt, rt);
      case BinOp::Sub: return evalBinOpT<BinOp::Sub>(a, b, pt, rt);
      case BinOp::Mul: return evalBinOpT<BinOp::Mul>(a, b, pt, rt);
      case BinOp::Div: return evalBinOpT<BinOp::Div>(a, b, pt, rt);
      case BinOp::Rem: return evalBinOpT<BinOp::Rem>(a, b, pt, rt);
      case BinOp::And: return evalBinOpT<BinOp::And>(a, b, pt, rt);
      case BinOp::Or: return evalBinOpT<BinOp::Or>(a, b, pt, rt);
      case BinOp::Xor: return evalBinOpT<BinOp::Xor>(a, b, pt, rt);
      case BinOp::Shl: return evalBinOpT<BinOp::Shl>(a, b, pt, rt);
      case BinOp::Shr: return evalBinOpT<BinOp::Shr>(a, b, pt, rt);
      case BinOp::Eq: return evalBinOpT<BinOp::Eq>(a, b, pt, rt);
      case BinOp::Ne: return evalBinOpT<BinOp::Ne>(a, b, pt, rt);
      case BinOp::Lt: return evalBinOpT<BinOp::Lt>(a, b, pt, rt);
      case BinOp::Le: return evalBinOpT<BinOp::Le>(a, b, pt, rt);
      case BinOp::Gt: return evalBinOpT<BinOp::Gt>(a, b, pt, rt);
      case BinOp::Ge: return evalBinOpT<BinOp::Ge>(a, b, pt, rt);
      case BinOp::LogAnd:
      case BinOp::LogOr:
        break;
    }
    return 0;
}

/** Evaluate a unary operator on a value normalized for @p t. */
inline uint64_t
evalUnOp(UnOp op, uint64_t a, ValueType t)
{
    switch (op) {
      case UnOp::Neg: return normalize(0 - a, t);
      case UnOp::BitNot: return normalize(~a, t);
      case UnOp::LogNot: return a == 0;
    }
    return 0;
}

/**
 * Evaluate a pure (no memory, no control-flow) builtin.  Returns false if
 * @p b is not pure; the caller must handle it.
 */
inline bool
evalPureBuiltin(Builtin b, const uint64_t *args, uint64_t &out)
{
    switch (b) {
      case Builtin::Sext8: out = sext(args[0], 8); return true;
      case Builtin::Sext16: out = sext(args[0], 16); return true;
      case Builtin::Sext32: out = sext(args[0], 32); return true;
      case Builtin::Zext8: out = zext(args[0], 8); return true;
      case Builtin::Zext16: out = zext(args[0], 16); return true;
      case Builtin::Zext32: out = zext(args[0], 32); return true;
      case Builtin::Rotl32:
        out = rotl32(static_cast<uint32_t>(args[0]),
                     static_cast<unsigned>(args[1]));
        return true;
      case Builtin::Rotr32:
        out = rotr32(static_cast<uint32_t>(args[0]),
                     static_cast<unsigned>(args[1]));
        return true;
      case Builtin::Rotl64:
        out = rotl64(args[0], static_cast<unsigned>(args[1]));
        return true;
      case Builtin::Rotr64:
        out = rotr64(args[0], static_cast<unsigned>(args[1]));
        return true;
      case Builtin::Clz32: out = clz(args[0], 32); return true;
      case Builtin::Clz64: out = clz(args[0], 64); return true;
      case Builtin::Ctz32: out = ctz(args[0], 32); return true;
      case Builtin::Ctz64: out = ctz(args[0], 64); return true;
      case Builtin::Popcount: out = popcount(args[0]); return true;
      case Builtin::Addc32:
        out = carryOut(args[0], args[1], args[2] & 1, 32);
        return true;
      case Builtin::Addv32:
        out = overflowAdd(args[0], args[1], args[2] & 1, 32);
        return true;
      case Builtin::Addc64:
        out = carryOut(args[0], args[1], args[2] & 1, 64);
        return true;
      case Builtin::Addv64:
        out = overflowAdd(args[0], args[1], args[2] & 1, 64);
        return true;
      case Builtin::MulhU64: {
        unsigned __int128 p = static_cast<unsigned __int128>(args[0]) *
                              static_cast<unsigned __int128>(args[1]);
        out = static_cast<uint64_t>(p >> 64);
        return true;
      }
      case Builtin::MulhS64: {
        __int128 p = static_cast<__int128>(static_cast<int64_t>(args[0])) *
                     static_cast<__int128>(static_cast<int64_t>(args[1]));
        out = static_cast<uint64_t>(static_cast<uint64_t>(p >> 64));
        return true;
      }
      default:
        return false;
    }
}

} // namespace onespec

#endif // ONESPEC_ADL_EVAL_HPP
