/**
 * @file
 * The resolved specification model produced by semantic analysis.  A Spec
 * is the single source of truth from which every derived artifact is
 * produced: the interpreter executes it directly, the code generator
 * specializes it per buildset, the decoder and the encoder (assembler) are
 * both views of its encoding information, and the architectural-state
 * layout is computed from its state declarations.
 */

#ifndef ONESPEC_ADL_SPEC_HPP
#define ONESPEC_ADL_SPEC_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adl/ast.hpp"
#include "adl/builtins.hpp"
#include "adl/types.hpp"

namespace onespec {

// ---------------------------------------------------------------------
// Steps
// ---------------------------------------------------------------------

/**
 * The canonical semantic steps, mirroring the paper's seven interface
 * calls: fetch, decode, operand fetch, evaluate, memory, writeback,
 * exception.
 */
enum class Step : uint8_t
{
    Fetch = 0,
    Decode,
    ReadOperands,
    Execute,
    Memory,
    Writeback,
    Exception,
};

constexpr unsigned kNumSteps = 7;

const char *stepName(Step s);
/** Parse a step name; returns false if unknown. */
bool parseStep(const std::string &name, Step &out);

// ---------------------------------------------------------------------
// Slots (informational detail)
// ---------------------------------------------------------------------

/** Upper bound on value slots per ISA (fields + operand value slots). */
constexpr unsigned kMaxSlots = 48;
/** Upper bound on operands per instruction. */
constexpr unsigned kMaxOps = 8;

/** Bitmask over slot indices. */
using SlotMask = uint64_t;

/**
 * One value slot of the dynamic-instruction record: either a declared
 * `field` (intermediate value) or an operand value slot.
 */
struct Slot
{
    std::string name;
    ValueType type;
    FieldCategory category = FieldCategory::All;
    bool isOperand = false;
};

// ---------------------------------------------------------------------
// Architectural state layout
// ---------------------------------------------------------------------

/**
 * Flat layout of all architectural state in a single uint64_t array.
 * PC is implicit and lives outside the array.
 */
struct StateLayout
{
    struct File
    {
        std::string name;
        unsigned count = 0;
        ValueType type;
        int zeroReg = -1;
        unsigned base = 0;      ///< offset of element 0 in the flat array
    };

    struct Scalar
    {
        std::string name;
        ValueType type;
        unsigned offset = 0;
    };

    std::vector<File> files;
    std::vector<Scalar> scalars;
    unsigned totalWords = 0;

    /** Find a register file by name; -1 if absent. */
    int fileIndex(const std::string &name) const;
    /** Find a scalar register by name; -1 if absent. */
    int scalarIndex(const std::string &name) const;
};

/** A resolved reference to one architectural register. */
struct ResolvedStateRef
{
    bool valid = false;
    bool scalar = false;
    int fileIndex = -1;     ///< when !scalar
    int regIndex = -1;      ///< when !scalar
    int scalarIdx = -1;     ///< when scalar
};

/** Resolved ABI description for OS-call emulation. */
struct ResolvedAbi
{
    ResolvedStateRef syscallNum;
    std::vector<ResolvedStateRef> args;
    ResolvedStateRef ret;
    ResolvedStateRef error;     ///< may be !valid
    ResolvedStateRef stack;
};

// ---------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------

/** A resolved operand of an instruction. */
struct ResolvedOperand
{
    bool isDst = false;
    int slotIndex = -1;
    bool scalar = false;        ///< scalar reg rather than regfile element
    int fileIndex = -1;         ///< regfile index (when !scalar)
    int scalarIdx = -1;         ///< scalar index (when scalar)
    ExprPtr indexExpr;          ///< regfile element selector (encoding expr)
};

/** One semantic action of an instruction, bound to a step. */
struct InstrAction
{
    StmtPtr body;               ///< null if the instruction has no action
    unsigned numLocals = 0;     ///< locals allocated by sema
    std::vector<ValueType> localTypes;
};

/** A fully resolved instruction. */
struct InstrInfo
{
    std::string name;
    int formatIndex = -1;
    SourceLoc loc;

    /** Encoding bits fixed by the match clause. */
    uint32_t fixedMask = 0;
    uint32_t fixedBits = 0;

    std::vector<ResolvedOperand> operands;
    std::array<InstrAction, kNumSteps> actions;

    /** Slot data-flow per step (for interface-completeness checking). */
    std::array<SlotMask, kNumSteps> slotReads{};
    std::array<SlotMask, kNumSteps> slotWrites{};

    /** True if any action may change control flow (branch/fault/...). */
    bool isControlFlow = false;
    /** True if the instruction enters OS emulation. */
    bool isSyscall = false;
    /** True if any action touches memory. */
    bool hasMemAccess = false;
};

// ---------------------------------------------------------------------
// Decode tree
// ---------------------------------------------------------------------

/**
 * Decision tree mapping an instruction word to an instruction id.
 * Interior nodes test a mask; leaves hold candidates ordered most-specific
 * first, each verified against its full fixed mask.
 */
struct DecodeNode
{
    uint32_t testMask = 0;  ///< 0 => leaf
    /** Interior: value (bits under testMask, compacted) -> child. */
    std::unordered_map<uint32_t, std::unique_ptr<DecodeNode>> children;
    /** Leaf (or fallback): candidate instruction ids, most specific first. */
    std::vector<uint16_t> candidates;
};

// ---------------------------------------------------------------------
// Buildsets (interfaces)
// ---------------------------------------------------------------------

/** One interface entrypoint: a named, ordered group of steps. */
struct EntrypointInfo
{
    std::string name;
    std::vector<Step> steps;
};

/** A resolved interface specification. */
struct BuildsetInfo
{
    std::string name;
    SemanticLevel semantic = SemanticLevel::One;
    InfoLevel info = InfoLevel::All;
    bool speculation = false;

    std::vector<EntrypointInfo> entrypoints;

    /** Which slots are stored into the DynInst record. */
    SlotMask visibleSlots = 0;
    /** Whether operand register identifiers are recorded. */
    bool opRegsVisible = true;

    /** Step -> entrypoint index (for completeness analysis). */
    std::array<int, kNumSteps> stepOwner{};
};

// ---------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------

/** A fully resolved, validated ISA + interface specification. */
struct Spec
{
    IsaProps props;
    StateLayout state;
    ResolvedAbi abi;

    std::vector<Slot> slots;
    std::unordered_map<std::string, int> slotIndex;

    std::vector<FormatDecl> formats;
    std::vector<InstrInfo> instrs;
    std::unordered_map<std::string, int> instrIndex;

    std::unique_ptr<DecodeNode> decodeRoot;

    std::vector<BuildsetInfo> buildsets;

    /** Content fingerprint for generated-code integrity checks. */
    uint64_t fingerprint = 0;

    /** Decode @p inst; returns instruction id or -1 if illegal. */
    int decode(uint32_t inst) const;

    /** Find a buildset by name; nullptr if absent. */
    const BuildsetInfo *findBuildset(const std::string &name) const;

    /** Find a slot by name; -1 if absent. */
    int findSlot(const std::string &name) const;

    /** The slot mask implied by an informational level. */
    SlotMask slotsForInfoLevel(InfoLevel level) const;
};

} // namespace onespec

#endif // ONESPEC_ADL_SPEC_HPP
