#include "ast.hpp"

namespace onespec {

ExprPtr
cloneExpr(const Expr &e)
{
    auto n = std::make_unique<Expr>();
    n->kind = e.kind;
    n->loc = e.loc;
    n->intValue = e.intValue;
    n->name = e.name;
    n->symKind = e.symKind;
    n->symIndex = e.symIndex;
    n->unOp = e.unOp;
    n->binOp = e.binOp;
    if (e.a)
        n->a = cloneExpr(*e.a);
    if (e.b)
        n->b = cloneExpr(*e.b);
    if (e.c)
        n->c = cloneExpr(*e.c);
    n->castType = e.castType;
    for (const auto &arg : e.args)
        n->args.push_back(cloneExpr(*arg));
    n->builtinIndex = e.builtinIndex;
    n->type = e.type;
    n->promotedType = e.promotedType;
    return n;
}

StmtPtr
cloneStmt(const Stmt &s)
{
    auto n = std::make_unique<Stmt>();
    n->kind = s.kind;
    n->loc = s.loc;
    for (const auto &st : s.body)
        n->body.push_back(cloneStmt(*st));
    n->declType = s.declType;
    n->name = s.name;
    n->localIndex = s.localIndex;
    if (s.init)
        n->init = cloneExpr(*s.init);
    if (s.target)
        n->target = cloneExpr(*s.target);
    if (s.value)
        n->value = cloneExpr(*s.value);
    if (s.cond)
        n->cond = cloneExpr(*s.cond);
    if (s.thenStmt)
        n->thenStmt = cloneStmt(*s.thenStmt);
    if (s.elseStmt)
        n->elseStmt = cloneStmt(*s.elseStmt);
    return n;
}

} // namespace onespec
