#include "builtins.hpp"

#include <unordered_map>

#include "support/logging.hpp"

namespace onespec {

namespace {

const BuiltinInfo kTable[kNumBuiltins] = {
    // name       nargs result  void   load   store  cflow
    {"sext8",     1,    S64,    false, false, false, false},
    {"sext16",    1,    S64,    false, false, false, false},
    {"sext32",    1,    S64,    false, false, false, false},
    {"zext8",     1,    U64,    false, false, false, false},
    {"zext16",    1,    U64,    false, false, false, false},
    {"zext32",    1,    U64,    false, false, false, false},
    {"rotl32",    2,    U32,    false, false, false, false},
    {"rotr32",    2,    U32,    false, false, false, false},
    {"rotl64",    2,    U64,    false, false, false, false},
    {"rotr64",    2,    U64,    false, false, false, false},
    {"clz32",     1,    U32,    false, false, false, false},
    {"clz64",     1,    U64,    false, false, false, false},
    {"ctz32",     1,    U32,    false, false, false, false},
    {"ctz64",     1,    U64,    false, false, false, false},
    {"popcount",  1,    U64,    false, false, false, false},
    {"addc32",    3,    U32,    false, false, false, false},
    {"addv32",    3,    U32,    false, false, false, false},
    {"addc64",    3,    U64,    false, false, false, false},
    {"addv64",    3,    U64,    false, false, false, false},
    {"mulh_u64",  2,    U64,    false, false, false, false},
    {"mulh_s64",  2,    S64,    false, false, false, false},
    {"load_u8",   1,    U64,    false, true,  false, false},
    {"load_u16",  1,    U64,    false, true,  false, false},
    {"load_u32",  1,    U64,    false, true,  false, false},
    {"load_u64",  1,    U64,    false, true,  false, false},
    {"store_u8",  2,    U64,    true,  false, true,  false},
    {"store_u16", 2,    U64,    true,  false, true,  false},
    {"store_u32", 2,    U64,    true,  false, true,  false},
    {"store_u64", 2,    U64,    true,  false, true,  false},
    {"branch",    1,    U64,    true,  false, false, true},
    {"fault",     1,    U64,    true,  false, false, true},
    {"syscall_emu", 0,  U64,    true,  false, false, true},
    {"halt",      0,    U64,    true,  false, false, true},
};

} // namespace

const BuiltinInfo &
builtinInfo(Builtin b)
{
    int i = static_cast<int>(b);
    ONESPEC_ASSERT(i >= 0 && i < kNumBuiltins, "bad builtin index");
    return kTable[i];
}

std::optional<Builtin>
lookupBuiltin(const std::string &name)
{
    static const std::unordered_map<std::string, Builtin> map = [] {
        std::unordered_map<std::string, Builtin> m;
        for (int i = 0; i < kNumBuiltins; ++i)
            m.emplace(kTable[i].name, static_cast<Builtin>(i));
        return m;
    }();
    auto it = map.find(name);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::None: return "none";
      case FaultKind::IllegalInstr: return "illegal-instruction";
      case FaultKind::Unaligned: return "unaligned-access";
      case FaultKind::BadMemory: return "bad-memory";
      case FaultKind::Trap: return "trap";
      case FaultKind::Syscall: return "syscall";
    }
    return "?";
}

} // namespace onespec
