#include "spec.hpp"

#include "support/bitutil.hpp"
#include "support/logging.hpp"

namespace onespec {

const char *
stepName(Step s)
{
    switch (s) {
      case Step::Fetch: return "fetch";
      case Step::Decode: return "decode";
      case Step::ReadOperands: return "read_operands";
      case Step::Execute: return "execute";
      case Step::Memory: return "memory";
      case Step::Writeback: return "writeback";
      case Step::Exception: return "exception";
    }
    return "?";
}

bool
parseStep(const std::string &name, Step &out)
{
    for (unsigned i = 0; i < kNumSteps; ++i) {
        if (name == stepName(static_cast<Step>(i))) {
            out = static_cast<Step>(i);
            return true;
        }
    }
    return false;
}

int
StateLayout::fileIndex(const std::string &name) const
{
    for (size_t i = 0; i < files.size(); ++i)
        if (files[i].name == name)
            return static_cast<int>(i);
    return -1;
}

int
StateLayout::scalarIndex(const std::string &name) const
{
    for (size_t i = 0; i < scalars.size(); ++i)
        if (scalars[i].name == name)
            return static_cast<int>(i);
    return -1;
}

namespace {

/** Compress the bits of @p v selected by @p mask into the low bits. */
uint32_t
extractCompressed(uint32_t v, uint32_t mask)
{
    uint32_t out = 0;
    unsigned pos = 0;
    while (mask) {
        unsigned b = static_cast<unsigned>(std::countr_zero(mask));
        out |= ((v >> b) & 1u) << pos;
        ++pos;
        mask &= mask - 1;
    }
    return out;
}

} // namespace

int
Spec::decode(uint32_t inst) const
{
    const DecodeNode *node = decodeRoot.get();
    while (node && node->testMask) {
        uint32_t key = extractCompressed(inst, node->testMask);
        auto it = node->children.find(key);
        if (it == node->children.end())
            return -1;
        node = it->second.get();
    }
    if (!node)
        return -1;
    for (uint16_t id : node->candidates) {
        const InstrInfo &ii = instrs[id];
        if ((inst & ii.fixedMask) == ii.fixedBits)
            return id;
    }
    return -1;
}

const BuildsetInfo *
Spec::findBuildset(const std::string &name) const
{
    for (const auto &bs : buildsets)
        if (bs.name == name)
            return &bs;
    return nullptr;
}

int
Spec::findSlot(const std::string &name) const
{
    auto it = slotIndex.find(name);
    return it == slotIndex.end() ? -1 : it->second;
}

SlotMask
Spec::slotsForInfoLevel(InfoLevel level) const
{
    SlotMask m = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
        bool vis = false;
        switch (level) {
          case InfoLevel::Min:
            vis = false;
            break;
          case InfoLevel::Decode:
            vis = slots[i].category == FieldCategory::Decode;
            break;
          case InfoLevel::All:
          case InfoLevel::Custom:
            vis = true;
            break;
        }
        if (vis)
            m |= SlotMask{1} << i;
    }
    return m;
}

} // namespace onespec
