/**
 * @file
 * Convenience loaders: read LIS description files from disk, parse, and
 * analyze them into a Spec.
 */

#ifndef ONESPEC_ADL_LOAD_HPP
#define ONESPEC_ADL_LOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "adl/spec.hpp"
#include "support/diag.hpp"

namespace onespec {

/** Read one file; throws ResourceError if it cannot be read. */
std::string readFileOrFatal(const std::string &path);

/**
 * Load and analyze the given description files (merged in order).
 * Returns nullptr and fills @p diags on failure.
 */
std::unique_ptr<Spec> loadSpec(const std::vector<std::string> &paths,
                               DiagnosticEngine &diags);

/** Like loadSpec but throws SpecError carrying the diagnostics.  The
 *  "OrFatal" names are kept for the many call sites; tool mains catch
 *  SimError and exit 1, preserving the old CLI behavior. */
std::unique_ptr<Spec> loadSpecOrFatal(const std::vector<std::string> &paths);

} // namespace onespec

#endif // ONESPEC_ADL_LOAD_HPP
