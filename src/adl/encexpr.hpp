/**
 * @file
 * Evaluator for encoding-only expressions (operand index expressions):
 * pure functions of the instruction word, usable without an instruction
 * execution context.  Shared by decode-time operand-identifier extraction
 * in both back ends.
 */

#ifndef ONESPEC_ADL_ENCEXPR_HPP
#define ONESPEC_ADL_ENCEXPR_HPP

#include <cstdint>

#include "adl/ast.hpp"
#include "adl/eval.hpp"
#include "support/logging.hpp"

namespace onespec {

/** Evaluate an operand index expression against an instruction word. */
inline uint64_t
evalEncExpr(const Expr &e, uint32_t inst, const FormatDecl &fmt)
{
    switch (e.kind) {
      case Expr::Kind::IntLit:
        return normalize(e.intValue, e.type);
      case Expr::Kind::Ident: {
        ONESPEC_ASSERT(e.symKind == SymKind::EncField,
                       "non-encoding identifier in index expression");
        const FormatField &ff = fmt.fields[e.symIndex];
        return bits(inst, ff.hi, ff.lo);
      }
      case Expr::Kind::Unary:
        return evalUnOp(e.unOp, evalEncExpr(*e.a, inst, fmt), e.type);
      case Expr::Kind::Binary: {
        if (e.binOp == BinOp::LogAnd) {
            if (evalEncExpr(*e.a, inst, fmt) == 0)
                return 0;
            return evalEncExpr(*e.b, inst, fmt) != 0;
        }
        if (e.binOp == BinOp::LogOr) {
            if (evalEncExpr(*e.a, inst, fmt) != 0)
                return 1;
            return evalEncExpr(*e.b, inst, fmt) != 0;
        }
        uint64_t a = normalize(evalEncExpr(*e.a, inst, fmt),
                               e.promotedType);
        uint64_t b = evalEncExpr(*e.b, inst, fmt);
        if (e.binOp != BinOp::Shl && e.binOp != BinOp::Shr)
            b = normalize(b, e.promotedType);
        return evalBinOp(e.binOp, a, b, e.promotedType, e.type);
      }
      case Expr::Kind::Ternary:
        return normalize(evalEncExpr(*e.a, inst, fmt)
                             ? evalEncExpr(*e.b, inst, fmt)
                             : evalEncExpr(*e.c, inst, fmt),
                         e.type);
      case Expr::Kind::Cast:
        return normalize(evalEncExpr(*e.a, inst, fmt), e.castType);
      case Expr::Kind::Call:
        break;
    }
    ONESPEC_PANIC("unsupported construct in index expression");
}

} // namespace onespec

#endif // ONESPEC_ADL_ENCEXPR_HPP
