#include "lexer.hpp"

#include <cctype>

#include "support/logging.hpp"

namespace onespec {

const char *
tokKindName(TokKind k)
{
    switch (k) {
      case TokKind::Ident: return "identifier";
      case TokKind::Int: return "integer";
      case TokKind::LBrace: return "'{'";
      case TokKind::RBrace: return "'}'";
      case TokKind::LBracket: return "'['";
      case TokKind::RBracket: return "']'";
      case TokKind::LParen: return "'('";
      case TokKind::RParen: return "')'";
      case TokKind::Colon: return "':'";
      case TokKind::Semi: return "';'";
      case TokKind::Comma: return "','";
      case TokKind::At: return "'@'";
      case TokKind::Question: return "'?'";
      case TokKind::Dot: return "'.'";
      case TokKind::Assign: return "'='";
      case TokKind::Plus: return "'+'";
      case TokKind::Minus: return "'-'";
      case TokKind::Star: return "'*'";
      case TokKind::Slash: return "'/'";
      case TokKind::Percent: return "'%'";
      case TokKind::Amp: return "'&'";
      case TokKind::Pipe: return "'|'";
      case TokKind::Caret: return "'^'";
      case TokKind::Tilde: return "'~'";
      case TokKind::Bang: return "'!'";
      case TokKind::Lt: return "'<'";
      case TokKind::Gt: return "'>'";
      case TokKind::Le: return "'<='";
      case TokKind::Ge: return "'>='";
      case TokKind::EqEq: return "'=='";
      case TokKind::NotEq: return "'!='";
      case TokKind::Shl: return "'<<'";
      case TokKind::Shr: return "'>>'";
      case TokKind::AmpAmp: return "'&&'";
      case TokKind::PipePipe: return "'||'";
      case TokKind::Eof: return "end of file";
    }
    return "?";
}

namespace {

class Lexer
{
  public:
    Lexer(const std::string &src, const std::string &file,
          DiagnosticEngine &diags)
        : src_(src), file_(file), diags_(diags)
    {}

    std::vector<Token> run();

  private:
    char peek(int off = 0) const
    {
        size_t i = pos_ + off;
        return i < src_.size() ? src_[i] : '\0';
    }

    char
    advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    SourceLoc here() const { return {file_, line_, col_}; }

    void push(TokKind k, SourceLoc loc, std::string text = {},
              uint64_t val = 0)
    {
        toks_.push_back({k, std::move(text), val, loc});
    }

    void lexNumber(SourceLoc loc);
    void lexIdent(SourceLoc loc);

    const std::string &src_;
    std::string file_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    std::vector<Token> toks_;
};

void
Lexer::lexNumber(SourceLoc loc)
{
    uint64_t v = 0;
    bool overflow = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        bool any = false;
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
            char c = advance();
            uint64_t d = std::isdigit(static_cast<unsigned char>(c))
                             ? static_cast<uint64_t>(c - '0')
                             : static_cast<uint64_t>(std::tolower(c) - 'a'
                                                     + 10);
            if (v > (~uint64_t{0} >> 4))
                overflow = true;
            v = (v << 4) | d;
            any = true;
        }
        if (!any)
            diags_.error(loc, "hex literal requires at least one digit");
        if (std::isdigit(static_cast<unsigned char>(peek())) ||
            std::isalpha(static_cast<unsigned char>(peek()))) {
            diags_.error(here(), "invalid character in hex literal");
        }
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            uint64_t d = static_cast<uint64_t>(advance() - '0');
            if (v > (~uint64_t{0} - d) / 10)
                overflow = true;
            v = v * 10 + d;
        }
        if (std::isalpha(static_cast<unsigned char>(peek())))
            diags_.error(here(), "invalid character in decimal literal");
    }
    if (overflow)
        diags_.error(loc, "integer literal does not fit in 64 bits");
    push(TokKind::Int, loc, {}, v);
}

void
Lexer::lexIdent(SourceLoc loc)
{
    std::string s;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        s += advance();
    push(TokKind::Ident, loc, std::move(s));
}

std::vector<Token>
Lexer::run()
{
    while (pos_ < src_.size()) {
        SourceLoc loc = here();
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
            continue;
        }
        if (c == '#' || (c == '/' && peek(1) == '/')) {
            while (pos_ < src_.size() && peek() != '\n')
                advance();
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            lexNumber(loc);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            lexIdent(loc);
            continue;
        }
        advance();
        switch (c) {
          case '{': push(TokKind::LBrace, loc); break;
          case '}': push(TokKind::RBrace, loc); break;
          case '[': push(TokKind::LBracket, loc); break;
          case ']': push(TokKind::RBracket, loc); break;
          case '(': push(TokKind::LParen, loc); break;
          case ')': push(TokKind::RParen, loc); break;
          case ':': push(TokKind::Colon, loc); break;
          case ';': push(TokKind::Semi, loc); break;
          case ',': push(TokKind::Comma, loc); break;
          case '@': push(TokKind::At, loc); break;
          case '?': push(TokKind::Question, loc); break;
          case '.': push(TokKind::Dot, loc); break;
          case '+': push(TokKind::Plus, loc); break;
          case '-': push(TokKind::Minus, loc); break;
          case '*': push(TokKind::Star, loc); break;
          case '/': push(TokKind::Slash, loc); break;
          case '%': push(TokKind::Percent, loc); break;
          case '^': push(TokKind::Caret, loc); break;
          case '~': push(TokKind::Tilde, loc); break;
          case '=':
            if (peek() == '=') {
                advance();
                push(TokKind::EqEq, loc);
            } else {
                push(TokKind::Assign, loc);
            }
            break;
          case '!':
            if (peek() == '=') {
                advance();
                push(TokKind::NotEq, loc);
            } else {
                push(TokKind::Bang, loc);
            }
            break;
          case '<':
            if (peek() == '=') {
                advance();
                push(TokKind::Le, loc);
            } else if (peek() == '<') {
                advance();
                push(TokKind::Shl, loc);
            } else {
                push(TokKind::Lt, loc);
            }
            break;
          case '>':
            if (peek() == '=') {
                advance();
                push(TokKind::Ge, loc);
            } else if (peek() == '>') {
                advance();
                push(TokKind::Shr, loc);
            } else {
                push(TokKind::Gt, loc);
            }
            break;
          case '&':
            if (peek() == '&') {
                advance();
                push(TokKind::AmpAmp, loc);
            } else {
                push(TokKind::Amp, loc);
            }
            break;
          case '|':
            if (peek() == '|') {
                advance();
                push(TokKind::PipePipe, loc);
            } else {
                push(TokKind::Pipe, loc);
            }
            break;
          default:
            diags_.error(loc, strcat_args("unexpected character '", c, "'"));
            break;
        }
    }
    push(TokKind::Eof, here());
    return std::move(toks_);
}

} // namespace

std::vector<Token>
lex(const std::string &source, const std::string &filename,
    DiagnosticEngine &diags)
{
    return Lexer(source, filename, diags).run();
}

} // namespace onespec
