/**
 * @file
 * Recursive-descent parser for LIS descriptions.  A description may be
 * split over several files (e.g. the ISA proper, OS support, and shared
 * buildsets); parseFiles merges them into one Description.
 */

#ifndef ONESPEC_ADL_PARSER_HPP
#define ONESPEC_ADL_PARSER_HPP

#include <string>
#include <utility>
#include <vector>

#include "adl/ast.hpp"
#include "support/diag.hpp"

namespace onespec {

/** (source text, file name) pair for one input file. */
struct SourceFile
{
    std::string text;
    std::string name;
};

/**
 * Parse and merge the given files.  Errors go to @p diags; the returned
 * Description is only meaningful if !diags.hasErrors().
 */
Description parseFiles(const std::vector<SourceFile> &files,
                       DiagnosticEngine &diags);

/** Convenience wrapper for a single in-memory source. */
Description parseString(const std::string &text, DiagnosticEngine &diags,
                        const std::string &name = "<input>");

} // namespace onespec

#endif // ONESPEC_ADL_PARSER_HPP
