#include "types.hpp"

#include "support/bitutil.hpp"

namespace onespec {

std::string
ValueType::cppName() const
{
    std::string base = isSigned ? "int" : "uint";
    return base + std::to_string(static_cast<int>(bits)) + "_t";
}

std::string
ValueType::lisName() const
{
    return (isSigned ? "s" : "u") + std::to_string(static_cast<int>(bits));
}

std::optional<ValueType>
parseValueType(const std::string &name)
{
    if (name.size() < 2 || (name[0] != 'u' && name[0] != 's'))
        return std::nullopt;
    bool sgn = name[0] == 's';
    std::string w = name.substr(1);
    if (w == "8")
        return ValueType{8, sgn};
    if (w == "16")
        return ValueType{16, sgn};
    if (w == "32")
        return ValueType{32, sgn};
    if (w == "64")
        return ValueType{64, sgn};
    return std::nullopt;
}

ValueType
promote(ValueType a, ValueType b)
{
    if (a.bits != b.bits)
        return a.bits > b.bits ? a : b;
    if (!a.isSigned || !b.isSigned)
        return ValueType{a.bits, false};
    return a;
}

uint64_t
normalize(uint64_t raw, ValueType t)
{
    if (t.isSigned)
        return sext(raw, t.bits);
    return zext(raw, t.bits);
}

} // namespace onespec
