/**
 * @file
 * Value types of the LIS action language.  Every runtime value is carried
 * in a uint64_t; a ValueType records the logical width and signedness so
 * that the interpreter and the C++ code generator apply identical
 * wrap/extend semantics.
 */

#ifndef ONESPEC_ADL_TYPES_HPP
#define ONESPEC_ADL_TYPES_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace onespec {

/** A scalar value type: u8..u64 or s8..s64. */
struct ValueType
{
    uint8_t bits = 64;
    bool isSigned = false;

    bool operator==(const ValueType &) const = default;

    /** The C++ spelling used by the code generator (e.g. "uint32_t"). */
    std::string cppName() const;

    /** The LIS spelling (e.g. "u32"). */
    std::string lisName() const;
};

constexpr ValueType U8{8, false};
constexpr ValueType U16{16, false};
constexpr ValueType U32{32, false};
constexpr ValueType U64{64, false};
constexpr ValueType S8{8, true};
constexpr ValueType S16{16, true};
constexpr ValueType S32{32, true};
constexpr ValueType S64{64, true};

/** Parse a LIS type name; nullopt if @p name is not a type. */
std::optional<ValueType> parseValueType(const std::string &name);

/**
 * C-like promotion for binary operators: the wider type wins; at equal
 * width, unsigned wins.
 */
ValueType promote(ValueType a, ValueType b);

/** Truncate/extend @p raw (a bag of 64 bits) to be a valid value of @p t. */
uint64_t normalize(uint64_t raw, ValueType t);

} // namespace onespec

#endif // ONESPEC_ADL_TYPES_HPP
