#include "load.hpp"

#include <fstream>
#include <sstream>

#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "support/logging.hpp"
#include "support/sim_error.hpp"

namespace onespec {

std::string
readFileOrFatal(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ResourceError("loader", "cannot read '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::unique_ptr<Spec>
loadSpec(const std::vector<std::string> &paths, DiagnosticEngine &diags)
{
    std::vector<SourceFile> files;
    for (const auto &p : paths)
        files.push_back({readFileOrFatal(p), p});
    Description desc = parseFiles(files, diags);
    if (diags.hasErrors())
        return nullptr;
    auto spec = analyze(std::move(desc), diags);
    if (diags.hasErrors())
        return nullptr;
    return spec;
}

std::unique_ptr<Spec>
loadSpecOrFatal(const std::vector<std::string> &paths)
{
    DiagnosticEngine diags;
    auto spec = loadSpec(paths, diags);
    if (!spec)
        throw SpecError("adl", "description errors:\n" + diags.str());
    return spec;
}

} // namespace onespec
