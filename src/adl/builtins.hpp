/**
 * @file
 * Builtin functions callable from LIS action code.  The table is shared by
 * semantic analysis (arity/typing), the interpreter (evaluation), and the
 * C++ code generator (emission), so the three can never disagree about a
 * builtin's meaning.
 */

#ifndef ONESPEC_ADL_BUILTINS_HPP
#define ONESPEC_ADL_BUILTINS_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "adl/types.hpp"

namespace onespec {

enum class Builtin : int
{
    Sext8, Sext16, Sext32,
    Zext8, Zext16, Zext32,
    Rotl32, Rotr32, Rotl64, Rotr64,
    Clz32, Clz64, Ctz32, Ctz64,
    Popcount,
    Addc32, Addv32, Addc64, Addv64,
    MulhU64, MulhS64,
    LoadU8, LoadU16, LoadU32, LoadU64,
    StoreU8, StoreU16, StoreU32, StoreU64,
    Branch,
    Fault,
    SyscallEmu,
    Halt,
    NumBuiltins,
};

constexpr int kNumBuiltins = static_cast<int>(Builtin::NumBuiltins);

/** Static description of one builtin. */
struct BuiltinInfo
{
    const char *name;
    int numArgs;
    ValueType result;       ///< meaningless for void builtins
    bool isVoid;            ///< no usable result (store/branch/fault/...)
    bool isMemLoad;
    bool isMemStore;
    bool isControlFlow;     ///< branch/fault/syscall/halt end a basic block
};

/** Table indexed by Builtin. */
const BuiltinInfo &builtinInfo(Builtin b);

/** Look up a builtin by name; nullopt if @p name is not a builtin. */
std::optional<Builtin> lookupBuiltin(const std::string &name);

/** Fault codes used by fault() and raised by the runtime itself. */
enum class FaultKind : uint8_t
{
    None = 0,
    IllegalInstr = 1,
    Unaligned = 2,
    BadMemory = 3,
    Trap = 4,       ///< description-raised trap
    Syscall = 5,    ///< internal: OS emulation requested (handled, not fatal)
};

const char *faultKindName(FaultKind k);

} // namespace onespec

#endif // ONESPEC_ADL_BUILTINS_HPP
