/**
 * @file
 * Abstract syntax tree for LIS descriptions.  Two layers:
 *
 *  - declaration level: isa properties, architectural state, fields,
 *    instruction formats, opclasses, instructions, buildsets;
 *  - action level: the C-subset action language in which instruction
 *    semantics are written.
 *
 * The same action AST drives both the interpreter and the C++ code
 * generator -- this is what makes the specification genuinely single.
 */

#ifndef ONESPEC_ADL_AST_HPP
#define ONESPEC_ADL_AST_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adl/types.hpp"
#include "support/diag.hpp"

namespace onespec {

// ---------------------------------------------------------------------
// Action language
// ---------------------------------------------------------------------

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class UnOp { Neg, BitNot, LogNot };

enum class BinOp
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    LogAnd, LogOr,
};

/** How an identifier in action code was resolved (filled in by sema). */
enum class SymKind
{
    Unresolved,
    Local,      ///< action-local variable
    Slot,       ///< declared field or operand value slot
    EncField,   ///< bitfield of the instruction's format
    ImplicitPc, ///< current instruction's PC
    ImplicitNpc,///< next PC (default pc + instr_bytes; changed by branch())
    ImplicitInst,///< raw instruction word
};

struct Expr
{
    enum class Kind { IntLit, Ident, Unary, Binary, Ternary, Cast, Call };

    Kind kind;
    SourceLoc loc;

    // IntLit
    uint64_t intValue = 0;

    // Ident
    std::string name;
    SymKind symKind = SymKind::Unresolved;
    int symIndex = -1;      ///< slot index / local index / format-field index

    // Unary / Binary / Ternary / Cast / Call operands
    UnOp unOp = UnOp::Neg;
    BinOp binOp = BinOp::Add;
    ExprPtr a, b, c;        ///< operands (ternary: a ? b : c)
    ValueType castType;     // Cast
    std::vector<ExprPtr> args; // Call
    int builtinIndex = -1;  ///< resolved builtin id (sema)

    /** Static type, computed by sema. */
    ValueType type = U64;

    /**
     * For Binary: the promoted type the operands are evaluated at (for
     * shifts, the left operand's type).  Comparisons compare at this type
     * even though their result type is u8.
     */
    ValueType promotedType = U64;
};

struct Stmt
{
    enum class Kind { Block, LocalDecl, Assign, If, While, ExprStmt,
                      Inline };

    Kind kind;
    SourceLoc loc;

    // Block
    std::vector<StmtPtr> body;

    // LocalDecl (name, declType); Inline (name = helper to splice)
    ValueType declType;
    std::string name;
    int localIndex = -1;    ///< assigned by sema
    ExprPtr init;

    // Assign: target = value
    ExprPtr target;         ///< must resolve to Local or Slot
    ExprPtr value;

    // If / While
    ExprPtr cond;
    StmtPtr thenStmt, elseStmt; // While uses thenStmt as body
};

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

/** Global properties of the described ISA. */
struct IsaProps
{
    std::string name;
    unsigned wordBits = 64;     ///< architectural word size
    unsigned instrBytes = 4;    ///< fixed instruction size in bytes
    bool littleEndian = true;
    SourceLoc loc;
};

/** A register file, e.g. `regfile R[32] : u64 zero 31;`. */
struct RegFileDecl
{
    std::string name;
    unsigned count = 0;
    ValueType type;
    int zeroReg = -1;   ///< index that reads 0 / discards writes, or -1
    SourceLoc loc;
};

/** A scalar architectural register, e.g. `reg CPSR : u32;`. */
struct RegDecl
{
    std::string name;
    ValueType type;
    SourceLoc loc;
};

/** A reference to architectural state in the abi block: R[3] or CPSR. */
struct StateRef
{
    std::string name;   ///< regfile or scalar reg name
    int index = -1;     ///< element index; -1 for scalar regs
    SourceLoc loc;
};

/** OS-emulation ABI: which registers carry syscall number/args/results. */
struct AbiDecl
{
    StateRef syscallNum;
    std::vector<StateRef> args;
    StateRef ret;
    StateRef error;     ///< optional (name empty if absent)
    StateRef stack;
    SourceLoc loc;
};

/** Informational-detail category a field belongs to. */
enum class FieldCategory
{
    All,    ///< visible only at `info all`
    Decode, ///< also visible at `info decode` (e.g. effective addresses)
};

/** An intermediate value, e.g. `field effective_addr : u64 decode;`. */
struct FieldDecl
{
    std::string name;
    ValueType type;
    FieldCategory category = FieldCategory::All;
    SourceLoc loc;
};

/** One bitfield of an instruction format. */
struct FormatField
{
    std::string name;
    unsigned hi = 0, lo = 0;
    SourceLoc loc;
};

/** An instruction encoding format, e.g. `format MEM { op[31:26] ... }`. */
struct FormatDecl
{
    std::string name;
    std::vector<FormatField> fields;
    SourceLoc loc;
};

/** One conjunct of an instruction's `match` clause: encfield == value. */
struct MatchCond
{
    std::string field;
    uint64_t value = 0;
    SourceLoc loc;
};

/**
 * An operand declaration: `src base = R[rb];` or `dst flags = CPSR;`.
 * Reading happens at the read_operands step, writing at writeback; the
 * index expression is evaluated at decode.
 */
struct OperandDecl
{
    bool isDst = false;
    std::string slotName;
    std::string stateName;  ///< regfile or scalar reg
    ExprPtr indexExpr;      ///< null for scalar regs
    SourceLoc loc;
};

/**
 * A named semantic snippet: `action execute { ... }`.  A `late` action
 * (`action late execute { ... }`) runs after all non-late actions of the
 * same step; opclasses use this to wrap instruction-provided code (e.g. a
 * branch class that tests a condition the instruction computes).
 */
struct ActionDecl
{
    std::string step;
    bool late = false;
    StmtPtr body;
    SourceLoc loc;
};

/**
 * A named reusable action snippet, spliced into action bodies with
 * `inline <name>;` (e.g. the ARM condition-code check shared by every
 * conditional instruction class).
 */
struct HelperDecl
{
    std::string name;
    StmtPtr body;
    SourceLoc loc;
};

/** Shared behaviour for a group of instructions. */
struct OpClassDecl
{
    std::string name;
    std::string formatName;     ///< optional
    std::string baseClass;      ///< optional parent opclass
    std::vector<MatchCond> match;
    std::vector<OperandDecl> operands;
    std::vector<ActionDecl> actions;
    SourceLoc loc;
};

/** One instruction. */
struct InstrDecl
{
    std::string name;
    std::string formatName;     ///< optional if the opclass has one
    std::string className;      ///< optional opclass
    std::vector<MatchCond> match;
    std::vector<OperandDecl> operands;
    std::vector<ActionDecl> actions;
    SourceLoc loc;
};

/** Semantic-detail shorthand levels (the paper's Block/One/Step). */
enum class SemanticLevel { Block, One, Step, Custom };

/** Informational-detail shorthand levels (the paper's Min/Decode/All). */
enum class InfoLevel { Min, Decode, All, Custom };

/** A custom entrypoint: `entrypoint front = fetch, decode;`. */
struct EntrypointDecl
{
    std::string name;
    std::vector<std::string> steps;
    SourceLoc loc;
};

/**
 * An interface specification (the paper's `buildset` construct): which
 * entrypoints exist (semantic detail), which fields are visible
 * (informational detail), and whether rollback support is generated.
 */
struct BuildsetDecl
{
    std::string name;
    SemanticLevel semantic = SemanticLevel::One;
    InfoLevel info = InfoLevel::All;
    bool speculation = false;
    std::vector<EntrypointDecl> entrypoints;    ///< when semantic==Custom
    std::vector<std::string> hideList;          ///< visibility hide ...
    std::vector<std::string> showList;          ///< visibility show ...
    SourceLoc loc;
};

/** A whole parsed description (possibly merged from several files). */
struct Description
{
    IsaProps isa;
    std::vector<RegFileDecl> regfiles;
    std::vector<RegDecl> regs;
    AbiDecl abi;
    std::vector<FieldDecl> fields;
    std::vector<FormatDecl> formats;
    std::vector<HelperDecl> helpers;
    std::vector<OpClassDecl> classes;
    std::vector<InstrDecl> instrs;
    std::vector<BuildsetDecl> buildsets;
};

/** Deep copy helpers (opclass bodies are cloned into instructions). */
ExprPtr cloneExpr(const Expr &e);
StmtPtr cloneStmt(const Stmt &s);

} // namespace onespec

#endif // ONESPEC_ADL_AST_HPP
