#include "fault/fault.hpp"

#include "obs/flight_recorder.hpp"
#include "stats/trace.hpp"

namespace onespec {
namespace fault {

const char *
faultOpName(FaultOp op)
{
    switch (op) {
      case FaultOp::MemReadBitFlip:  return "mem_read_bitflip";
      case FaultOp::MemWriteBitFlip: return "mem_write_bitflip";
      case FaultOp::MemAccessFault:  return "mem_access_fault";
      case FaultOp::SyscallFail:     return "syscall_fail";
      case FaultOp::CorruptInstr:    return "corrupt_instr";
      case FaultOp::PcBitFlip:       return "pc_bitflip";
      case FaultOp::RegBitFlip:      return "reg_bitflip";
      case FaultOp::CkptBitFlip:     return "ckpt_bitflip";
      case FaultOp::CkptTruncate:    return "ckpt_truncate";
    }
    return "?";
}

bool
isStateFault(FaultOp op)
{
    return op == FaultOp::CorruptInstr || op == FaultOp::PcBitFlip ||
           op == FaultOp::RegBitFlip;
}

namespace {

/** splitmix64: the one-integer seeded generator used everywhere a plan
 *  needs a derived value, so plans replay across platforms. */
uint64_t
mix(uint64_t &s)
{
    s += 0x9e3779b97f4a7c15ull;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Every e.fired=true site funnels through here: observers (TraceBus,
 *  flight recorder) see each injected fault exactly once, with its op
 *  and trigger ordinal.  Cold by construction -- a plan event fires at
 *  most once. */
void
noteFired(const FaultEvent &e)
{
    ONESPEC_TRACE("fault", "inject", static_cast<unsigned>(e.op),
                  e.trigger);
    ONESPEC_FR_INSTANT(obs::EvType::Fault, 0,
                       static_cast<unsigned>(e.op), e.trigger);
}

} // namespace

FaultPlan
FaultPlan::random(uint64_t seed, uint64_t max_trigger,
                  const std::vector<FaultOp> &menu, unsigned count)
{
    FaultPlan plan;
    plan.seed = seed;
    if (menu.empty() || max_trigger == 0)
        return plan;
    uint64_t s = seed;
    for (unsigned i = 0; i < count; ++i) {
        FaultEvent e;
        e.op = menu[mix(s) % menu.size()];
        e.trigger = 1 + mix(s) % max_trigger;
        e.target = mix(s);
        e.bit = static_cast<unsigned>(mix(s) % 64);
        plan.events.push_back(e);
    }
    return plan;
}

void
FaultInjector::attach(SimContext &ctx)
{
    detach();
    ctx_ = &ctx;
    reads_ = writes_ = syscalls_ = 0;
    ctx.mem().setFaultHook(this);
    ctx.os().setSyscallHook(this);
}

void
FaultInjector::detach()
{
    if (!ctx_)
        return;
    ctx_->mem().setFaultHook(nullptr);
    ctx_->os().setSyscallHook(nullptr);
    ctx_ = nullptr;
}

void
FaultInjector::onRead(uint64_t, unsigned len, uint64_t &value,
                      FaultKind &fault)
{
    ++reads_;
    for (auto &e : plan_.events) {
        if (e.fired)
            continue;
        if (e.op == FaultOp::MemReadBitFlip && e.trigger == reads_) {
            value ^= uint64_t{1} << (e.bit % (8 * len));
            e.fired = true;
            noteFired(e);
        } else if (e.op == FaultOp::MemAccessFault &&
                   e.trigger == reads_ + writes_) {
            fault = FaultKind::BadMemory;
            e.fired = true;
            noteFired(e);
        }
    }
}

void
FaultInjector::onWrite(uint64_t, unsigned len, uint64_t &value,
                       FaultKind &fault)
{
    ++writes_;
    for (auto &e : plan_.events) {
        if (e.fired)
            continue;
        if (e.op == FaultOp::MemWriteBitFlip && e.trigger == writes_) {
            value ^= uint64_t{1} << (e.bit % (8 * len));
            e.fired = true;
            noteFired(e);
        } else if (e.op == FaultOp::MemAccessFault &&
                   e.trigger == reads_ + writes_) {
            fault = FaultKind::BadMemory;
            e.fired = true;
            noteFired(e);
        }
    }
}

bool
FaultInjector::onSyscall(uint64_t)
{
    ++syscalls_;
    bool fail = false;
    for (auto &e : plan_.events) {
        if (!e.fired && e.op == FaultOp::SyscallFail &&
            e.trigger == syscalls_) {
            e.fired = true;
            fail = true;
            noteFired(e);
        }
    }
    return fail;
}

uint64_t
FaultInjector::nextStateTrigger() const
{
    uint64_t next = ~uint64_t{0};
    for (const auto &e : plan_.events)
        if (!e.fired && isStateFault(e.op) && e.trigger < next)
            next = e.trigger;
    return next;
}

bool
FaultInjector::applyStateFaults(SimContext &ctx)
{
    bool any = false;
    for (auto &e : plan_.events) {
        if (e.fired || !isStateFault(e.op) ||
            ctx.instrsRetired() < e.trigger)
            continue;
        switch (e.op) {
          case FaultOp::CorruptInstr: {
            // Flip a bit of the word at pc such that it no longer
            // decodes (tries all 32 flips starting from the planned
            // bit); if every flip still decodes, degrade to an
            // address-limit PC fault so detection stays guaranteed.
            uint64_t pc = ctx.state().pc();
            uint32_t w = 0;
            for (unsigned i = 0; i < 4; ++i)
                w |= static_cast<uint32_t>(ctx.mem().readByte(pc + i))
                     << (8 * i);
            if (ctx.mem().bigEndian())
                w = __builtin_bswap32(w);
            bool done = false;
            for (unsigned i = 0; i < 32 && !done; ++i) {
                uint32_t c = w ^ (uint32_t{1} << ((e.bit + i) % 32));
                if (ctx.spec().decode(c) < 0) {
                    uint32_t stored =
                        ctx.mem().bigEndian() ? __builtin_bswap32(c) : c;
                    for (unsigned j = 0; j < 4; ++j)
                        ctx.mem().writeByte(
                            pc + j, static_cast<uint8_t>(stored >> (8 * j)));
                    done = true;
                }
            }
            if (!done)
                ctx.state().setPc(pc ^ (uint64_t{1} << (48 + e.bit % 15)));
            break;
          }

          case FaultOp::PcBitFlip:
            // Bits [48, 62] put the PC past Memory::kAddrLimit, so the
            // next fetch raises BadMemory deterministically.
            ctx.state().setPc(ctx.state().pc() ^
                              (uint64_t{1} << (48 + e.bit % 15)));
            break;

          case FaultOp::RegBitFlip: {
            unsigned n = ctx.state().numWords();
            if (n > 0) {
                unsigned off = static_cast<unsigned>(e.target % n);
                ctx.state().setRawWord(off, ctx.state().rawWord(off) ^
                                                (uint64_t{1} << (e.bit % 64)));
            }
            break;
          }

          default:
            break;
        }
        e.fired = true;
        any = true;
        noteFired(e);
    }
    return any;
}

bool
FaultInjector::corruptContainer(std::vector<uint8_t> &bytes)
{
    bool any = false;
    for (auto &e : plan_.events) {
        if (e.fired || bytes.empty())
            continue;
        if (e.op == FaultOp::CkptBitFlip) {
            bytes[e.trigger % bytes.size()] ^=
                static_cast<uint8_t>(1u << (e.bit % 8));
            e.fired = true;
            any = true;
            noteFired(e);
        } else if (e.op == FaultOp::CkptTruncate) {
            bytes.resize(e.trigger % bytes.size());
            e.fired = true;
            any = true;
            noteFired(e);
        }
    }
    return any;
}

unsigned
FaultInjector::firedCount() const
{
    unsigned n = 0;
    for (const auto &e : plan_.events)
        n += e.fired;
    return n;
}

} // namespace fault
} // namespace onespec
