/**
 * @file
 * Deterministic fault injection: seeded plans of discrete fault events
 * driven through the hooks in Memory, OsEmulator, and (for serialized
 * checkpoints) plain byte-level corruption, so the detection machinery
 * -- FaultKind, CRC rejection, RunStatus::Fault, the SimError taxonomy
 * -- is exercised end to end instead of trusted by inspection.
 *
 * Everything is derived from the plan's seed: the same plan against the
 * same workload injects the same faults at the same points, so a fuzz
 * failure replays from two integers.
 *
 * Event classes and who applies them:
 *
 *   access faults   (MemReadBitFlip, MemWriteBitFlip, MemAccessFault,
 *                   SyscallFail) fire inside the Memory/OsEmulator hooks
 *                   when the running access/syscall count reaches the
 *                   event's trigger.
 *   state faults    (CorruptInstr, PcBitFlip, RegBitFlip) are applied by
 *                   the *driver* between run chunks once the retired-
 *                   instruction count reaches the trigger -- simulators
 *                   cache decoded instructions, so perturbing state from
 *                   a read hook would be invisible; the driver must call
 *                   FunctionalSimulator::onStateRestored() afterwards to
 *                   flush those caches.
 *   container faults (CkptBitFlip, CkptTruncate) corrupt a serialized
 *                   checkpoint image via corruptContainer().
 *
 * With no injector attached the hot-path cost is one never-taken branch
 * per access (see Memory::read); bench_fault_containment measures it.
 */

#ifndef ONESPEC_FAULT_FAULT_HPP
#define ONESPEC_FAULT_FAULT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.hpp"

namespace onespec {
namespace fault {

enum class FaultOp : uint8_t
{
    MemReadBitFlip,  ///< flip one bit in the value of the Nth memory read
    MemWriteBitFlip, ///< flip one bit in the value of the Nth memory write
    MemAccessFault,  ///< raise BadMemory on the Nth memory access
    SyscallFail,     ///< force the Nth OS call to fail with -1/error
    CorruptInstr,    ///< make the instruction at pc undecodable at retired>=N
    PcBitFlip,       ///< flip a high PC bit (address-limit fault) at retired>=N
    RegBitFlip,      ///< flip one register bit at retired>=N
    CkptBitFlip,     ///< flip one bit of a serialized checkpoint image
    CkptTruncate,    ///< truncate a serialized checkpoint image
};

const char *faultOpName(FaultOp op);

/** Whether @p op is applied between run chunks by the driver (as opposed
 *  to firing inside an access hook or against a serialized container). */
bool isStateFault(FaultOp op);

/** One scheduled fault. */
struct FaultEvent
{
    FaultOp op = FaultOp::MemReadBitFlip;
    /** Access-class: the 1-based access/syscall ordinal to perturb.
     *  State-class: the retired-instruction threshold.
     *  Container-class: a byte-position selector (reduced mod size). */
    uint64_t trigger = 0;
    uint64_t target = 0; ///< RegBitFlip: state-word selector; else unused
    unsigned bit = 0;    ///< bit to flip (reduced mod width at the site)
    bool fired = false;  ///< set once the fault was actually injected
};

/** A seeded, replayable schedule of fault events. */
struct FaultPlan
{
    uint64_t seed = 0;
    std::vector<FaultEvent> events;

    /** True when no event could ever fire (empty plan). */
    bool empty() const { return events.empty(); }

    /**
     * Derive a plan of @p count events from @p seed, ops drawn uniformly
     * from @p menu, triggers in [1, max_trigger].  Deterministic.
     */
    static FaultPlan random(uint64_t seed, uint64_t max_trigger,
                            const std::vector<FaultOp> &menu,
                            unsigned count = 1);
};

/**
 * Applies a FaultPlan to one SimContext.  Implements the Memory and
 * OsEmulator hook interfaces for access-class events and exposes driver
 * entry points for state- and container-class events.  One injector
 * serves one context; the fleet creates one per faulted job.
 */
class FaultInjector final : public Memory::FaultHook,
                            public OsEmulator::SyscallHook
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}
    ~FaultInjector() override { detach(); }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install the hooks on @p ctx (detaching from any previous one). */
    void attach(SimContext &ctx);
    void detach();

    // Memory::FaultHook
    void onRead(uint64_t addr, unsigned len, uint64_t &value,
                FaultKind &fault) override;
    void onWrite(uint64_t addr, unsigned len, uint64_t &value,
                 FaultKind &fault) override;

    // OsEmulator::SyscallHook
    bool onSyscall(uint64_t num) override;

    /** Smallest unfired state-class trigger, or UINT64_MAX if none --
     *  the driver chunks its run so it stops at this retired count. */
    uint64_t nextStateTrigger() const;

    /**
     * Apply every unfired state-class event whose trigger has been
     * reached (ctx.instrsRetired() >= trigger).  Returns true if any
     * state was perturbed; the caller must then invalidate simulator
     * caches via FunctionalSimulator::onStateRestored().
     */
    bool applyStateFaults(SimContext &ctx);

    /** Apply container-class events to a serialized checkpoint image.
     *  Returns true if @p bytes was modified. */
    bool corruptContainer(std::vector<uint8_t> &bytes);

    /** Number of events that have actually been injected so far. */
    unsigned firedCount() const;

    const FaultPlan &plan() const { return plan_; }

  private:
    FaultPlan plan_;
    SimContext *ctx_ = nullptr;
    uint64_t reads_ = 0;
    uint64_t writes_ = 0;
    uint64_t syscalls_ = 0;
};

} // namespace fault
} // namespace onespec

#endif // ONESPEC_FAULT_FAULT_HPP
