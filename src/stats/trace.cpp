#include "trace.hpp"

#include <cstring>

namespace onespec::stats {

TraceBus &
TraceBus::instance()
{
    static TraceBus bus;
    return bus;
}

int
TraceBus::addHook(Hook hook, std::string category)
{
    std::lock_guard<std::mutex> lock(m_);
    int id = nextId_++;
    hooks_.push_back({id, std::move(category), std::move(hook)});
    nactive_.store(static_cast<unsigned>(hooks_.size()),
                   std::memory_order_relaxed);
    return id;
}

void
TraceBus::removeHook(int id)
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
        if (it->id == id) {
            hooks_.erase(it);
            break;
        }
    }
    nactive_.store(static_cast<unsigned>(hooks_.size()),
                   std::memory_order_relaxed);
}

void
TraceBus::emit(const TraceEvent &ev)
{
    // Delivery holds the mutex: a hook registered mid-emission either
    // sees this event or the next one, never a half-written Entry.
    // Trace points are warm-path by contract (see file comment), so the
    // serialization cost is acceptable; the hot-path gate is active().
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &h : hooks_) {
        if (h.category.empty() ||
            std::strcmp(h.category.c_str(), ev.category) == 0)
            h.hook(ev);
    }
}

} // namespace onespec::stats
