#include "trace.hpp"

#include <cstring>

namespace onespec::stats {

TraceBus &
TraceBus::instance()
{
    static TraceBus bus;
    return bus;
}

int
TraceBus::addHook(Hook hook, std::string category)
{
    int id = nextId_++;
    hooks_.push_back({id, std::move(category), std::move(hook)});
    ++nactive_;
    return id;
}

void
TraceBus::removeHook(int id)
{
    for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
        if (it->id == id) {
            hooks_.erase(it);
            --nactive_;
            return;
        }
    }
}

void
TraceBus::emit(const TraceEvent &ev)
{
    for (const auto &h : hooks_) {
        if (h.category.empty() ||
            std::strcmp(h.category.c_str(), ev.category) == 0)
            h.hook(ev);
    }
}

} // namespace onespec::stats
