#include "trace.hpp"

#include <cstring>

namespace onespec::stats {

TraceBus &
TraceBus::instance()
{
    static TraceBus bus;
    return bus;
}

int
TraceBus::addHook(Hook hook, std::string category)
{
    std::lock_guard<std::mutex> lock(m_);
    int id = nextId_++;
    auto next = hooks_ ? std::make_shared<HookList>(*hooks_)
                       : std::make_shared<HookList>();
    next->push_back({id, std::move(category), std::move(hook)});
    nactive_.store(static_cast<unsigned>(next->size()),
                   std::memory_order_relaxed);
    hooks_ = std::move(next);
    return id;
}

void
TraceBus::removeHook(int id)
{
    std::lock_guard<std::mutex> lock(m_);
    if (!hooks_)
        return;
    auto next = std::make_shared<HookList>(*hooks_);
    for (auto it = next->begin(); it != next->end(); ++it) {
        if (it->id == id) {
            next->erase(it);
            break;
        }
    }
    nactive_.store(static_cast<unsigned>(next->size()),
                   std::memory_order_relaxed);
    hooks_ = std::move(next);
}

void
TraceBus::emit(const TraceEvent &ev)
{
    // Copy-on-write delivery: grab the current immutable hook list under
    // the mutex, then deliver unlocked.  A hook registered mid-emission
    // sees the next event; a hook removed mid-emission may still see this
    // one (the snapshot keeps its callable alive).  Crucially, a hook may
    // itself call addHook()/removeHook() without deadlocking.
    std::shared_ptr<const HookList> snap;
    {
        std::lock_guard<std::mutex> lock(m_);
        snap = hooks_;
    }
    if (!snap)
        return;
    for (const auto &h : *snap) {
        if (h.category.empty() ||
            std::strcmp(h.category.c_str(), ev.category) == 0)
            h.hook(ev);
    }
}

} // namespace onespec::stats
