#include "sharded.hpp"

#include <atomic>

#include "support/logging.hpp"

namespace onespec::stats {

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

void
mergeInto(StatGroup &dst, const StatGroup &src)
{
    for (const auto &s : src.statList()) {
        switch (s->kind()) {
          case StatKind::Counter: {
            const auto &c = static_cast<const Counter &>(*s);
            dst.counter(c.name(), c.description()).add(c.value());
            break;
          }
          case StatKind::Scalar: {
            const auto &v = static_cast<const Scalar &>(*s);
            dst.scalar(v.name(), v.description()).set(v.value());
            break;
          }
          case StatKind::Distribution: {
            const auto &d = static_cast<const Distribution &>(*s);
            dst.distribution(d.name(), d.description(), d.lo(), d.hi(),
                             d.numBuckets())
                .mergeFrom(d);
            break;
          }
          case StatKind::Formula:
            // A formula closes over counters of its own registry;
            // moving it across would leave dangling references once the
            // shard dies.  Producers re-register on the aggregate.
            break;
        }
    }
    for (const auto &g : src.groupList())
        mergeInto(dst.group(g->name()), *g);
}

void
mergeInto(StatsRegistry &dst, const StatsRegistry &src)
{
    mergeInto(dst.root(), src.root());
}

// ---------------------------------------------------------------------
// ShardedStats
// ---------------------------------------------------------------------

namespace {

/** One-slot thread-local cache: (instance id, epoch) -> shard.  A thread
 *  alternating between two ShardedStats instances re-registers a shard
 *  on each switch, which is correct, just not cached. */
struct TlsCache
{
    uint64_t id = 0;
    uint64_t epoch = 0;
    StatsRegistry *reg = nullptr;
};

thread_local TlsCache tls_cache;

std::atomic<uint64_t> next_instance_id{1};

} // namespace

ShardedStats::ShardedStats() : id_(next_instance_id.fetch_add(1)) {}

StatsRegistry &
ShardedStats::local()
{
    if (tls_cache.id == id_ && tls_cache.epoch == epoch_)
        return *tls_cache.reg;
    std::lock_guard<std::mutex> lock(m_);
    shards_.push_back(std::make_unique<StatsRegistry>());
    tls_cache = {id_, epoch_, shards_.back().get()};
    return *tls_cache.reg;
}

void
ShardedStats::aggregate(StatsRegistry &into) const
{
    std::lock_guard<std::mutex> lock(m_);
    for (const auto &shard : shards_)
        mergeInto(into, *shard);
}

void
ShardedStats::clear()
{
    std::lock_guard<std::mutex> lock(m_);
    shards_.clear();
    ++epoch_;
}

size_t
ShardedStats::shardCount() const
{
    std::lock_guard<std::mutex> lock(m_);
    return shards_.size();
}

} // namespace onespec::stats
