/**
 * @file
 * The hierarchical statistics registry (gem5-style).  Every measurable
 * quantity in the system -- interface crossings, decode-cache behavior,
 * timing-model miss counts, host-instruction costs -- is a named node in
 * one tree, so a whole run can be dumped as text or JSON and diffed
 * across commits.
 *
 * Node kinds:
 *   Counter       monotonically-increasing uint64 (events, calls, hits)
 *   Scalar        a double set by the producer (MIPS, ratios, seconds)
 *   Distribution  bucketed samples with mean/min/max and quantiles
 *   Formula       a derived value computed at dump time from a callable
 *
 * Naming convention: groups and stats use lower_snake_case segments
 * joined by '.', e.g. "iface.alpha64.BlockMinNo.execute_block_calls"
 * (buildset names keep their canonical CamelCase).  Requesting an
 * existing node of the same kind returns it (producers accumulate);
 * requesting an existing name with a different kind is fatal.
 *
 * Ownership: the registry owns every node.  Producers hold references to
 * registry-owned nodes; those stay valid for the registry's lifetime, so
 * a Formula may safely capture references to sibling Counters.
 *
 * Threading: a registry is NOT internally synchronized.  Use one of two
 * disciplines: (a) confine a registry to one thread (each SimFleet job
 * owns its own and the fleet merges them afterwards), or (b) publish
 * through stats/sharded.hpp, which gives every thread a lock-free local
 * shard and an explicit aggregate() merge.  Concurrent unsynchronized
 * mutation of one registry is a bug.
 */

#ifndef ONESPEC_STATS_STATS_HPP
#define ONESPEC_STATS_STATS_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "stats/json.hpp"

namespace onespec::stats {

/** Discriminator for registry nodes. */
enum class StatKind : uint8_t
{
    Counter,
    Scalar,
    Distribution,
    Formula,
};

/** Base of all leaf statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

    virtual StatKind kind() const = 0;
    /** Current value as JSON (number for simple stats, object for
     *  distributions). */
    virtual Json toJson() const = 0;
    /** Zero the accumulated value (no-op for formulas). */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic event counter. */
class Counter final : public Stat
{
  public:
    using Stat::Stat;

    StatKind kind() const override { return StatKind::Counter; }
    Json toJson() const override { return Json(v_); }
    void reset() override { v_ = 0; }

    uint64_t value() const { return v_; }
    void add(uint64_t n) { v_ += n; }
    Counter &operator+=(uint64_t n) { v_ += n; return *this; }
    Counter &operator++() { ++v_; return *this; }

  private:
    uint64_t v_ = 0;
};

/** Producer-set floating-point value. */
class Scalar final : public Stat
{
  public:
    using Stat::Stat;

    StatKind kind() const override { return StatKind::Scalar; }
    Json toJson() const override { return Json(v_); }
    void reset() override { v_ = 0.0; }

    double value() const { return v_; }
    void set(double v) { v_ = v; }
    Scalar &operator=(double v) { v_ = v; return *this; }

  private:
    double v_ = 0.0;
};

/**
 * Linear-bucketed sample distribution over [lo, hi).  Samples outside
 * the range land in underflow/overflow buckets.  Quantiles are estimated
 * by linear interpolation within the containing bucket, which is exact
 * enough for the "how deep do rollbacks go" class of question.
 */
class Distribution final : public Stat
{
  public:
    Distribution(std::string name, std::string desc, double lo, double hi,
                 unsigned buckets);

    StatKind kind() const override { return StatKind::Distribution; }
    Json toJson() const override;
    void reset() override;

    void sample(double x, uint64_t n = 1);

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minSeen() const { return count_ ? min_ : 0.0; }
    double maxSeen() const { return count_ ? max_ : 0.0; }
    /** Estimated value at quantile @p p in [0, 1]. */
    double quantile(double p) const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }

    /** Bucket-wise accumulate @p o into this distribution (the sharded
     *  stats merge path).  Both must have the same lo/hi/bucket shape. */
    void mergeFrom(const Distribution &o);

  private:
    double lo_, hi_, bucketWidth_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0, overflow_ = 0;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0, max_ = 0.0;
};

/** Value derived at dump time (ratios, rates, geomeans over counters). */
class Formula final : public Stat
{
  public:
    using Fn = std::function<double()>;

    Formula(std::string name, std::string desc, Fn fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    StatKind kind() const override { return StatKind::Formula; }
    Json toJson() const override { return Json(value()); }
    void reset() override {}

    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    Fn fn_;
};

/** An interior node: named stats plus named child groups, both in
 *  insertion order. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Child group, created on first request. */
    StatGroup &group(const std::string &name);

    Counter &counter(const std::string &name, const std::string &desc);
    Scalar &scalar(const std::string &name, const std::string &desc);
    Distribution &distribution(const std::string &name,
                               const std::string &desc, double lo,
                               double hi, unsigned buckets);
    Formula &formula(const std::string &name, const std::string &desc,
                     Formula::Fn fn);

    /** Leaf stat by name in this group; nullptr if absent. */
    Stat *find(const std::string &name) const;
    /** Child group by name; nullptr if absent. */
    StatGroup *findGroup(const std::string &name) const;

    const std::vector<std::unique_ptr<Stat>> &statList() const
    {
        return stats_;
    }
    const std::vector<std::unique_ptr<StatGroup>> &groupList() const
    {
        return groups_;
    }

    /** Recursively zero every stat beneath this group. */
    void reset();

    /** gem5-style flat text dump ("path.to.stat  value  # desc"). */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Nested-object JSON: {"stat": value, "child": {...}}. */
    Json toJson() const;

  private:
    Stat &addOrGet(const std::string &name, StatKind kind,
                   const std::function<std::unique_ptr<Stat>()> &make);

    std::string name_;
    std::vector<std::unique_ptr<Stat>> stats_;
    std::vector<std::unique_ptr<StatGroup>> groups_;
};

/**
 * The registry: a root group plus dotted-path helpers.  Components grab
 * groups by path ("iface.alpha64.BlockMinNo") and register their stats
 * there; reporting code dumps the whole tree.
 */
class StatsRegistry
{
  public:
    StatsRegistry() : root_("") {}

    /** The process-wide registry used by simulators and benches. */
    static StatsRegistry &global();

    StatGroup &root() { return root_; }
    const StatGroup &root() const { return root_; }

    /** Group at dotted @p path from the root, created as needed. */
    StatGroup &group(const std::string &path);

    /** Leaf stat at dotted @p path ("a.b.stat"); nullptr if absent. */
    Stat *resolve(const std::string &path) const;

    void reset() { root_.reset(); }
    void dump(std::ostream &os) const { root_.dump(os); }
    Json toJson() const { return root_.toJson(); }

  private:
    StatGroup root_;
};

} // namespace onespec::stats

#endif // ONESPEC_STATS_STATS_HPP
