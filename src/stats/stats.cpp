#include "stats.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>

#include "support/logging.hpp"

namespace onespec::stats {

// ---------------------------------------------------------------------
// Distribution
// ---------------------------------------------------------------------

Distribution::Distribution(std::string name, std::string desc, double lo,
                           double hi, unsigned buckets)
    : Stat(std::move(name), std::move(desc)), lo_(lo), hi_(hi),
      buckets_(buckets ? buckets : 1, 0)
{
    ONESPEC_ASSERT(hi > lo, "distribution '", this->name(),
                   "' needs hi > lo");
    bucketWidth_ = (hi_ - lo_) / static_cast<double>(buckets_.size());
}

void
Distribution::sample(double x, uint64_t n)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_ += n;
    sum_ += x * static_cast<double>(n);
    if (x < lo_) {
        underflow_ += n;
    } else if (x >= hi_) {
        overflow_ += n;
    } else {
        auto b = static_cast<size_t>((x - lo_) / bucketWidth_);
        buckets_[std::min(b, buckets_.size() - 1)] += n;
    }
}

double
Distribution::quantile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    double target = p * static_cast<double>(count_);
    uint64_t seen = underflow_;
    if (static_cast<double>(seen) >= target && underflow_)
        return min_;
    for (size_t b = 0; b < buckets_.size(); ++b) {
        uint64_t in_bucket = buckets_[b];
        if (static_cast<double>(seen + in_bucket) >= target &&
            in_bucket > 0) {
            // Linear interpolation within the bucket.
            double frac =
                (target - static_cast<double>(seen)) /
                static_cast<double>(in_bucket);
            double left = lo_ + bucketWidth_ * static_cast<double>(b);
            return left + frac * bucketWidth_;
        }
        seen += in_bucket;
    }
    return max_;
}

void
Distribution::mergeFrom(const Distribution &o)
{
    ONESPEC_ASSERT(lo_ == o.lo_ && hi_ == o.hi_ &&
                       buckets_.size() == o.buckets_.size(),
                   "merging distribution '", name(),
                   "' with a different bucket shape");
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    sum_ += o.sum_;
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    for (size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += o.buckets_[b];
}

Json
Distribution::toJson() const
{
    Json j = Json::object();
    j.set("count", Json(count_));
    j.set("mean", Json(mean()));
    j.set("min", Json(minSeen()));
    j.set("max", Json(maxSeen()));
    j.set("p50", Json(quantile(0.5)));
    j.set("p90", Json(quantile(0.9)));
    j.set("p99", Json(quantile(0.99)));
    j.set("p999", Json(quantile(0.999)));
    Json bk = Json::array();
    for (uint64_t b : buckets_)
        bk.push(Json(b));
    j.set("underflow", Json(underflow_));
    j.set("overflow", Json(overflow_));
    j.set("buckets", std::move(bk));
    j.set("lo", Json(lo_));
    j.set("hi", Json(hi_));
    return j;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

// ---------------------------------------------------------------------
// StatGroup
// ---------------------------------------------------------------------

static bool
validSegment(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '-'))
            return false;
    }
    return true;
}

StatGroup &
StatGroup::group(const std::string &name)
{
    ONESPEC_ASSERT(validSegment(name), "bad group name '", name, "'");
    for (auto &g : groups_) {
        if (g->name() == name)
            return *g;
    }
    ONESPEC_ASSERT(find(name) == nullptr, "name '", name,
                   "' already used by a stat in this group");
    groups_.push_back(std::make_unique<StatGroup>(name));
    return *groups_.back();
}

Stat &
StatGroup::addOrGet(const std::string &name, StatKind kind,
                    const std::function<std::unique_ptr<Stat>()> &make)
{
    ONESPEC_ASSERT(validSegment(name), "bad stat name '", name, "'");
    for (auto &s : stats_) {
        if (s->name() == name) {
            ONESPEC_ASSERT(s->kind() == kind, "stat '", name,
                           "' re-registered with a different kind");
            return *s;
        }
    }
    ONESPEC_ASSERT(findGroup(name) == nullptr, "name '", name,
                   "' already used by a group here");
    stats_.push_back(make());
    return *stats_.back();
}

Counter &
StatGroup::counter(const std::string &name, const std::string &desc)
{
    return static_cast<Counter &>(
        addOrGet(name, StatKind::Counter, [&] {
            return std::make_unique<Counter>(name, desc);
        }));
}

Scalar &
StatGroup::scalar(const std::string &name, const std::string &desc)
{
    return static_cast<Scalar &>(addOrGet(name, StatKind::Scalar, [&] {
        return std::make_unique<Scalar>(name, desc);
    }));
}

Distribution &
StatGroup::distribution(const std::string &name, const std::string &desc,
                        double lo, double hi, unsigned buckets)
{
    return static_cast<Distribution &>(
        addOrGet(name, StatKind::Distribution, [&] {
            return std::make_unique<Distribution>(name, desc, lo, hi,
                                                  buckets);
        }));
}

Formula &
StatGroup::formula(const std::string &name, const std::string &desc,
                   Formula::Fn fn)
{
    return static_cast<Formula &>(
        addOrGet(name, StatKind::Formula, [&] {
            return std::make_unique<Formula>(name, desc, std::move(fn));
        }));
}

Stat *
StatGroup::find(const std::string &name) const
{
    for (const auto &s : stats_) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

StatGroup *
StatGroup::findGroup(const std::string &name) const
{
    for (const auto &g : groups_) {
        if (g->name() == name)
            return g.get();
    }
    return nullptr;
}

void
StatGroup::reset()
{
    for (auto &s : stats_)
        s->reset();
    for (auto &g : groups_)
        g->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string here =
        name_.empty() ? prefix
                      : (prefix.empty() ? name_ : prefix + "." + name_);
    for (const auto &s : stats_) {
        std::string full = here.empty() ? s->name() : here + "." + s->name();
        os << full;
        if (full.size() < 48)
            os << std::string(48 - full.size(), ' ');
        os << ' ';
        switch (s->kind()) {
          case StatKind::Counter:
            os << static_cast<const Counter &>(*s).value();
            break;
          case StatKind::Scalar:
            os << static_cast<const Scalar &>(*s).value();
            break;
          case StatKind::Formula:
            os << static_cast<const Formula &>(*s).value();
            break;
          case StatKind::Distribution: {
            const auto &d = static_cast<const Distribution &>(*s);
            os << "n=" << d.count() << " mean=" << d.mean()
               << " p50=" << d.quantile(0.5)
               << " p90=" << d.quantile(0.9)
               << " p99=" << d.quantile(0.99)
               << " p99.9=" << d.quantile(0.999);
            break;
          }
        }
        if (!s->description().empty())
            os << "  # " << s->description();
        os << '\n';
    }
    for (const auto &g : groups_)
        g->dump(os, here);
}

Json
StatGroup::toJson() const
{
    Json j = Json::object();
    for (const auto &s : stats_)
        j.set(s->name(), s->toJson());
    for (const auto &g : groups_)
        j.set(g->name(), g->toJson());
    return j;
}

// ---------------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------------

StatsRegistry &
StatsRegistry::global()
{
    static StatsRegistry reg;
    return reg;
}

StatGroup &
StatsRegistry::group(const std::string &path)
{
    StatGroup *g = &root_;
    size_t start = 0;
    while (start <= path.size()) {
        size_t dot = path.find('.', start);
        std::string seg = path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        if (!seg.empty())
            g = &g->group(seg);
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return *g;
}

Stat *
StatsRegistry::resolve(const std::string &path) const
{
    const StatGroup *g = &root_;
    size_t start = 0;
    while (true) {
        size_t dot = path.find('.', start);
        std::string seg = path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        if (dot == std::string::npos)
            return g->find(seg);
        const StatGroup *next = g->findGroup(seg);
        if (!next)
            return nullptr;
        g = next;
        start = dot + 1;
    }
}

} // namespace onespec::stats
