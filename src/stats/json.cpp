#include "json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/logging.hpp"

namespace onespec::stats {

int64_t
Json::asInt() const
{
    switch (kind_) {
      case Kind::Int:
        return i_;
      case Kind::Uint:
        return static_cast<int64_t>(u_);
      case Kind::Double:
        return static_cast<int64_t>(d_);
      default:
        return 0;
    }
}

uint64_t
Json::asUint() const
{
    switch (kind_) {
      case Kind::Int:
        return i_ < 0 ? 0 : static_cast<uint64_t>(i_);
      case Kind::Uint:
        return u_;
      case Kind::Double:
        return d_ < 0 ? 0 : static_cast<uint64_t>(d_);
      default:
        return 0;
    }
}

double
Json::asDouble() const
{
    switch (kind_) {
      case Kind::Int:
        return static_cast<double>(i_);
      case Kind::Uint:
        return static_cast<double>(u_);
      case Kind::Double:
        return d_;
      default:
        return 0.0;
    }
}

void
Json::push(Json v)
{
    ONESPEC_ASSERT(kind_ == Kind::Array, "push() on a non-array Json");
    arr_.push_back(std::move(v));
}

size_t
Json::size() const
{
    return kind_ == Kind::Array ? arr_.size() : obj_.size();
}

const Json &
Json::at(size_t i) const
{
    ONESPEC_ASSERT(kind_ == Kind::Array && i < arr_.size(),
                   "Json::at out of range");
    return arr_[i];
}

void
Json::set(const std::string &key, Json v)
{
    ONESPEC_ASSERT(kind_ == Kind::Object, "set() on a non-object Json");
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[40];
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += b_ ? "true" : "false";
        return;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(i_));
        out += buf;
        return;
      case Kind::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(u_));
        out += buf;
        return;
      case Kind::Double:
        if (std::isnan(d_) || std::isinf(d_)) {
            out += "null"; // JSON has no NaN/Inf
            return;
        }
        std::snprintf(buf, sizeof(buf), "%.17g", d_);
        out += buf;
        return;
      case Kind::String:
        escapeString(out, s_);
        return;
      case Kind::Array: {
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += ']';
        return;
      }
      case Kind::Object: {
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newlineIndent(out, indent, depth + 1);
            escapeString(out, obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newlineIndent(out, indent, depth);
        out += '}';
        return;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parseValue(Json &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Json(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Json(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = Json(nullptr);
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseNumber(Json &out)
    {
        size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        bool integral = true;
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start)
            return fail("invalid number");
        const char *b = text.data() + start;
        const char *e = text.data() + pos;
        if (integral) {
            if (*b != '-') {
                uint64_t u = 0;
                if (std::from_chars(b, e, u).ec == std::errc{}) {
                    out = Json(u);
                    return true;
                }
            } else {
                int64_t i = 0;
                if (std::from_chars(b, e, i).ec == std::errc{}) {
                    out = Json(i);
                    return true;
                }
            }
        }
        double d = 0;
        if (std::from_chars(b, e, d).ec != std::errc{})
            return fail("invalid number");
        out = Json(d);
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (!consume('"'))
            return fail("expected '\"'");
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("bad escape");
                char esc = text[pos++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("bad \\u escape");
                    unsigned v = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = text[pos++];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // Encode as UTF-8 (surrogate pairs unsupported; the
                    // stats layer only emits ASCII names).
                    if (v < 0x80) {
                        out += static_cast<char>(v);
                    } else if (v < 0x800) {
                        out += static_cast<char>(0xc0 | (v >> 6));
                        out += static_cast<char>(0x80 | (v & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (v >> 12));
                        out += static_cast<char>(0x80 | ((v >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (v & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(Json &out)
    {
        consume('[');
        out = Json::array();
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            Json v;
            if (!parseValue(v))
                return false;
            out.push(std::move(v));
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(Json &out)
    {
        consume('{');
        out = Json::object();
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return fail("expected ':'");
            Json v;
            if (!parseValue(v))
                return false;
            out.set(key, std::move(v));
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    Parser p{text};
    if (!p.parseValue(out)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing characters at offset " +
                     std::to_string(p.pos);
        return false;
    }
    return true;
}

} // namespace onespec::stats
