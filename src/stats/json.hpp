/**
 * @file
 * A minimal JSON value type for the observability layer: statistics
 * dumps, BENCH_*.json reports, and their round-trip tests.  Supports the
 * full JSON data model with one extension relevant to simulators: 64-bit
 * integers are kept exact (not squashed through double), so counter
 * values survive serialize/parse unchanged.
 *
 * This is deliberately not a general-purpose JSON library -- no SAX
 * interface, no comments, no streaming -- just what the stats registry
 * and bench reports need.
 */

#ifndef ONESPEC_STATS_JSON_HPP
#define ONESPEC_STATS_JSON_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace onespec::stats {

/** One JSON value (null, bool, integer, double, string, array, object). */
class Json
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Int,    ///< exact 64-bit signed integer
        Uint,   ///< exact 64-bit unsigned integer (counters)
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : kind_(Kind::Bool), b_(b) {}
    Json(int v) : kind_(Kind::Int), i_(v) {}
    Json(int64_t v) : kind_(Kind::Int), i_(v) {}
    Json(uint64_t v) : kind_(Kind::Uint), u_(v) {}
    Json(double v) : kind_(Kind::Double), d_(v) {}
    Json(const char *s) : kind_(Kind::String), s_(s) {}
    Json(std::string s) : kind_(Kind::String), s_(std::move(s)) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return b_; }
    int64_t asInt() const;
    uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const { return s_; }

    /** Array access. */
    void push(Json v);
    size_t size() const;
    const Json &at(size_t i) const;

    /** Object access: set inserts or replaces; get returns null if absent. */
    void set(const std::string &key, Json v);
    const Json *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key) != nullptr; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return obj_;
    }

    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text.  On success returns true and fills @p out; on
     * failure returns false and, if given, sets @p error to a
     * position-annotated message.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool b_ = false;
    int64_t i_ = 0;
    uint64_t u_ = 0;
    double d_ = 0.0;
    std::string s_;
    std::vector<Json> arr_;
    // Insertion-ordered, like the registry's groups; keys are unique.
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace onespec::stats

#endif // ONESPEC_STATS_JSON_HPP
