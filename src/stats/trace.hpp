/**
 * @file
 * Lightweight event/trace hooks.  Producers fire named events at
 * interesting moments (a rollback, a declared misspeculation, a sampling
 * phase switch); consumers -- debuggers, log scrapers, tests -- register
 * callbacks.  With no hooks registered the cost of a trace point is one
 * predictable branch, so trace points may sit on warm (not hot) paths.
 *
 * Use the ONESPEC_TRACE macro rather than calling emit() directly:
 *
 *     ONESPEC_TRACE("spec", "undo", depth, journal_len);
 *
 * Threading: the bus is process-wide and shared by every fleet worker.
 * active() is a single relaxed atomic load, so the no-hook fast path
 * stays lock-free on hot simulation threads.  The hook list is
 * copy-on-write: addHook()/removeHook() swap in a fresh immutable list
 * under a mutex, while emit() grabs a snapshot under the same mutex and
 * delivers *unlocked*.  Consequences hooks may rely on:
 *  - a hook MAY register or remove hooks (including itself) from inside
 *    a delivery -- the change applies from the next emit();
 *  - a removed hook can still receive at most the deliveries already in
 *    flight when removeHook() returned (the snapshot keeps the callable
 *    alive, so this is safe, just late);
 *  - hooks may be invoked concurrently from any thread and must
 *    synchronize their own state.
 */

#ifndef ONESPEC_STATS_TRACE_HPP
#define ONESPEC_STATS_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace onespec::stats {

/** One trace event.  The category/name pointers are string literals at
 *  every existing trace point; hooks that outlive the call must copy. */
struct TraceEvent
{
    const char *category; ///< coarse filter key ("spec", "bench", ...)
    const char *name;     ///< event name within the category
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
};

/** Process-wide trace hook bus. */
class TraceBus
{
  public:
    using Hook = std::function<void(const TraceEvent &)>;

    static TraceBus &instance();

    /**
     * Register @p hook; events whose category matches @p category (or
     * all events if @p category is empty) are delivered.  Returns an id
     * for removeHook().  Safe to call from inside a hook delivery.
     */
    int addHook(Hook hook, std::string category = "");

    /** Deregister.  Safe to call from inside a hook delivery (even for
     *  the executing hook); deliveries already snapshotted may still
     *  reach the hook once (see file comment). */
    void removeHook(int id);

    /** True if any hook is registered (the trace-point fast path). */
    bool active() const
    {
        return nactive_.load(std::memory_order_relaxed) != 0;
    }

    void emit(const TraceEvent &ev);

  private:
    struct Entry
    {
        int id;
        std::string category;
        Hook hook;
    };

    using HookList = std::vector<Entry>;

    std::mutex m_; ///< guards hooks_/nextId_; NOT held across delivery
    std::shared_ptr<const HookList> hooks_;
    int nextId_ = 1;
    std::atomic<unsigned> nactive_{0};
};

} // namespace onespec::stats

/** Fire a trace event; near-free when no hook is registered. */
#define ONESPEC_TRACE(cat, name, a0, a1)                                   \
    do {                                                                   \
        if (::onespec::stats::TraceBus::instance().active()) {             \
            ::onespec::stats::TraceBus::instance().emit(                   \
                {(cat), (name), static_cast<uint64_t>(a0),                 \
                 static_cast<uint64_t>(a1)});                              \
        }                                                                  \
    } while (0)

#endif // ONESPEC_STATS_TRACE_HPP
