/**
 * @file
 * Sharded (thread-local) publication path for the stats registry.
 *
 * The StatsRegistry itself is deliberately unsynchronized: it is either
 * used single-threaded (benches, tests) or read-only (dump/JSON).  When
 * many threads produce stats concurrently -- the SimFleet case -- each
 * thread publishes into its *own* shard registry with zero locking on
 * the hot path, and an explicit aggregate() merges every shard into a
 * destination registry afterwards.
 *
 * Merge semantics (shared with SimFleet's per-job merge):
 *   Counter        values add.
 *   Scalar         the source value overwrites the destination.
 *   Distribution   bucket-wise sum (shapes must match).
 *   Formula        skipped: a formula captures references to counters in
 *                  its *own* registry; transplanting it would dangle.
 *                  Producers re-register formulas on the aggregate.
 *
 * Counter and distribution merges are commutative, so aggregate totals
 * are independent of shard order; only the insertion (dump) order of
 * groups first created by different shards follows shard creation order.
 * Code that needs a fully deterministic merged tree (SimFleet) keeps one
 * registry per job and merges them in job-index order via mergeInto().
 */

#ifndef ONESPEC_STATS_SHARDED_HPP
#define ONESPEC_STATS_SHARDED_HPP

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "stats/stats.hpp"

namespace onespec::stats {

/**
 * Merge every stat and child group of @p src into @p dst per the
 * semantics above.  Panics (via the registry's own kind checks) if a
 * path exists in both trees with different stat kinds.
 */
void mergeInto(StatGroup &dst, const StatGroup &src);

/** Convenience: merge the whole tree of @p src into @p dst. */
void mergeInto(StatsRegistry &dst, const StatsRegistry &src);

/** A set of per-thread shard registries with a post-hoc merge. */
class ShardedStats
{
  public:
    ShardedStats();

    ShardedStats(const ShardedStats &) = delete;
    ShardedStats &operator=(const ShardedStats &) = delete;

    /**
     * The calling thread's shard, created on first use (one lock
     * acquisition per thread lifetime; subsequent calls are a
     * thread-local pointer load).  The reference stays valid until
     * clear() or destruction.
     */
    StatsRegistry &local();

    /** Merge every shard into @p into (shard creation order). */
    void aggregate(StatsRegistry &into) const;

    /**
     * Drop all shards.  Must not race local() or aggregate(); callers
     * quiesce producer threads first (the fleet joins its pool).
     */
    void clear();

    /** Number of shards created so far. */
    size_t shardCount() const;

  private:
    mutable std::mutex m_;
    std::vector<std::unique_ptr<StatsRegistry>> shards_;
    uint64_t id_; ///< distinguishes instances in the TLS cache
    /** Bumped by clear() to invalidate TLS caches; atomic because the
     *  local() fast path reads it without the mutex. */
    std::atomic<uint64_t> epoch_{0};
};

} // namespace onespec::stats

#endif // ONESPEC_STATS_SHARDED_HPP
