/**
 * @file
 * Internal framing helpers shared by the OSPTAPE1 and OSPBNDL1
 * containers (src/replay/tape.cpp, src/replay/bundle.cpp): the
 * little-endian byte-by-byte writer/reader pair and FourCC utilities,
 * replicating the OSPCKPT2 conventions from src/ckpt/checkpoint.cpp.
 * Truncation throws TapeError, never UB.  Not installed API.
 */

#ifndef ONESPEC_REPLAY_FRAMING_HPP
#define ONESPEC_REPLAY_FRAMING_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "replay/tape.hpp"

namespace onespec::replay::detail {

class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /** u32 length prefix + raw bytes. */
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    /** u64 length prefix + raw bytes. */
    void
    blob(const std::vector<uint8_t> &v)
    {
        u64(v.size());
        bytes(v.data(), v.size());
    }

    size_t size() const { return buf_.size(); }
    const uint8_t *data() const { return buf_.data(); }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

class Reader
{
  public:
    Reader(const uint8_t *p, size_t len, const char *what)
        : p_(p), len_(len), what_(what)
    {}

    size_t pos() const { return pos_; }
    size_t avail() const { return len_ - pos_; }

    void
    need(size_t n) const
    {
        if (len_ - pos_ < n) {
            throw TapeError("truncated container: " + std::string(what_) +
                            " needs " + std::to_string(n) +
                            " bytes at offset " + std::to_string(pos_) +
                            ", only " + std::to_string(len_ - pos_) +
                            " remain");
        }
    }

    uint8_t
    u8()
    {
        need(1);
        return p_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p_[pos_++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p_[pos_++]) << (8 * i);
        return v;
    }

    void
    bytes(void *out, size_t n)
    {
        need(n);
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p_ + pos_), n);
        pos_ += n;
        return s;
    }

    std::vector<uint8_t>
    blob()
    {
        uint64_t n = u64();
        need(static_cast<size_t>(n));
        std::vector<uint8_t> v(p_ + pos_, p_ + pos_ + n);
        pos_ += static_cast<size_t>(n);
        return v;
    }

  private:
    const uint8_t *p_;
    size_t len_;
    size_t pos_ = 0;
    const char *what_;
};

constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

inline std::string
tagName(uint32_t tag)
{
    std::string s;
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xff);
        s.push_back(c >= 0x20 && c < 0x7f ? c : '?');
    }
    return s;
}

/** One section to be framed: FourCC tag + payload. */
struct Section
{
    uint32_t tag;
    std::vector<uint8_t> payload;
};

/**
 * Frame @p sections under the 8-byte @p magic: header (magic, version,
 * count, table of tag/offset/len/CRC rows, header CRC) followed by the
 * payloads.
 */
std::vector<uint8_t> frameSections(const char magic[8], uint32_t version,
                                   const std::vector<Section> &sections);

/**
 * Validate the header/table/section CRCs of @p bytes against @p magic
 * and @p version (@p what names the container in errors) and return the
 * sections in table order.  Payloads are copied out so callers may
 * outlive @p bytes.
 */
std::vector<Section> unframeSections(const std::vector<uint8_t> &bytes,
                                     const char magic[8], uint32_t version,
                                     const char *what);

} // namespace onespec::replay::detail

#endif // ONESPEC_REPLAY_FRAMING_HPP
