#include "replay/tape.hpp"

#include <cstring>

#include "replay/framing.hpp"

namespace onespec::replay {

namespace {

using detail::Reader;
using detail::Section;
using detail::Writer;
using detail::fourcc;

constexpr char kTapeMagic[8] = {'O', 'S', 'P', 'T', 'A', 'P', 'E', '1'};

constexpr uint32_t kTagMeta = fourcc('M', 'E', 'T', 'A');
constexpr uint32_t kTagProg = fourcc('P', 'R', 'O', 'G');
constexpr uint32_t kTagInit = fourcc('I', 'N', 'I', 'T');
constexpr uint32_t kTagRimg = fourcc('R', 'I', 'M', 'G');
constexpr uint32_t kTagFpln = fourcc('F', 'P', 'L', 'N');
constexpr uint32_t kTagCuts = fourcc('C', 'U', 'T', 'S');
constexpr uint32_t kTagSysc = fourcc('S', 'Y', 'S', 'C');
constexpr uint32_t kTagExpt = fourcc('E', 'X', 'P', 'T');

// ---------------------------------------------------------------------------
// Section payload encoders.

std::vector<uint8_t>
encodeMeta(const Tape &t)
{
    Writer w;
    w.str(t.specName);
    w.u64(t.specFingerprint);
    w.str(t.buildset);
    w.u8(t.useInterp ? 1 : 0);
    w.str(t.jobName);
    w.u64(t.maxInstrs);
    w.u8(t.strictSyscalls ? 1 : 0);
    w.u64(t.profileStride);
    w.u64(t.chunkHint);
    return w.take();
}

std::vector<uint8_t>
encodeProg(const Program &p)
{
    Writer w;
    w.str(p.name);
    w.u64(p.entry);
    w.u64(p.stackTop);
    w.u64(p.initialBrk);
    w.blob(p.stdinData);
    w.u32(static_cast<uint32_t>(p.segments.size()));
    for (const auto &seg : p.segments) {
        w.u64(seg.base);
        w.blob(seg.bytes);
    }
    return w.take();
}

std::vector<uint8_t>
encodeRimg(const std::vector<std::vector<uint8_t>> &imgs)
{
    Writer w;
    w.u32(static_cast<uint32_t>(imgs.size()));
    for (const auto &img : imgs)
        w.blob(img);
    return w.take();
}

std::vector<uint8_t>
encodeFpln(const fault::FaultPlan &plan)
{
    Writer w;
    w.u64(plan.seed);
    w.u32(static_cast<uint32_t>(plan.events.size()));
    for (const auto &ev : plan.events) {
        // `fired` is runtime state, not schedule: a decoded plan starts
        // pristine so replay re-fires the same events.
        w.u8(static_cast<uint8_t>(ev.op));
        w.u64(ev.trigger);
        w.u64(ev.target);
        w.u32(ev.bit);
    }
    return w.take();
}

std::vector<uint8_t>
encodeCuts(const std::vector<TapeCut> &cuts)
{
    Writer w;
    w.u64(cuts.size());
    for (const auto &c : cuts) {
        w.u64(c.instrs);
        w.u8(static_cast<uint8_t>(c.kind));
    }
    return w.take();
}

std::vector<uint8_t>
encodeSysc(const std::vector<OsEmulator::SyscallRecord> &calls)
{
    Writer w;
    w.u64(calls.size());
    for (const auto &r : calls) {
        w.u64(r.num);
        w.u64(r.a0);
        w.u64(r.a1);
        w.u64(r.a2);
        w.u64(r.ret);
        w.u8(r.err ? 1 : 0);
    }
    return w.take();
}

std::vector<uint8_t>
encodeExpt(const TapeExpected &x)
{
    Writer w;
    w.u8(x.finished ? 1 : 0);
    w.u8(static_cast<uint8_t>(x.runStatus));
    w.u64(x.stateHash);
    w.u64(x.instrs);
    w.str(x.output);
    w.str(x.statsDump);
    w.u8(static_cast<uint8_t>(x.errorKind));
    w.str(x.errorContext);
    w.str(x.errorMessage);
    return w.take();
}

// ---------------------------------------------------------------------------
// Section payload decoders.

void
decodeMeta(Reader r, Tape &t)
{
    t.specName = r.str();
    t.specFingerprint = r.u64();
    t.buildset = r.str();
    t.useInterp = r.u8() != 0;
    t.jobName = r.str();
    t.maxInstrs = r.u64();
    t.strictSyscalls = r.u8() != 0;
    t.profileStride = r.u64();
    t.chunkHint = r.u64();
}

void
decodeProg(Reader r, Tape &t)
{
    t.hasProgram = true;
    t.program.name = r.str();
    t.program.entry = r.u64();
    t.program.stackTop = r.u64();
    t.program.initialBrk = r.u64();
    t.program.stdinData = r.blob();
    uint32_t nseg = r.u32();
    t.program.segments.clear();
    t.program.segments.reserve(nseg);
    for (uint32_t i = 0; i < nseg; ++i) {
        Segment seg;
        seg.base = r.u64();
        seg.bytes = r.blob();
        t.program.segments.push_back(std::move(seg));
    }
}

void
decodeRimg(Reader r, Tape &t)
{
    uint32_t n = r.u32();
    t.restoreImages.clear();
    t.restoreImages.reserve(n);
    for (uint32_t i = 0; i < n; ++i)
        t.restoreImages.push_back(r.blob());
}

void
decodeFpln(Reader r, Tape &t)
{
    t.faultPlan.seed = r.u64();
    uint32_t n = r.u32();
    t.faultPlan.events.clear();
    t.faultPlan.events.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        fault::FaultEvent ev;
        ev.op = static_cast<fault::FaultOp>(r.u8());
        ev.trigger = r.u64();
        ev.target = r.u64();
        ev.bit = r.u32();
        t.faultPlan.events.push_back(ev);
    }
}

void
decodeCuts(Reader r, Tape &t)
{
    uint64_t n = r.u64();
    t.cuts.clear();
    for (uint64_t i = 0; i < n; ++i) {
        TapeCut c;
        c.instrs = r.u64();
        c.kind = static_cast<CutKind>(r.u8());
        t.cuts.push_back(c);
    }
}

void
decodeSysc(Reader r, Tape &t)
{
    uint64_t n = r.u64();
    t.syscalls.clear();
    for (uint64_t i = 0; i < n; ++i) {
        OsEmulator::SyscallRecord rec;
        rec.num = r.u64();
        rec.a0 = r.u64();
        rec.a1 = r.u64();
        rec.a2 = r.u64();
        rec.ret = r.u64();
        rec.err = r.u8() != 0;
        t.syscalls.push_back(rec);
    }
}

void
decodeExpt(Reader r, Tape &t)
{
    t.expected.finished = r.u8() != 0;
    t.expected.runStatus = static_cast<RunStatus>(r.u8());
    t.expected.stateHash = r.u64();
    t.expected.instrs = r.u64();
    t.expected.output = r.str();
    t.expected.statsDump = r.str();
    t.expected.errorKind = static_cast<ErrorKind>(r.u8());
    t.expected.errorContext = r.str();
    t.expected.errorMessage = r.str();
}

} // namespace

std::vector<uint8_t>
encodeTape(const Tape &t)
{
    std::vector<Section> sections;
    sections.push_back({kTagMeta, encodeMeta(t)});
    if (t.hasProgram)
        sections.push_back({kTagProg, encodeProg(t.program)});
    if (!t.initImage.empty())
        sections.push_back({kTagInit, t.initImage});
    if (!t.restoreImages.empty())
        sections.push_back({kTagRimg, encodeRimg(t.restoreImages)});
    if (!t.faultPlan.empty())
        sections.push_back({kTagFpln, encodeFpln(t.faultPlan)});
    if (!t.cuts.empty())
        sections.push_back({kTagCuts, encodeCuts(t.cuts)});
    sections.push_back({kTagSysc, encodeSysc(t.syscalls)});
    sections.push_back({kTagExpt, encodeExpt(t.expected)});
    return detail::frameSections(kTapeMagic, kTapeVersion, sections);
}

Tape
decodeTape(const std::vector<uint8_t> &bytes)
{
    std::vector<Section> sections =
        detail::unframeSections(bytes, kTapeMagic, kTapeVersion, "tape");
    Tape t;
    bool saw_meta = false, saw_expt = false;
    for (const auto &s : sections) {
        const uint8_t *p = s.payload.data();
        size_t len = s.payload.size();
        if (s.tag == kTagMeta) {
            decodeMeta(Reader(p, len, "META"), t);
            saw_meta = true;
        } else if (s.tag == kTagProg) {
            decodeProg(Reader(p, len, "PROG"), t);
        } else if (s.tag == kTagInit) {
            t.initImage = s.payload;
        } else if (s.tag == kTagRimg) {
            decodeRimg(Reader(p, len, "RIMG"), t);
        } else if (s.tag == kTagFpln) {
            decodeFpln(Reader(p, len, "FPLN"), t);
        } else if (s.tag == kTagCuts) {
            decodeCuts(Reader(p, len, "CUTS"), t);
        } else if (s.tag == kTagSysc) {
            decodeSysc(Reader(p, len, "SYSC"), t);
        } else if (s.tag == kTagExpt) {
            decodeExpt(Reader(p, len, "EXPT"), t);
            saw_expt = true;
        }
        // Unknown tags: skip (forward compatibility); their CRC was
        // still verified by the unframer.
    }
    if (!saw_meta || !saw_expt)
        throw TapeError("tape is missing a required section (META/EXPT)");
    return t;
}

} // namespace onespec::replay
