#include "replay/replayer.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "ckpt/checkpoint.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "obs/pc_profile.hpp"
#include "parallel/fleet.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "stats/stats.hpp"

namespace onespec::replay {

namespace {

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Halted: return "halted";
      case RunStatus::Fault: return "fault";
    }
    return "?";
}

std::string
hex64(uint64_t v)
{
    std::ostringstream ss;
    ss << std::hex << v;
    return ss.str();
}

/**
 * The strict-tape hook: compares each OS-call result against the
 * recorded stream *as it happens*, chaining to the previously installed
 * hook (the fault injector) so forced failures keep firing exactly as
 * they did during recording.  A mismatch throws ReplayDivergence out
 * through the simulator, ending the replay at the first divergent call.
 */
class SyscallVerifier final : public OsEmulator::SyscallHook
{
  public:
    SyscallVerifier(const std::vector<OsEmulator::SyscallRecord> &expected,
                    bool strict, bool allow_overrun)
        : expected_(expected), strict_(strict), allowOverrun_(allow_overrun)
    {}

    ~SyscallVerifier() override { detach(); }

    void
    attach(SimContext &ctx)
    {
        os_ = &ctx.os();
        prev_ = os_->syscallHook();
        os_->setSyscallHook(this);
    }

    void
    detach()
    {
        if (os_) {
            os_->setSyscallHook(prev_);
            os_ = nullptr;
            prev_ = nullptr;
        }
    }

    bool
    onSyscall(uint64_t num) override
    {
        return prev_ ? prev_->onSyscall(num) : false;
    }

    void
    onSyscallResult(const OsEmulator::SyscallRecord &r) override
    {
        if (prev_)
            prev_->onSyscallResult(r);
        if (!strict_)
            return;
        if (idx_ >= expected_.size()) {
            // Past the end of the recorded stream.  For Resource-kind
            // tapes the replay may legitimately run a little past the
            // point where the wall clock killed the recording.
            if (allowOverrun_)
                return;
            throw ReplayDivergence(
                "OS call " + std::to_string(idx_ + 1) + " (num " +
                std::to_string(r.num) +
                ") past the end of the recorded stream of " +
                std::to_string(expected_.size()) + " calls");
        }
        const OsEmulator::SyscallRecord &e = expected_[idx_];
        if (e.num != r.num || e.a0 != r.a0 || e.a1 != r.a1 ||
            e.a2 != r.a2 || e.ret != r.ret || e.err != r.err) {
            throw ReplayDivergence(
                "OS call " + std::to_string(idx_ + 1) +
                " diverged from the tape: recorded num=" +
                std::to_string(e.num) + " args=(" + std::to_string(e.a0) +
                "," + std::to_string(e.a1) + "," + std::to_string(e.a2) +
                ") ret=" + std::to_string(e.ret) +
                " err=" + std::to_string(e.err) + ", replayed num=" +
                std::to_string(r.num) + " args=(" + std::to_string(r.a0) +
                "," + std::to_string(r.a1) + "," + std::to_string(r.a2) +
                ") ret=" + std::to_string(r.ret) +
                " err=" + std::to_string(r.err));
        }
        ++idx_;
    }

    size_t verified() const { return idx_; }

  private:
    const std::vector<OsEmulator::SyscallRecord> &expected_;
    bool strict_;
    bool allowOverrun_;
    size_t idx_ = 0;
    OsEmulator *os_ = nullptr;
    SyscallHook *prev_ = nullptr;
};

} // namespace

ReplayReport
replayTape(const Tape &t, const ReplayOptions &opt)
{
    // Tape usability: these are properties of the tape against this
    // build, not of the replayed execution, so they throw.
    const std::vector<std::string> &isas = shippedIsas();
    if (std::find(isas.begin(), isas.end(), t.specName) == isas.end())
        throw TapeError("tape names unknown spec '" + t.specName + "'");
    if (!t.hasProgram)
        throw TapeError("tape carries no program image");
    std::unique_ptr<Spec> spec = loadIsa(t.specName);
    if (t.specFingerprint != 0 && spec->fingerprint != t.specFingerprint) {
        throw TapeError(
            "spec fingerprint mismatch for '" + t.specName + "': tape " +
            hex64(t.specFingerprint) + ", this build " +
            hex64(spec->fingerprint) +
            " -- the description changed since the recording");
    }

    ReplayReport rep;
    bool use_interp = t.useInterp;
    if (opt.backend == ReplayBackend::Interp)
        use_interp = true;
    else if (opt.backend == ReplayBackend::Generated)
        use_interp = false;
    rep.usedInterp = use_interp;

    const TapeExpected &x = t.expected;
    bool resource_tape = x.errorKind == ErrorKind::Resource;

    // Resource-kind failures are wall-clock events; bound the replay to
    // the recorded schedule plus one harness chunk (the most the
    // recording can have executed past its last cut).
    uint64_t max_instrs = t.maxInstrs;
    if (resource_tape) {
        uint64_t last_cut = t.cuts.empty() ? 0 : t.cuts.back().instrs;
        uint64_t grace = t.chunkHint ? t.chunkHint : uint64_t{1} << 20;
        max_instrs = std::min(max_instrs, last_cut + grace);
    }

    stats::StatsRegistry reg;
    ErrorKind kind = ErrorKind::None;
    std::string emsg;
    bool diverged = false;
    SimContext ctx(*spec);
    SyscallVerifier verifier(t.syscalls, opt.strictTape, resource_tape);
    try {
        ctx.load(t.program);
        std::unique_ptr<FunctionalSimulator> sim;
        if (use_interp) {
            sim = makeInterpSimulator(ctx, t.buildset);
        } else {
            sim = SimRegistry::instance().create(ctx, t.buildset);
            if (!sim) {
                throw SpecError("replay", "no generated simulator for " +
                                              t.specName + "/" + t.buildset);
            }
        }
        if (t.strictSyscalls)
            ctx.os().setStrictUnknownSyscalls(true);

        std::unique_ptr<obs::PcProfiler> prof;
        if (t.profileStride) {
            obs::PcProfiler::Config pc;
            pc.strideInstrs = t.profileStride;
            prof = std::make_unique<obs::PcProfiler>(*spec, pc);
            sim->setProfiler(prof.get());
        }

        std::unique_ptr<fault::FaultInjector> inj;
        if (!t.faultPlan.empty()) {
            inj = std::make_unique<fault::FaultInjector>(t.faultPlan);
            inj->attach(ctx);
        }
        verifier.attach(ctx);

        if (!t.initImage.empty()) {
            ckpt::restore(ctx, ckpt::decode(t.initImage));
            sim->onStateRestored();
        }
        if (!t.restoreImages.empty()) {
            // Decode exactly as the recorded job did -- including the
            // injector's container corruption, so a container-fault
            // quarantine replays the decode failure itself.
            std::vector<ckpt::Checkpoint> owned;
            owned.reserve(t.restoreImages.size());
            for (const auto &img : t.restoreImages) {
                std::vector<uint8_t> bytes = img;
                if (inj)
                    inj->corruptContainer(bytes);
                owned.push_back(ckpt::decode(bytes));
            }
            std::vector<const ckpt::Checkpoint *> chain;
            chain.reserve(owned.size());
            for (const auto &c : owned)
                chain.push_back(&c);
            ckpt::restoreChain(ctx, chain);
            sim->onStateRestored();
        }

        // Drive the recorded cut schedule: same segment boundaries as
        // the recording harness, state faults applied between segments
        // exactly as the fleet's chunked loop applies them, preempt
        // cuts invalidating caches the way a restore does.
        RunResult acc;
        uint64_t remaining = max_instrs;
        size_t ci = 0;
        while (true) {
            if (inj && inj->applyStateFaults(ctx))
                sim->onStateRestored();
            if (remaining == 0) {
                acc.status = RunStatus::Ok;
                break;
            }
            uint64_t chunk = remaining;
            if (ci < t.cuts.size()) {
                if (t.cuts[ci].instrs <= acc.instrs) {
                    // Defensive: a stale or duplicate cut; skip it.
                    ++ci;
                    continue;
                }
                chunk = std::min(chunk, t.cuts[ci].instrs - acc.instrs);
            }
            RunResult r = sim->run(chunk);
            acc.instrs += r.instrs;
            acc.status = r.status;
            if (r.status != RunStatus::Ok)
                break;
            remaining -= std::min<uint64_t>(r.instrs, remaining);
            if (ci < t.cuts.size() && acc.instrs >= t.cuts[ci].instrs) {
                if (t.cuts[ci].kind == CutKind::Preempt)
                    sim->onStateRestored();
                ++ci;
            }
        }

        rep.status = acc.status;
        rep.instrs = acc.instrs;
        rep.output = ctx.os().output();
        rep.stateHash = parallel::contextStateHash(ctx, rep.output);
        stats::StatGroup &g =
            reg.group(parallel::fleetGroupPath(t.specName, t.buildset));
        sim->publishStats(g);
        if (prof)
            prof->publish(g.group("profile"));
        std::ostringstream dump;
        reg.dump(dump);
        rep.statsDump = dump.str();
    } catch (const ReplayDivergence &e) {
        diverged = true;
        rep.mismatches.push_back(e.what());
        rep.errorKind = e.kind();
        rep.error = e.what();
    } catch (const SimError &e) {
        kind = e.kind();
        emsg = e.what();
    } catch (const std::exception &e) {
        kind = ErrorKind::Internal;
        emsg = e.what();
    }
    rep.syscallsVerified = verifier.verified();
    if (!diverged) {
        rep.errorKind = kind;
        rep.error = emsg;
    }

    // Compare against the recorded outcome.
    auto mism = [&rep](std::string m) {
        rep.mismatches.push_back(std::move(m));
    };
    if (!diverged) {
        if (x.errorKind != ErrorKind::None) {
            if (resource_tape) {
                // Wall-clock failures cannot re-fire; a clean (or again
                // Resource-classed) arrival at the recorded schedule's
                // end counts as matching.
                if (kind != ErrorKind::None && kind != ErrorKind::Resource) {
                    mism(std::string("recording died of a resource-class "
                                     "failure but replay raised ") +
                         errorKindName(kind) + ": " + emsg);
                }
            } else if (kind != x.errorKind) {
                mism("recording died with " +
                     std::string(errorKindName(x.errorKind)) + " error (" +
                     x.errorMessage + ") but replay " +
                     (kind == ErrorKind::None
                          ? "completed cleanly"
                          : std::string("raised ") + errorKindName(kind) +
                                ": " + emsg));
            }
        } else if (kind != ErrorKind::None) {
            mism(std::string("recording completed but replay raised ") +
                 errorKindName(kind) + ": " + emsg);
        }

        if (x.finished && kind == ErrorKind::None) {
            if (rep.stateHash != x.stateHash) {
                mism("final state hash diverged: recorded " +
                     hex64(x.stateHash) + ", replayed " +
                     hex64(rep.stateHash));
            }
            if (rep.output != x.output)
                mism("guest output diverged from the recording");
            if (rep.instrs != x.instrs) {
                mism("instruction count diverged: recorded " +
                     std::to_string(x.instrs) + ", replayed " +
                     std::to_string(rep.instrs));
            }
            if (rep.status != x.runStatus) {
                mism(std::string("run status diverged: recorded ") +
                     runStatusName(x.runStatus) + ", replayed " +
                     runStatusName(rep.status));
            }
            if (opt.strictTape && rep.syscallsVerified < t.syscalls.size()) {
                mism("replay made " +
                     std::to_string(rep.syscallsVerified) + " of the " +
                     std::to_string(t.syscalls.size()) +
                     " recorded OS calls");
            }
            // The stats dump is a pure function of (job, back end):
            // decode/block-cache counters are how the back end worked,
            // not what the guest did, so only a same-back-end replay
            // must reproduce it bit-for-bit.  Cross-back-end replays
            // are held to architectural identity (hash, output, instrs,
            // OS-call stream) above -- the single-spec claim itself.
            if (opt.compareStats && !x.statsDump.empty() &&
                use_interp == t.useInterp) {
                rep.statsCompared = true;
                if (rep.statsDump != x.statsDump)
                    mism("stats dump diverged from the recording");
            }
        }
    }

    rep.identical = rep.mismatches.empty();
    if (!rep.identical && opt.throwOnMismatch)
        throw ReplayDivergence(rep.mismatches.front());
    return rep;
}

} // namespace onespec::replay
