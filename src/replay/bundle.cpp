#include "replay/bundle.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "replay/framing.hpp"
#include "support/crc32.hpp"

namespace onespec::replay {

namespace fs = std::filesystem;

namespace {

using detail::Reader;
using detail::Section;
using detail::Writer;
using detail::fourcc;

constexpr char kBundleMagic[8] = {'O', 'S', 'P', 'B', 'N', 'D', 'L', '1'};

constexpr uint32_t kTagTape = fourcc('T', 'A', 'P', 'E');
constexpr uint32_t kTagFrtl = fourcc('F', 'R', 'T', 'L');
constexpr uint32_t kTagMani = fourcc('M', 'A', 'N', 'I');

std::vector<uint8_t>
encodeFrTail(const std::vector<obs::FrEvent> &tail)
{
    Writer w;
    w.u32(static_cast<uint32_t>(tail.size()));
    for (const auto &ev : tail) {
        w.u64(ev.tsNs);
        w.u64(ev.a0);
        w.u64(ev.a1);
        w.u32(ev.id);
        w.u8(static_cast<uint8_t>(ev.type));
        w.u8(static_cast<uint8_t>(ev.phase));
    }
    return w.take();
}

std::vector<obs::FrEvent>
decodeFrTail(Reader r)
{
    uint32_t n = r.u32();
    std::vector<obs::FrEvent> tail;
    tail.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        obs::FrEvent ev;
        ev.tsNs = r.u64();
        ev.a0 = r.u64();
        ev.a1 = r.u64();
        ev.id = r.u32();
        ev.type = static_cast<obs::EvType>(r.u8());
        ev.phase = static_cast<obs::EvPhase>(r.u8());
        tail.push_back(ev);
    }
    return tail;
}

std::string
hex64(uint64_t v)
{
    std::ostringstream ss;
    ss << std::hex << v;
    return ss.str();
}

/** Keep [A-Za-z0-9._-] (the CkptStore name alphabet); map the rest. */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    for (char c : label) {
        bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        out.push_back(ok ? c : '-');
    }
    return out.empty() ? "job" : out;
}

} // namespace

std::string
bundleManifest(const Bundle &b)
{
    const Tape &t = b.tape;
    std::ostringstream ss;
    ss << "spec: " << t.specName << "\n";
    ss << "spec_fingerprint: " << hex64(t.specFingerprint) << "\n";
    ss << "buildset: " << t.buildset << "\n";
    ss << "backend: " << (t.useInterp ? "interp" : "generated") << "\n";
    ss << "job: " << t.jobName << "\n";
    ss << "program: " << (t.hasProgram ? t.program.name : "(none)") << "\n";
    ss << "max_instrs: " << t.maxInstrs << "\n";
    ss << "strict_syscalls: " << (t.strictSyscalls ? "true" : "false")
       << "\n";
    if (t.profileStride)
        ss << "profile_stride: " << t.profileStride << "\n";
    if (!t.initImage.empty())
        ss << "init_image_bytes: " << t.initImage.size() << "\n";
    if (!t.restoreImages.empty())
        ss << "restore_images: " << t.restoreImages.size() << "\n";
    if (!t.faultPlan.empty()) {
        ss << "fault_seed: " << t.faultPlan.seed << "\n";
        ss << "fault_events:";
        for (const auto &ev : t.faultPlan.events)
            ss << " " << fault::faultOpName(ev.op) << "@" << ev.trigger;
        ss << "\n";
    }
    ss << "cuts: " << t.cuts.size() << "\n";
    ss << "syscalls: " << t.syscalls.size() << "\n";
    const TapeExpected &x = t.expected;
    ss << "expected_error_kind: " << errorKindName(x.errorKind) << "\n";
    if (!x.errorMessage.empty())
        ss << "expected_error: " << x.errorMessage << "\n";
    if (x.finished) {
        ss << "expected_state_hash: " << hex64(x.stateHash) << "\n";
        ss << "expected_instrs: " << x.instrs << "\n";
    }
    ss << "fr_tail_events: " << b.frTail.size() << "\n";
    return ss.str();
}

std::vector<uint8_t>
encodeBundle(const Bundle &b)
{
    std::vector<Section> sections;
    sections.push_back({kTagTape, encodeTape(b.tape)});
    if (!b.frTail.empty())
        sections.push_back({kTagFrtl, encodeFrTail(b.frTail)});
    std::string mani = b.manifest.empty() ? bundleManifest(b) : b.manifest;
    sections.push_back(
        {kTagMani, std::vector<uint8_t>(mani.begin(), mani.end())});
    return detail::frameSections(kBundleMagic, kBundleVersion, sections);
}

Bundle
decodeBundle(const std::vector<uint8_t> &bytes)
{
    std::vector<Section> sections = detail::unframeSections(
        bytes, kBundleMagic, kBundleVersion, "bundle");
    Bundle b;
    bool saw_tape = false;
    for (const auto &s : sections) {
        if (s.tag == kTagTape) {
            b.tape = decodeTape(s.payload);
            saw_tape = true;
        } else if (s.tag == kTagFrtl) {
            b.frTail = decodeFrTail(
                Reader(s.payload.data(), s.payload.size(), "FRTL"));
        } else if (s.tag == kTagMani) {
            b.manifest.assign(s.payload.begin(), s.payload.end());
        }
    }
    if (!saw_tape)
        throw TapeError("bundle is missing its TAPE section");
    return b;
}

void
saveBundleFile(const std::string &path, const Bundle &b)
{
    std::vector<uint8_t> bytes = encodeBundle(b);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        throw TapeError("cannot open '" + path + "' for writing");
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f)
        throw TapeError("short write to '" + path + "'");
}

Bundle
loadBundleFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw TapeError("cannot open '" + path + "'");
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                               std::istreambuf_iterator<char>());
    if (f.bad())
        throw TapeError("read error on '" + path + "'");
    return decodeBundle(bytes);
}

std::string
writeBundle(const std::string &dir, const std::string &label,
            uint64_t discriminator, Bundle &b)
{
    if (b.manifest.empty())
        b.manifest = bundleManifest(b);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        throw TapeError("cannot create bundle directory '" + dir +
                        "': " + ec.message());
    // Stamp the name with a tape-content CRC so re-runs of the same job
    // never silently overwrite a different failure's bundle.
    std::vector<uint8_t> tape_bytes = encodeTape(b.tape);
    uint32_t stamp = crc32(0, tape_bytes.data(), tape_bytes.size());
    std::ostringstream name;
    name << sanitizeLabel(label) << "-j" << discriminator << "-" << std::hex
         << stamp << ".bundle";
    std::string path = (fs::path(dir) / name.str()).string();
    saveBundleFile(path, b);
    return path;
}

} // namespace onespec::replay
