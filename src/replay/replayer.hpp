/**
 * @file
 * Strict-tape replay: re-execute a recorded Tape and verify that the
 * re-execution is bit-identical to the recording.
 *
 * The replayer mirrors the fleet's job harness: fresh context, load the
 * tape's program, instantiate the recorded (or an explicitly chosen)
 * back end, attach a fault injector built from the tape's plan, restore
 * the embedded initial checkpoint and/or decode the raw restore images
 * exactly as the recorded job did, then drive the simulator through the
 * recorded cut schedule (a preempt cut additionally invalidates
 * simulator caches, reproducing the daemon's checkpoint/restore
 * round-trip).  In strict mode every OS-call result is compared against
 * the tape as it happens; a mismatch raises ReplayDivergence -- a typed
 * SimError -- which ends the replay.  Afterwards the final state hash,
 * output, instruction count, run status, error kind, and (when the
 * recording carried one) stats dump are compared against the tape's
 * EXPT section.
 *
 * Resource-kind recordings (watchdog deadlines) are wall-clock events
 * that re-execution cannot re-raise; the replay instead runs the
 * recorded cut schedule plus at most one chunkHint-sized segment -- an
 * upper bound on what the recorded run executed -- and a clean arrival
 * there counts as matching.
 */

#ifndef ONESPEC_REPLAY_REPLAYER_HPP
#define ONESPEC_REPLAY_REPLAYER_HPP

#include <string>
#include <vector>

#include "replay/tape.hpp"

namespace onespec::replay {

/** Raised when a strict replay observes something the tape did not
 *  record (or vice versa).  Divergence means the recording and this
 *  build disagree about a deterministic execution -- a genuine bug on
 *  one side -- so it is its own typed error, distinct from damage
 *  (TapeError) and from the guest's own failures. */
class ReplayDivergence : public GuestError
{
  public:
    explicit ReplayDivergence(const std::string &what)
        : GuestError("replay", what)
    {}
};

/** Which back end re-executes the tape. */
enum class ReplayBackend : uint8_t
{
    Recorded,  ///< whatever the tape was recorded on (META.useInterp)
    Interp,    ///< force the interpreter
    Generated, ///< force the generated simulator
};

struct ReplayOptions
{
    ReplayBackend backend = ReplayBackend::Recorded;

    /** Verify each OS-call result against the tape as it happens (the
     *  strict-tape mode); false only replays and compares the end
     *  state. */
    bool strictTape = true;

    /** Compare the recorded stats dump (skipped automatically when the
     *  recording died in flight and carried no dump). */
    bool compareStats = true;

    /** Re-throw the first mismatch as ReplayDivergence instead of
     *  returning a non-identical report. */
    bool throwOnMismatch = false;
};

/** What one replay produced and how it compared. */
struct ReplayReport
{
    /** True iff the replay matched the tape in every compared respect. */
    bool identical = false;
    /** Human-readable description of each mismatch, most basic first. */
    std::vector<std::string> mismatches;

    // What the replay itself produced.
    RunStatus status = RunStatus::Ok;
    uint64_t instrs = 0;
    uint64_t stateHash = 0;
    std::string output;
    std::string statsDump;
    ErrorKind errorKind = ErrorKind::None; ///< error the replay raised
    std::string error;                     ///< its what() text

    uint64_t syscallsVerified = 0; ///< records checked against the tape
    bool statsCompared = false;    ///< stats dump was actually compared
    bool usedInterp = false;       ///< back end the replay ran on
};

/**
 * Re-execute @p t and compare.  Throws TapeError when the tape itself
 * is unusable here (unknown spec, fingerprint mismatch, no program);
 * divergence and guest errors are *reported*, not thrown, unless
 * opt.throwOnMismatch.
 */
ReplayReport replayTape(const Tape &t, const ReplayOptions &opt = {});

} // namespace onespec::replay

#endif // ONESPEC_REPLAY_REPLAYER_HPP
