#include "replay/framing.hpp"

#include "support/crc32.hpp"

namespace onespec::replay::detail {

std::vector<uint8_t>
frameSections(const char magic[8], uint32_t version,
              const std::vector<Section> &sections)
{
    Writer hdr;
    hdr.bytes(magic, 8);
    hdr.u32(version);
    hdr.u32(static_cast<uint32_t>(sections.size()));
    size_t header_len = hdr.size() + sections.size() * (4 + 8 + 8 + 4) + 4;
    uint64_t off = header_len;
    for (const auto &s : sections) {
        hdr.u32(s.tag);
        hdr.u64(off);
        hdr.u64(s.payload.size());
        hdr.u32(crc32(0, s.payload.data(), s.payload.size()));
        off += s.payload.size();
    }
    hdr.u32(crc32(0, hdr.data(), hdr.size()));

    std::vector<uint8_t> out = hdr.take();
    out.reserve(static_cast<size_t>(off));
    for (const auto &s : sections)
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    return out;
}

std::vector<Section>
unframeSections(const std::vector<uint8_t> &bytes, const char magic[8],
                uint32_t version, const char *what)
{
    Reader hdr(bytes.data(), bytes.size(), what);
    char m[8];
    hdr.bytes(m, sizeof(m));
    if (std::memcmp(m, magic, sizeof(m)) != 0) {
        throw TapeError(std::string("bad magic: not a OneSpec ") + what +
                        " container");
    }
    uint32_t v = hdr.u32();
    if (v != version) {
        throw TapeError(std::string("unsupported ") + what + " version " +
                        std::to_string(v) + " (this build reads " +
                        std::to_string(version) + ")");
    }
    uint32_t nsec = hdr.u32();
    // Sanity-bound the table before trusting it for allocation.
    if (nsec > 1024) {
        throw TapeError(std::string(what) + ": implausible section count " +
                        std::to_string(nsec));
    }

    struct Row
    {
        uint32_t tag;
        uint64_t offset;
        uint64_t length;
        uint32_t crc;
    };
    std::vector<Row> rows;
    rows.reserve(nsec);
    for (uint32_t i = 0; i < nsec; ++i) {
        Row row;
        row.tag = hdr.u32();
        row.offset = hdr.u64();
        row.length = hdr.u64();
        row.crc = hdr.u32();
        rows.push_back(row);
    }
    size_t table_end = hdr.pos();
    uint32_t stored_crc = hdr.u32();
    if (stored_crc != crc32(0, bytes.data(), table_end)) {
        throw TapeError(std::string(what) +
                        " header CRC mismatch: container is damaged");
    }

    std::vector<Section> out;
    out.reserve(rows.size());
    for (const auto &row : rows) {
        if (row.offset > bytes.size() ||
            row.length > bytes.size() - row.offset) {
            throw TapeError(std::string(what) + " section " +
                            tagName(row.tag) +
                            " extends past the end of the container");
        }
        const uint8_t *p = bytes.data() + row.offset;
        size_t len = static_cast<size_t>(row.length);
        if (crc32(0, p, len) != row.crc) {
            throw TapeError(std::string(what) + " section " +
                            tagName(row.tag) +
                            " CRC mismatch: container is damaged");
        }
        out.push_back({row.tag, std::vector<uint8_t>(p, p + len)});
    }
    return out;
}

} // namespace onespec::replay::detail
