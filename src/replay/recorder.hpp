/**
 * @file
 * TapeRecorder: builds a replay Tape while a job runs.
 *
 * The recorder hooks the context's OsEmulator (chaining to whatever
 * hook -- the fault injector -- is already installed, via the
 * OsEmulator::syscallHook() accessor) and appends every
 * SyscallRecord the guest observes.  The driving harness feeds it the
 * rest: job metadata, the program image, the fault plan, raw restore
 * images, an embedded checkpoint of post-restore state, and the cut
 * schedule it actually ran.  One recorder serves one job attempt; the
 * daemon re-attaches the same recorder across preemption slices and
 * rolls a failed slice's syscalls back to the last slice mark.
 */

#ifndef ONESPEC_REPLAY_RECORDER_HPP
#define ONESPEC_REPLAY_RECORDER_HPP

#include <string>
#include <vector>

#include "replay/tape.hpp"

namespace onespec {
class SimContext;
}

namespace onespec::replay {

class TapeRecorder final : public OsEmulator::SyscallHook
{
  public:
    TapeRecorder() = default;
    ~TapeRecorder() override { detach(); }

    TapeRecorder(const TapeRecorder &) = delete;
    TapeRecorder &operator=(const TapeRecorder &) = delete;

    /** Fill the tape's META section. */
    void setJob(std::string spec_name, uint64_t spec_fingerprint,
                std::string buildset, bool use_interp, std::string job_name,
                uint64_t max_instrs, bool strict_syscalls,
                uint64_t profile_stride, uint64_t chunk_hint);

    /** Copy the program image into the tape. */
    void setProgram(const Program &p);

    /** Copy the job's fault plan into the tape. */
    void setFaultPlan(const fault::FaultPlan &plan);

    /** Append one raw serialized checkpoint the job will decode in-job
     *  (fleet restoreImages); kept pre-corruption so container-fault
     *  failures replay the decode itself. */
    void addRestoreImage(const std::vector<uint8_t> &img);

    /**
     * Embed the context's *current* state as the tape's initial image
     * (an OSPCKPT2 container).  Call after a direct checkpoint-chain
     * restore so replay starts from the same state without access to
     * the original checkpoints.
     */
    void captureInit(SimContext &ctx);

    /**
     * Install this recorder as the context's syscall hook, chaining to
     * the previously installed hook (so a fault injector keeps seeing
     * calls, and its forced failures are recorded as the guest saw
     * them).  detach() restores the previous hook; safe to call twice.
     */
    void attach(SimContext &ctx);
    void detach();

    // OsEmulator::SyscallHook
    bool onSyscall(uint64_t num) override;
    void onSyscallResult(const OsEmulator::SyscallRecord &r) override;

    /** Record a cut: the harness ended a sim->run() segment at
     *  cumulative @p instrs and will start another. */
    void noteCut(uint64_t instrs, CutKind kind);

    /** Mark a slice boundary (daemon): remembers the current syscall
     *  and cut counts so a failed slice can be rolled back. */
    void markSlice();

    /** Drop everything recorded since the last markSlice() -- the
     *  daemon re-executes those instructions after restoring the
     *  checkpoint, so keeping them would duplicate the stream. */
    void rollbackSlice();

    /** Finish the tape for a run that completed (status may still be
     *  Fault -- e.g. an injected access fault -- but the final state
     *  below is meaningful). */
    void finishOk(RunStatus status, uint64_t state_hash, uint64_t instrs,
                  std::string output, std::string stats_dump);

    /** Finish the tape for a run that died in flight: only the error
     *  taxonomy is known. */
    void finishError(ErrorKind kind, std::string context,
                     std::string message);

    const Tape &tape() const { return tape_; }

    /** Move the tape out (the recorder must be detached/finished). */
    Tape takeTape() { return std::move(tape_); }

  private:
    Tape tape_;
    OsEmulator *os_ = nullptr;
    SyscallHook *prev_ = nullptr;
    size_t sliceSyscallMark_ = 0;
    size_t sliceCutMark_ = 0;
};

} // namespace onespec::replay

#endif // ONESPEC_REPLAY_RECORDER_HPP
