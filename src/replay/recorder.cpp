#include "replay/recorder.hpp"

#include "ckpt/checkpoint.hpp"
#include "runtime/context.hpp"

namespace onespec::replay {

void
TapeRecorder::setJob(std::string spec_name, uint64_t spec_fingerprint,
                     std::string buildset, bool use_interp,
                     std::string job_name, uint64_t max_instrs,
                     bool strict_syscalls, uint64_t profile_stride,
                     uint64_t chunk_hint)
{
    tape_.specName = std::move(spec_name);
    tape_.specFingerprint = spec_fingerprint;
    tape_.buildset = std::move(buildset);
    tape_.useInterp = use_interp;
    tape_.jobName = std::move(job_name);
    tape_.maxInstrs = max_instrs;
    tape_.strictSyscalls = strict_syscalls;
    tape_.profileStride = profile_stride;
    tape_.chunkHint = chunk_hint;
}

void
TapeRecorder::setProgram(const Program &p)
{
    tape_.program = p;
    tape_.hasProgram = true;
}

void
TapeRecorder::setFaultPlan(const fault::FaultPlan &plan)
{
    tape_.faultPlan = plan;
    // A shared plan may arrive mid-fuzz with fired flags set; the tape
    // stores the schedule, so replay starts pristine.
    for (auto &ev : tape_.faultPlan.events)
        ev.fired = false;
}

void
TapeRecorder::addRestoreImage(const std::vector<uint8_t> &img)
{
    tape_.restoreImages.push_back(img);
}

void
TapeRecorder::captureInit(SimContext &ctx)
{
    tape_.initImage = ckpt::encode(ckpt::capture(ctx));
}

void
TapeRecorder::attach(SimContext &ctx)
{
    detach();
    os_ = &ctx.os();
    prev_ = os_->syscallHook();
    os_->setSyscallHook(this);
}

void
TapeRecorder::detach()
{
    if (os_) {
        os_->setSyscallHook(prev_);
        os_ = nullptr;
        prev_ = nullptr;
    }
}

bool
TapeRecorder::onSyscall(uint64_t num)
{
    return prev_ ? prev_->onSyscall(num) : false;
}

void
TapeRecorder::onSyscallResult(const OsEmulator::SyscallRecord &r)
{
    if (prev_)
        prev_->onSyscallResult(r);
    tape_.syscalls.push_back(r);
}

void
TapeRecorder::noteCut(uint64_t instrs, CutKind kind)
{
    tape_.cuts.push_back({instrs, kind});
}

void
TapeRecorder::markSlice()
{
    sliceSyscallMark_ = tape_.syscalls.size();
    sliceCutMark_ = tape_.cuts.size();
}

void
TapeRecorder::rollbackSlice()
{
    tape_.syscalls.resize(sliceSyscallMark_);
    tape_.cuts.resize(sliceCutMark_);
}

void
TapeRecorder::finishOk(RunStatus status, uint64_t state_hash,
                       uint64_t instrs, std::string output,
                       std::string stats_dump)
{
    tape_.expected.finished = true;
    tape_.expected.runStatus = status;
    tape_.expected.stateHash = state_hash;
    tape_.expected.instrs = instrs;
    tape_.expected.output = std::move(output);
    tape_.expected.statsDump = std::move(stats_dump);
    tape_.expected.errorKind = ErrorKind::None;
    tape_.expected.errorContext.clear();
    tape_.expected.errorMessage.clear();
}

void
TapeRecorder::finishError(ErrorKind kind, std::string context,
                          std::string message)
{
    tape_.expected.finished = false;
    tape_.expected.runStatus = RunStatus::Fault;
    tape_.expected.errorKind = kind;
    tape_.expected.errorContext = std::move(context);
    tape_.expected.errorMessage = std::move(message);
}

} // namespace onespec::replay
