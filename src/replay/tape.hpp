/**
 * @file
 * Deterministic record/replay tapes.
 *
 * A Tape is everything needed to re-execute one fleet or service job
 * bit-for-bit on a machine that has only the OneSpec build and the tape
 * file: the job's identity (spec name + fingerprint, buildset, back
 * end), the full Program image, any initial state (an embedded
 * OSPCKPT2 checkpoint captured after restore chains, or the raw
 * serialized containers a container-fault job was asked to decode), the
 * fault plan, the slice/chunk cut schedule the harness drove the run
 * with, every OS-call result the guest observed, and the outcome the
 * recording run produced (final state hash, output, stats dump, or the
 * SimError that quarantined it).
 *
 * The on-disk container ("OSPTAPE1") reuses the OSPCKPT2 framing
 * conventions from src/ckpt/: a magic + version header, a section table
 * of (FourCC tag, offset, length, CRC-32) rows, a header CRC, and
 * little-endian byte-by-byte field encoding so a tape written on any
 * host loads on any other.  Any truncation, CRC mismatch, or structural
 * damage throws TapeError -- a damaged tape is never silently replayed.
 * Unknown section tags are skipped, so future writers can extend the
 * format without breaking this reader.
 *
 * The byte-level format is documented in docs/REPLAY.md.
 */

#ifndef ONESPEC_REPLAY_TAPE_HPP
#define ONESPEC_REPLAY_TAPE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "iface/functional_simulator.hpp"
#include "runtime/os.hpp"
#include "runtime/program.hpp"
#include "support/sim_error.hpp"

namespace onespec::replay {

/** Raised for any invalid, damaged, or mismatched tape or bundle
 *  container.  A tape is serialized guest history, so like CkptError
 *  this is a GuestError: the consumer rejects it and never retries. */
class TapeError : public GuestError
{
  public:
    explicit TapeError(const std::string &what) : GuestError("tape", what) {}
};

/** Container format version this build writes and reads. */
constexpr uint32_t kTapeVersion = 1;

/** Why the harness stopped the simulator at a cut point. */
enum class CutKind : uint8_t
{
    Chunk = 0,   ///< fleet watchdog/fault chunk boundary
    Preempt = 1, ///< daemon preemption (checkpoint + later restore)
};

/**
 * One point where the recording harness split the run into separate
 * sim->run() calls.  @p instrs is cumulative instructions retired since
 * the run began.  Replay re-executes the same schedule: chunk
 * boundaries can shift block-level crossing counts (never architectural
 * results), and a preempt boundary additionally invalidates simulator
 * caches the way a checkpoint restore does -- so reproducing the stats
 * dump requires reproducing the cuts.
 */
struct TapeCut
{
    uint64_t instrs = 0;
    CutKind kind = CutKind::Chunk;
};

/** What the recording run produced; replay compares itself against
 *  this. */
struct TapeExpected
{
    /** True when the recorded run ran to completion and the final-state
     *  fields below are meaningful; false when it died in flight (the
     *  quarantine case) and only the error fields matter. */
    bool finished = false;

    RunStatus runStatus = RunStatus::Ok;
    uint64_t stateHash = 0; ///< parallel::contextStateHash of the final state
    uint64_t instrs = 0;    ///< instructions retired
    std::string output;     ///< bytes the guest wrote to stdout
    std::string statsDump;  ///< the job registry's dump() text

    /** Taxonomy class of the error that ended the recorded run
     *  (ErrorKind::None for a clean run). */
    ErrorKind errorKind = ErrorKind::None;
    std::string errorContext; ///< SimError context ("os", "ckpt", ...)
    std::string errorMessage; ///< SimError what() text
};

/** A complete recorded run. */
struct Tape
{
    // META: job identity and harness knobs.
    std::string specName;
    uint64_t specFingerprint = 0;
    std::string buildset;
    bool useInterp = false; ///< back end the recording ran on
    std::string jobName;
    uint64_t maxInstrs = ~uint64_t{0};
    bool strictSyscalls = false;
    uint64_t profileStride = 0;
    /** The harness's chunk/slice size: the most the recorded run can
     *  have executed past the last cut.  Bounds replay of Resource-kind
     *  (wall-clock) failures, which cannot be re-raised by re-execution. */
    uint64_t chunkHint = 0;

    // PROG: the initial program image.
    bool hasProgram = false;
    Program program;

    // INIT: optional embedded OSPCKPT2 container -- the context state
    // after any restore chain, so replay composes with checkpoint
    // restore without access to the original checkpoints.
    std::vector<uint8_t> initImage;

    // RIMG: serialized checkpoint containers the job decoded *in-job*
    // (fleet restoreImages).  Kept raw, pre-corruption, so a
    // container-fault quarantine replays the decode failure itself.
    std::vector<std::vector<uint8_t>> restoreImages;

    // FPLN: fault plan (empty = no injection).
    fault::FaultPlan faultPlan;

    // CUTS: the cut schedule, ascending cumulative instruction counts.
    std::vector<TapeCut> cuts;

    // SYSC: every OS-call result the guest observed, in order.
    std::vector<OsEmulator::SyscallRecord> syscalls;

    // EXPT: the recorded outcome.
    TapeExpected expected;
};

/** Serialize to the OSPTAPE1 container. */
std::vector<uint8_t> encodeTape(const Tape &t);

/** Parse and validate a container image.  Throws TapeError on bad
 *  magic, unsupported version, truncation, or any CRC mismatch. */
Tape decodeTape(const std::vector<uint8_t> &bytes);

} // namespace onespec::replay

#endif // ONESPEC_REPLAY_TAPE_HPP
