#include "obs/pc_profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "adl/spec.hpp"
#include "stats/stats.hpp"

namespace onespec::obs {

namespace {

/** Registry segment names allow [A-Za-z0-9_-]; mnemonics may carry
 *  dots ("b.cond" styles), so squash anything else to '_'. */
std::string
sanitizeSegment(const std::string &s)
{
    std::string out = s.empty() ? std::string("unknown") : s;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

std::string
hexBucketName(uint64_t base)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "pc_%llx",
                  static_cast<unsigned long long>(base));
    return buf;
}

int64_t
hostNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

PcProfiler::PcProfiler(const Spec &spec, Config cfg)
    : spec_(&spec), cfg_(cfg),
      stride_(cfg.strideInstrs ? cfg.strideInstrs : 1),
      countdown_(stride_), opCounts_(spec.instrs.size() + 1, 0)
{
    if (cfg_.hostBudgetHz)
        lastSampleNs_ = hostNowNs();
}

void
PcProfiler::takeSample(uint64_t pc, uint16_t op_id)
{
    ++samples_;
    uint64_t base = (pc >> cfg_.bucketShift) << cfg_.bucketShift;
    ++buckets_[base];
    size_t slot = op_id == 0xffff ? opCounts_.size() - 1
                                  : std::min<size_t>(op_id,
                                                     opCounts_.size() - 1);
    ++opCounts_[slot];

    if (cfg_.hostBudgetHz) {
        // Self-adjust toward hostBudgetHz samples per host second: halve
        // the stride when samples arrive too slowly, double it when they
        // arrive too fast.  Bounded geometric steps keep it stable.
        int64_t now = hostNowNs();
        int64_t dt = now - lastSampleNs_;
        lastSampleNs_ = now;
        int64_t target =
            static_cast<int64_t>(1'000'000'000ull / cfg_.hostBudgetHz);
        if (dt < target / 2 && stride_ < (1ull << 40))
            stride_ *= 2;
        else if (dt > target * 2 && stride_ > 1)
            stride_ /= 2;
    }
    countdown_ = stride_;
}

void
PcProfiler::publish(stats::StatGroup &g) const
{
    g.counter("samples", "PC samples taken").add(samples_);
    g.scalar("stride", "sampling stride at end of run (retired instrs)")
        .set(static_cast<double>(stride_));
    g.scalar("bucket_bytes", "PC bucket granularity in bytes")
        .set(static_cast<double>(1ull << cfg_.bucketShift));

    stats::StatGroup &pc = g.group("pc");
    for (const auto &[base, n] : buckets_)
        pc.counter(hexBucketName(base), "samples in this PC bucket").add(n);

    stats::StatGroup &act = g.group("action");
    for (size_t i = 0; i < opCounts_.size(); ++i) {
        if (!opCounts_[i])
            continue;
        std::string name = i + 1 == opCounts_.size()
                               ? std::string("illegal")
                               : sanitizeSegment(spec_->instrs[i].name);
        act.counter(name, "samples attributed to this instruction")
            .add(opCounts_[i]);
    }
}

void
PcProfiler::reset()
{
    samples_ = 0;
    buckets_.clear();
    opCounts_.assign(opCounts_.size(), 0);
    stride_ = cfg_.strideInstrs ? cfg_.strideInstrs : 1;
    countdown_ = stride_;
    if (cfg_.hostBudgetHz)
        lastSampleNs_ = hostNowNs();
}

} // namespace onespec::obs
