/**
 * @file
 * Time-series metrics: a fixed-capacity ring of counter/gauge samples
 * plus an OpenMetrics/Prometheus text-format encoder.
 *
 * The ring is deliberately dumb about *what* it samples -- callers (the
 * service daemon) hand it flat lists of already-labelled counter points
 * and gauge values; the ring stamps a sequence number, computes the
 * delta of every counter point against the previous sample, and keeps
 * the last `capacity` samples.  Sampling cadence is the caller's
 * business; the daemon drives it off its job-completion count, not wall
 * clock, so the series a test observes is a function of the work done
 * (docs/OBSERVABILITY.md, "Daemon time-series").
 *
 * renderOpenMetrics turns the latest sample into scrape text: counter
 * families (names ending `_total`) expose the cumulative values of the
 * newest sample -- which only ever grow, so successive scrapes are
 * monotone per label set -- gauges expose their newest values, the
 * unlabelled counter families additionally expose their per-sample
 * deltas across the whole ring (`<family>_delta{sample="N"}`), and the
 * text ends with the `# EOF` terminator OpenMetrics requires.  Scraping
 * is read-only: it cannot perturb the sampled state, which is what lets
 * bench_telemetry demand bit-identical final stats with and without a
 * scraper attached.
 */

#ifndef ONESPEC_OBS_METRICS_HPP
#define ONESPEC_OBS_METRICS_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace onespec::obs {

/** One labelled counter value at one sample point. */
struct MetricPoint
{
    std::string family; ///< e.g. "onespec_jobs_completed_total"
    /** Rendered label list without braces, e.g. `tenant="bench"`; empty
     *  for an unlabelled point.  Build with metricLabel() so escaping
     *  is consistent. */
    std::string labels;
    uint64_t value = 0; ///< cumulative (counters never decrease)
};

/** `key="value"` with OpenMetrics escaping of \, " and newline. */
std::string metricLabel(const std::string &key, const std::string &value);

/** One sample held by the ring. */
struct MetricsSample
{
    uint64_t seq = 0;         ///< 1-based sample sequence number
    uint64_t completedAt = 0; ///< caller's cadence counter when taken
    std::vector<MetricPoint> counters; ///< cumulative values
    std::vector<MetricPoint> deltas;   ///< vs the previous sample
    std::vector<std::pair<std::string, int64_t>> gauges;
};

/** Fixed-capacity sample ring; push evicts the oldest when full. */
class MetricsRing
{
  public:
    explicit MetricsRing(size_t capacity = 64)
        : capacity_(capacity ? capacity : 1)
    {}

    /** Record one sample.  Counter deltas are computed against the
     *  previous push for matching (family, labels) pairs; a point seen
     *  for the first time deltas from zero. */
    void push(uint64_t completed_at, std::vector<MetricPoint> counters,
              std::vector<std::pair<std::string, int64_t>> gauges);

    /** Samples currently held, oldest first. */
    std::vector<MetricsSample> snapshot() const;

    /** Total samples ever taken (including evicted ones). */
    uint64_t taken() const;

    size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex m_;
    std::deque<MetricsSample> ring_;
    std::map<std::string, uint64_t> last_; ///< family|labels -> value
    uint64_t taken_ = 0;
    size_t capacity_;
};

/**
 * Render the ring as OpenMetrics text (also valid Prometheus text
 * exposition).  @p help maps family name -> HELP string; families
 * without an entry get only their TYPE line.
 */
std::string renderOpenMetrics(
    const MetricsRing &ring,
    const std::vector<std::pair<std::string, std::string>> &help = {});

} // namespace onespec::obs

#endif // ONESPEC_OBS_METRICS_HPP
