#include "obs/metrics.hpp"

#include <algorithm>

namespace onespec::obs {

std::string
metricLabel(const std::string &key, const std::string &value)
{
    std::string out = key;
    out += "=\"";
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    out += '"';
    return out;
}

void
MetricsRing::push(uint64_t completed_at, std::vector<MetricPoint> counters,
                  std::vector<std::pair<std::string, int64_t>> gauges)
{
    std::lock_guard<std::mutex> lock(m_);
    MetricsSample s;
    s.seq = ++taken_;
    s.completedAt = completed_at;
    s.deltas.reserve(counters.size());
    for (const MetricPoint &p : counters) {
        std::string key = p.family + "|" + p.labels;
        uint64_t prev = 0;
        auto it = last_.find(key);
        if (it != last_.end())
            prev = it->second;
        MetricPoint d = p;
        d.value = p.value >= prev ? p.value - prev : 0;
        s.deltas.push_back(std::move(d));
        last_[key] = p.value;
    }
    s.counters = std::move(counters);
    s.gauges = std::move(gauges);
    ring_.push_back(std::move(s));
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

std::vector<MetricsSample>
MetricsRing::snapshot() const
{
    std::lock_guard<std::mutex> lock(m_);
    return {ring_.begin(), ring_.end()};
}

uint64_t
MetricsRing::taken() const
{
    std::lock_guard<std::mutex> lock(m_);
    return taken_;
}

std::string
renderOpenMetrics(
    const MetricsRing &ring,
    const std::vector<std::pair<std::string, std::string>> &help)
{
    std::vector<MetricsSample> samples = ring.snapshot();
    std::string out;
    out.reserve(4096);

    auto helpFor = [&help](const std::string &family) -> const std::string * {
        for (const auto &kv : help)
            if (kv.first == family)
                return &kv.second;
        return nullptr;
    };
    auto header = [&](const std::string &family, const char *type) {
        if (const std::string *h = helpFor(family))
            out += "# HELP " + family + " " + *h + "\n";
        out += "# TYPE " + family + " " + type + "\n";
    };
    auto sampleLine = [&](const std::string &family,
                          const std::string &labels, uint64_t v) {
        out += family;
        if (!labels.empty())
            out += "{" + labels + "}";
        out += " " + std::to_string(v) + "\n";
    };

    // Exposition meta: always present, even before the first sample, so
    // a scrape of an idle daemon is still a valid document.
    header("onespec_metrics_samples_total", "counter");
    sampleLine("onespec_metrics_samples_total", "", ring.taken());
    header("onespec_metrics_ring_capacity", "gauge");
    sampleLine("onespec_metrics_ring_capacity", "", ring.capacity());

    if (!samples.empty()) {
        const MetricsSample &latest = samples.back();

        header("onespec_metrics_last_sample_seq", "gauge");
        sampleLine("onespec_metrics_last_sample_seq", "", latest.seq);

        // Counters: cumulative values from the newest sample, grouped by
        // family in first-appearance order (the daemon emits them in a
        // deterministic order already).
        std::vector<std::string> done;
        for (size_t i = 0; i < latest.counters.size(); ++i) {
            const std::string &family = latest.counters[i].family;
            if (std::find(done.begin(), done.end(), family) != done.end())
                continue;
            done.push_back(family);
            header(family, "counter");
            for (const MetricPoint &p : latest.counters)
                if (p.family == family)
                    sampleLine(family, p.labels, p.value);
        }

        // Gauges.
        for (const auto &g : latest.gauges) {
            header(g.first, "gauge");
            out += g.first + " " + std::to_string(g.second) + "\n";
        }

        // The delta ring: per-sample increments of every unlabelled
        // counter family, one `sample` label per ring slot.  Labelled
        // families are skipped to bound cardinality at
        // families x capacity.
        done.clear();
        for (const MetricPoint &p : latest.deltas) {
            if (!p.labels.empty())
                continue;
            if (std::find(done.begin(), done.end(), p.family) != done.end())
                continue;
            done.push_back(p.family);
            std::string dfam = p.family + "_delta";
            // "_total_delta" reads badly and would render as a counter;
            // deltas are gauges named <base>_delta.
            const std::string suffix = "_total";
            if (dfam.size() > suffix.size() + 6 &&
                p.family.size() > suffix.size() &&
                p.family.compare(p.family.size() - suffix.size(),
                                 suffix.size(), suffix) == 0)
                dfam = p.family.substr(0, p.family.size() - suffix.size()) +
                       "_delta";
            header(dfam, "gauge");
            for (const MetricsSample &s : samples)
                for (const MetricPoint &d : s.deltas)
                    if (d.family == p.family && d.labels.empty())
                        sampleLine(
                            dfam,
                            "sample=\"" + std::to_string(s.seq) + "\"",
                            d.value);
        }
    }

    out += "# EOF\n";
    return out;
}

} // namespace onespec::obs
