/**
 * @file
 * Guest hot-PC profiler: samples the executing guest PC every N retired
 * instructions and attributes the samples to PC buckets and decoded
 * actions (instruction mnemonics).  Both back ends drive the same hook
 * -- the interpreter from its retire point in `runSteps`, the
 * synthesized simulators from a sample call `cppgen` emits ahead of
 * `retire(di)` -- so with the same stride the two produce *identical*
 * sample streams on the same kernel.  That is the single-specification
 * principle applied to profiling: one sampling spec, two back ends, one
 * answer.
 *
 * Disarmed cost: a simulator with no profiler attached pays one
 * predictable null-pointer branch per retired instruction (same
 * contract as `ONESPEC_TRACE` / the flight recorder).  Armed cost: a
 * countdown decrement per retire, plus a bucket update every `stride`
 * retires.
 *
 * Two sampling modes:
 *  - **fixed stride** (default, deterministic): sample every
 *    `strideInstrs` retires.  Used by tests, the fleet, and anything
 *    that must keep merged stats bit-identical across thread counts.
 *  - **host-budget** (`hostBudgetHz > 0`): the stride self-adjusts
 *    toward a target samples/second of host wall-clock, so profiling a
 *    fast generated simulator does not cost more than the budget.
 *    Non-deterministic by design; not for determinism-checked runs.
 */

#ifndef ONESPEC_OBS_PC_PROFILE_HPP
#define ONESPEC_OBS_PC_PROFILE_HPP

#include <cstdint>
#include <map>
#include <vector>

namespace onespec {
struct Spec;
namespace stats {
class StatGroup;
}
} // namespace onespec

namespace onespec::obs {

/** One profiler instance per simulator; not thread-safe (each fleet job
 *  owns its own, matching the one-registry-per-job discipline). */
class PcProfiler
{
  public:
    struct Config
    {
        /** Sample every this many retired instructions. */
        uint64_t strideInstrs = 64;
        /** If > 0, adapt the stride toward this many samples per host
         *  second (non-deterministic; see file comment). */
        uint64_t hostBudgetHz = 0;
        /** PC bucket granularity: bucket = pc >> bucketShift. */
        unsigned bucketShift = 6;
    };

    explicit PcProfiler(const Spec &spec) : PcProfiler(spec, Config()) {}
    PcProfiler(const Spec &spec, Config cfg);

    /** The per-retire hook.  Call with the retired instruction's PC and
     *  opId; samples when the countdown expires. */
    void
    tick(uint64_t pc, uint16_t op_id)
    {
        if (--countdown_ != 0) [[likely]]
            return;
        takeSample(pc, op_id);
    }

    uint64_t samples() const { return samples_; }
    uint64_t strideCurrent() const { return stride_; }
    unsigned bucketShift() const { return cfg_.bucketShift; }

    /** Sample counts keyed by PC-bucket base address (pc with the low
     *  bucketShift bits cleared), deterministic iteration order. */
    const std::map<uint64_t, uint64_t> &buckets() const { return buckets_; }

    /** Sample counts per opId (index into Spec::instrs). */
    const std::vector<uint64_t> &opCounts() const { return opCounts_; }

    /**
     * Publish into @p g: a `samples` counter, `stride` / `bucket_bytes`
     * scalars, a `pc` child group with one counter per hot bucket
     * (`pc_<hex base>`), and an `action` child group with one counter
     * per sampled mnemonic.  Publish once per profiler (fleet jobs and
     * benches build a fresh profiler per run).
     */
    void publish(stats::StatGroup &g) const;

    /** Forget all samples and restart the countdown. */
    void reset();

  private:
    void takeSample(uint64_t pc, uint16_t op_id);

    const Spec *spec_;
    Config cfg_;
    uint64_t stride_;
    uint64_t countdown_;
    uint64_t samples_ = 0;
    std::map<uint64_t, uint64_t> buckets_;
    std::vector<uint64_t> opCounts_;
    int64_t lastSampleNs_ = 0; ///< host-budget mode bookkeeping
};

} // namespace onespec::obs

#endif // ONESPEC_OBS_PC_PROFILE_HPP
