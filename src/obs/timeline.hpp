/**
 * @file
 * Timeline exporter: serializes the flight recorder's per-thread rings
 * into Chrome trace-event JSON (the format chrome://tracing, Perfetto's
 * legacy importer, and speedscope all read).  One track per worker
 * thread; `B`/`E` span pairs for jobs, backoff windows, and checkpoint
 * capture/restore; `i` instants for retries, quarantines, deadlines,
 * syscalls, and faults; `M` metadata naming each track.
 *
 * Because a ring overwrites its oldest events, a snapshot can start with
 * an orphan `E` or end inside an open span.  The builder repairs both:
 * orphan Ends are dropped, and spans still open at the end of a track
 * are closed at the track's last timestamp, so the output always has
 * matched B/E pairs per thread (what `tools/check_trace_json.py`
 * enforces).
 */

#ifndef ONESPEC_OBS_TIMELINE_HPP
#define ONESPEC_OBS_TIMELINE_HPP

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "stats/json.hpp"

namespace onespec::obs {

/** Optional labels attached to trace events. */
struct TimelineLabels
{
    /** jobNames[i] names Job-span events whose id == i. */
    std::vector<std::string> jobNames;
    /** Process label for the one pid in the trace. */
    std::string processName = "onespec-fleet";
    /**
     * Wire trace ids by correlation id: job-scoped events whose id has
     * an entry here carry an `args.trace_id` hex string, the join key
     * the merged client+daemon timeline correlates spans on
     * (docs/OBSERVABILITY.md, "Cross-process tracing").
     */
    std::unordered_map<uint32_t, uint64_t> traceIds;
    /**
     * Extra integer fields for the document's otherData block.  The
     * client-side exporter stores `daemon_clock_offset_ns` here so
     * mergeChromeTraces can align the two monotonic timebases.
     */
    std::vector<std::pair<std::string, int64_t>> otherData;
};

/**
 * Build the Chrome trace-event document from every recorder of the
 * current arm generation.  Call after the producing threads have
 * quiesced (e.g. after a fleet run returns).
 */
stats::Json buildChromeTrace(const TimelineLabels &labels = {});

/**
 * Build and write the trace to @p path.  Returns false and sets
 * @p error if the file cannot be written.
 */
bool exportChromeTrace(const std::string &path,
                       const TimelineLabels &labels = {},
                       std::string *error = nullptr);

/**
 * Merge a daemon-side and a client-side Chrome trace file (each written
 * by exportChromeTrace in its own process) into one document at
 * @p outPath: the daemon keeps pid 1, the client moves to pid 2, and
 * client timestamps are shifted into the daemon's timebase using the
 * `daemon_clock_offset_ns` the client computed from the Hello/HelloAck
 * monotonic-clock exchange (stored in its trace's otherData).  After the
 * shift the whole timeline is re-based so the earliest event sits at
 * t=0.  Spans from the two sides that belong to the same job share an
 * `args.trace_id`, which is what `tools/check_trace_json.py --merged`
 * verifies.  Returns false and sets @p error on unreadable input,
 * malformed JSON, or a missing offset.
 */
bool mergeChromeTraces(const std::string &daemonPath,
                       const std::string &clientPath,
                       const std::string &outPath,
                       std::string *error = nullptr);

} // namespace onespec::obs

#endif // ONESPEC_OBS_TIMELINE_HPP
