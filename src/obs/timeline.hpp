/**
 * @file
 * Timeline exporter: serializes the flight recorder's per-thread rings
 * into Chrome trace-event JSON (the format chrome://tracing, Perfetto's
 * legacy importer, and speedscope all read).  One track per worker
 * thread; `B`/`E` span pairs for jobs, backoff windows, and checkpoint
 * capture/restore; `i` instants for retries, quarantines, deadlines,
 * syscalls, and faults; `M` metadata naming each track.
 *
 * Because a ring overwrites its oldest events, a snapshot can start with
 * an orphan `E` or end inside an open span.  The builder repairs both:
 * orphan Ends are dropped, and spans still open at the end of a track
 * are closed at the track's last timestamp, so the output always has
 * matched B/E pairs per thread (what `tools/check_trace_json.py`
 * enforces).
 */

#ifndef ONESPEC_OBS_TIMELINE_HPP
#define ONESPEC_OBS_TIMELINE_HPP

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "stats/json.hpp"

namespace onespec::obs {

/** Optional labels attached to trace events. */
struct TimelineLabels
{
    /** jobNames[i] names Job-span events whose id == i. */
    std::vector<std::string> jobNames;
    /** Process label for the one pid in the trace. */
    std::string processName = "onespec-fleet";
};

/**
 * Build the Chrome trace-event document from every recorder of the
 * current arm generation.  Call after the producing threads have
 * quiesced (e.g. after a fleet run returns).
 */
stats::Json buildChromeTrace(const TimelineLabels &labels = {});

/**
 * Build and write the trace to @p path.  Returns false and sets
 * @p error if the file cannot be written.
 */
bool exportChromeTrace(const std::string &path,
                       const TimelineLabels &labels = {},
                       std::string *error = nullptr);

} // namespace onespec::obs

#endif // ONESPEC_OBS_TIMELINE_HPP
