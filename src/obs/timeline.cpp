#include "obs/timeline.hpp"

#include <cstdio>

namespace onespec::obs {

namespace {

/** Event name shown on the timeline: type name plus the correlation id
 *  (job name when the labels carry one). */
std::string
eventName(const FrEvent &ev, const TimelineLabels &labels)
{
    std::string name = evTypeName(ev.type);
    bool job_scoped = ev.type == EvType::Job || ev.type == EvType::Backoff ||
                      ev.type == EvType::Retry ||
                      ev.type == EvType::Quarantine ||
                      ev.type == EvType::Deadline;
    if (job_scoped) {
        if (ev.id < labels.jobNames.size())
            name += " " + labels.jobNames[ev.id];
        else
            name += " #" + std::to_string(ev.id);
    }
    return name;
}

stats::Json
eventArgs(const FrEvent &ev)
{
    stats::Json args = stats::Json::object();
    args.set("a0", stats::Json(ev.a0));
    args.set("a1", stats::Json(ev.a1));
    args.set("id", stats::Json(static_cast<uint64_t>(ev.id)));
    return args;
}

stats::Json
makeEvent(const char *ph, const std::string &name, const FrEvent &ev,
          unsigned tid, double ts_us)
{
    stats::Json e = stats::Json::object();
    e.set("name", stats::Json(name));
    e.set("cat", stats::Json(evCategory(ev.type)));
    e.set("ph", stats::Json(ph));
    e.set("ts", stats::Json(ts_us));
    e.set("pid", stats::Json(static_cast<int64_t>(1)));
    e.set("tid", stats::Json(static_cast<int64_t>(tid)));
    if (ph[0] == 'i')
        e.set("s", stats::Json("t")); // thread-scoped instant
    e.set("args", eventArgs(ev));
    return e;
}

stats::Json
metadataEvent(const char *name, const std::string &value, unsigned tid)
{
    stats::Json e = stats::Json::object();
    e.set("name", stats::Json(name));
    e.set("ph", stats::Json("M"));
    e.set("ts", stats::Json(0.0));
    e.set("pid", stats::Json(static_cast<int64_t>(1)));
    e.set("tid", stats::Json(static_cast<int64_t>(tid)));
    stats::Json args = stats::Json::object();
    args.set("name", stats::Json(value));
    e.set("args", std::move(args));
    return e;
}

} // namespace

stats::Json
buildChromeTrace(const TimelineLabels &labels)
{
    stats::Json events = stats::Json::array();

    // One process-name record for the single pid we emit.
    {
        stats::Json e = stats::Json::object();
        e.set("name", stats::Json("process_name"));
        e.set("ph", stats::Json("M"));
        e.set("ts", stats::Json(0.0));
        e.set("pid", stats::Json(static_cast<int64_t>(1)));
        e.set("tid", stats::Json(static_cast<int64_t>(0)));
        stats::Json args = stats::Json::object();
        args.set("name", stats::Json(labels.processName));
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    for (const auto &rec : FlightControl::instance().recorders()) {
        unsigned tid = rec->tid();
        std::vector<FrEvent> evs = rec->snapshot();
        events.push(metadataEvent(
            "thread_name", "worker-" + std::to_string(tid), tid));

        // Per-track span stack for B/E pairing repair: a ring overwrite
        // can leave an End without its Begin (drop it) or a Begin
        // without its End (close it at the track's last timestamp).
        struct Open
        {
            FrEvent ev;
            std::string name;
        };
        std::vector<Open> open;
        uint64_t last_ts = 0;

        for (const FrEvent &ev : evs) {
            last_ts = ev.tsNs;
            double ts_us = static_cast<double>(ev.tsNs) / 1000.0;
            switch (ev.phase) {
              case EvPhase::Begin: {
                std::string name = eventName(ev, labels);
                events.push(makeEvent("B", name, ev, tid, ts_us));
                open.push_back(Open{ev, std::move(name)});
                break;
              }
              case EvPhase::End: {
                if (open.empty() || open.back().ev.type != ev.type)
                    break; // orphan End from ring overwrite
                events.push(makeEvent("E", open.back().name, ev, tid, ts_us));
                open.pop_back();
                break;
              }
              case EvPhase::Instant:
                events.push(
                    makeEvent("i", eventName(ev, labels), ev, tid, ts_us));
                break;
            }
        }

        // Close spans the snapshot ended inside (quarantine-aborted jobs,
        // tail truncation) at the last timestamp seen on this track.
        double close_us = static_cast<double>(last_ts) / 1000.0;
        while (!open.empty()) {
            events.push(
                makeEvent("E", open.back().name, open.back().ev, tid,
                          close_us));
            open.pop_back();
        }
    }

    stats::Json doc = stats::Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", stats::Json("ms"));
    stats::Json other = stats::Json::object();
    other.set("source", stats::Json("onespec flight recorder"));
    other.set("dropped_events",
              stats::Json(FlightControl::instance().totalDropped()));
    doc.set("otherData", std::move(other));
    return doc;
}

bool
exportChromeTrace(const std::string &path, const TimelineLabels &labels,
                  std::string *error)
{
    std::string text = buildChromeTrace(labels).dump(2);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool closed = std::fclose(f) == 0;
    if (n != text.size() || !closed) {
        if (error)
            *error = "short write to " + path;
        return false;
    }
    return true;
}

} // namespace onespec::obs
