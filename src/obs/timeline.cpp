#include "obs/timeline.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace onespec::obs {

namespace {

/** Event name shown on the timeline: type name plus the correlation id
 *  (job name when the labels carry one). */
std::string
eventName(const FrEvent &ev, const TimelineLabels &labels)
{
    std::string name = evTypeName(ev.type);
    bool job_scoped = ev.type == EvType::Job || ev.type == EvType::Backoff ||
                      ev.type == EvType::Retry ||
                      ev.type == EvType::Quarantine ||
                      ev.type == EvType::Deadline ||
                      ev.type == EvType::Submit ||
                      ev.type == EvType::QueueWait ||
                      ev.type == EvType::Stream ||
                      ev.type == EvType::Warm;
    if (job_scoped) {
        if (ev.id < labels.jobNames.size())
            name += " " + labels.jobNames[ev.id];
        else
            name += " #" + std::to_string(ev.id);
    }
    return name;
}

/** Fixed-width hex so trace ids compare as plain strings everywhere. */
std::string
traceIdHex(uint64_t id)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

stats::Json
eventArgs(const FrEvent &ev, const TimelineLabels &labels)
{
    stats::Json args = stats::Json::object();
    args.set("a0", stats::Json(ev.a0));
    args.set("a1", stats::Json(ev.a1));
    args.set("id", stats::Json(static_cast<uint64_t>(ev.id)));
    auto it = labels.traceIds.find(ev.id);
    if (it != labels.traceIds.end() && it->second != 0)
        args.set("trace_id", stats::Json(traceIdHex(it->second)));
    return args;
}

stats::Json
makeEvent(const char *ph, const std::string &name, const FrEvent &ev,
          unsigned tid, double ts_us, const TimelineLabels &labels)
{
    stats::Json e = stats::Json::object();
    e.set("name", stats::Json(name));
    e.set("cat", stats::Json(evCategory(ev.type)));
    e.set("ph", stats::Json(ph));
    e.set("ts", stats::Json(ts_us));
    e.set("pid", stats::Json(static_cast<int64_t>(1)));
    e.set("tid", stats::Json(static_cast<int64_t>(tid)));
    if (ph[0] == 'i')
        e.set("s", stats::Json("t")); // thread-scoped instant
    e.set("args", eventArgs(ev, labels));
    return e;
}

stats::Json
metadataEvent(const char *name, const std::string &value, unsigned tid)
{
    stats::Json e = stats::Json::object();
    e.set("name", stats::Json(name));
    e.set("ph", stats::Json("M"));
    e.set("ts", stats::Json(0.0));
    e.set("pid", stats::Json(static_cast<int64_t>(1)));
    e.set("tid", stats::Json(static_cast<int64_t>(tid)));
    stats::Json args = stats::Json::object();
    args.set("name", stats::Json(value));
    e.set("args", std::move(args));
    return e;
}

} // namespace

stats::Json
buildChromeTrace(const TimelineLabels &labels)
{
    stats::Json events = stats::Json::array();

    // One process-name record for the single pid we emit.
    {
        stats::Json e = stats::Json::object();
        e.set("name", stats::Json("process_name"));
        e.set("ph", stats::Json("M"));
        e.set("ts", stats::Json(0.0));
        e.set("pid", stats::Json(static_cast<int64_t>(1)));
        e.set("tid", stats::Json(static_cast<int64_t>(0)));
        stats::Json args = stats::Json::object();
        args.set("name", stats::Json(labels.processName));
        e.set("args", std::move(args));
        events.push(std::move(e));
    }

    for (const auto &rec : FlightControl::instance().recorders()) {
        unsigned tid = rec->tid();
        std::vector<FrEvent> evs = rec->snapshot();
        events.push(metadataEvent(
            "thread_name", "worker-" + std::to_string(tid), tid));

        // Per-track span stack for B/E pairing repair: a ring overwrite
        // can leave an End without its Begin (drop it) or a Begin
        // without its End (close it at the track's last timestamp).
        struct Open
        {
            FrEvent ev;
            std::string name;
        };
        std::vector<Open> open;
        uint64_t last_ts = 0;

        for (const FrEvent &ev : evs) {
            last_ts = ev.tsNs;
            double ts_us = static_cast<double>(ev.tsNs) / 1000.0;
            switch (ev.phase) {
              case EvPhase::Begin: {
                std::string name = eventName(ev, labels);
                events.push(makeEvent("B", name, ev, tid, ts_us, labels));
                open.push_back(Open{ev, std::move(name)});
                break;
              }
              case EvPhase::End: {
                if (open.empty() || open.back().ev.type != ev.type)
                    break; // orphan End from ring overwrite
                events.push(
                    makeEvent("E", open.back().name, ev, tid, ts_us, labels));
                open.pop_back();
                break;
              }
              case EvPhase::Instant:
                events.push(makeEvent("i", eventName(ev, labels), ev, tid,
                                      ts_us, labels));
                break;
            }
        }

        // Close spans the snapshot ended inside (quarantine-aborted jobs,
        // tail truncation) at the last timestamp seen on this track.
        double close_us = static_cast<double>(last_ts) / 1000.0;
        while (!open.empty()) {
            events.push(
                makeEvent("E", open.back().name, open.back().ev, tid,
                          close_us, labels));
            open.pop_back();
        }
    }

    stats::Json doc = stats::Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", stats::Json("ms"));
    stats::Json other = stats::Json::object();
    other.set("source", stats::Json("onespec flight recorder"));
    other.set("dropped_events",
              stats::Json(FlightControl::instance().totalDropped()));
    for (const auto &kv : labels.otherData)
        other.set(kv.first, stats::Json(kv.second));
    doc.set("otherData", std::move(other));
    return doc;
}

bool
exportChromeTrace(const std::string &path, const TimelineLabels &labels,
                  std::string *error)
{
    std::string text = buildChromeTrace(labels).dump(2);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        if (error)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool closed = std::fclose(f) == 0;
    if (n != text.size() || !closed) {
        if (error)
            *error = "short write to " + path;
        return false;
    }
    return true;
}

namespace {

bool
loadTraceDoc(const std::string &path, stats::Json &out, std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot read " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string perr;
    if (!stats::Json::parse(ss.str(), out, &perr)) {
        if (error)
            *error = path + ": " + perr;
        return false;
    }
    if (!out.isObject() || !out.has("traceEvents") ||
        !out.find("traceEvents")->isArray()) {
        if (error)
            *error = path + ": not a Chrome trace document";
        return false;
    }
    return true;
}

/** Append @p src's events into @p dst under @p pid, shifting every
 *  timestamp by @p shift_us and tracking the earliest resulting ts. */
void
appendSide(stats::Json &dst, const stats::Json &src, int64_t pid,
           double shift_us, double &min_ts)
{
    const stats::Json &evs = *src.find("traceEvents");
    for (size_t i = 0; i < evs.size(); ++i) {
        stats::Json e = evs.at(i); // deep copy; set() edits in place
        e.set("pid", stats::Json(pid));
        const stats::Json *ph = e.find("ph");
        bool meta = ph && ph->isString() && ph->asString() == "M";
        if (!meta) {
            const stats::Json *ts = e.find("ts");
            double t = ts ? ts->asDouble() : 0.0;
            t += shift_us;
            e.set("ts", stats::Json(t));
            if (t < min_ts)
                min_ts = t;
        }
        dst.push(std::move(e));
    }
}

} // namespace

bool
mergeChromeTraces(const std::string &daemonPath,
                  const std::string &clientPath, const std::string &outPath,
                  std::string *error)
{
    stats::Json daemon, client;
    if (!loadTraceDoc(daemonPath, daemon, error) ||
        !loadTraceDoc(clientPath, client, error))
        return false;

    // The client computed daemon_now - client_now at the Hello/HelloAck
    // handshake; adding it to a client timestamp lands in the daemon's
    // timebase, so the daemon side is kept as-is and the client side is
    // shifted onto it.
    const stats::Json *other = client.find("otherData");
    const stats::Json *off =
        other ? other->find("daemon_clock_offset_ns") : nullptr;
    if (!off || !off->isNumber()) {
        if (error)
            *error = clientPath +
                     ": otherData.daemon_clock_offset_ns missing (was "
                     "the client trace written with --trace-out?)";
        return false;
    }
    double client_shift_us = off->asDouble() / 1000.0;

    stats::Json events = stats::Json::array();
    double min_ts = 0.0; // timeline is re-based so nothing sits below 0
    appendSide(events, daemon, 1, 0.0, min_ts);
    appendSide(events, client, 2, client_shift_us, min_ts);

    if (min_ts < 0.0) {
        stats::Json rebased = stats::Json::array();
        for (size_t i = 0; i < events.size(); ++i) {
            stats::Json e = events.at(i);
            const stats::Json *ph = e.find("ph");
            if (!(ph && ph->isString() && ph->asString() == "M"))
                e.set("ts",
                      stats::Json(e.find("ts")->asDouble() - min_ts));
            rebased.push(std::move(e));
        }
        events = std::move(rebased);
    }

    stats::Json doc = stats::Json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", stats::Json("ms"));
    stats::Json od = stats::Json::object();
    od.set("source", stats::Json("onespec timeline merge"));
    od.set("daemon_trace", stats::Json(daemonPath));
    od.set("client_trace", stats::Json(clientPath));
    od.set("client_shift_ns", stats::Json(off->asInt()));
    doc.set("otherData", std::move(od));

    std::string text = doc.dump(2);
    std::FILE *f = std::fopen(outPath.c_str(), "wb");
    if (!f) {
        if (error)
            *error = "cannot open " + outPath + " for writing";
        return false;
    }
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool closed = std::fclose(f) == 0;
    if (n != text.size() || !closed) {
        if (error)
            *error = "short write to " + outPath;
        return false;
    }
    return true;
}

} // namespace onespec::obs
