/**
 * @file
 * Flight recorder: per-thread, fixed-capacity ring buffers of typed
 * span/instant events (job start/finish, interface-crossing batches,
 * checkpoint save/restore, retry/backoff, syscalls, injected faults).
 *
 * Contract, mirroring ONESPEC_TRACE: when the recorder is *disarmed*
 * (the default), a recording site costs exactly one predictable branch
 * on a relaxed atomic load and allocates nothing.  When *armed*, each
 * thread that records gets its own fixed-capacity ring (32 bytes per
 * event), so memory is bounded at capacity x threads and old events are
 * overwritten, never grown -- a flight recorder keeps the recent past,
 * not the whole flight.
 *
 * Recording is lock-free: a thread only ever appends to its own ring.
 * The one mutex in the subsystem guards recorder *registration* (first
 * event per thread per arm generation) and enumeration.  Reading a ring
 * is safe from the owning thread at any time (quarantine postmortems)
 * and from other threads once the producers have quiesced -- e.g. after
 * SimFleet's pool wait, which is where the timeline exporter runs.
 *
 * Use the macros:
 *
 *     ONESPEC_FR_BEGIN(EvType::Job, jobIndex, attempt, 0);
 *     ONESPEC_FR_END(EvType::Job, jobIndex, attempt, instrs);
 *     ONESPEC_FR_INSTANT(EvType::Syscall, 0, sysNum, sysCount);
 */

#ifndef ONESPEC_OBS_FLIGHT_RECORDER_HPP
#define ONESPEC_OBS_FLIGHT_RECORDER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace onespec::obs {

/** Event taxonomy (documented in docs/OBSERVABILITY.md). */
enum class EvType : uint8_t
{
    Job,         ///< span: one attempt of one fleet job (a0=attempt, a1=instrs at end)
    Backoff,     ///< span: retry backoff sleep (a0=attempt, a1=backoff ns)
    CkptCapture, ///< span: checkpoint capture (a0=pages, a1=1 if delta)
    CkptRestore, ///< span: checkpoint restore (a0=pages, a1=chain link)
    Retry,       ///< instant: attempt failed, will retry (a0=attempt, a1=kind)
    Quarantine,  ///< instant: job quarantined (a0=attempt, a1=kind)
    Deadline,    ///< instant: watchdog deadline expired (a0=attempt, a1=deadline ns)
    Syscall,     ///< instant: guest OS call (a0=number, a1=running count)
    Fault,       ///< instant: injected fault fired (a0=FaultOp, a1=trigger)
    CrossBatch,  ///< instant: crossing batch mark (a0=instrs, a1=crossings)
    Submit,      ///< span: Submit sent -> admission verdict (a0/a1=trace id lo/hi)
    QueueWait,   ///< instant: queue wait elapsed (a0=wait ns, a1=trace id lo)
    Stream,      ///< instant: Result received (a0=stream ns, a1=trace id lo)
    Warm,        ///< span: warm-pool acquire (a0=1 if reused, a1=trace id lo)
    Sample,      ///< instant: metrics ring sample taken (a0=seq, a1=completed)
};

enum class EvPhase : uint8_t
{
    Begin,
    End,
    Instant,
};

/** Human-readable event-type name ("job", "ckpt_capture", ...). */
const char *evTypeName(EvType t);
/** Coarse category for timeline grouping ("fleet", "ckpt", ...). */
const char *evCategory(EvType t);

/** One recorded event: 32 bytes, fixed layout. */
struct FrEvent
{
    uint64_t tsNs = 0; ///< nanoseconds since the arm() epoch
    uint64_t a0 = 0;
    uint64_t a1 = 0;
    uint32_t id = 0;   ///< correlation id (fleet job index; 0 otherwise)
    EvType type = EvType::Job;
    EvPhase phase = EvPhase::Instant;
    uint16_t pad = 0;
};

static_assert(sizeof(FrEvent) == 32, "FrEvent layout drifted");

/** One thread's fixed-capacity ring.  Appended to only by its owner. */
class FlightRecorder
{
  public:
    FlightRecorder(unsigned tid, size_t capacity)
        : buf_(capacity ? capacity : 1), tid_(tid)
    {}

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Append one event (owner thread only); overwrites the oldest when
     *  full.  Never allocates. */
    void
    record(EvType t, EvPhase p, uint32_t id, uint64_t a0, uint64_t a1,
           uint64_t ts_ns)
    {
        uint64_t h = head_.load(std::memory_order_relaxed);
        FrEvent &ev = buf_[h % buf_.size()];
        ev.tsNs = ts_ns;
        ev.a0 = a0;
        ev.a1 = a1;
        ev.id = id;
        ev.type = t;
        ev.phase = p;
        head_.store(h + 1, std::memory_order_release);
    }

    unsigned tid() const { return tid_; }
    size_t capacity() const { return buf_.size(); }

    /** Events recorded over the recorder's lifetime (incl. overwritten). */
    uint64_t
    totalRecorded() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Events overwritten because the ring was full. */
    uint64_t
    dropped() const
    {
        uint64_t n = totalRecorded();
        return n > buf_.size() ? n - buf_.size() : 0;
    }

    /** Events currently held, oldest first. */
    std::vector<FrEvent> snapshot() const;

    /** The last @p n events (fewer if fewer are held), oldest first. */
    std::vector<FrEvent> tail(size_t n) const;

  private:
    std::vector<FrEvent> buf_;
    std::atomic<uint64_t> head_{0};
    unsigned tid_;
};

/** Process-wide arm/disarm switch plus the per-thread recorder registry. */
class FlightControl
{
  public:
    static constexpr size_t kDefaultCapacity = 4096; ///< 128 KiB / thread

    static FlightControl &instance();

    /**
     * Arm recording: set the epoch, drop recorders from any previous
     * generation, and have every thread lazily create a ring of
     * @p events_per_thread on its first event.
     */
    void arm(size_t events_per_thread = kDefaultCapacity);

    /** Stop recording.  Recorders stay readable for export until the
     *  next arm(). */
    void disarm();

    /** The recording fast-path gate: one relaxed atomic load. */
    bool
    armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since the arm() epoch (steady clock). */
    uint64_t
    nowNs() const
    {
        int64_t now =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        int64_t e = epochNs_.load(std::memory_order_relaxed);
        return now > e ? static_cast<uint64_t>(now - e) : 0;
    }

    /** The calling thread's recorder for the current arm generation,
     *  created and registered on first use.  Only meaningful while
     *  armed (the macros gate on armed() first). */
    FlightRecorder &local();

    /**
     * The last @p n events of the calling thread's ring, oldest first,
     * or an empty vector when recording is disarmed or this thread never
     * recorded in the current generation.  Unlike local(), this never
     * creates or registers a ring -- it is the safe way to export a
     * postmortem tail from a run that may not have been armed at all.
     */
    std::vector<FrEvent> tailOrEmpty(size_t n);

    /** All recorders of the current generation, in tid order.  Safe to
     *  read once the producing threads have quiesced. */
    std::vector<std::shared_ptr<FlightRecorder>> recorders() const;

    /** Sum of totalRecorded() / dropped() across recorders. */
    uint64_t totalEvents() const;
    uint64_t totalDropped() const;

  private:
    FlightControl() = default;

    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> gen_{0};
    std::atomic<int64_t> epochNs_{0};
    mutable std::mutex m_; ///< guards recorders_/capacity_, not recording
    std::vector<std::shared_ptr<FlightRecorder>> recorders_;
    size_t capacity_ = kDefaultCapacity;
};

/**
 * RAII span: records Begin at construction and End at destruction (also
 * on exception unwind, so a throwing checkpoint restore still closes its
 * window).  Arms-at-construction is cached, so a span never records a
 * dangling End after a mid-span disarm.
 */
class FrSpan
{
  public:
    FrSpan(EvType t, uint32_t id, uint64_t a0 = 0, uint64_t a1 = 0)
        : type_(t), id_(id), a0_(a0), a1_(a1)
    {
        FlightControl &fc = FlightControl::instance();
        armed_ = fc.armed();
        if (armed_)
            fc.local().record(type_, EvPhase::Begin, id_, a0_, a1_,
                              fc.nowNs());
    }

    FrSpan(const FrSpan &) = delete;
    FrSpan &operator=(const FrSpan &) = delete;

    /** Update the args the End event will carry. */
    void
    setArgs(uint64_t a0, uint64_t a1)
    {
        a0_ = a0;
        a1_ = a1;
    }

    ~FrSpan()
    {
        if (armed_) {
            FlightControl &fc = FlightControl::instance();
            fc.local().record(type_, EvPhase::End, id_, a0_, a1_,
                              fc.nowNs());
        }
    }

  private:
    EvType type_;
    uint32_t id_;
    uint64_t a0_, a1_;
    bool armed_;
};

} // namespace onespec::obs

/** Record one flight-recorder event; one predictable branch when
 *  disarmed (same contract as ONESPEC_TRACE). */
#define ONESPEC_FR(type, phase, id, a0, a1)                                 \
    do {                                                                    \
        ::onespec::obs::FlightControl &fr_fc_ =                             \
            ::onespec::obs::FlightControl::instance();                      \
        if (fr_fc_.armed()) [[unlikely]] {                                  \
            fr_fc_.local().record(                                          \
                (type), (phase), static_cast<uint32_t>(id),                 \
                static_cast<uint64_t>(a0), static_cast<uint64_t>(a1),       \
                fr_fc_.nowNs());                                            \
        }                                                                   \
    } while (0)

#define ONESPEC_FR_BEGIN(type, id, a0, a1)                                  \
    ONESPEC_FR(type, ::onespec::obs::EvPhase::Begin, id, a0, a1)
#define ONESPEC_FR_END(type, id, a0, a1)                                    \
    ONESPEC_FR(type, ::onespec::obs::EvPhase::End, id, a0, a1)
#define ONESPEC_FR_INSTANT(type, id, a0, a1)                                \
    ONESPEC_FR(type, ::onespec::obs::EvPhase::Instant, id, a0, a1)

#endif // ONESPEC_OBS_FLIGHT_RECORDER_HPP
