#include "obs/flight_recorder.hpp"

namespace onespec::obs {

const char *
evTypeName(EvType t)
{
    switch (t) {
      case EvType::Job: return "job";
      case EvType::Backoff: return "backoff";
      case EvType::CkptCapture: return "ckpt_capture";
      case EvType::CkptRestore: return "ckpt_restore";
      case EvType::Retry: return "retry";
      case EvType::Quarantine: return "quarantine";
      case EvType::Deadline: return "deadline";
      case EvType::Syscall: return "syscall";
      case EvType::Fault: return "fault";
      case EvType::CrossBatch: return "cross_batch";
      case EvType::Submit: return "submit";
      case EvType::QueueWait: return "queue_wait";
      case EvType::Stream: return "stream";
      case EvType::Warm: return "warm_acquire";
      case EvType::Sample: return "metrics_sample";
    }
    return "?";
}

const char *
evCategory(EvType t)
{
    switch (t) {
      case EvType::Job:
      case EvType::Backoff:
      case EvType::Retry:
      case EvType::Quarantine:
      case EvType::Deadline:
        return "fleet";
      case EvType::CkptCapture:
      case EvType::CkptRestore:
        return "ckpt";
      case EvType::Syscall:
        return "os";
      case EvType::Fault:
        return "fault";
      case EvType::CrossBatch:
        return "iface";
      case EvType::Submit:
      case EvType::QueueWait:
      case EvType::Stream:
        return "client";
      case EvType::Warm:
      case EvType::Sample:
        return "service";
    }
    return "?";
}

std::vector<FrEvent>
FlightRecorder::snapshot() const
{
    uint64_t h = head_.load(std::memory_order_acquire);
    size_t cap = buf_.size();
    size_t n = h < cap ? static_cast<size_t>(h) : cap;
    std::vector<FrEvent> out;
    out.reserve(n);
    uint64_t first = h - n;
    for (uint64_t i = first; i < h; ++i)
        out.push_back(buf_[i % cap]);
    return out;
}

std::vector<FrEvent>
FlightRecorder::tail(size_t n) const
{
    std::vector<FrEvent> all = snapshot();
    if (all.size() > n)
        all.erase(all.begin(), all.end() - static_cast<ptrdiff_t>(n));
    return all;
}

FlightControl &
FlightControl::instance()
{
    static FlightControl fc;
    return fc;
}

void
FlightControl::arm(size_t events_per_thread)
{
    std::lock_guard<std::mutex> lock(m_);
    recorders_.clear();
    capacity_ = events_per_thread ? events_per_thread : 1;
    gen_.fetch_add(1, std::memory_order_release);
    epochNs_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        std::memory_order_relaxed);
    armed_.store(true, std::memory_order_release);
}

void
FlightControl::disarm()
{
    armed_.store(false, std::memory_order_release);
}

namespace {

/** Per-thread cache of the current generation's recorder.  File scope
 *  so both local() (which registers) and tailOrEmpty() (which must
 *  never register) consult the same slot. */
struct Tls
{
    FlightRecorder *rec = nullptr;
    uint64_t gen = 0;
};
thread_local Tls tls;

} // namespace

FlightRecorder &
FlightControl::local()
{
    uint64_t g = gen_.load(std::memory_order_acquire);
    if (tls.rec && tls.gen == g)
        return *tls.rec;
    std::lock_guard<std::mutex> lock(m_);
    auto rec = std::make_shared<FlightRecorder>(
        static_cast<unsigned>(recorders_.size()), capacity_);
    recorders_.push_back(rec);
    tls.rec = rec.get();
    tls.gen = g;
    return *tls.rec;
}

std::vector<FrEvent>
FlightControl::tailOrEmpty(size_t n)
{
    if (!armed())
        return {};
    uint64_t g = gen_.load(std::memory_order_acquire);
    if (!tls.rec || tls.gen != g)
        return {}; // this thread never recorded; do not register a ring
    return tls.rec->tail(n);
}

std::vector<std::shared_ptr<FlightRecorder>>
FlightControl::recorders() const
{
    std::lock_guard<std::mutex> lock(m_);
    return recorders_;
}

uint64_t
FlightControl::totalEvents() const
{
    uint64_t n = 0;
    for (const auto &r : recorders())
        n += r->totalRecorded();
    return n;
}

uint64_t
FlightControl::totalDropped() const
{
    uint64_t n = 0;
    for (const auto &r : recorders())
        n += r->dropped();
    return n;
}

} // namespace onespec::obs
