/**
 * @file
 * Table I reproduction: instruction-set description characteristics --
 * lines of LIS code by category, lines per experimental buildset, and
 * instruction counts -- next to the paper's figures.  The punchline the
 * table carries is unchanged: a new interface costs about a dozen lines
 * (ours are terser still: one line per standard-level buildset).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "adl/load.hpp"
#include "adl/parser.hpp"
#include "adl/sema.hpp"
#include "isa/isa.hpp"
#include "support/logging.hpp"

using namespace onespec;

namespace {

/** Count non-blank, non-comment lines. */
int
locOf(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        ONESPEC_FATAL("cannot read ", path);
    int loc = 0;
    std::string line;
    while (std::getline(in, line)) {
        size_t i = line.find_first_not_of(" \t\r");
        if (i == std::string::npos)
            continue;
        if (line[i] == '#')
            continue;
        if (line.compare(i, 2, "//") == 0)
            continue;
        ++loc;
    }
    return loc;
}

struct PaperRow
{
    const char *isa;
    int isaLoc, osLoc, buildsetLoc, perBuildset, instrs;
};

/** The paper's Table I (translator-support lines omitted: we have no
 * separate binary-translator support category). */
const PaperRow kPaper[] = {
    {"Alpha", 1656, 317, 308, 13, 200},
    {"ARM", 2047, 225, 308, 13, 40},
    {"PowerPC", 3805, 182, 308, 14, 240},
};

} // namespace

int
main()
{
    std::printf("TABLE I: INSTRUCTION SET CHARACTERISTICS\n\n");
    std::printf("%-28s", "Lines of LIS code");
    for (const auto &isa : shippedIsas())
        std::printf(" %10s", isa.c_str());
    std::printf("\n");

    std::string dir = isaDescriptionDir();
    std::vector<int> isa_loc, os_loc, n_instr, n_buildsets;
    int bs_loc = locOf(dir + "/buildsets.lis");

    for (const auto &isa : shippedIsas()) {
        isa_loc.push_back(locOf(dir + "/" + isa + ".lis"));
        os_loc.push_back(locOf(dir + "/" + isa + "_os.lis"));
        auto spec = loadIsa(isa);
        n_instr.push_back(static_cast<int>(spec->instrs.size()));
        n_buildsets.push_back(static_cast<int>(spec->buildsets.size()));
    }

    std::printf("%-28s", "  ISA description");
    for (int v : isa_loc)
        std::printf(" %10d", v);
    std::printf("\n%-28s", "  OS/simulator support");
    for (int v : os_loc)
        std::printf(" %10d", v);
    std::printf("\n%-28s", "  Buildsets (shared file)");
    for (size_t i = 0; i < isa_loc.size(); ++i)
        std::printf(" %10d", bs_loc);
    std::printf("\n%-28s", "Lines per experimental");
    std::printf("\n%-28s", "  buildset");
    for (size_t i = 0; i < isa_loc.size(); ++i)
        std::printf(" %10.1f",
                    static_cast<double>(bs_loc) / n_buildsets[i]);
    std::printf("\n%-28s", "Number of instructions");
    for (int v : n_instr)
        std::printf(" %10d", v);
    std::printf("\n%-28s", "Number of buildsets");
    for (int v : n_buildsets)
        std::printf(" %10d", v);
    std::printf("\n\nPaper's Table I for comparison "
                "(real ISAs, includes FP for Alpha/PowerPC):\n");
    std::printf("%-12s %8s %8s %10s %14s %8s\n", "", "ISA", "OS",
                "buildsets", "per-buildset", "instrs");
    for (const auto &r : kPaper) {
        std::printf("%-12s %8d %8d %10d %14d %8d\n", r.isa, r.isaLoc,
                    r.osLoc, r.buildsetLoc, r.perBuildset, r.instrs);
    }
    std::printf("\nAdding a new tailored interface costs one `buildset`\n"
                "declaration (1-5 lines) -- the single-specification\n"
                "principle's development-effort claim.\n");
    return 0;
}
