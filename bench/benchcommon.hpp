/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: kernel setup at
 * benchmark scale, timed runs over any simulator, geometric means, and
 * table formatting.
 */

#ifndef ONESPEC_BENCH_BENCHCOMMON_HPP
#define ONESPEC_BENCH_BENCHCOMMON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "iface/functional_simulator.hpp"
#include "iface/registry.hpp"
#include "isa/isa.hpp"
#include "perf/hostcount.hpp"
#include "runtime/context.hpp"
#include "sim/interp.hpp"
#include "workload/kernels.hpp"

namespace onespec::bench {

/** Benchmark-scale parameter per kernel (millions of instructions). */
uint64_t benchParam(const std::string &kernel);

/** One timed measurement. */
struct Measurement
{
    uint64_t instrs = 0;
    uint64_t ns = 0;
    uint64_t hostInstrs = 0;    ///< 0 if the HW counter is unavailable

    double mips() const
    {
        return ns ? static_cast<double>(instrs) * 1000.0 /
                        static_cast<double>(ns)
                  : 0.0;
    }

    double
    hostPerSim() const
    {
        return instrs ? static_cast<double>(hostInstrs) /
                            static_cast<double>(instrs)
                      : 0.0;
    }

    /** Wall nanoseconds per simulated instruction. */
    double
    nsPerSim() const
    {
        return instrs ? static_cast<double>(ns) /
                            static_cast<double>(instrs)
                      : 0.0;
    }
};

/** Pre-built kernels for one ISA. */
struct IsaWorkloads
{
    std::unique_ptr<Spec> spec;
    std::vector<std::pair<std::string, Program>> programs;
};

/** Build (and cache) benchmark-scale kernels for @p isa. */
IsaWorkloads &workloadsFor(const std::string &isa);

/**
 * Run @p prog on @p sim until at least @p min_instrs simulated
 * instructions have retired (reloading the program as needed) and
 * measure.  The simulator must already be bound to @p ctx.
 */
Measurement runTimed(SimContext &ctx, FunctionalSimulator &sim,
                     const Program &prog, uint64_t min_instrs,
                     bool count_host = false);

/** Geometric mean (ignores non-positive entries). */
double geomean(const std::vector<double> &xs);

/**
 * Full result of one (ISA x buildset) table cell: geomeans over the
 * kernel suite plus the interface-crossing counters accumulated across
 * every run of the cell.  measureCellFull() also publishes the counters
 * into StatsRegistry::global() under cellGroupPath(), which is where
 * BenchReport reads them back from.
 */
struct CellResult
{
    std::string isa;
    std::string buildset;
    double mips = 0.0;        ///< geomean MIPS over kernels
    double nsPerSim = 0.0;    ///< geomean wall-ns per simulated instr
    double hostPerSim = 0.0;  ///< geomean host instrs per sim instr
    bool hostCounted = false; ///< hostPerSim came from the HW counter
    uint64_t instrs = 0;      ///< total simulated instrs (all kernels)
    IfaceCounters counters;   ///< summed interface-crossing counters
};

/** Registry path a cell publishes under: "iface.<isa>.<buildset>". */
std::string cellGroupPath(const std::string &isa,
                          const std::string &buildset);

/**
 * Measure one (isa, buildset) cell with generated simulators: geomean
 * over the kernel suite, best-of-@p repeats per kernel, accumulating
 * interface counters and publishing them into the global stats registry.
 */
CellResult measureCellFull(const std::string &isa,
                           const std::string &buildset,
                           uint64_t min_instrs, int repeats = 2,
                           bool count_host = false);

/**
 * Measure geomean-over-kernels for one (isa, buildset) cell using
 * generated simulators.  @p out_host receives the geomean host (or ns)
 * cost per simulated instruction.  Thin wrapper over measureCellFull().
 */
double measureCell(const std::string &isa, const std::string &buildset,
                   uint64_t min_instrs, double *out_host_per_sim = nullptr,
                   double *out_ns_per_sim = nullptr, int repeats = 2);

/** True if the hardware instruction counter works in this environment. */
bool hostCounterAvailable();

} // namespace onespec::bench

#endif // ONESPEC_BENCH_BENCHCOMMON_HPP
