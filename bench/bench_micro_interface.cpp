/**
 * @file
 * google-benchmark micro-harness: per-interface-call cost by semantic
 * detail level, on a warm simulator running the fib kernel.  Complements
 * the table benches with statistically-managed measurements of the raw
 * entrypoint overheads.
 */

#include <benchmark/benchmark.h>

#include "benchcommon.hpp"

using namespace onespec;
using namespace onespec::bench;

namespace {

struct MicroFixture
{
    explicit MicroFixture(const std::string &isa, const char *buildset)
        : work(workloadsFor(isa)), ctx(*work.spec)
    {
        prog = &work.programs[0].second; // fib
        ctx.load(*prog);
        sim = SimRegistry::instance().create(ctx, buildset);
    }

    void
    reloadIfDone(RunStatus st)
    {
        if (st != RunStatus::Ok)
            ctx.load(*prog);
    }

    IsaWorkloads &work;
    SimContext ctx;
    const Program *prog;
    std::unique_ptr<FunctionalSimulator> sim;
};

void
BM_ExecuteOne(benchmark::State &state, const std::string &isa)
{
    MicroFixture f(isa, "OneAllNo");
    DynInst di;
    for (auto _ : state) {
        RunStatus st = f.sim->execute(di);
        f.reloadIfDone(st);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ExecuteOneMin(benchmark::State &state, const std::string &isa)
{
    MicroFixture f(isa, "OneMinNo");
    DynInst di;
    for (auto _ : state) {
        RunStatus st = f.sim->execute(di);
        f.reloadIfDone(st);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ExecuteBlock(benchmark::State &state, const std::string &isa)
{
    MicroFixture f(isa, "BlockMinNo");
    DynInst block[64];
    uint64_t instrs = 0;
    for (auto _ : state) {
        RunStatus st = RunStatus::Ok;
        instrs += f.sim->executeBlock(block, 64, st);
        f.reloadIfDone(st);
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}

void
BM_StepAll(benchmark::State &state, const std::string &isa)
{
    MicroFixture f(isa, "StepAllNo");
    DynInst di;
    for (auto _ : state) {
        RunStatus st = RunStatus::Ok;
        for (unsigned s = 0; s < kNumSteps && st == RunStatus::Ok; ++s)
            st = f.sim->step(static_cast<Step>(s), di);
        f.reloadIfDone(st);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_InterpOne(benchmark::State &state, const std::string &isa)
{
    IsaWorkloads &work = workloadsFor(isa);
    SimContext ctx(*work.spec);
    const Program &prog = work.programs[0].second;
    ctx.load(prog);
    auto sim = makeInterpSimulator(ctx, "OneAllNo");
    DynInst di;
    for (auto _ : state) {
        RunStatus st = sim->execute(di);
        if (st != RunStatus::Ok)
            ctx.load(prog);
    }
    state.SetItemsProcessed(state.iterations());
}

struct Registrar
{
    Registrar()
    {
        for (const char *isa : {"alpha64", "arm32", "ppc32"}) {
            std::string s(isa);
            benchmark::RegisterBenchmark(("execute_one_all/" + s).c_str(),
                                         BM_ExecuteOne, s);
            benchmark::RegisterBenchmark(("execute_one_min/" + s).c_str(),
                                         BM_ExecuteOneMin, s);
            benchmark::RegisterBenchmark(
                ("execute_block_min/" + s).c_str(), BM_ExecuteBlock, s);
            benchmark::RegisterBenchmark(("step_all/" + s).c_str(),
                                         BM_StepAll, s);
            benchmark::RegisterBenchmark(("interp_one_all/" + s).c_str(),
                                         BM_InterpOne, s);
        }
    }
};

Registrar registrar;

} // namespace

BENCHMARK_MAIN();
