/**
 * @file
 * Ablation: where does Block-detail speed come from in this
 * implementation?  Toggles the decoded-block cache and the decode cache
 * of the synthesized Block/Min/No simulators.  (In the paper the block
 * win came from the binary translator's cross-instruction optimization;
 * here it comes from amortized fetch/decode and fewer interface
 * crossings, and this bench quantifies each.)
 */

#include <cstdio>
#include <cstring>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "codegen/genruntime.hpp"

using namespace onespec;
using namespace onespec::bench;

int
main(int argc, char **argv)
{
    uint64_t min_instrs = 2'000'000;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            min_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            min_instrs = 120'000;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    BenchReport report("ablation_blockcache");
    report.setParam("min_instrs", stats::Json(min_instrs));
    static const char *const kComboNames[] = {"both", "no_blockcache",
                                              "no_decodecache", "neither"};

    std::printf("ABLATION: BLOCK/DECODE CACHES (Block/Min/No, MIPS)\n\n");
    std::printf("%-10s %12s %12s %12s %12s\n", "ISA", "both",
                "no blockc", "no decodec", "neither");

    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        std::printf("%-10s", isa.c_str());
        stats::Json isa_rows = stats::Json::object();
        for (int combo = 0; combo < 4; ++combo) {
            bool bc = !(combo & 1);
            bool dc = !(combo & 2);
            std::vector<double> mips;
            for (const auto &[kname, prog] : w.programs) {
                SimContext ctx(*w.spec);
                ctx.load(prog);
                auto sim =
                    SimRegistry::instance().create(ctx, "BlockMinNo");
                auto *gs = dynamic_cast<GenSimBase *>(sim.get());
                ONESPEC_ASSERT(gs, "expected a generated simulator");
                gs->setBlockCacheEnabled(bc);
                gs->setDecodeCacheEnabled(dc);
                Measurement m = runTimed(ctx, *sim, prog, min_instrs / 2);
                mips.push_back(m.mips());
            }
            double g = geomean(mips);
            isa_rows.set(kComboNames[combo], stats::Json(g));
            std::printf(" %12.2f", g);
            std::fflush(stdout);
        }
        report.addResult(isa, std::move(isa_rows));
        std::printf("\n");
    }
    report.write(json_path);
    return 0;
}
