/**
 * @file
 * Ablation: where does Block-detail speed come from in this
 * implementation?  Toggles the decoded-block cache and the decode cache
 * of the synthesized Block/Min/No simulators.  (In the paper the block
 * win came from the binary translator's cross-instruction optimization;
 * here it comes from amortized fetch/decode and fewer interface
 * crossings, and this bench quantifies each.)
 */

#include <cstdio>
#include <cstring>

#include "benchcommon.hpp"
#include "codegen/genruntime.hpp"

using namespace onespec;
using namespace onespec::bench;

int
main(int argc, char **argv)
{
    uint64_t min_instrs = 2'000'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc)
            min_instrs = std::strtoull(argv[++i], nullptr, 0);
    }

    std::printf("ABLATION: BLOCK/DECODE CACHES (Block/Min/No, MIPS)\n\n");
    std::printf("%-10s %12s %12s %12s %12s\n", "ISA", "both",
                "no blockc", "no decodec", "neither");

    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        std::printf("%-10s", isa.c_str());
        for (int combo = 0; combo < 4; ++combo) {
            bool bc = !(combo & 1);
            bool dc = !(combo & 2);
            std::vector<double> mips;
            for (const auto &[kname, prog] : w.programs) {
                SimContext ctx(*w.spec);
                ctx.load(prog);
                auto sim =
                    SimRegistry::instance().create(ctx, "BlockMinNo");
                auto *gs = dynamic_cast<GenSimBase *>(sim.get());
                ONESPEC_ASSERT(gs, "expected a generated simulator");
                gs->setBlockCacheEnabled(bc);
                gs->setDecodeCacheEnabled(dc);
                Measurement m = runTimed(ctx, *sim, prog, min_instrs / 2);
                mips.push_back(m.mips());
            }
            std::printf(" %12.2f", geomean(mips));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
