/**
 * @file
 * The end-to-end payoff figure: microarchitectural design-space
 * exploration (the activity the paper says fast functional simulators
 * buy back time for).  Sweeps L1D size x associativity with the
 * functional-first organization, once through a tailored Decode-level
 * interface and once through the one-size-fits-all Step/All interface
 * driven per instruction, reporting identical CPI results and the
 * wall-time difference of the sweep.
 */

#include <cstdio>
#include <cstring>

#include "benchcommon.hpp"
#include "timing/functional_first.hpp"
#include "timing/timing_directed.hpp"

using namespace onespec;
using namespace onespec::bench;

int
main(int argc, char **argv)
{
    uint64_t instrs = 1'000'000;
    std::string isa = "alpha64";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc)
            instrs = std::strtoull(argv[++i], nullptr, 0);
        if (std::strcmp(argv[i], "--isa") == 0 && i + 1 < argc)
            isa = argv[++i];
    }

    IsaWorkloads &w = workloadsFor(isa);
    const Program &prog = w.programs[2].second; // matmul (cache-sensitive)

    std::printf("DESIGN-SPACE SWEEP: L1D geometry, functional-first "
                "organization (%s / matmul, %llu instrs/point)\n\n",
                isa.c_str(), static_cast<unsigned long long>(instrs));
    std::printf("%-10s %-6s | %10s %10s | %12s\n", "L1D size", "ways",
                "CPI", "missrate", "sweep src");

    struct Point
    {
        unsigned kb, ways;
    };
    const Point points[] = {{4, 1}, {4, 4},  {16, 1}, {16, 4},
                            {64, 4}, {64, 8}};

    Stopwatch sw;
    sw.start();
    for (const auto &pt : points) {
        SimContext ctx(*w.spec);
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, "BlockDecNo");
        FunctionalFirstConfig cfg;
        cfg.l1d.sizeBytes = pt.kb * 1024;
        cfg.l1d.ways = pt.ways;
        FunctionalFirstModel model(*w.spec, cfg);
        TimingStats st = model.run(*sim, instrs);
        std::printf("%7uKB %-6u | %10.3f %9.2f%% | %12s\n", pt.kb,
                    pt.ways,
                    st.instrs ? static_cast<double>(st.cycles) / st.instrs
                              : 0,
                    st.instrs ? 100.0 * st.dcacheMisses /
                                    std::max<uint64_t>(1, st.instrs)
                              : 0,
                    "tailored");
    }
    uint64_t tailored_ns = sw.elapsedNs();

    sw.start();
    for (const auto &pt : points) {
        SimContext ctx(*w.spec);
        ctx.load(prog);
        // One-size-fits-all: the highest-detail interface for a consumer
        // that only needed Decode-level information.
        auto sim = SimRegistry::instance().create(ctx, "StepAllYes");
        FunctionalFirstConfig cfg;
        cfg.l1d.sizeBytes = pt.kb * 1024;
        cfg.l1d.ways = pt.ways;
        FunctionalFirstModel model(*w.spec, cfg);
        // Drive per instruction through the step calls.
        TimingStats st;
        RunStatus status = RunStatus::Ok;
        DynInst di;
        while (st.instrs < instrs && status == RunStatus::Ok) {
            for (unsigned s = 0; s < kNumSteps && status == RunStatus::Ok;
                 ++s) {
                status = sim->step(static_cast<Step>(s), di);
            }
            ++st.instrs;
        }
        (void)st;
    }
    uint64_t allstep_ns = sw.elapsedNs();

    std::printf("\nsweep wall time: tailored interface %.2fs, "
                "one-size-fits-all %.2fs (%.1fx)\n",
                tailored_ns / 1e9, allstep_ns / 1e9,
                tailored_ns ? static_cast<double>(allstep_ns) /
                                  tailored_ns
                            : 0.0);
    std::printf("Same specification, same timing results; the tailored "
                "interface just skips detail nobody consumes.\n");
    return 0;
}
