/**
 * @file
 * Table II reproduction: simulation speed (MIPS) for the twelve
 * interfaces on the three ISAs, geometric mean over the workload suite.
 * The paper's headline observations that should hold here:
 *   - semantic detail dominates: Block > One > Step;
 *   - informational detail costs: Min > Decode > All;
 *   - speculation support costs a further slice;
 *   - the lowest-detail interface is many times faster than the
 *     highest-detail one (14.4x in the paper).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"

using namespace onespec;
using namespace onespec::bench;

namespace {

struct Row
{
    const char *buildset;
    const char *semantic;
    const char *info;
    const char *spec;
};

const Row kRows[] = {
    {"BlockMinNo", "Block", "Min", "No"},
    {"BlockDecNo", "Block", "Decode", "No"},
    {"BlockDecYes", "Block", "Decode", "Yes"},
    {"BlockAllNo", "Block", "All", "No"},
    {"BlockAllYes", "Block", "All", "Yes"},
    {"OneMinNo", "One", "Min", "No"},
    {"OneDecNo", "One", "Decode", "No"},
    {"OneDecYes", "One", "Decode", "Yes"},
    {"OneAllNo", "One", "All", "No"},
    {"OneAllYes", "One", "All", "Yes"},
    {"StepAllNo", "Step", "All", "No"},
    {"StepAllYes", "Step", "All", "Yes"},
};

} // namespace

int
main(int argc, char **argv)
{
    uint64_t min_instrs = 2'000'000;
    int repeats = 2;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            min_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            // Fast mode for CI: enough instructions that the semantic
            // and informational orderings still show, small enough to
            // finish the full grid in seconds.
            min_instrs = 60'000;
            repeats = 1;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    const auto &isas = shippedIsas();

    BenchReport report("table2");
    report.setParam("min_instrs", stats::Json(min_instrs));
    report.setParam("repeats", stats::Json(static_cast<int64_t>(repeats)));
    report.setParam("kernels",
                    stats::Json(static_cast<uint64_t>(kernelNames().size())));

    std::printf("TABLE II: SIMULATION SPEED (MIPS)\n");
    std::printf("(geometric mean over %zu kernels, >=%llu simulated "
                "instructions per measurement)\n\n",
                kernelNames().size(),
                static_cast<unsigned long long>(min_instrs));
    std::printf("%-9s %-13s %-6s", "Semantic", "Informational", "Spec.");
    for (const auto &isa : isas)
        std::printf(" %10s", isa.c_str());
    std::printf("\n");

    std::vector<std::vector<double>> table(std::size(kRows));
    for (size_t r = 0; r < std::size(kRows); ++r) {
        std::printf("%-9s %-13s %-6s", kRows[r].semantic, kRows[r].info,
                    kRows[r].spec);
        for (const auto &isa : isas) {
            CellResult cell = measureCellFull(isa, kRows[r].buildset,
                                              min_instrs, repeats);
            report.addCell(isa, kRows[r].buildset, cell);
            table[r].push_back(cell.mips);
            std::printf(" %10.2f", cell.mips);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\nLowest/highest-detail speed ratio "
                "(Block/Min/No vs Step/All/Yes; paper reports up to "
                "14.4x):\n");
    stats::Json ratios = stats::Json::object();
    for (size_t i = 0; i < isas.size(); ++i) {
        double lo = table[0][i];                      // BlockMinNo
        double hi = table[std::size(kRows) - 1][i];   // StepAllYes
        double ratio = hi > 0 ? lo / hi : 0.0;
        ratios.set(isas[i], stats::Json(ratio));
        std::printf("  %-8s %.1fx\n", isas[i].c_str(), ratio);
    }
    report.addResult("detail_ratio", std::move(ratios));
    report.write(json_path);
    return 0;
}
