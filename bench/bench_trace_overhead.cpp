/**
 * @file
 * Observability must be free when off.  This bench measures, rather
 * than asserts, the cost of the flight recorder and hot-PC profiler:
 *
 *  1. Baseline.  A fleet batch with the recorder compiled in but never
 *     armed -- the production path: one relaxed load and a predictable
 *     untaken branch per instrumentation site.
 *
 *  2. Disarmed.  The same batch after an arm/disarm cycle, the worst
 *     honest disarmed state (per-thread rings registered and readable,
 *     armed flag false).  The checker enforces a tight ceiling on the
 *     baseline-vs-disarmed delta; this is the "near-zero cost disarmed"
 *     claim in numbers.
 *
 *  3. Armed.  The batch with the recorder armed and recording into the
 *     per-thread rings.  Reported, not gated: armed tracing is a debug
 *     posture and its cost is an honest disclosure, not a regression.
 *
 *  4. Profiler.  The same kernel on the interpreter and a generated
 *     simulator, both with a fixed-stride PcProfiler attached.  Both
 *     back ends drive the sample hook from their retire point, so the
 *     two PC-bucket histograms must be *identical* -- the
 *     single-specification principle checked through the profiling
 *     lens.  Armed profiler throughput is reported next to a
 *     no-profiler run of the same configuration.
 *
 * Emits BENCH_trace_overhead.json; tools/check_bench_json.py enforces
 * the disarmed ceiling, bucket-sum consistency, and the
 * interp-vs-generated histogram identity flag.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchcommon.hpp"
#include "benchreport.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/pc_profile.hpp"
#include "parallel/fleet.hpp"

using namespace onespec;
using namespace onespec::bench;
using onespec::parallel::FleetJob;
using onespec::parallel::FleetReport;
using onespec::parallel::SimFleet;

namespace {

std::vector<FleetJob>
makeJobs(const std::string &buildset, uint64_t max_instrs)
{
    std::vector<FleetJob> jobs;
    for (const auto &isa : shippedIsas()) {
        IsaWorkloads &w = workloadsFor(isa);
        for (const auto &[kname, prog] : w.programs) {
            FleetJob j;
            j.spec = w.spec.get();
            j.program = &prog;
            j.buildset = buildset;
            j.maxInstrs = max_instrs;
            j.name = isa + "/" + kname;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

/** Best aggregate MIPS over @p repeats fleet runs of @p jobs. */
double
bestMips(SimFleet &fleet, const std::vector<FleetJob> &jobs, int repeats)
{
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
        FleetReport rep = fleet.run(jobs);
        for (const auto &res : rep.results) {
            if (res.quarantined) {
                std::fprintf(stderr, "overhead job failed: %s\n",
                             res.error.c_str());
                std::exit(1);
            }
        }
        best = std::max(best, rep.aggregateMips());
    }
    return best;
}

double
overheadPct(double base, double other)
{
    return other > 0 ? (base / other - 1.0) * 100.0 : 0.0;
}

/** One profiled run of @p prog; returns the profiler for inspection
 *  and publishes its histogram under "profile.<label>" in the global
 *  registry.  @p mips_out gets the run's throughput. */
std::unique_ptr<obs::PcProfiler>
profiledRun(const Spec &spec, const Program &prog,
            const std::string &buildset, bool interp, uint64_t instrs,
            uint64_t stride, const std::string &label, double *mips_out)
{
    SimContext ctx(spec);
    ctx.load(prog);
    auto sim = interp ? std::unique_ptr<FunctionalSimulator>(
                            makeInterpSimulator(ctx, buildset))
                      : SimRegistry::instance().create(ctx, buildset);
    obs::PcProfiler::Config cfg;
    cfg.strideInstrs = stride;
    auto prof = std::make_unique<obs::PcProfiler>(spec, cfg);
    sim->setProfiler(prof.get());
    Measurement m = runTimed(ctx, *sim, prog, instrs);
    if (mips_out)
        *mips_out = m.mips();
    prof->publish(
        stats::StatsRegistry::global().group("profile." + label));
    return prof;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t max_instrs = 2'000'000;
    int repeats = 3;
    std::string buildset = "BlockMinNo";
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--instrs") == 0 && i + 1 < argc) {
            max_instrs = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--buildset") == 0 && i + 1 < argc) {
            buildset = argv[++i];
        } else if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            max_instrs = 250'000;
            repeats = 2;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    BenchReport report("trace_overhead");
    report.setParam("buildset", stats::Json(buildset));
    report.setParam("max_instrs_per_job", stats::Json(max_instrs));
    report.setParam("smoke", stats::Json(smoke));

    std::printf("TRACE OVERHEAD: flight recorder + hot-PC profiler\n\n");

    auto &fc = obs::FlightControl::instance();
    std::vector<FleetJob> jobs = makeJobs(buildset, max_instrs);
    SimFleet fleet(0);

    // ---- Phases 1-3: recorder off / disarmed / armed -------------------
    double mips_baseline = bestMips(fleet, jobs, repeats);

    fc.arm();
    fc.disarm();
    double mips_disarmed = bestMips(fleet, jobs, repeats);

    // Generous ring so the armed number is not flattered by overwrite:
    // every recorded event pays its full cost either way, but dropped
    // counts would muddy the disclosure.
    fc.arm(1 << 16);
    double mips_armed = bestMips(fleet, jobs, repeats);
    uint64_t events_recorded = fc.totalEvents();
    uint64_t events_dropped = fc.totalDropped();
    fc.disarm();

    double disarmed_pct = overheadPct(mips_baseline, mips_disarmed);
    double armed_pct = overheadPct(mips_baseline, mips_armed);
    std::printf("recorder never armed: %10.2f MIPS\n", mips_baseline);
    std::printf("recorder disarmed:    %10.2f MIPS  (overhead %.2f%%)\n",
                mips_disarmed, disarmed_pct);
    std::printf("recorder armed:       %10.2f MIPS  (overhead %.2f%%, "
                "%llu events, %llu dropped)\n\n",
                mips_armed, armed_pct,
                static_cast<unsigned long long>(events_recorded),
                static_cast<unsigned long long>(events_dropped));

    // ---- Phase 4: profiler identity across back ends -------------------
    const std::string isa = shippedIsas().front();
    IsaWorkloads &w = workloadsFor(isa);
    const auto &[kname, prog] = w.programs.front();
    const uint64_t stride = 64;

    double mips_noprof = 0.0, mips_interp = 0.0, mips_gen = 0.0;
    {
        SimContext ctx(*w.spec);
        ctx.load(prog);
        auto sim = SimRegistry::instance().create(ctx, buildset);
        mips_noprof = runTimed(ctx, *sim, prog, max_instrs).mips();
    }
    auto prof_i = profiledRun(*w.spec, prog, buildset, true, max_instrs,
                              stride, "interp", &mips_interp);
    auto prof_g = profiledRun(*w.spec, prog, buildset, false, max_instrs,
                              stride, "generated", &mips_gen);

    bool buckets_match = prof_i->buckets() == prof_g->buckets() &&
                         prof_i->opCounts() == prof_g->opCounts() &&
                         prof_i->samples() == prof_g->samples();
    uint64_t bucket_sum = 0;
    for (const auto &[pc, n] : prof_g->buckets())
        bucket_sum += n;

    std::printf("profiler on %s/%s, stride %llu:\n", isa.c_str(),
                kname.c_str(), static_cast<unsigned long long>(stride));
    std::printf("  no profiler (%s): %10.2f MIPS\n", buildset.c_str(),
                mips_noprof);
    std::printf("  generated armed:     %10.2f MIPS  (overhead %.2f%%)\n",
                mips_gen, overheadPct(mips_noprof, mips_gen));
    std::printf("  interp armed:        %10.2f MIPS\n", mips_interp);
    std::printf("  %llu samples, %zu PC buckets, histograms %s\n\n",
                static_cast<unsigned long long>(prof_g->samples()),
                prof_g->buckets().size(),
                buckets_match ? "IDENTICAL across back ends"
                              : "DIVERGED across back ends");

    stats::Json to = stats::Json::object();
    to.set("mips_baseline", stats::Json(mips_baseline));
    to.set("mips_disarmed", stats::Json(mips_disarmed));
    to.set("mips_armed", stats::Json(mips_armed));
    to.set("overhead_disarmed_pct", stats::Json(disarmed_pct));
    to.set("overhead_armed_pct", stats::Json(armed_pct));
    to.set("events_recorded", stats::Json(events_recorded));
    to.set("events_dropped", stats::Json(events_dropped));
    stats::Json pj = stats::Json::object();
    pj.set("isa", stats::Json(isa));
    pj.set("kernel", stats::Json(kname));
    pj.set("stride", stats::Json(stride));
    pj.set("samples", stats::Json(prof_g->samples()));
    pj.set("bucket_sum", stats::Json(bucket_sum));
    pj.set("pc_buckets", stats::Json(
        static_cast<uint64_t>(prof_g->buckets().size())));
    pj.set("buckets_match", stats::Json(buckets_match));
    pj.set("mips_no_profiler", stats::Json(mips_noprof));
    pj.set("mips_generated", stats::Json(mips_gen));
    pj.set("mips_interp", stats::Json(mips_interp));
    to.set("profile", std::move(pj));
    report.addResult("trace_overhead", std::move(to));
    report.write(json_path);

    // The bench itself gates only correctness (histogram identity and
    // bucket accounting); throughput ceilings live in the checker where
    // smoke/full tolerances belong.
    bool ok = buckets_match && bucket_sum == prof_g->samples() &&
              prof_g->samples() > 0 && events_recorded > 0;
    return ok ? 0 : 1;
}
